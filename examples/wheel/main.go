// The paper's Section 2 motivating example, end to end: a wheel graph has
// diameter 2, but its rim — a single part of the part-wise aggregation
// problem — has induced diameter Theta(n). A shortcut through the hub
// collapses the rim's effective diameter, and part-wise aggregation on the
// CONGEST simulator drops from Theta(n) rounds to a handful.
package main

import (
	"fmt"
	"log"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("wheel n | rim diam | PA rounds with shortcut | without | speedup")
	for _, n := range []int{64, 256, 1024} {
		g := locshort.Wheel(n)
		p, err := locshort.WheelRim(g) // part 1: the rim; part 2: the hub
		if err != nil {
			return err
		}

		// Build the Theorem 3.1 shortcut and its aggregation routing.
		res, err := locshort.Build(g, p, locshort.BuildOptions{})
		if err != nil {
			return err
		}
		routing, err := locshort.NewPARouting(res.Shortcut)
		if err != nil {
			return err
		}

		// Every rim node contributes 1; the aggregate is the rim size.
		values := make([]locshort.Payload, g.NumNodes())
		for v := range values {
			values[v] = locshort.Payload{1, 0, 0}
		}
		with, err := locshort.PartwiseAggregate(g, routing, locshort.OpSum, values, 1, true, 64*n)
		if err != nil {
			return err
		}
		if got := with.PartResult[0][0]; got != int64(n-1) {
			return fmt.Errorf("rim count = %d, want %d", got, n-1)
		}

		// The same aggregation without any shortcut: Theta(n) rounds.
		emptyRouting, err := locshort.NewPARouting(locshort.EmptyShortcut(g, p))
		if err != nil {
			return err
		}
		without, err := locshort.PartwiseAggregate(g, emptyRouting, locshort.OpSum, values, 1, true, 64*n)
		if err != nil {
			return err
		}

		fmt.Printf("%7d | %8d | %23d | %7d | %.1fx\n",
			n, (n-1)/2, with.Rounds.Measured, without.Rounds.Measured,
			float64(without.Rounds.Measured)/float64(with.Rounds.Measured))
	}
	return nil
}
