// Writing a custom CONGEST protocol against the public simulator API: a
// max-input flooding consensus. Every node starts with a private value;
// whenever a node learns a larger value it rebroadcasts it, so all nodes
// converge to the global maximum within diameter rounds — the textbook
// O(D) flooding pattern every shortcut-based algorithm builds on.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locshort"
)

// maxFlood is a node program (implements locshort.Proc via pointer).
type maxFlood struct {
	best    int64
	changed bool
}

func (p *maxFlood) Step(ctx *locshort.NodeContext) {
	for _, in := range ctx.In {
		if in.Msg.A > p.best {
			p.best = in.Msg.A
			p.changed = true
		}
	}
	if p.changed {
		ctx.Broadcast(locshort.Msg{A: p.best})
		p.changed = false
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	g := locshort.Torus(12, 12)
	diam, err := locshort.Diameter(g)
	if err != nil {
		return err
	}

	procs := make([]locshort.Proc, g.NumNodes())
	nodes := make([]*maxFlood, g.NumNodes())
	trueMax := int64(0)
	for v := range procs {
		val := int64(rng.Intn(1_000_000))
		if val > trueMax {
			trueMax = val
		}
		nodes[v] = &maxFlood{best: val, changed: true}
		procs[v] = nodes[v]
	}

	net, err := locshort.NewNetwork(g, procs)
	if err != nil {
		return err
	}
	stats, err := net.RunUntilQuiet(16*g.NumNodes(), 1)
	if err != nil {
		return err
	}

	agree := true
	for _, n := range nodes {
		if n.best != trueMax {
			agree = false
			break
		}
	}
	fmt.Printf("torus 12x12 (diameter %d): max-flood consensus\n", diam)
	fmt.Printf("  all %d nodes agree on max %d: %v\n", g.NumNodes(), trueMax, agree)
	fmt.Printf("  rounds %d (diameter bound: every node within %d hops of the max holder)\n",
		stats.ActiveRounds, diam)
	fmt.Printf("  messages %d, max per edge %d (CONGEST cap: 2 per round per edge)\n",
		stats.Messages, stats.MaxEdgeMessages())
	return nil
}
