// Quickstart: build a low-congestion shortcut on a planar grid network,
// measure its quality, and compare it against the Theorem 1.2 bounds and
// the folklore D+sqrt(n) baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))

	// A 32x32 grid: planar, so its minor density is below 3.
	g := locshort.Grid(32, 32)
	diam, err := locshort.Diameter(g)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d edges, diameter %d (planar, δ < 3)\n",
		g.NumNodes(), g.NumEdges(), diam)

	// Partition the nodes into 32 connected parts.
	p, err := locshort.BFSBlobs(g, 32, rng)
	if err != nil {
		return err
	}
	fmt.Printf("partition: %d connected parts\n", p.NumParts())

	// The Theorem 3.1 construction with the parameter-free doubling search.
	res, err := locshort.Build(g, p, locshort.BuildOptions{})
	if err != nil {
		return err
	}
	q := locshort.Measure(res.Shortcut)
	fmt.Printf("\ntheorem shortcut (accepted δ' = %d, %d iteration(s), tree depth %d):\n",
		res.Delta, res.Iterations, res.TreeDepth)
	fmt.Printf("  congestion %4d   (bound c·iters         = %d)\n",
		q.Congestion, res.CongestionThreshold*res.Iterations)
	fmt.Printf("  dilation   %4d   (bound (b+1)(2D+1)     = %d)\n",
		q.Dilation, (res.BlockBudget+1)*(2*res.TreeDepth+1))
	fmt.Printf("  blocks     %4d   (bound b+1             = %d)\n",
		q.MaxBlocks, res.BlockBudget+1)
	fmt.Printf("  quality    %4d   (= congestion + dilation)\n", q.Value())

	// The Section 1.3 baseline for comparison.
	triv, err := locshort.TrivialShortcut(g, p, nil)
	if err != nil {
		return err
	}
	tq := locshort.Measure(triv)
	fmt.Printf("\nD+√n baseline: congestion %d, dilation %d, quality %d\n",
		tq.Congestion, tq.Dilation, tq.Value())
	return nil
}
