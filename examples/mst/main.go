// Distributed minimum spanning tree (Corollary 1.6): Borůvka phases over
// part-wise aggregation, with the shortcut rebuilt each phase by the
// Theorem 1.5 distributed construction, verified against Kruskal.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	g := locshort.Torus(10, 10)
	locshort.RandomizeWeights(g, rng) // distinct weights: the MST is unique
	fmt.Printf("network: torus 10x10, %d nodes, %d edges, random weights\n",
		g.NumNodes(), g.NumEdges())

	_, want := locshort.Kruskal(g)

	for _, pr := range []struct {
		name string
		kind locshort.MSTOptions
	}{
		{"distributed construction / phase (Theorem 1.5)",
			locshort.MSTOptions{Provider: locshort.ProviderDistributed, Seed: 11}},
		{"charged construction (Lemma 2.8 budget)",
			locshort.MSTOptions{Provider: locshort.ProviderCentral, Seed: 11}},
		{"D+sqrt(n) baseline shortcut",
			locshort.MSTOptions{Provider: locshort.ProviderTrivial, Seed: 11}},
	} {
		res, err := locshort.MST(g, pr.kind)
		if err != nil {
			return err
		}
		status := "== Kruskal"
		if diff := res.Weight - want; diff > 1e-9 || diff < -1e-9 {
			status = fmt.Sprintf("MISMATCH (want %.4f)", want)
		}
		fmt.Printf("\n%s:\n", pr.name)
		fmt.Printf("  weight  %.4f  %s\n", res.Weight, status)
		fmt.Printf("  phases  %d\n", res.Phases)
		fmt.Printf("  rounds  %d  (measured %d + sync %d + charged %d)\n",
			res.Rounds.Total(), res.Rounds.Measured, res.Rounds.Sync, res.Rounds.Charged)
		fmt.Printf("  messages %d\n", res.Messages)
	}
	return nil
}
