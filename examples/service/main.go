// Service walkthrough: the in-process serving engine — register a graph by
// content fingerprint, build a shortcut once, watch the second request hit
// the cache, then amortize the build across jobs (aggregation rounds, MST,
// quality measurement) the way cmd/locshortd does over HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng := locshort.NewServiceEngine(locshort.ServiceConfig{Workers: 4, CacheCapacity: 16})
	defer eng.Close()
	ctx := context.Background()

	// Register a 32x32 grid. The fingerprint is a content address: the
	// same structure always maps to the same 16-hex-digit name.
	g := locshort.Grid(32, 32)
	fp, err := eng.AddGraph(g)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s: %d nodes, %d edges\n", fp, g.NumNodes(), g.NumEdges())

	// A deterministic partition: 32 BFS blobs from seed 7.
	p, err := locshort.BFSBlobs(g, 32, rand.New(rand.NewSource(7)))
	if err != nil {
		return err
	}

	// Cold build. The engine runs shortcut.Build on its worker pool and
	// caches the result under ShortcutKey(graph, partition, options).
	req := locshort.ServiceBuildRequest{Graph: fp, Parts: p}
	start := time.Now()
	c, hit, err := eng.Build(ctx, req)
	if err != nil {
		return err
	}
	cold := time.Since(start)
	fmt.Printf("cold build: shortcut %s in %v (cache hit: %v)\n", c.Key, cold.Round(time.Microsecond), hit)

	// The same request again: a cache hit, orders of magnitude faster.
	start = time.Now()
	_, hit, err = eng.Build(ctx, req)
	if err != nil {
		return err
	}
	warm := time.Since(start)
	fmt.Printf("warm build: %v (cache hit: %v, %.0fx faster)\n",
		warm.Round(time.Microsecond), hit, float64(cold)/float64(warm))

	// Concurrent identical requests collapse into the one cached entry —
	// the singleflight guarantee that a popular (graph, partition) never
	// triggers a thundering herd of builds.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := eng.Build(ctx, req); err != nil {
				log.Println("concurrent build:", err)
			}
		}()
	}
	wg.Wait()

	// Amortization: many aggregation rounds reuse the one cached shortcut
	// and its memoized routing. Part sizes via OpSum of constant 1.
	agg, err := eng.Aggregate(ctx, locshort.ServiceAggregateRequest{Shortcut: c.Key, Op: locshort.OpSum})
	if err != nil {
		return err
	}
	small, big := agg.PartResult[0][0], agg.PartResult[0][0]
	for _, pr := range agg.PartResult {
		if pr[0] < small {
			small = pr[0]
		}
		if pr[0] > big {
			big = pr[0]
		}
	}
	fmt.Printf("aggregate: %d parts, sizes %d..%d, %d simulated rounds\n",
		len(agg.PartResult), small, big, agg.Rounds.Total())

	// Quality measurement is memoized on the cached entry.
	q, err := eng.Measure(ctx, c.Key)
	if err != nil {
		return err
	}
	fmt.Printf("quality: congestion %d, dilation %d (delta' = %d)\n",
		q.Congestion, q.Dilation, c.Result.Delta)

	// A graph-level job on the same registered graph.
	mst, err := eng.MST(ctx, locshort.ServiceMSTRequest{Graph: fp})
	if err != nil {
		return err
	}
	fmt.Printf("MST: weight %.0f over %d phases\n", mst.Weight, mst.Phases)

	st := eng.Stats()
	fmt.Printf("stats: %d builds, %d hits / %d misses (hit rate %.2f), %d jobs done\n",
		st.Builds, st.CacheHits, st.CacheMisses, st.HitRate(), st.JobsDone)
	return nil
}
