// Distributed minimum cut (Corollary 1.7): sample spanning trees as MSTs
// under random edge weights — each one a full shortcut-based distributed
// computation — and take the best cut that 1-respects any sampled tree.
// Exactness is checked against the Stoer-Wagner ground truth.
package main

import (
	"fmt"
	"log"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	instances := []struct {
		name string
		g    *locshort.Graph
	}{
		{"cycle n=24 (cut 2)", locshort.Cycle(24)},
		{"torus 5x5 (cut 4)", locshort.Torus(5, 5)},
		{"two K6 + bridge (cut 1)", twoCliques()},
	}
	for _, in := range instances {
		exact, err := locshort.StoerWagner(in.g)
		if err != nil {
			return err
		}
		res, err := locshort.MinCut(in.g, locshort.MinCutOptions{
			Seed: 3,
			MST:  locshort.MSTOptions{Provider: locshort.ProviderCentral},
		})
		if err != nil {
			return err
		}
		verdict := "exact"
		if res.Value != int64(exact) {
			verdict = fmt.Sprintf("off by %+d", res.Value-int64(exact))
		}
		fmt.Printf("%-24s tree-packing %d vs Stoer-Wagner %.0f (%s); %d trees, %d rounds\n",
			in.name, res.Value, exact, verdict, res.Trees, res.Rounds.Total())
	}
	return nil
}

func twoCliques() *locshort.Graph {
	g := locshort.NewGraph(12)
	for base := 0; base < 12; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	g.AddEdge(2, 8)
	return g
}
