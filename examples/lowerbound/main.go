// The Lemma 3.2 / Figure 3.2 lower-bound topology: Theta(δD) rows of length
// Theta(δD) whose only shortcut resource is a short top path. Every
// shortcut — including the paper's own construction — must have quality at
// least (δ'-3)D'/6, and this program measures how close the constructions
// get. It also runs the certifying variant at an infeasible δ' to extract a
// dense-minor witness.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locshort"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lb, err := locshort.LowerBound(6, 24)
	if err != nil {
		return err
	}
	diam, err := locshort.Diameter(lb.G)
	if err != nil {
		return err
	}
	fmt.Printf("LB(δ'=%d, D'=%d): n=%d, %d rows of length %d, diameter %d\n",
		lb.DeltaPrime, lb.DiamPrime, lb.G.NumNodes(), len(lb.Rows), len(lb.Rows[0])-1, diam)
	fmt.Printf("every shortcut has quality ≥ (δ'-3)·D'/6 = %.1f\n\n", lb.QualityLowerBound)

	p, err := locshort.NewPartition(lb.G, lb.Rows)
	if err != nil {
		return err
	}
	res, err := locshort.Build(lb.G, p, locshort.BuildOptions{})
	if err != nil {
		return err
	}
	q := locshort.Measure(res.Shortcut)
	fmt.Printf("theorem construction: congestion %d + dilation %d = quality %d (bound %.1f)\n",
		q.Congestion, q.Dilation, q.Value(), lb.QualityLowerBound)

	triv, err := locshort.TrivialShortcut(lb.G, p, nil)
	if err != nil {
		return err
	}
	tq := locshort.Measure(triv)
	fmt.Printf("D+√n baseline:        congestion %d + dilation %d = quality %d\n",
		tq.Congestion, tq.Dilation, tq.Value())

	// Certifying run at an infeasible level (reduced constants): the
	// failure is explained by a dense bipartite minor.
	rng := rand.New(rand.NewSource(2))
	cert, err := locshort.Build(lb.G, p, locshort.BuildOptions{
		Delta:            1,
		CongestionFactor: 1,
		BlockFactor:      1,
		MaxIterations:    3,
		Certify:          true,
		CertAttempts:     400,
		Rng:              rng,
	})
	if err == nil {
		fmt.Println("\nunexpected: reduced-constant level succeeded")
		return nil
	}
	fmt.Printf("\ncertifying run at δ'=1 (reduced constants): %v\n", err)
	for i, m := range cert.Certificates {
		fmt.Printf("  certificate %d: %d-node %d-edge minor, density %.3f > failed δ'=%d (valid: %v)\n",
			i, m.NumNodes(), m.NumEdges(), m.Density(), cert.FailedDeltas[i], m.Validate(lb.G) == nil)
	}
	return nil
}
