// Repository-level benchmarks: one benchmark per experiment of
// EXPERIMENTS.md (regenerating its table in quick mode), plus
// micro-benchmarks of the core operations. Run with
//
//	go test -bench=. -benchmem
//
// Full-size experiment tables come from cmd/shortcutbench.
package locshort_test

import (
	"math/rand"
	"testing"

	"locshort"
	"locshort/internal/bench"
)

// benchExperiment runs a registered experiment in quick mode b.N times and
// fails on any bound violation.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(bench.Config{Quick: true, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if v := tab.Violations(); len(v) > 0 {
			b.Fatalf("%s: bound violated: %v", id, v[0])
		}
	}
}

func BenchmarkE1_Theorem31Partial(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2_Theorem12Full(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3_Theorem15Distributed(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_Lemma32LowerBound(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5_GenusTreewidth(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6_MST(b *testing.B)                   { benchExperiment(b, "E6") }
func BenchmarkE7_MinCut(b *testing.B)                { benchExperiment(b, "E7") }
func BenchmarkE8_PartwiseAggregation(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9_MinorDensity(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10_Certificates(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11_BeyondMinorClosed(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12_SubgraphConnectivity(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13_Bridges(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkA1_CongestionThreshold(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2_SchedulingAblation(b *testing.B)    { benchExperiment(b, "A2") }
func BenchmarkA3_DetectionAblation(b *testing.B)     { benchExperiment(b, "A3") }
func BenchmarkA4_RootChoiceAblation(b *testing.B)    { benchExperiment(b, "A4") }

// Core-operation benchmarks across the perf families tracked in the
// BENCH_*.json reports. grid:64x64 is the acceptance family for the flat
// Builder's allocation budget: run with
//
//	go test -bench BenchmarkBuild -benchmem
//
// and compare allocs/op against the committed baseline report.

// perfFamily builds one of the large benchmark workloads, matching
// internal/bench.perfFamilies (same specs, same seed).
func perfFamily(b *testing.B, spec string) (*locshort.Graph, *locshort.Partition) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var g *locshort.Graph
	var k int
	switch spec {
	case "grid:64x64":
		g, k = locshort.Grid(64, 64), 64
	case "torus:32x32":
		g, k = locshort.Torus(32, 32), 32
	case "ktree:600,4":
		g, k = locshort.KTree(600, 4, rng), 50
	default:
		b.Fatalf("unknown perf family %q", spec)
	}
	p, err := locshort.BFSBlobs(g, k, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g, p
}

var perfFamilySpecs = []string{"grid:64x64", "torus:32x32", "ktree:600,4"}

// BenchmarkBuild measures the full Theorem 3.1 construction (doubling
// search included) on a reused Builder — the service layer's cold-build
// configuration. Marked //locshort:hotpath so the CI bench smoke reports
// its allocs/op (it drives the Builder's hotpath-annotated stage funcs).
//
//locshort:hotpath
func BenchmarkBuild(b *testing.B) {
	for _, spec := range perfFamilySpecs {
		b.Run(spec, func(b *testing.B) {
			g, p := perfFamily(b, spec)
			bld := locshort.NewShortcutBuilder()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bld.Build(g, p, locshort.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildReference measures the preserved map-based construction
// path on the same workloads, so the Builder's gain is visible in one
// bench run (the committed BENCH_*.json baselines track it across PRs).
func BenchmarkBuildReference(b *testing.B) {
	for _, spec := range perfFamilySpecs {
		b.Run(spec, func(b *testing.B) {
			g, p := perfFamily(b, spec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := locshort.BuildSequentialReference(g, p, locshort.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasure measures shortcut quality measurement (congestion,
// dilation, blocks) on a prebuilt shortcut.
//
//locshort:hotpath
func BenchmarkMeasure(b *testing.B) {
	for _, spec := range perfFamilySpecs {
		b.Run(spec, func(b *testing.B) {
			g, p := perfFamily(b, spec)
			res, err := locshort.Build(g, p, locshort.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				locshort.Measure(res.Shortcut)
			}
		})
	}
}

// BenchmarkAggregate measures one part-wise aggregation round over
// installed routing — the operation the shortcut amortizes.
func BenchmarkAggregate(b *testing.B) {
	for _, spec := range perfFamilySpecs {
		b.Run(spec, func(b *testing.B) {
			g, p := perfFamily(b, spec)
			res, err := locshort.Build(g, p, locshort.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			routing, err := locshort.NewPARouting(res.Shortcut)
			if err != nil {
				b.Fatal(err)
			}
			values := make([]locshort.Payload, g.NumNodes())
			for v := range values {
				values[v] = locshort.Payload{1, 1, 1}
			}
			maxRounds := 64*g.NumNodes() + 4096
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := locshort.PartwiseAggregate(g, routing, locshort.OpSum, values, int64(i), true, maxRounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Micro-benchmarks of the core operations.

func BenchmarkCoreBuildShortcutGrid(b *testing.B) {
	g := locshort.Grid(24, 24)
	p, err := locshort.BFSBlobs(g, 24, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.Build(g, p, locshort.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreBuildPartialLB(b *testing.B) {
	lb, err := locshort.LowerBound(6, 24)
	if err != nil {
		b.Fatal(err)
	}
	p, err := locshort.NewPartition(lb.G, lb.Rows)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := locshort.BFSTree(lb.G, locshort.ChooseRoot(lb.G))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.BuildPartial(lb.G, tr, p, tr.MaxDepth(), 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreMeasureQuality(b *testing.B) {
	g := locshort.Grid(20, 20)
	p, err := locshort.BFSBlobs(g, 20, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	res, err := locshort.Build(g, p, locshort.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		locshort.Measure(res.Shortcut)
	}
}

func BenchmarkCoreGreedyDenseMinor(b *testing.B) {
	g := locshort.Torus(9, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		locshort.GreedyDenseMinor(g, rand.New(rand.NewSource(int64(i))))
	}
}

func BenchmarkDistBFSTree(b *testing.B) {
	g := locshort.Grid(20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.BuildBFSTree(g, 16*g.NumNodes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistPartwiseAggregate(b *testing.B) {
	g := locshort.Wheel(512)
	p, err := locshort.WheelRim(g)
	if err != nil {
		b.Fatal(err)
	}
	res, err := locshort.Build(g, p, locshort.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	routing, err := locshort.NewPARouting(res.Shortcut)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]locshort.Payload, g.NumNodes())
	for v := range values {
		values[v] = locshort.Payload{1, 0, 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.PartwiseAggregate(g, routing, locshort.OpSum, values, int64(i), true, 64*512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistConstructGrid(b *testing.B) {
	g := locshort.Grid(12, 12)
	p, err := locshort.BFSBlobs(g, 12, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.Construct(g, p, locshort.ConstructOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistMSTWheel(b *testing.B) {
	g := locshort.Wheel(256)
	locshort.RandomizeWeights(g, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locshort.MST(g, locshort.MSTOptions{
			Provider: locshort.ProviderCentralAdaptive, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
