// Command minorfind searches a graph for a dense minor with the greedy
// contraction heuristic and reports the witness density next to the
// analytic Lemma 3.3 bound for the family, sandwiching δ(G).
//
// Usage:
//
//	minorfind -graph torus:9x9 [-seed 1] [-restarts 8]
//
// Graph specs are those of congestsim.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"locshort"
	"locshort/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minorfind:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphSpec = flag.String("graph", "grid:10x10", "graph family spec (see congestsim)")
		seed      = flag.Int64("seed", 1, "random seed")
		restarts  = flag.Int("restarts", 8, "greedy restarts (random tie-breaking)")
	)
	flag.Parse()

	g, _, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s: %d nodes, %d edges, density %.3f\n",
		*graphSpec, g.NumNodes(), g.NumEdges(),
		float64(g.NumEdges())/float64(g.NumNodes()))

	var best *locshort.MinorMapping
	for r := 0; r < *restarts; r++ {
		m := locshort.GreedyDenseMinor(g, rand.New(rand.NewSource(*seed+int64(r))))
		if best == nil || m.Density() > best.Density() {
			best = m
		}
	}
	if err := best.Validate(g); err != nil {
		return fmt.Errorf("internal error: invalid witness: %w", err)
	}
	fmt.Printf("densest minor found: %d nodes, %d edges, density %.3f (witness for δ(G) ≥ %.3f)\n",
		best.NumNodes(), best.NumEdges(), best.Density(), best.Density())
	fmt.Printf("reference bounds: planar %.2f, genus-1 %.2f, treewidth-k => k\n",
		locshort.PlanarDensityBound, locshort.GenusDensityBound(1))
	return nil
}
