// Command loadgen is a closed-loop load generator for locshortd: N
// connections issue build-or-get shortcut requests (optionally mixed with
// MST jobs) against a catalog of graph families, with Zipf-skewed graph
// popularity and a bounded partition-seed space so the cache sees a
// realistic mix of cold builds and hits.
//
// Usage:
//
//	loadgen [-addr 127.0.0.1:8080] [-addrs A:1,B:2,C:3] [-duration 10s]
//	        [-conns 8]
//	        [-catalog "grid:32x32;torus:16x16;wheel:200;ktree:300,4"]
//	        [-parts blobs:32] [-seeds 4] [-zipf 1.3] [-job-frac 0]
//	        [-seed 1] [-async] [-require-hits] [-require-store-hits]
//
// Flags (all of them — the README table mirrors this list):
//
//	-addr      locshortd address (host:port or URL)
//	-addrs     comma-separated addresses of a locshortd cluster (overrides -addr)
//	-duration  how long to generate load
//	-conns     concurrent closed-loop connections
//	-catalog   semicolon-separated graph family specs, hottest first
//	-parts     partition spec sent with every request
//	-seeds     distinct partition seeds per graph (shortcut universe size)
//	-zipf      Zipf skew across catalog ranks (> 1)
//	-job-frac  fraction of requests that are MST jobs instead of builds
//	-seed      generator seed
//	-async     submit with "async": true and long-poll GET /v1/jobs/{id}
//	-require-hits        exit nonzero unless the server reports cache hits
//	-require-store-hits  exit nonzero unless the server reports store hits
//
// -addrs points loadgen at a multi-node cluster: each connection rotates
// through the listed nodes round-robin, so every node takes ingest and
// build traffic and the consistent-hash router is exercised from every
// entry point. Readiness is awaited on every node, the catalog is ingested
// through every node (idempotent — content addressing dedupes), and the
// end-of-run report adds a per-node source split scraped from each node's
// /metrics (builds, cache/store/peer hits, forwards, sync pulls) next to
// the cluster-wide totals. The latency report gains a "peer fetches"
// bucket for requests a node served by pulling another node's record.
//
// -async switches every request to asynchronous submission: the closed
// loop POSTs with "async": true, records the 202 acknowledgement latency
// ("async submits" in the report — what head-of-line blocking costs a
// synchronous client), then long-polls GET /v1/jobs/{id}?wait= until the
// job is terminal and records the end-to-end completion latency, split by
// source exactly like the synchronous report. A job that ends failed or
// canceled counts as an error, so `-async` finishing with "0 errors" is
// the async-serving health assertion CI uses after a daemon restart.
//
// Each request picks a catalog graph by Zipf rank (rank 1 is hottest) and
// a partition seed uniformly from [0, seeds); the (graph, partition seed)
// pair determines the shortcut fingerprint, so `seeds` controls how many
// distinct shortcuts exist per graph. The report splits request latency by
// the server's `source` field — cold constructions, durable-store loads,
// and resident cache hits — which is how both the cache-hit speedup and
// the restart-recovery (warm-start) speedup are measured:
//
//	requests: 1243 ok, 0 errors, 124.3 req/s
//	cold builds:   11   p50 41.2ms   p99 98.0ms
//	store hits:    16   p50 3.1ms    p99 5.9ms
//	cache hits:    1216 p50 0.8ms    p99 2.1ms
//	hit/cold median speedup: 51.5x
//	store/cold median speedup: 13.3x (warm start vs rebuild)
//	server: 11 builds, ... 16 store hits / 11 store misses
//	server POST /v1/shortcuts:  1243  p50 0.9ms  p99 40.1ms
//
// Before generating load, loadgen polls the daemon's GET /readyz (warm
// start and job recovery run behind the live listener); at the end of the
// run it scrapes GET /metrics and prints the server-side per-route p50/p99
// next to the client-side numbers above — the difference between the two
// is queueing and transport cost the handlers never saw. Both probes
// degrade silently against a daemon that predates them.
//
// The restart-recovery scenario: run loadgen against a daemon started with
// -data, SIGTERM the daemon, restart it on the same directory, and run the
// same loadgen line again with -require-store-hits. Every first touch of a
// shortcut in the second run is served from the store ("store hits"
// above), so its p50 against the first run's "cold builds" p50 is the
// measured warm-start advantage, and `server: 0 builds` proves nothing was
// rebuilt. CI automates exactly this (see .github/workflows/ci.yml);
// OPERATIONS.md documents the operator runbook.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"locshort/internal/cli"
	"locshort/internal/obs"
	"locshort/internal/service"
	"locshort/internal/store"
	"locshort/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type sample struct {
	latency time.Duration
	source  string // "built", "store", "peer", or "cache" (empty for jobs)
	job     bool
}

type client struct {
	name string // the address as given, for per-node report lines
	base string
	hc   *http.Client
}

func (c *client) post(path string, body, out any) error {
	return c.postStatus(path, body, http.StatusOK, out)
}

func (c *client) postStatus(path string, body any, wantStatus int, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// postGraphBinary ingests a canonical graph payload over the binary
// protocol. The If-None-Match probe makes re-ingest of known content a
// 304 before the server reads the body.
func (c *client) postGraphBinary(payload []byte, fp string) error {
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/graphs", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	req.Header.Set("If-None-Match", `"`+fp+`"`)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("POST /v1/graphs: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// postShortcutBinary issues one binary-protocol build-or-get. The latency
// class comes back in a response header; the payload body is fully
// drained so the connection goes back to the keep-alive pool.
func (c *client) postShortcutBinary(fp service.Fingerprint, partSpec string, seed int64) (source string, err error) {
	body := wire.AppendShortcutRequest(nil, wire.ShortcutRequest{Graph: fp, Partition: partSpec, Seed: seed})
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/shortcuts", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("POST /v1/shortcuts: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Header.Get(wire.HeaderSource), nil
}

func (c *client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// asyncJobTimeout bounds how long one submitted job is polled before it
// counts as an error — matching the HTTP client timeout a synchronous
// request gets, so a wedged queue surfaces as errors, not a hang.
const asyncJobTimeout = 5 * time.Minute

// runAsync submits one request with "async": true and long-polls the job
// to completion. It returns the acknowledgement latency and the source
// class of the final result ("" for query jobs).
func (c *client) runAsync(path string, body map[string]any) (submit time.Duration, source string, err error) {
	body["async"] = true
	var sub struct {
		ID string `json:"id"`
	}
	start := time.Now()
	if err := c.postStatus(path, body, http.StatusAccepted, &sub); err != nil {
		return 0, "", err
	}
	submit = time.Since(start)
	var js struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result struct {
			Source string `json:"source"`
		} `json:"result"`
	}
	for {
		if err := c.get("/v1/jobs/"+sub.ID+"?wait=30s", &js); err != nil {
			return submit, "", err
		}
		switch js.State {
		case "done":
			return submit, js.Result.Source, nil
		case "failed", "canceled":
			return submit, "", fmt.Errorf("job %s %s: %s", sub.ID, js.State, js.Error)
		}
		if time.Since(start) > asyncJobTimeout {
			return submit, "", fmt.Errorf("job %s still %s after %v", sub.ID, js.State, asyncJobTimeout)
		}
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "locshortd address (host:port or URL)")
		addrs    = flag.String("addrs", "", "comma-separated cluster addresses; connections rotate through them round-robin (overrides -addr)")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		conns    = flag.Int("conns", 8, "concurrent closed-loop connections")
		catalog  = flag.String("catalog", "grid:32x32;torus:16x16;wheel:200;ktree:300,4",
			"semicolon-separated graph family specs, hottest first")
		partSpec         = flag.String("parts", "blobs:32", "partition spec sent with every request")
		seeds            = flag.Int("seeds", 4, "distinct partition seeds per graph (shortcut universe size)")
		zipfS            = flag.Float64("zipf", 1.3, "Zipf skew across catalog ranks (>1)")
		jobFrac          = flag.Float64("job-frac", 0, "fraction of requests that are MST jobs instead of shortcut builds")
		seed             = flag.Int64("seed", 1, "generator seed")
		encoding         = flag.String("encoding", "json", "wire encoding for ingest and synchronous shortcut requests: json or binary (async and job requests always use JSON)")
		async            = flag.Bool("async", false, "submit with \"async\": true and long-poll GET /v1/jobs/{id}; report submit vs complete latency")
		requireHits      = flag.Bool("require-hits", false, "exit nonzero unless the server reports cache hits")
		requireStoreHits = flag.Bool("require-store-hits", false, "exit nonzero unless the server reports durable-store hits (restart-recovery assertion)")
	)
	flag.Parse()
	if *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1, got %v", *zipfS)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *conns < 1 {
		return fmt.Errorf("-conns must be >= 1, got %d", *conns)
	}
	if *jobFrac < 0 || *jobFrac > 1 {
		return fmt.Errorf("-job-frac must be in [0,1], got %v", *jobFrac)
	}
	if *encoding != "json" && *encoding != "binary" {
		return fmt.Errorf("-encoding must be json or binary, got %q", *encoding)
	}
	binary := *encoding == "binary"

	// Resolve the target list: -addrs (a cluster) wins over -addr (one
	// daemon). Every node gets its own client; connections rotate through
	// them per request, so the router is exercised from every entry point.
	targetAddrs := []string{*addr}
	if *addrs != "" {
		targetAddrs = targetAddrs[:0]
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targetAddrs = append(targetAddrs, a)
			}
		}
		if len(targetAddrs) == 0 {
			return fmt.Errorf("-addrs lists no addresses")
		}
	}
	clients := make([]*client, len(targetAddrs))
	for i, a := range targetAddrs {
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		clients[i] = &client{name: a, base: base, hc: &http.Client{Timeout: 5 * time.Minute}}
	}
	c := clients[0]

	// Wait out each daemon's warm start: the listener binds before the store
	// replays, and /v1/ requests 503 until GET /readyz flips. A 404 means a
	// pre-readiness daemon — proceed as before. In cluster mode this also
	// waits out the config-drift gate, so load never starts against a node
	// serving a disagreeing ring.
	for _, tc := range clients {
		if err := awaitReady(tc, 30*time.Second); err != nil {
			return fmt.Errorf("node %s: %w", tc.name, err)
		}
	}

	// Register the catalog up front and keep the fingerprints. Ingest goes
	// through every node: content addressing makes it idempotent, and it
	// keeps the run independent of the cluster's ingest broadcast having
	// reached everyone before load starts.
	specs := strings.Split(*catalog, ";")
	fps := make([]string, len(specs))
	binFPs := make([]service.Fingerprint, len(specs))
	for i, spec := range specs {
		spec = strings.TrimSpace(spec)
		if binary {
			// Binary ingest: encode the canonical payload client-side, hash
			// it to the fingerprint the server will agree on, and send the
			// bytes with an If-None-Match probe (re-ingest on later nodes or
			// runs is a 304).
			g, _, err := cli.ParseGraph(spec, 0)
			if err != nil {
				return fmt.Errorf("parse %q: %w", spec, err)
			}
			payload := store.EncodeGraphPayload(g)
			binFPs[i] = service.FingerprintBytes(payload[1:])
			fps[i] = binFPs[i].String()
			for _, tc := range clients {
				if err := tc.postGraphBinary(payload, fps[i]); err != nil {
					return fmt.Errorf("ingest %q on %s: %w", spec, tc.name, err)
				}
			}
			fmt.Printf("ingested %-16s %s (%d nodes, binary)\n", spec, fps[i], g.NumNodes())
			continue
		}
		var g struct {
			Graph string `json:"graph"`
			Nodes int    `json:"nodes"`
		}
		for _, tc := range clients {
			if err := tc.post("/v1/graphs", map[string]any{"spec": spec}, &g); err != nil {
				return fmt.Errorf("ingest %q on %s: %w", spec, tc.name, err)
			}
		}
		fps[i] = g.Graph
		fmt.Printf("ingested %-16s %s (%d nodes)\n", spec, g.Graph, g.Nodes)
	}

	// Cumulative server-side counters before the run: the delta across the
	// run gives server allocations per request (see the summary line).
	allocs0, reqs0, allocsOK := sampleServerAllocs(clients)

	// Closed loop: each connection issues the next request as soon as the
	// previous one returns (in -async mode: as soon as the previous job
	// completes, keeping the comparison closed-loop).
	var (
		mu       sync.Mutex
		samples  []sample
		submits  []time.Duration
		errs     int
		firstErr error
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(fps)-1))
			for n := w; time.Now().Before(deadline); n++ {
				// Round-robin across the targets, offset by the connection
				// index so concurrent connections spread over the nodes.
				tc := clients[n%len(clients)]
				gi := int(zipf.Uint64())
				ps := rng.Int63n(int64(*seeds))
				isJob := rng.Float64() < *jobFrac
				start := time.Now()
				var err error
				var submit time.Duration
				s := sample{job: isJob}
				switch {
				case *async && isJob:
					submit, _, err = tc.runAsync("/v1/jobs", map[string]any{
						"kind": "mst", "graph": fps[gi], "seed": ps,
					})
				case *async:
					submit, s.source, err = tc.runAsync("/v1/shortcuts", map[string]any{
						"graph": fps[gi], "partition": *partSpec, "seed": ps,
					})
				case isJob:
					err = tc.post("/v1/jobs", map[string]any{
						"kind": "mst", "graph": fps[gi], "seed": ps,
					}, nil)
				case binary:
					s.source, err = tc.postShortcutBinary(binFPs[gi], *partSpec, ps)
				default:
					var resp struct {
						Cached bool   `json:"cached"`
						Source string `json:"source"`
					}
					err = tc.post("/v1/shortcuts", map[string]any{
						"graph": fps[gi], "partition": *partSpec, "seed": ps,
					}, &resp)
					s.source = resp.Source
					if s.source == "" { // pre-source servers: fall back to the cached flag
						if resp.Cached {
							s.source = "cache"
						} else {
							s.source = "built"
						}
					}
				}
				// A forwarded answer reports "forward:<owner's source>"; the
				// latency class is the owner's, plus one hop.
				s.source = strings.TrimPrefix(s.source, "forward:")
				s.latency = time.Since(start)
				mu.Lock()
				if err != nil {
					errs++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					samples = append(samples, s)
					if *async {
						submits = append(submits, submit)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(samples) == 0 {
		if firstErr != nil {
			return fmt.Errorf("no request succeeded: %w", firstErr)
		}
		return fmt.Errorf("no request completed within %v", *duration)
	}
	report(samples, submits, errs, *duration)
	// Server-side allocations per request across the run, from the
	// locshort_go_mallocs_total delta over the request-count delta — the
	// cheap always-on stand-in for an allocation profile, and the number
	// the binary protocol exists to shrink.
	if a1, r1, ok := sampleServerAllocs(clients); ok && allocsOK && r1 > reqs0 {
		fmt.Printf("encoding: %s, server allocs/request: %.0f (over %.0f requests)\n",
			*encoding, (a1-allocs0)/(r1-reqs0), r1-reqs0)
	} else {
		fmt.Printf("encoding: %s\n", *encoding)
	}
	if firstErr != nil {
		fmt.Printf("first error: %v\n", firstErr)
	}

	// Ask each server for its own accounting. The require-* assertions sum
	// across the targets: in a cluster, which node's cache or store served
	// a request depends on ring ownership, not on which node we asked.
	var agg service.Stats
	for _, tc := range clients {
		var stats struct {
			Stats   service.Stats `json:"stats"`
			HitRate float64       `json:"hit_rate"`
		}
		if err := tc.get("/v1/stats", &stats); err != nil {
			if len(clients) == 1 {
				return err
			}
			fmt.Printf("node %s: stats unavailable: %v\n", tc.name, err)
			continue
		}
		agg.Builds += stats.Stats.Builds
		agg.CacheHits += stats.Stats.CacheHits
		agg.StoreHits += stats.Stats.StoreHits
		agg.PeerHits += stats.Stats.PeerHits
		if len(clients) > 1 {
			continue // single-node report below; cluster gets the /metrics table
		}
		fmt.Printf("server: %d builds, %d hits / %d misses (hit rate %.2f), %d evictions, %d graphs\n",
			stats.Stats.Builds, stats.Stats.CacheHits, stats.Stats.CacheMisses,
			stats.HitRate, stats.Stats.CacheEvictions, stats.Stats.Graphs)
		if stats.Stats.StoreHits+stats.Stats.StoreMisses+stats.Stats.StoreWrites+stats.Stats.StoreErrors > 0 {
			fmt.Printf("server store: %d hits / %d misses, %d writes, %d errors\n",
				stats.Stats.StoreHits, stats.Stats.StoreMisses,
				stats.Stats.StoreWrites, stats.Stats.StoreErrors)
		}
		if stats.Stats.PeerHits+stats.Stats.PeerMisses+stats.Stats.PeerErrors > 0 {
			fmt.Printf("server peer: %d hits / %d misses, %d errors, %d forwards, %d sync pulls\n",
				stats.Stats.PeerHits, stats.Stats.PeerMisses, stats.Stats.PeerErrors,
				stats.Stats.Forwards, stats.Stats.SyncPulls)
		}
		if stats.Stats.AsyncSubmitted > 0 || stats.Stats.AsyncQueued+stats.Stats.AsyncRunning > 0 {
			fmt.Printf("server async: %d submitted, %d queued / %d running, %d done, %d failed, %d canceled\n",
				stats.Stats.AsyncSubmitted, stats.Stats.AsyncQueued, stats.Stats.AsyncRunning,
				stats.Stats.AsyncDone, stats.Stats.AsyncFailed, stats.Stats.AsyncCanceled)
		}
	}
	if len(clients) > 1 {
		fmt.Printf("cluster: %d builds, %d cache hits, %d store hits, %d peer hits across %d nodes\n",
			agg.Builds, agg.CacheHits, agg.StoreHits, agg.PeerHits, len(clients))
		// Per-node source split scraped from each node's /metrics: where
		// the builds happened, which caches served, how much traffic was
		// forwarded to owners, and what anti-entropy moved.
		reportClusterMetrics(clients)
	} else {
		// End-of-run /metrics scrape: the server-side per-route latency view
		// next to the client-side one above. A gap between the two is queueing
		// or transport cost the server never saw; matching numbers mean the
		// latency lives in the handlers. Daemons without /metrics skip this.
		reportServerMetrics(c, c.base)
	}
	if *requireHits && agg.CacheHits == 0 {
		return fmt.Errorf("require-hits: server reports zero cache hits")
	}
	if *requireStoreHits && agg.StoreHits == 0 {
		return fmt.Errorf("require-store-hits: server reports zero durable-store hits")
	}
	return nil
}

// reportClusterMetrics prints the per-node source split from each node's
// /metrics — builds, cache/store/peer hits, forwards, sync pulls — so a
// cluster run shows where the work landed, not just the totals. Best
// effort: an unreachable node (the kill-one scenario) prints as such.
func reportClusterMetrics(clients []*client) {
	fmt.Println("per-node split (from /metrics):")
	for _, tc := range clients {
		resp, err := tc.hc.Get(tc.base + "/metrics")
		if err != nil {
			fmt.Printf("  %s: unreachable: %v\n", tc.name, err)
			continue
		}
		sc, perr := obs.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || perr != nil {
			fmt.Printf("  %s: /metrics unavailable (status %d, err %v)\n", tc.name, resp.StatusCode, perr)
			continue
		}
		v := func(name string, labels obs.Labels) float64 {
			x, _ := sc.Value(name, labels)
			return x
		}
		fmt.Printf("  %s: builds %.0f  cache hits %.0f  store hits %.0f  peer hits %.0f  forwards %.0f  sync pulls %.0f\n",
			tc.name,
			v("locshort_engine_builds_total", nil),
			v("locshort_engine_cache_hits_total", nil),
			v("locshort_engine_store_reads_total", obs.Labels{"outcome": "hit"}),
			v("locshort_engine_peer_reads_total", obs.Labels{"outcome": "hit"}),
			v("locshort_cluster_forwards_total", obs.Labels{"outcome": "ok"}),
			v("locshort_cluster_sync_pulls_total", nil))
	}
}

// sampleServerAllocs reads the cumulative server-side allocation and HTTP
// request counters from every node's /metrics. Best effort: a node without
// the metrics (pre-metrics daemon, or /metrics disabled) reports ok=false
// and the summary's allocs/request line is skipped.
func sampleServerAllocs(clients []*client) (mallocs, requests float64, ok bool) {
	for _, tc := range clients {
		resp, err := tc.hc.Get(tc.base + "/metrics")
		if err != nil {
			return 0, 0, false
		}
		sc, perr := obs.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || perr != nil {
			return 0, 0, false
		}
		m, found := sc.Value("locshort_go_mallocs_total", nil)
		if !found {
			return 0, 0, false
		}
		mallocs += m
		for _, s := range sc.Matching("locshort_http_requests_total", nil) {
			requests += s.Value
		}
	}
	return mallocs, requests, true
}

// awaitReady polls GET /readyz until the daemon reports ready, the probe
// 404s (daemon predates /readyz), or the deadline passes.
func awaitReady(c *client, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := c.hc.Get(c.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon never became ready within %v: %w", wait, err)
			}
			return fmt.Errorf("daemon never became ready within %v", wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// reportServerMetrics prints the daemon's own per-route latency quantiles
// from /metrics, best-effort: absence (pre-metrics daemon) is silent,
// parse failures are reported but never fail the run.
func reportServerMetrics(c *client, base string) {
	resp, err := c.hc.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		fmt.Printf("server metrics: unparseable: %v\n", err)
		return
	}
	routes := map[string]bool{}
	for _, s := range sc.Matching("locshort_http_request_seconds_count", nil) {
		if r := s.Label("route"); r != "" {
			routes[r] = true
		}
	}
	names := make([]string, 0, len(routes))
	for r := range routes {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, route := range names {
		h, ok := sc.Histogram("locshort_http_request_seconds", obs.Labels{"route": route})
		if !ok || h.Count() == 0 {
			continue
		}
		fmt.Printf("server %-22s %-6d p50 %-10v p99 %v\n",
			route+":", h.Count(),
			time.Duration(h.Quantile(0.5)*float64(time.Second)).Round(10*time.Microsecond),
			time.Duration(h.Quantile(0.99)*float64(time.Second)).Round(10*time.Microsecond))
	}
}

func report(samples []sample, submits []time.Duration, errs int, d time.Duration) {
	var cold, stored, peer, hit, jobs []time.Duration
	for _, s := range samples {
		switch {
		case s.job:
			jobs = append(jobs, s.latency)
		case s.source == "cache":
			hit = append(hit, s.latency)
		case s.source == "store":
			stored = append(stored, s.latency)
		case s.source == "peer":
			peer = append(peer, s.latency)
		default:
			cold = append(cold, s.latency)
		}
	}
	fmt.Printf("requests: %d ok, %d errors, %.1f req/s\n",
		len(samples), errs, float64(len(samples))/d.Seconds())
	line := func(name string, ls []time.Duration) {
		if len(ls) == 0 {
			fmt.Printf("%-14s 0\n", name+":")
			return
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Printf("%-14s %-6d p50 %-10v p99 %v\n",
			name+":", len(ls), quantile(ls, 0.50), quantile(ls, 0.99))
	}
	// The async split: acknowledgement latency (what the submitter waits)
	// vs the completion latencies below (submit → terminal, classified by
	// source like the synchronous report).
	if len(submits) > 0 {
		line("async submits", submits)
	}
	line("cold builds", cold)
	if len(stored) > 0 {
		line("store hits", stored)
	}
	if len(peer) > 0 {
		line("peer fetches", peer)
	}
	line("cache hits", hit)
	if len(jobs) > 0 {
		line("mst jobs", jobs)
	}
	if len(cold) > 0 && len(hit) > 0 {
		ratio := float64(quantile(cold, 0.50)) / float64(quantile(hit, 0.50))
		fmt.Printf("hit/cold median speedup: %.1fx\n", ratio)
	}
	if len(cold) > 0 && len(stored) > 0 {
		ratio := float64(quantile(cold, 0.50)) / float64(quantile(stored, 0.50))
		fmt.Printf("store/cold median speedup: %.1fx (warm start vs rebuild)\n", ratio)
	}
}

// quantile returns the q-th quantile of sorted latencies (nearest rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(10 * time.Microsecond)
}
