// Command congestsim runs one distributed algorithm on one graph family on
// the CONGEST simulator and reports rounds (measured/sync/charged),
// messages, and result checks.
//
// Usage:
//
//	congestsim -graph grid:16x16 -algo mst [-seed 1] [-parts 16]
//
// Graphs: grid:RxC, torus:RxC, wheel:N, cycle:N, path:N, complete:N,
// ktree:N,K, random:N,M, lb:DELTA,DIAM.
// Algorithms: bfs, construct, pa, mst, mincut.
package main

import (
	"flag"
	"fmt"
	"locshort"
	"locshort/internal/cli"
	"math/rand"
	"os"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "congestsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphSpec = flag.String("graph", "grid:16x16", "graph family spec")
		algo      = flag.String("algo", "mst", "bfs | construct | pa | mst | mincut")
		seed      = flag.Int64("seed", 1, "random seed")
		parts     = flag.Int("parts", 0, "number of parts (default ~sqrt(n))")
	)
	flag.Parse()

	g, rows, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s: %d nodes, %d edges\n", *graphSpec, g.NumNodes(), g.NumEdges())

	p, err := buildPartition(g, rows, *parts, *seed)
	if err != nil {
		return err
	}

	switch *algo {
	case "bfs":
		res, err := locshort.BuildBFSTree(g, 16*g.NumNodes())
		if err != nil {
			return err
		}
		fmt.Printf("BFS tree: depth %d, rounds %d (measured %d + sync %d), messages %d\n",
			res.Tree.MaxDepth(), res.Rounds.Total(), res.Rounds.Measured, res.Rounds.Sync,
			res.Stats.Messages)
	case "construct":
		res, err := locshort.Construct(g, p, locshort.ConstructOptions{Seed: *seed})
		if err != nil {
			return err
		}
		q := locshort.Measure(res.Shortcut)
		fmt.Printf("shortcut: δ'=%d, %d iteration(s), congestion %d, dilation %d, blocks %d\n",
			res.Delta, res.Iterations, q.Congestion, q.Dilation, q.MaxBlocks)
		fmt.Printf("rounds %d (measured %d + sync %d + charged %d), messages %d\n",
			res.Rounds.Total(), res.Rounds.Measured, res.Rounds.Sync, res.Rounds.Charged,
			res.Messages)
	case "pa":
		res, err := locshort.Construct(g, p, locshort.ConstructOptions{Seed: *seed})
		if err != nil {
			return err
		}
		values := make([]locshort.Payload, g.NumNodes())
		for v := range values {
			values[v] = locshort.Payload{1, 0, 0}
		}
		pa, err := locshort.PartwiseAggregate(g, res.Routing, locshort.OpSum, values,
			*seed, true, 64*g.NumNodes()+4096)
		if err != nil {
			return err
		}
		fmt.Printf("part-wise aggregation (%d parts): %d rounds, %d messages\n",
			p.NumParts(), pa.Rounds.Measured, pa.Stats.Messages)
		for i, r := range pa.PartResult {
			if i >= 8 {
				fmt.Printf("  ... (%d more parts)\n", len(pa.PartResult)-8)
				break
			}
			fmt.Printf("  part %d: size %d, aggregate %d\n", i, len(p.Parts[i]), r[0])
		}
	case "mst":
		locshort.RandomizeWeights(g, rand.New(rand.NewSource(*seed)))
		_, want := locshort.Kruskal(g)
		res, err := locshort.MST(g, locshort.MSTOptions{
			Provider: locshort.ProviderDistributed, Seed: *seed,
		})
		if err != nil {
			return err
		}
		ok := "== Kruskal"
		if d := res.Weight - want; d > 1e-9 || d < -1e-9 {
			ok = "MISMATCH"
		}
		fmt.Printf("MST: weight %.4f (%s), %d phases\n", res.Weight, ok, res.Phases)
		fmt.Printf("rounds %d (measured %d + sync %d + charged %d), messages %d\n",
			res.Rounds.Total(), res.Rounds.Measured, res.Rounds.Sync, res.Rounds.Charged,
			res.Messages)
	case "mincut":
		exact, err := locshort.StoerWagner(g)
		if err != nil {
			return err
		}
		res, err := locshort.MinCut(g, locshort.MinCutOptions{
			Seed: *seed,
			MST:  locshort.MSTOptions{Provider: locshort.ProviderCentral},
		})
		if err != nil {
			return err
		}
		fmt.Printf("min cut: tree-packing %d vs Stoer-Wagner %.0f, %d trees, rounds %d\n",
			res.Value, exact, res.Trees, res.Rounds.Total())
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

func buildPartition(g *locshort.Graph, rows [][]int, parts int, seed int64) (*locshort.Partition, error) {
	if rows != nil {
		return locshort.NewPartition(g, rows)
	}
	if parts == 0 {
		parts = 1
		for parts*parts < g.NumNodes() {
			parts++
		}
	}
	return locshort.BFSBlobs(g, parts, rand.New(rand.NewSource(seed+99)))
}
