package main

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"locshort/internal/obs"
)

// runTop is the live terminal view over a running daemon's /metrics: it
// scrapes on an interval and renders throughput, hit ratios, queue depths,
// and per-route latency quantiles from the deltas between consecutive
// scrapes — so the numbers are "what is happening now", not since-boot
// averages. -once takes a single scrape (cumulative numbers) and exits,
// which is the mode scripts and CI want.
func runTop(addr string, interval time.Duration, once bool) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	prev, prevAt, err := scrapeMetrics(addr)
	if err != nil {
		return err
	}
	if once {
		render(addr, prev, nil, 0)
		return nil
	}
	for {
		time.Sleep(interval)
		cur, curAt, err := scrapeMetrics(addr)
		if err != nil {
			return err
		}
		// ANSI clear + home: repaint in place like top(1).
		fmt.Print("\x1b[2J\x1b[H")
		render(addr, cur, prev, curAt.Sub(prevAt))
		prev, prevAt = cur, curAt
	}
}

func scrapeMetrics(addr string) (*obs.Scrape, time.Time, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, time.Time{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, time.Time{}, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	sc, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("parse /metrics: %w", err)
	}
	return sc, time.Now(), nil
}

// val reads one sample, defaulting to 0 when the family has not appeared
// yet (e.g. no request has hit a route).
func val(sc *obs.Scrape, name string, labels obs.Labels) float64 {
	v, _ := sc.Value(name, labels)
	return v
}

// delta is cur-prev for a cumulative counter, clamped at 0 across a
// daemon restart; with no previous scrape it degrades to the cumulative
// value.
func delta(cur, prev *obs.Scrape, name string, labels obs.Labels) float64 {
	c := val(cur, name, labels)
	if prev == nil {
		return c
	}
	if d := c - val(prev, name, labels); d > 0 {
		return d
	}
	return 0
}

func render(addr string, cur, prev *obs.Scrape, elapsed time.Duration) {
	ratio := func(hit, total float64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*hit/total)
	}
	perSec := func(n float64) string {
		if prev == nil || elapsed <= 0 {
			return fmt.Sprintf("%.0f total", n)
		}
		return fmt.Sprintf("%.1f/s", n/elapsed.Seconds())
	}

	window := "since boot"
	if prev != nil {
		window = fmt.Sprintf("last %v", elapsed.Round(100*time.Millisecond))
	}
	fmt.Printf("locshortd %s  (%s)  %s\n\n", addr, window, time.Now().Format("15:04:05"))

	hits := delta(cur, prev, "locshort_engine_cache_hits_total", nil)
	misses := delta(cur, prev, "locshort_engine_cache_misses_total", nil)
	builds := delta(cur, prev, "locshort_engine_builds_total", nil)
	sHit := delta(cur, prev, "locshort_engine_store_reads_total", obs.Labels{"outcome": "hit"})
	sMiss := delta(cur, prev, "locshort_engine_store_reads_total", obs.Labels{"outcome": "miss"})
	fmt.Printf("engine  lookups %s  hit %s  builds %s  errors %.0f  cache %.0f entries / %.0f graphs\n",
		perSec(hits+misses), ratio(hits, hits+misses), perSec(builds),
		val(cur, "locshort_engine_build_errors_total", nil),
		val(cur, "locshort_engine_cache_entries", nil),
		val(cur, "locshort_engine_graphs", nil))
	fmt.Printf("        queue %.0f  running %.0f  store reads %s (hit %s)  writes %s  errors %.0f\n",
		val(cur, "locshort_engine_queue_depth", nil),
		val(cur, "locshort_engine_jobs_running", nil),
		perSec(sHit+sMiss), ratio(sHit, sHit+sMiss),
		perSec(delta(cur, prev, "locshort_engine_store_writes_total", nil)),
		val(cur, "locshort_engine_store_errors_total", nil))
	fmt.Printf("async   queued %.0f  running %.0f  submitted %s  done %.0f  failed %.0f  retries %.0f\n",
		val(cur, "locshort_jobs_queued", nil),
		val(cur, "locshort_jobs_running", nil),
		perSec(delta(cur, prev, "locshort_jobs_submitted_total", nil)),
		val(cur, "locshort_jobs_finished_total", obs.Labels{"outcome": "done"}),
		val(cur, "locshort_jobs_finished_total", obs.Labels{"outcome": "failed"}),
		val(cur, "locshort_jobs_retries_total", nil))
	if cur.HasFamily("locshort_store_bytes") {
		fmt.Printf("store   %.0f segments  %s  appends %s  fsync p99 %s\n",
			val(cur, "locshort_store_segments", nil),
			fmtBytes(val(cur, "locshort_store_bytes", nil)),
			perSec(sumMatching(cur, prev, "locshort_store_appends_total")),
			quantileOf(cur, prev, "locshort_store_fsync_seconds", nil, 0.99))
	}
	fmt.Printf("http    in-flight %.0f\n\n", val(cur, "locshort_http_in_flight", nil))

	// Per-route table from the HTTP histograms: quantiles over the
	// interval's observations (cumulative when there is no interval yet).
	routes := routeNames(cur)
	if len(routes) == 0 {
		fmt.Println("no HTTP traffic observed yet")
		return
	}
	w := 0
	for _, r := range routes {
		if len(r) > w {
			w = len(r)
		}
	}
	fmt.Printf("%-*s  %12s  %9s  %9s  %10s\n", w, "ROUTE", "THROUGHPUT", "P50", "P99", "COUNT")
	for _, route := range routes {
		h, ok := cur.Histogram("locshort_http_request_seconds", obs.Labels{"route": route})
		if !ok {
			continue
		}
		snap := h
		if prev != nil {
			if ph, ok := prev.Histogram("locshort_http_request_seconds", obs.Labels{"route": route}); ok {
				snap = h.Sub(ph)
			}
		}
		p50, p99 := "-", "-"
		if snap.Count() > 0 {
			p50 = fmtSeconds(snap.Quantile(0.5))
			p99 = fmtSeconds(snap.Quantile(0.99))
		}
		fmt.Printf("%-*s  %12s  %9s  %9s  %10.0f\n",
			w, route, perSec(float64(snap.Count())), p50, p99, float64(h.Count()))
	}
}

// routeNames enumerates the route label values seen by the HTTP layer,
// sorted for a stable table.
func routeNames(sc *obs.Scrape) []string {
	seen := map[string]bool{}
	for _, s := range sc.Matching("locshort_http_request_seconds_count", nil) {
		if r := s.Label("route"); r != "" && !seen[r] {
			seen[r] = true
		}
	}
	routes := make([]string, 0, len(seen))
	for r := range seen {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	return routes
}

// sumMatching totals the interval delta of every series in a counter
// family (e.g. appends across record kinds).
func sumMatching(cur, prev *obs.Scrape, name string) float64 {
	total := 0.0
	for _, s := range cur.Matching(name, nil) {
		total += delta(cur, prev, name, s.Labels)
	}
	return total
}

// quantileOf renders a quantile of a histogram family over the interval,
// "-" when it has no observations.
func quantileOf(cur, prev *obs.Scrape, name string, labels obs.Labels, q float64) string {
	h, ok := cur.Histogram(name, labels)
	if !ok {
		return "-"
	}
	if prev != nil {
		if ph, ok := prev.Histogram(name, labels); ok {
			h = h.Sub(ph)
		}
	}
	if h.Count() == 0 {
		return "-"
	}
	return fmtSeconds(h.Quantile(q))
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	}
	return fmt.Sprintf("%.0f B", b)
}

// normalizeAddr is a tolerant addr normalizer: accepts "host:port" and
// "http://host:port" forms so `locshortctl top` composes with -addrfile
// contents and copy-pasted URLs alike.
func normalizeAddr(addr string) string {
	addr = strings.TrimPrefix(addr, "http://")
	return strings.TrimSuffix(addr, "/")
}
