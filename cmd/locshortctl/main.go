// Command locshortctl is the offline administration tool for a locshortd
// durable store directory (internal/store): list, inspect, verify, and
// compact the content-addressed records without a running daemon.
//
// Usage:
//
//	locshortctl -data DIR ls               list live records
//	locshortctl -data DIR inspect <fp>     decode one record in detail
//	locshortctl -data DIR verify           full integrity check (exit 1 on problems)
//	locshortctl -data DIR gc               compact segments, reclaim dead space
//
// The store is single-owner: run locshortctl against a stopped daemon or a
// copied directory, never against the directory of a live locshortd. See
// OPERATIONS.md for the backup / GC / verify runbook.
package main

import (
	"flag"
	"fmt"
	"os"

	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locshortctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: locshortctl -data DIR {ls | inspect <fp> | verify | gc}")
}

func run() error {
	data := flag.String("data", "", "store directory (required)")
	flag.Parse()
	if *data == "" || flag.NArg() < 1 {
		return usage()
	}
	// Unlike the daemon, an admin tool must not conjure an empty store out
	// of a mistyped path and then report it "clean".
	if fi, err := os.Stat(*data); err != nil || !fi.IsDir() {
		return fmt.Errorf("store directory %s does not exist", *data)
	}
	s, err := store.Open(*data, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()

	switch cmd := flag.Arg(0); cmd {
	case "ls":
		return runLs(s)
	case "inspect":
		if flag.NArg() != 2 {
			return usage()
		}
		fp, err := service.ParseFingerprint(flag.Arg(1))
		if err != nil {
			return err
		}
		return runInspect(s, fp)
	case "verify":
		return runVerify(s)
	case "gc":
		return runGC(s)
	default:
		return usage()
	}
}

func runLs(s *store.Store) error {
	recs := s.Records()
	fmt.Printf("%-9s  %-16s  %8s  %s\n", "KIND", "KEY", "BYTES", "DEPENDS ON")
	for _, r := range recs {
		dep := ""
		if r.Kind == "shortcut" {
			dep = fmt.Sprintf("graph %s, partition %s", r.GraphFP, r.PartitionFP)
		}
		fmt.Printf("%-9s  %-16s  %8d  %s\n", r.Kind, r.Key, r.Bytes, dep)
	}
	st := s.OpenStats()
	fmt.Printf("%d records (%d graphs, %d partitions, %d shortcuts) in %d segments, %d bytes\n",
		len(recs), st.Graphs, st.Partitions, st.Shortcuts, st.Segments, st.Bytes)
	if st.CorruptSkipped > 0 || st.TruncatedBytes > 0 {
		fmt.Printf("repaired on open: %d corrupt records skipped, %d bytes truncated\n",
			st.CorruptSkipped, st.TruncatedBytes)
	}
	return nil
}

// runInspect decodes every record stored under fp (a fingerprint can in
// principle key a graph, a partition, and a shortcut at once — they are
// separate namespaces) and prints what it finds.
func runInspect(s *store.Store, fp service.Fingerprint) error {
	found := false
	for _, r := range s.Records() {
		if r.Key != fp {
			continue
		}
		found = true
		switch r.Kind {
		case "graph":
			g, ok, err := s.GetGraph(fp)
			if err != nil {
				return err
			}
			if ok {
				fmt.Printf("graph %s: %d nodes, %d edges (%d bytes on disk)\n",
					fp, g.NumNodes(), g.NumEdges(), r.Bytes)
			}
		case "partition":
			fmt.Printf("partition %s: %d bytes on disk (decoded against its graph during shortcut inspection)\n",
				fp, r.Bytes)
		case "shortcut":
			fmt.Printf("shortcut %s: built on graph %s, partition %s (%d bytes on disk)\n",
				fp, r.GraphFP, r.PartitionFP, r.Bytes)
			g, ok, err := s.GetGraph(r.GraphFP)
			if err != nil || !ok {
				fmt.Printf("  graph record unavailable (ok=%v err=%v); cannot decode further\n", ok, err)
				continue
			}
			parts, ok, err := s.GetPartition(r.PartitionFP, g)
			if err != nil || !ok {
				fmt.Printf("  partition record unavailable (ok=%v err=%v); cannot decode further\n", ok, err)
				continue
			}
			res, buildTime, ok, err := s.GetShortcut(fp, g, parts)
			if err != nil || !ok {
				fmt.Printf("  shortcut decode failed (ok=%v err=%v)\n", ok, err)
				continue
			}
			q := shortcut.Measure(res.Shortcut)
			fmt.Printf("  delta'=%d iterations=%d tree depth=%d, original build %v\n",
				res.Delta, res.Iterations, res.TreeDepth, buildTime)
			fmt.Printf("  parts=%d covered=%d congestion=%d dilation=%d blocks=%d\n",
				parts.NumParts(), q.CoveredParts, q.Congestion, q.Dilation, q.MaxBlocks)
		}
	}
	if !found {
		return fmt.Errorf("no record stored under %s", fp)
	}
	return nil
}

func runVerify(s *store.Store) error {
	st := s.OpenStats()
	if st.CorruptSkipped > 0 || st.TruncatedBytes > 0 {
		fmt.Printf("repaired on open: %d corrupt records skipped, %d bytes truncated\n",
			st.CorruptSkipped, st.TruncatedBytes)
	}
	problems := s.Verify()
	for _, p := range problems {
		fmt.Println("PROBLEM:", p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d of %d records failed verification",
			len(problems), st.Graphs+st.Partitions+st.Shortcuts)
	}
	fmt.Printf("store clean: %d records verified (%d graphs, %d partitions, %d shortcuts)\n",
		st.Graphs+st.Partitions+st.Shortcuts, st.Graphs, st.Partitions, st.Shortcuts)
	return nil
}

func runGC(s *store.Store) error {
	before := s.OpenStats()
	gc, err := s.GC()
	if err != nil {
		return err
	}
	fmt.Printf("gc: %d live records kept (%d bytes), %d index entries dropped\n",
		gc.LiveRecords, gc.LiveBytes, gc.DroppedRecords)
	fmt.Printf("gc: reclaimed %d of %d bytes, %d segment(s) remain\n",
		gc.ReclaimedBytes, before.Bytes, gc.Segments)
	return nil
}
