// Command locshortctl is the offline administration tool for a locshortd
// durable store directory (internal/store): list, inspect, verify, and
// compact the content-addressed records, and manage async job records,
// without a running daemon.
//
// Usage:
//
//	locshortctl -data DIR ls               list live records
//	locshortctl -data DIR inspect <fp>     decode one record in detail
//	locshortctl -data DIR verify           full integrity check (exit 1 on problems)
//	locshortctl -data DIR gc               compact segments, reclaim dead space
//	locshortctl -data DIR jobs ls          list async job records
//	locshortctl -data DIR jobs inspect <id>  decode one job (request, result, error)
//	locshortctl -data DIR jobs cancel <id>   cancel a queued/interrupted job offline
//	locshortctl -addr HOST:PORT top        live terminal view over a RUNNING daemon
//	locshortctl -addr HOST:PORT cluster status   ring membership, shares, reachability
//	locshortctl -addr HOST:PORT verify     remote integrity check over the peer API
//
// Three subcommands are online and need only -addr — no -data — because
// they never touch the store directory. `top` scrapes the daemon's
// /metrics on an interval (-interval, default 2s; -once for a single
// snapshot) and renders throughput, hit ratios, queue depths, and
// per-route latency quantiles from the deltas between scrapes.
// `cluster status` asks any node of a multi-node cluster for its ring
// config and renders the membership table: per-node vnode count,
// owned-range share (recomputed locally from the ring geometry), record
// inventory, reachability, and config-hash agreement. `verify` with -addr
// but no -data pulls every record over the /v1/peer/ API and re-verifies
// the payloads client-side — the remote counterpart of offline verify,
// trusting nothing the node claims about its own integrity.
//
// Every other subcommand works offline on the store directory, which is
// single-owner: run them against a stopped daemon or a copied directory,
// never against the directory of a live locshortd. -store names the
// backend that owns the directory (segment by default, objdir for the
// object-directory tier — match the daemon's -store flag); every offline
// subcommand works identically on any backend, except `gc`, which reports
// "not supported" on backends without a compaction step. -store=mem is
// rejected: an ephemeral backend has no on-disk state to administer.
// `jobs cancel` exists exactly for that offline window: a job accepted by
// a daemon that went down re-runs on the next warm start unless it is
// canceled here first. See OPERATIONS.md for the backup / GC / verify /
// jobs runbook.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"locshort/internal/jobs"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locshortctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: locshortctl -data DIR {ls | inspect <fp> | verify | gc | jobs {ls | inspect <id> | cancel <id>}} | locshortctl -addr HOST:PORT {top | cluster status | verify}")
}

func run() error {
	data := flag.String("data", "", "store directory (required for offline subcommands)")
	storeKind := flag.String("store", store.KindSegment, "storage backend of the -data directory: segment | objdir")
	addr := flag.String("addr", "", "daemon address for the top subcommand")
	interval := flag.Duration("interval", 2*time.Second, "top: delay between /metrics scrapes")
	once := flag.Bool("once", false, "top: print one snapshot and exit (no screen clearing)")
	flag.Parse()
	if flag.NArg() < 1 {
		return usage()
	}
	// top is the one subcommand that talks to a live daemon instead of an
	// offline store directory, so it routes before the -data check. Its
	// flags are re-parsed from the args after the subcommand word, so both
	// `locshortctl -addr A top` and `locshortctl top -addr A -once` work
	// (flag parsing stops at the first positional argument).
	if flag.Arg(0) == "top" {
		tf := flag.NewFlagSet("top", flag.ContinueOnError)
		taddr := tf.String("addr", *addr, "daemon address")
		tinterval := tf.Duration("interval", *interval, "delay between /metrics scrapes")
		tonce := tf.Bool("once", *once, "print one snapshot and exit (no screen clearing)")
		if err := tf.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		if *taddr == "" {
			return fmt.Errorf("top needs -addr HOST:PORT (the daemon's listen address)")
		}
		return runTop(normalizeAddr(*taddr), *tinterval, *tonce)
	}
	// `cluster status` talks to a live cluster node over its peer API, so
	// like top it routes before the -data check and re-parses its flags
	// (from after the two subcommand words, so trailing -addr works too).
	if flag.Arg(0) == "cluster" {
		if flag.NArg() < 2 || flag.Arg(1) != "status" {
			return usage()
		}
		cf := flag.NewFlagSet("cluster status", flag.ContinueOnError)
		caddr := cf.String("addr", *addr, "any cluster node's address")
		if err := cf.Parse(flag.Args()[2:]); err != nil {
			return err
		}
		if cf.NArg() != 0 {
			return usage()
		}
		if *caddr == "" {
			return fmt.Errorf("cluster status needs -addr HOST:PORT (any node of the cluster)")
		}
		return runClusterStatus(normalizeAddr(*caddr))
	}
	// `verify -addr` (without -data) is the remote variant: it pulls every
	// record over the peer API and re-verifies the payloads client-side.
	// With -data it stays the offline integrity check, handled below.
	if flag.Arg(0) == "verify" {
		vf := flag.NewFlagSet("verify", flag.ContinueOnError)
		vaddr := vf.String("addr", *addr, "cluster node address for remote verification")
		vdata := vf.String("data", *data, "store directory for offline verification")
		vstore := vf.String("store", *storeKind, "storage backend of the -data directory")
		if err := vf.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		if vf.NArg() != 0 {
			return usage()
		}
		if *vdata == "" && *vaddr != "" {
			return runRemoteVerify(normalizeAddr(*vaddr))
		}
		*data, *storeKind = *vdata, *vstore
	}
	if *data == "" {
		return usage()
	}
	if *storeKind == store.KindMem {
		return fmt.Errorf("-store=mem is ephemeral: there is no on-disk state to administer (use `verify -addr` against the running daemon instead)")
	}
	// Unlike the daemon, an admin tool must not conjure an empty store out
	// of a mistyped path and then report it "clean".
	if fi, err := os.Stat(*data); err != nil || !fi.IsDir() {
		return fmt.Errorf("store directory %s does not exist", *data)
	}
	s, err := store.OpenBackend(*storeKind, *data, store.Options{})
	if err != nil {
		return err
	}
	defer s.Close()

	switch cmd := flag.Arg(0); cmd {
	case "ls":
		return runLs(s)
	case "inspect":
		if flag.NArg() != 2 {
			return usage()
		}
		fp, err := service.ParseFingerprint(flag.Arg(1))
		if err != nil {
			return err
		}
		return runInspect(s, fp)
	case "verify":
		return runVerify(s)
	case "gc":
		return runGC(s)
	case "jobs":
		if flag.NArg() < 2 {
			return usage()
		}
		switch sub := flag.Arg(1); sub {
		case "ls":
			return runJobsLs(s)
		case "inspect", "cancel":
			if flag.NArg() != 3 {
				return usage()
			}
			id, err := jobs.ParseID(flag.Arg(2))
			if err != nil {
				return err
			}
			if sub == "inspect" {
				return runJobsInspect(s, id)
			}
			return runJobsCancel(s, id)
		default:
			return usage()
		}
	default:
		return usage()
	}
}

func runLs(s store.Backend) error {
	recs := s.Records()
	fmt.Printf("%-9s  %-16s  %8s  %s\n", "KIND", "KEY", "BYTES", "DEPENDS ON")
	for _, r := range recs {
		dep := ""
		if r.Kind == "shortcut" {
			dep = fmt.Sprintf("graph %s, partition %s", r.GraphFP, r.PartitionFP)
		}
		fmt.Printf("%-9s  %-16s  %8d  %s\n", r.Kind, r.Key, r.Bytes, dep)
	}
	st := s.OpenStats()
	layout := ""
	if st.Segments > 0 {
		layout = fmt.Sprintf(" in %d segments", st.Segments)
	}
	fmt.Printf("%d records (%d graphs, %d partitions, %d shortcuts, %d jobs)%s, %d bytes\n",
		len(recs), st.Graphs, st.Partitions, st.Shortcuts, st.Jobs, layout, st.Bytes)
	if st.CorruptSkipped > 0 || st.TruncatedBytes > 0 {
		fmt.Printf("repaired on open: %d corrupt records skipped, %d bytes truncated\n",
			st.CorruptSkipped, st.TruncatedBytes)
	}
	return nil
}

// runInspect decodes every record stored under fp (a fingerprint can in
// principle key a graph, a partition, and a shortcut at once — they are
// separate namespaces) and prints what it finds.
func runInspect(s store.Backend, fp service.Fingerprint) error {
	found := false
	for _, r := range s.Records() {
		if r.Key != fp {
			continue
		}
		found = true
		switch r.Kind {
		case "graph":
			g, ok, err := s.GetGraph(fp)
			if err != nil {
				return err
			}
			if ok {
				fmt.Printf("graph %s: %d nodes, %d edges (%d bytes on disk)\n",
					fp, g.NumNodes(), g.NumEdges(), r.Bytes)
			}
		case "partition":
			fmt.Printf("partition %s: %d bytes on disk (decoded against its graph during shortcut inspection)\n",
				fp, r.Bytes)
		case "shortcut":
			fmt.Printf("shortcut %s: built on graph %s, partition %s (%d bytes on disk)\n",
				fp, r.GraphFP, r.PartitionFP, r.Bytes)
			g, ok, err := s.GetGraph(r.GraphFP)
			if err != nil || !ok {
				fmt.Printf("  graph record unavailable (ok=%v err=%v); cannot decode further\n", ok, err)
				continue
			}
			parts, ok, err := s.GetPartition(r.PartitionFP, g)
			if err != nil || !ok {
				fmt.Printf("  partition record unavailable (ok=%v err=%v); cannot decode further\n", ok, err)
				continue
			}
			res, buildTime, ok, err := s.GetShortcut(fp, g, parts)
			if err != nil || !ok {
				fmt.Printf("  shortcut decode failed (ok=%v err=%v)\n", ok, err)
				continue
			}
			q := shortcut.Measure(res.Shortcut)
			fmt.Printf("  delta'=%d iterations=%d tree depth=%d, original build %v\n",
				res.Delta, res.Iterations, res.TreeDepth, buildTime)
			fmt.Printf("  parts=%d covered=%d congestion=%d dilation=%d blocks=%d\n",
				parts.NumParts(), q.CoveredParts, q.Congestion, q.Dilation, q.MaxBlocks)
		}
	}
	if !found {
		return fmt.Errorf("no record stored under %s", fp)
	}
	return nil
}

func runVerify(s store.Backend) error {
	st := s.OpenStats()
	if st.CorruptSkipped > 0 || st.TruncatedBytes > 0 {
		fmt.Printf("repaired on open: %d corrupt records skipped, %d bytes truncated\n",
			st.CorruptSkipped, st.TruncatedBytes)
	}
	problems := s.Verify()
	for _, p := range problems {
		fmt.Println("PROBLEM:", p)
	}
	total := st.Graphs + st.Partitions + st.Shortcuts + st.Jobs
	if len(problems) > 0 {
		return fmt.Errorf("%d of %d records failed verification", len(problems), total)
	}
	fmt.Printf("store clean: %d records verified (%d graphs, %d partitions, %d shortcuts, %d jobs)\n",
		total, st.Graphs, st.Partitions, st.Shortcuts, st.Jobs)
	return nil
}

// loadJobs decodes every live job record, oldest first.
func loadJobs(s store.Backend) ([]jobs.Record, error) {
	var recs []jobs.Record
	err := s.EachJob(func(id uint64, payload []byte) error {
		rec, err := jobs.DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("job %016x: %w", id, err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].CreatedNs < recs[j].CreatedNs })
	return recs, nil
}

func runJobsLs(s store.Backend) error {
	recs, err := loadJobs(s)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s  %-9s  %-8s  %8s  %-24s  %s\n",
		"ID", "KIND", "STATE", "ATTEMPTS", "CREATED", "NOTE")
	counts := map[jobs.State]int{}
	for _, r := range recs {
		counts[r.State]++
		note := r.Error
		switch {
		case r.State == jobs.Done && r.FinishedNs > r.StartedNs && r.StartedNs > 0:
			note = fmt.Sprintf("ran %v", time.Duration(r.FinishedNs-r.StartedNs).Round(time.Millisecond))
		case r.CancelRequested && !r.State.Terminal():
			note = "cancel pending"
		}
		fmt.Printf("%-16s  %-9s  %-8s  %8d  %-24s  %s\n",
			r.ID, r.Kind, r.State, r.Attempts,
			time.Unix(0, r.CreatedNs).UTC().Format(time.RFC3339), note)
	}
	fmt.Printf("%d jobs (%d queued, %d running, %d done, %d failed, %d canceled)\n",
		len(recs), counts[jobs.Queued], counts[jobs.Running],
		counts[jobs.Done], counts[jobs.Failed], counts[jobs.Canceled])
	if n := counts[jobs.Queued] + counts[jobs.Running]; n > 0 {
		fmt.Printf("note: %d non-terminal job(s) will be re-enqueued on the daemon's next warm start\n", n)
	}
	return nil
}

func runJobsInspect(s store.Backend, id jobs.ID) error {
	payload, ok, err := s.GetJob(uint64(id))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no job record stored under %s", id)
	}
	r, err := jobs.DecodeRecord(payload)
	if err != nil {
		return err
	}
	ts := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	fmt.Printf("job %s: kind=%s state=%s attempts=%d cancel_requested=%v\n",
		r.ID, r.Kind, r.State, r.Attempts, r.CancelRequested)
	fmt.Printf("  created  %s\n  started  %s\n  finished %s\n",
		ts(r.CreatedNs), ts(r.StartedNs), ts(r.FinishedNs))
	if len(r.Request) > 0 {
		fmt.Printf("  request  %s\n", r.Request)
	}
	if len(r.Result) > 0 {
		fmt.Printf("  result   %s\n", r.Result)
	}
	if r.Error != "" {
		fmt.Printf("  error    %s\n", r.Error)
	}
	return nil
}

// runJobsCancel durably cancels a non-terminal job record so the next
// daemon warm start does not re-run it.
func runJobsCancel(s store.Backend, id jobs.ID) error {
	payload, ok, err := s.GetJob(uint64(id))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no job record stored under %s", id)
	}
	r, err := jobs.DecodeRecord(payload)
	if err != nil {
		return err
	}
	if r.State.Terminal() {
		return fmt.Errorf("job %s already %s", id, r.State)
	}
	was := r.State
	r.CancelRequested = true
	r.State = jobs.Canceled
	r.FinishedNs = time.Now().UnixNano()
	out, err := jobs.EncodeRecord(r)
	if err != nil {
		return err
	}
	if err := s.PutJob(uint64(id), out); err != nil {
		return err
	}
	fmt.Printf("job %s canceled (was %s); it will not re-run on warm start\n", id, was)
	return nil
}

func runGC(s store.Backend) error {
	// GC is an optional capability (store.Compactor): an ephemeral backend
	// reclaims space eagerly and has nothing to compact.
	c, ok := s.(store.Compactor)
	if !ok {
		fmt.Println("gc: not supported by this backend (it reclaims space as records are deleted); nothing to do")
		return nil
	}
	before := s.OpenStats()
	gc, err := c.GC()
	if err != nil {
		return err
	}
	fmt.Printf("gc: %d live records kept (%d bytes), %d index entries dropped\n",
		gc.LiveRecords, gc.LiveBytes, gc.DroppedRecords)
	layout := ""
	if gc.Segments > 0 {
		layout = fmt.Sprintf(", %d segment(s) remain", gc.Segments)
	}
	fmt.Printf("gc: reclaimed %d of %d bytes%s\n", gc.ReclaimedBytes, before.Bytes, layout)
	return nil
}
