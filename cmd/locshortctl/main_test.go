package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/cluster"
	"locshort/internal/jobs"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"

	"net/http/httptest"
)

// ctlBackend is one backend kind the admin subcommands run against.
type ctlBackend struct {
	name  string
	open  func(t *testing.T) store.Backend
	hasGC bool
}

func ctlBackends() []ctlBackend {
	return []ctlBackend{
		{
			name: "segment",
			open: func(t *testing.T) store.Backend {
				s, err := store.Open(t.TempDir(), store.Options{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			hasGC: true,
		},
		{
			name: "objdir",
			open: func(t *testing.T) store.Backend {
				s, err := store.OpenObjDir(t.TempDir(), store.Options{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			hasGC: true,
		},
		{
			name:  "mem",
			open:  func(t *testing.T) store.Backend { return store.OpenMem() },
			hasGC: false,
		},
	}
}

// populate stores one graph, one shortcut built on it, and one job record.
func populate(t *testing.T, b store.Backend) {
	t.Helper()
	g, _, err := cli.ParseGraph("grid:5x5", 1)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := cli.ParsePartition(g, "blobs:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.Build(g, parts, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gfp := service.FingerprintGraph(g)
	key := service.ShortcutKey(gfp, parts, shortcut.Options{})
	if err := b.PutGraph(gfp, g); err != nil {
		t.Fatal(err)
	}
	if err := b.PutShortcut(key, gfp, parts, shortcut.Options{}, res, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	payload, err := jobs.EncodeRecord(jobs.Record{ID: 7, Kind: "build", State: jobs.Done})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutJob(7, payload); err != nil {
		t.Fatal(err)
	}
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), ferr
}

// TestAdminSubcommandsPerBackend drives ls, verify, jobs ls, and gc through
// the store.Backend contract on every backend kind.
func TestAdminSubcommandsPerBackend(t *testing.T) {
	for _, bk := range ctlBackends() {
		t.Run(bk.name, func(t *testing.T) {
			b := bk.open(t)
			defer b.Close()
			populate(t, b)

			out, err := capture(t, func() error { return runLs(b) })
			if err != nil {
				t.Fatalf("ls: %v", err)
			}
			for _, want := range []string{"graph", "partition", "shortcut", "1 jobs)"} {
				if !strings.Contains(out, want) {
					t.Errorf("ls output missing %q:\n%s", want, out)
				}
			}

			out, err = capture(t, func() error { return runVerify(b) })
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !strings.Contains(out, "store clean") {
				t.Errorf("verify output not clean:\n%s", out)
			}

			out, err = capture(t, func() error { return runJobsLs(b) })
			if err != nil {
				t.Fatalf("jobs ls: %v", err)
			}
			if !strings.Contains(out, "1 done") {
				t.Errorf("jobs ls output missing the done job:\n%s", out)
			}

			out, err = capture(t, func() error { return runGC(b) })
			if err != nil {
				t.Fatalf("gc: %v", err)
			}
			if bk.hasGC {
				if !strings.Contains(out, "gc: reclaimed") {
					t.Errorf("gc output missing summary:\n%s", out)
				}
			} else if !strings.Contains(out, "not supported") {
				t.Errorf("gc on a backend without a compactor should report not supported:\n%s", out)
			}

			// The store must still verify clean after GC (or the no-op).
			if _, err := capture(t, func() error { return runVerify(b) }); err != nil {
				t.Fatalf("verify after gc: %v", err)
			}
		})
	}
}

// TestRemoteVerifyPerBackend serves each backend's records over the peer
// API with httptest and re-verifies them client-side, the way
// `locshortctl verify -addr` does against a live node.
func TestRemoteVerifyPerBackend(t *testing.T) {
	for _, bk := range ctlBackends() {
		t.Run(bk.name, func(t *testing.T) {
			b := bk.open(t)
			defer b.Close()
			populate(t, b)

			cl, err := cluster.New(cluster.Config{
				Self:  "node:1",
				Nodes: []string{"node:1"},
				Store: b,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(cl.Handler())
			defer srv.Close()
			addr := strings.TrimPrefix(srv.URL, "http://")

			out, err := capture(t, func() error { return runRemoteVerify(addr) })
			if err != nil {
				t.Fatalf("remote verify: %v", err)
			}
			if !strings.Contains(out, "clean") {
				t.Errorf("remote verify output not clean:\n%s", out)
			}
		})
	}
}
