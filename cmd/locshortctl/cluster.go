package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"locshort/internal/cluster"
	"locshort/internal/service"
	"locshort/internal/store"
)

// peerClient is the tiny HTTP client over a daemon's /v1/peer/ API. The
// subcommands below are read-only consumers of the same wire types the
// nodes exchange among themselves, so anything locshortctl can display, a
// peer can also see — there is no privileged admin channel to secure.
type peerClient struct {
	hc *http.Client
}

func newPeerClient(timeout time.Duration) *peerClient {
	return &peerClient{hc: &http.Client{Timeout: timeout}}
}

// get fetches one peer API resource. A non-2xx status decodes the JSON
// error envelope so failures read like the daemon's own message.
func (pc *peerClient) get(addr, path string, out any) error {
	resp, err := pc.hc.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("GET %s: %s (status %d)", path, envelope.Error, resp.StatusCode)
		}
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runClusterStatus renders the ring as seen from one node: membership,
// vnode counts, owned-range share, per-node record inventory, and
// reachability. The ring geometry is recomputed locally from the reported
// (nodes, vnodes) config — the same deterministic construction every node
// runs — so the SHARE column is locshortctl's own math, not a node's claim.
func runClusterStatus(addr string) error {
	pc := newPeerClient(5 * time.Second)
	var info cluster.RingInfo
	if err := pc.get(addr, "/v1/peer/ring", &info); err != nil {
		return fmt.Errorf("contact node %s: %w (is it running in cluster mode?)", addr, err)
	}
	ring, err := cluster.NewRing(info.Nodes, info.VNodes)
	if err != nil {
		return fmt.Errorf("node %s reports an invalid ring config: %w", addr, err)
	}

	fmt.Printf("cluster as seen from %s: %d nodes, %d vnodes/node, replication %d, config %s\n\n",
		info.Self, len(info.Nodes), info.VNodes, info.Replication, info.ConfigHash)

	w := len("NODE")
	for _, n := range info.Nodes {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Printf("%-*s  %6s  %6s  %9s  %6s  %-9s\n",
		w, "NODE", "VNODES", "SHARE", "SHORTCUTS", "GRAPHS", "REACHABLE")
	reachable, drifted := 0, 0
	for _, node := range info.Nodes {
		share := fmt.Sprintf("%.1f%%", 100*ring.Share(node))
		var pi cluster.RingInfo
		if err := pc.get(node, "/v1/peer/ring", &pi); err != nil {
			fmt.Printf("%-*s  %6d  %6s  %9s  %6s  no (%v)\n",
				w, node, info.VNodes, share, "-", "-", err)
			continue
		}
		reachable++
		status := "yes"
		if pi.ConfigHash != info.ConfigHash {
			status = "yes (CONFIG DRIFT)"
			drifted++
		}
		fmt.Printf("%-*s  %6d  %6s  %9d  %6d  %-9s\n",
			w, node, pi.VNodes, share, pi.Shortcuts, pi.Graphs, status)
	}
	fmt.Printf("\n%d/%d nodes reachable\n", reachable, len(info.Nodes))
	if drifted > 0 {
		return fmt.Errorf("%d node(s) disagree with %s's ring config — a drifted node holds /readyz at 503 until the configs converge", drifted, info.Self)
	}
	return nil
}

// runRemoteVerify is the online counterpart of `verify -data`: it pulls the
// node's full inventory over the peer API and re-verifies every record
// client-side — graphs re-hashed to their fingerprints, shortcut records
// decoded against their own dependency payloads with the key re-derived
// from (graph, partition, options). The daemon is not trusted to verify
// itself: a node serving corrupt payloads fails here even if its local
// `verify` would pass against different bytes.
func runRemoteVerify(addr string) error {
	pc := newPeerClient(30 * time.Second)
	var inv cluster.Inventory
	if err := pc.get(addr, "/v1/peer/inventory", &inv); err != nil {
		return fmt.Errorf("contact node %s: %w (is it running in cluster mode?)", addr, err)
	}

	problems := 0
	problem := func(format string, args ...any) {
		problems++
		fmt.Printf("PROBLEM: "+format+"\n", args...)
	}
	for _, hexFP := range inv.Graphs {
		fp, err := service.ParseFingerprint(hexFP)
		if err != nil {
			problem("inventory lists unparseable graph fingerprint %q: %v", hexFP, err)
			continue
		}
		var gp cluster.GraphPayload
		if err := pc.get(addr, "/v1/peer/graphs/"+hexFP, &gp); err != nil {
			problem("graph %s: %v", hexFP, err)
			continue
		}
		if _, err := store.DecodeGraphPayload(gp.Payload, fp); err != nil {
			problem("graph %s: %v", hexFP, err)
		}
	}
	for _, e := range inv.Shortcuts {
		rec, err := fetchPeerRecord(pc, addr, e.Key)
		if err != nil {
			problem("shortcut %s: %v", e.Key, err)
			continue
		}
		// The record must be the one the inventory promised…
		if rec.Key.String() != e.Key || rec.GraphFP.String() != e.Graph ||
			rec.PartitionFP.String() != e.Partition {
			problem("shortcut %s: record identities (%s, %s, %s) differ from inventory (%s, %s)",
				e.Key, rec.Key, rec.GraphFP, rec.PartitionFP, e.Graph, e.Partition)
			continue
		}
		// …and every payload must hash back to the identity it claims.
		if _, _, _, _, err := store.VerifyPeerRecord(rec); err != nil {
			problem("shortcut %s: %v", e.Key, err)
		}
	}

	total := len(inv.Graphs) + len(inv.Shortcuts)
	if problems > 0 {
		return fmt.Errorf("%d of %d records failed remote verification", problems, total)
	}
	fmt.Printf("node %s clean: %d records verified remotely (%d graphs, %d shortcuts)\n",
		addr, total, len(inv.Graphs), len(inv.Shortcuts))
	return nil
}

// fetchPeerRecord pulls one shortcut record and parses its wire identities
// into store fingerprints, without trusting any of them yet.
func fetchPeerRecord(pc *peerClient, addr, key string) (store.PeerRecord, error) {
	var rec store.PeerRecord
	var wire cluster.Record
	if err := pc.get(addr, "/v1/peer/records/"+key, &wire); err != nil {
		return rec, err
	}
	var err error
	if rec.Key, err = service.ParseFingerprint(wire.Key); err != nil {
		return rec, fmt.Errorf("record key: %w", err)
	}
	if rec.GraphFP, err = service.ParseFingerprint(wire.Graph); err != nil {
		return rec, fmt.Errorf("record graph: %w", err)
	}
	if rec.PartitionFP, err = service.ParseFingerprint(wire.Partition); err != nil {
		return rec, fmt.Errorf("record partition: %w", err)
	}
	rec.GraphPayload = wire.GraphPayload
	rec.PartitionPayload = wire.PartitionPayload
	rec.ShortcutPayload = wire.ShortcutPayload
	return rec, nil
}
