// Command shortcutbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per quantitative claim of the paper (theorems, lemmas,
// corollaries) plus design ablations.
//
// Usage:
//
//	shortcutbench [-exp E1,E4] [-quick] [-seed N] [-list]
//
// Without -exp, every registered experiment runs in order. Output is
// GitHub-flavored markdown on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locshort/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shortcutbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		quick    = flag.Bool("quick", false, "reduced instance sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		listOnly = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var exps []bench.Experiment
	if *expFlag == "" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, e)
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	violations := 0
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		violations += len(tab.Violations())
	}
	if violations > 0 {
		return fmt.Errorf("%d bound violations — see NO cells above", violations)
	}
	return nil
}
