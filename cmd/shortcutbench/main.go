// Command shortcutbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per quantitative claim of the paper (theorems, lemmas,
// corollaries) plus design ablations.
//
// Usage:
//
//	shortcutbench [-exp E1,E4] [-quick] [-seed N] [-list] [-json] [-out F]
//
// Without -exp, every registered experiment runs in order ("-exp none"
// runs none). Output is GitHub-flavored markdown on stdout. With -json, a
// machine-readable benchmark report (family, n, congestion, dilation,
// build ns/op) is additionally written to -out, defaulting to
// BENCH_<timestamp>.json, so the performance trajectory is tracked across
// PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locshort/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shortcutbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", `comma-separated experiment IDs (default: all; "none": skip)`)
		quick    = flag.Bool("quick", false, "reduced instance sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		listOnly = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "write a machine-readable benchmark report")
		outPath  = flag.String("out", "", "report path (default BENCH_<timestamp>.json)")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var exps []bench.Experiment
	switch *expFlag {
	case "":
		exps = bench.All()
	case "none":
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, e)
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	violations := 0
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		violations += len(tab.Violations())
	}
	if *jsonOut {
		rep, err := bench.JSONReport(cfg, time.Now())
		if err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		path := *outPath
		if path == "" {
			path = rep.DefaultReportPath()
		}
		if err := rep.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
		if o := rep.ObsOverhead; o != nil {
			fmt.Printf("obs overhead on %s cold builds: staged %v vs plain %v (%+.2f%%)\n",
				o.Family, time.Duration(o.StagedNsPerOp).Round(10*time.Microsecond),
				time.Duration(o.PlainNsPerOp).Round(10*time.Microsecond), o.OverheadPct)
			// The observability acceptance gate: stage collection must stay
			// inside ~2% of an uninstrumented cold build. Quick-mode
			// instances are too small to time the effect, so only the full
			// run enforces it.
			if !*quick && o.OverheadPct > bench.ObsOverheadMaxPct {
				return fmt.Errorf("stage-collection overhead %.2f%% exceeds the %.1f%% bound",
					o.OverheadPct, bench.ObsOverheadMaxPct)
			}
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d bound violations — see NO cells above", violations)
	}
	return nil
}
