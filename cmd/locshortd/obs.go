package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"locshort/internal/cluster"
	"locshort/internal/obs"
	"locshort/internal/store"
)

// serverOptions carries the observability wiring into newServer. The zero
// value is fully functional (tests construct servers without any of it):
// every field is optional and nil-guarded.
type serverOptions struct {
	reg    *obs.Registry // nil: GET /metrics serves 404, no HTTP metrics
	tracer *obs.Tracer   // nil: GET /v1/traces serves an empty list
	logger *obs.Logger   // nil: no request log lines
	// slowRequest escalates a request log line to warn level — with the
	// build's stage breakdown attached — when the request takes at least
	// this long. Zero disables the escalation.
	slowRequest time.Duration
	// ready gates the /v1/ API: until it reports true, /v1/ requests are
	// rejected with 503 and GET /readyz stays not-ready. nil: always ready.
	// main flips it after warm start, job recovery, and dispatcher start,
	// so a restarting daemon never serves cache misses it is about to
	// warm-fill, and CI can poll /readyz instead of sleeping. In cluster
	// mode main also folds in the config-drift guard, so a node booted
	// with a disagreeing ring config never reports ready.
	ready func() bool
	// cluster enables multi-node mode (see server.cl); nil single-node.
	cluster *cluster.Cluster
	// store is the durable store behind the engine (nil without -data);
	// the binary /v1/shortcuts path serves stored payloads straight from it.
	store store.Backend
}

// errStarting is the 503 body served on /v1/ routes before readiness.
var errStarting = errors.New("starting: warm start and job recovery in progress")

// httpMetrics is the per-route HTTP instrumentation: a latency histogram
// per route pattern and a counter per (route, status code) pair. Both are
// cached under an RWMutex keyed by comparable values, so steady-state
// requests take two read-locked map hits and touch only atomics — the
// Registry (which allocates a Labels map per lookup) is consulted only the
// first time a (route, code) appears.
type httpMetrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge

	mu     sync.RWMutex
	durs   map[string]*obs.Histogram
	counts map[routeCode]*obs.Counter
}

type routeCode struct {
	route string
	code  int
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	if reg == nil {
		return nil
	}
	return &httpMetrics{
		reg: reg,
		inFlight: reg.Gauge("locshort_http_in_flight",
			"Requests currently being served.", nil),
		durs:   make(map[string]*obs.Histogram),
		counts: make(map[routeCode]*obs.Counter),
	}
}

func (m *httpMetrics) observe(route string, code int, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.RLock()
	h := m.durs[route]
	c := m.counts[routeCode{route, code}]
	m.mu.RUnlock()
	if h == nil || c == nil {
		m.mu.Lock()
		if h = m.durs[route]; h == nil {
			h = m.reg.Histogram("locshort_http_request_seconds",
				"Wall time of HTTP requests, by route pattern.",
				nil, obs.Labels{"route": route})
			m.durs[route] = h
		}
		key := routeCode{route, code}
		if c = m.counts[key]; c == nil {
			c = m.reg.Counter("locshort_http_requests_total",
				"HTTP requests served, by route pattern and status code.",
				obs.Labels{"route": route, "code": strconv.Itoa(code)})
			m.counts[key] = c
		}
		m.mu.Unlock()
	}
	h.Observe(d)
	c.Inc()
}

// reqInfo is the per-request annotation record: the middleware plants one
// in the request context and handlers deep in the shared execution path
// (buildShortcut) fill in what they learned, so the request log line can
// say which graph and shortcut a request touched and which latency class
// served it. One goroutine owns a request, so the fields are unsynchronized.
type reqInfo struct {
	graph    string // graph fingerprint
	shortcut string // shortcut key
	source   string // "cache" | "store" | "built"
}

type reqInfoKey struct{}

// annotate runs fn on the context's reqInfo, if the request came through
// the instrumented HTTP path. Async dispatcher contexts carry no reqInfo,
// so job re-execution annotates nothing.
func annotate(ctx context.Context, fn func(*reqInfo)) {
	if ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		fn(ri)
	}
}

// statusRecorder captures the response status for the request log and the
// per-(route, code) counters. A handler that never calls WriteHeader
// implicitly wrote 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the whole mux: readiness gate, request ID, timing,
// per-route metrics, and one structured log line per request. It reads
// r.Pattern after the mux ran, so the route label is the registered
// pattern ("POST /v1/shortcuts"), never the raw URL — label cardinality
// stays bounded by the route table.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.ready != nil && !s.ready() && strings.HasPrefix(r.URL.Path, "/v1/") &&
			!strings.HasPrefix(r.URL.Path, "/v1/peer/") {
			// /v1/peer/ stays open while not ready: peers must be able to
			// compare ring configs (the drift that may be holding readiness
			// down clears only through this path) and pull records from a
			// warming node.
			s.httpError(w, http.StatusServiceUnavailable, errStarting)
			return
		}
		// The request ID exists for the log line; without a logger the
		// crypto/rand read per request is pure overhead on the warm path.
		id := ""
		if s.logger != nil {
			id = obs.NewRequestID()
		}
		start := time.Now()
		ri := &reqInfo{}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if s.metrics != nil {
			s.metrics.inFlight.Add(1)
		}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		route := r.Pattern // set by the mux during ServeHTTP
		if route == "" {
			route = "unmatched"
		}
		if s.metrics != nil {
			s.metrics.inFlight.Add(-1)
			s.metrics.observe(route, rec.status, dur)
		}
		s.logRequest(id, route, rec.status, dur, ri)
	})
}

// logRequest emits the structured request line. Requests at or over the
// slow-request threshold escalate to warn and carry the build's per-stage
// breakdown, so a slow cold build is diagnosable from the log alone.
func (s *server) logRequest(id, route string, status int, dur time.Duration, ri *reqInfo) {
	if s.logger == nil {
		return
	}
	kv := make([]any, 0, 16)
	kv = append(kv, "id", id, "route", route, "code", status, "dur", dur)
	if ri.graph != "" {
		kv = append(kv, "graph", ri.graph)
	}
	if ri.shortcut != "" {
		kv = append(kv, "shortcut", ri.shortcut)
	}
	if ri.source != "" {
		kv = append(kv, "source", ri.source)
	}
	if s.slowRequest > 0 && dur >= s.slowRequest {
		if stages := s.stageSummary(ri.shortcut); stages != "" {
			kv = append(kv, "stages", stages)
		}
		s.logger.Warn("slow_request", kv...)
		return
	}
	s.logger.Info("request", kv...)
}

// stageSummary renders the span breakdown of the most recent retained
// trace for the given shortcut key ("choose_root=1.2ms bfs_tree=..."),
// or "" when no trace for it is retained. Slow requests are rare, so a
// linear scan over the recent ring is fine.
func (s *server) stageSummary(shortcut string) string {
	if s.tracer == nil || shortcut == "" {
		return ""
	}
	for _, t := range s.tracer.Recent(0) {
		if t.Fingerprint != shortcut {
			continue
		}
		parts := make([]string, len(t.Spans))
		for i, sp := range t.Spans {
			parts[i] = sp.Name + "=" + time.Duration(sp.DurNs).String()
		}
		return strings.Join(parts, " ")
	}
	return ""
}

// handleMetrics serves the Prometheus text exposition of every registered
// family: engine, builder stages, async jobs, durable store, and this
// HTTP layer. See OPERATIONS.md §Monitoring for the catalog.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obsReg == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obsReg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log.
		if s.logger != nil {
			s.logger.Error("metrics_write", "err", err.Error())
		}
	}
}

// handleTraces serves the retained build traces, newest first. ?n= bounds
// the count (default: everything retained).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 0 {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad n %q: want a non-negative integer", ns))
			return
		}
		n = v
	}
	traces := []*obs.Trace{}
	if s.tracer != nil {
		traces = s.tracer.Recent(n)
	}
	s.writeJSON(w, map[string]any{"traces": traces})
}

// handleReadyz is the readiness probe: 200 once warm start, job recovery,
// and the async dispatchers are up; 503 before. Distinct from /healthz
// (liveness), which is 200 the moment the listener binds.
// In cluster mode the probe also fails while the ring configuration
// disagrees with a reachable peer's — a half-edited cluster rollout takes
// the node out of rotation instead of serving a split ring.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.cl != nil && s.cl.Drift() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: ring config drift")
		return
	}
	if s.ready != nil && !s.ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "starting")
		return
	}
	fmt.Fprintln(w, "ready")
}
