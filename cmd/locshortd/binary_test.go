package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"locshort/internal/cli"
	"locshort/internal/jobs"
	"locshort/internal/service"
	"locshort/internal/store"
	"locshort/internal/wire"
)

// doBinary performs an HTTP request with the binary content negotiation
// headers and returns the response; body is optional.
func doBinary(t *testing.T, method, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	if body != nil {
		req.Header.Set("Content-Type", wire.ContentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBinaryProtocolEndToEnd drives the full binary warm path against a
// store-backed daemon and checks byte equivalence with the JSON protocol:
// same fingerprints, same keys, and a response payload that decodes and
// re-verifies as the exact shortcut the JSON API describes.
func TestBinaryProtocolEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	srv, h := newServer(eng, jobs.Config{Store: st}, serverOptions{store: st})
	srv.mgr.Start()
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.mgr.Close()
		eng.Close()
		st.Close()
	})

	// Binary graph ingest: the body is the canonical payload; the ack
	// carries the fingerprint in headers and ETag, with an empty body.
	g, _, err := cli.ParseGraph("grid:10x10", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := store.EncodeGraphPayload(g)
	fp := service.FingerprintBytes(payload[1:])
	resp := doBinary(t, "POST", ts.URL+"/v1/graphs", payload, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(wire.HeaderGraph); got != fp.String() {
		t.Fatalf("ingest fingerprint %q, want %q", got, fp)
	}
	if got := resp.Header.Get("ETag"); got != `"`+fp.String()+`"` {
		t.Errorf("ETag %q, want quoted fingerprint", got)
	}
	resp.Body.Close()

	// JSON ingest of the same graph must agree on the fingerprint — the
	// two protocols address identical content identically.
	var jg struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:10x10"}, http.StatusOK, &jg)
	if jg.Graph != fp.String() {
		t.Fatalf("JSON ingest fingerprint %q, binary %q", jg.Graph, fp)
	}

	// Repeat ingest with If-None-Match short-circuits to 304 before the
	// body uploads.
	resp = doBinary(t, "POST", ts.URL+"/v1/graphs", payload,
		map[string]string{"If-None-Match": `"` + fp.String() + `"`})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("dedupe probe: status %d, want 304", resp.StatusCode)
	}
	resp.Body.Close()

	// Binary shortcut request + binary response.
	breq := wire.AppendShortcutRequest(nil, wire.ShortcutRequest{
		Graph: fp, Partition: "blobs:10", Seed: 3,
	})
	resp = doBinary(t, "POST", ts.URL+"/v1/shortcuts", breq, nil)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("binary shortcut: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsBinary(ct) {
		t.Fatalf("response Content-Type %q", ct)
	}
	key, err := service.ParseFingerprint(resp.Header.Get(wire.HeaderKey))
	if err != nil {
		t.Fatalf("bad %s header: %v", wire.HeaderKey, err)
	}
	if got := resp.Header.Get(wire.HeaderGraph); got != fp.String() {
		t.Errorf("shortcut graph header %q, want %q", got, fp)
	}
	if src := resp.Header.Get(wire.HeaderSource); src != "built" {
		t.Errorf("first build source %q, want built", src)
	}
	binPayload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The payload decodes against the representative graph and the decode
	// re-derives the key from the stored inputs — a tampered payload
	// cannot survive this.
	p, err := cli.ParsePartition(g, "blobs:10", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := store.DecodeShortcutPayload(binPayload, key, g, p)
	if err != nil {
		t.Fatalf("binary payload does not verify: %v", err)
	}
	if res.Shortcut == nil {
		t.Fatal("decoded result has no shortcut")
	}

	// JSON request for the same build must return the same key, and the
	// second binary request is a warm hit ("cache").
	var js struct {
		Shortcut string `json:"shortcut"`
		Graph    string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": fp.String(), "partition": "blobs:10", "seed": 3},
		http.StatusOK, &js)
	if js.Shortcut != key.String() {
		t.Fatalf("JSON key %q, binary key %q", js.Shortcut, key)
	}
	resp = doBinary(t, "POST", ts.URL+"/v1/shortcuts", breq, nil)
	warmPayload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if src := resp.Header.Get(wire.HeaderSource); src != "cache" {
		t.Errorf("repeat source %q, want cache", src)
	}
	if !bytes.Equal(warmPayload, binPayload) {
		t.Error("warm response payload differs from cold response payload")
	}

	// A JSON-Accept client sending a binary request body still gets JSON.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/shortcuts", bytes.NewReader(breq))
	req.Header.Set("Content-Type", wire.ContentType)
	mixed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Body.Close()
	if mixed.StatusCode != http.StatusOK {
		t.Fatalf("binary-request/JSON-response: status %d", mixed.StatusCode)
	}
	if ct := mixed.Header.Get("Content-Type"); wire.IsBinary(ct) {
		t.Errorf("mixed request got binary response despite no Accept: %q", ct)
	}
}

// TestBinaryGraphIngestRejectsGarbage asserts the raw ingest path keeps
// the validation the JSON path gets from its parser: corrupt payloads and
// bad If-None-Match fingerprints are 4xx, never 5xx or silent acceptance.
func TestBinaryGraphIngestRejectsGarbage(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1}, jobs.Config{})
	g, _, err := cli.ParseGraph("cycle:9", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := store.EncodeGraphPayload(g)

	// Self-loop: zero out the first edge's v so u == v == 0.
	selfLoop := append([]byte{}, payload...)
	copy(selfLoop[1+16+8:1+16+16], make([]byte, 8))
	// Unsorted: swap the first two 24-byte edge entries out of canonical
	// order.
	unsorted := append([]byte{}, payload...)
	e0, e1 := 1+16, 1+16+24
	copy(unsorted[e0:e0+24], payload[e1:e1+24])
	copy(unsorted[e1:e1+24], payload[e0:e0+24])
	for name, body := range map[string][]byte{
		"empty":       {},
		"version":     {0x7f},
		"truncated":   payload[:len(payload)-3],
		"self-loop":   selfLoop,
		"unsorted":    unsorted,
		"only-header": payload[:17],
	} {
		resp := doBinary(t, "POST", ts.URL+"/v1/graphs", body, nil)
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s payload: status %d, want 4xx", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := doBinary(t, "POST", ts.URL+"/v1/graphs", payload,
		map[string]string{"If-None-Match": `"not-a-fingerprint"`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad If-None-Match: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBinaryVsJSONIngestFaster is the CI bench smoke: ingesting the same
// graph over the binary protocol must cost less per request than over
// JSON. The binary path's whole reason to exist is collapsing the JSON
// decode → build → re-encode round trip into hash + validate; if this
// inverts, the fast path regressed.
func TestBinaryVsJSONIngestFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	ts, _ := newTestServer(t, service.Config{Workers: 1}, jobs.Config{})
	g, _, err := cli.ParseGraph("random:600,2400", 7)
	if err != nil {
		t.Fatal(err)
	}
	payload := store.EncodeGraphPayload(g)

	// The JSON client sends the explicit edge list — what a client that
	// holds a concrete graph (rather than a spec) would upload.
	edges := make([][]float64, 0, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		edges = append(edges, []float64{float64(e.U), float64(e.V), e.W})
	}
	jsonBody, err := marshalGraphRequest(g.NumNodes(), edges)
	if err != nil {
		t.Fatal(err)
	}

	client := ts.Client()
	post := func(body []byte, ct string) error {
		req, err := http.NewRequest("POST", ts.URL+"/v1/graphs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", ct)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	bin := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(payload, wire.ContentType); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsn := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(jsonBody, "application/json"); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("ingest ns/op: binary %d, json %d (%.2fx)",
		bin.NsPerOp(), jsn.NsPerOp(), float64(jsn.NsPerOp())/float64(bin.NsPerOp()))
	if bin.NsPerOp() >= jsn.NsPerOp() {
		t.Errorf("binary ingest (%d ns/op) not faster than JSON (%d ns/op)",
			bin.NsPerOp(), jsn.NsPerOp())
	}
}

// marshalGraphRequest renders the JSON ingest body for an explicit edge
// list without pulling encoding/json into the hot loop above.
func marshalGraphRequest(nodes int, edges [][]float64) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"nodes":%d,"edges":[`, nodes)
	for i, e := range edges {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "[%g,%g,%g]", e[0], e[1], e[2])
	}
	buf.WriteString("]}")
	return buf.Bytes(), nil
}
