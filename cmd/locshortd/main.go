// Command locshortd is the shortcut-serving daemon: an HTTP front end
// over internal/service's concurrent engine and content-addressed cache,
// optionally backed by the internal/store durable snapshot store. Every
// route speaks JSON; the hot routes additionally speak the binary
// application/x-locshort protocol (internal/wire), which moves the
// store's canonical payloads verbatim — negotiated per request with
// ordinary Content-Type/Accept headers, no flag needed. See OPERATIONS.md
// §Wire protocol.
//
// Usage:
//
//	locshortd [-addr 127.0.0.1:8080] [-workers N] [-cache N] [-queue N]
//	          [-async-queue N] [-async-workers N] [-retries N]
//	          [-data DIR] [-store segment|objdir|mem] [-mmap=false]
//	          [-addrfile PATH] [-pprof ADDR]
//	          [-slow-request DUR] [-traces N] [-quiet]
//	          [-cluster-self HOST:PORT -cluster-peers H1:P1,H2:P2,...]
//	          [-cluster-vnodes N] [-cluster-replicas N] [-sync-interval DUR]
//
// Endpoints:
//
//	POST   /v1/graphs      ingest a graph (family spec or edge list) → fingerprint
//	GET    /v1/graphs      list registered graphs
//	DELETE /v1/graphs/{fp} evict a graph everywhere: registration, cache, store
//	POST   /v1/shortcuts   build-or-get a shortcut for (graph, partition, options)
//	POST   /v1/jobs        run mst | mincut | aggregate | measure
//	POST   /v1/batch       submit a list of requests asynchronously → 202 + job IDs
//	GET    /v1/jobs        list async jobs (?state= filters)
//	GET    /v1/jobs/{id}   fetch one async job (?wait= long-polls for completion)
//	DELETE /v1/jobs/{id}   cancel an async job
//	GET    /v1/stats       engine counters, async gauges, hit rate, uptime
//	GET    /v1/traces      recent build traces with per-stage timings (?n= bounds)
//	GET    /metrics        Prometheus text exposition of every subsystem
//	GET    /healthz        liveness: 200 once the listener is bound
//	GET    /readyz         readiness: 200 once warm start + job recovery finished
//
// The listener binds before the durable store replays, so /healthz and
// /readyz answer during a long warm start; /v1/ requests are rejected
// with 503 until /readyz flips. Every request is logged as a structured
// key=value line to stderr (suppress with -quiet); requests at or over
// -slow-request escalate to warn with the build's per-stage breakdown.
// See OPERATIONS.md §Monitoring for the metric catalog and scrape config.
//
// Any /v1/shortcuts or /v1/jobs body with "async": true — and every
// /v1/batch item — is accepted with 202 and a job ID instead of holding
// the connection for the build; the internal/jobs manager drains accepted
// work through the engine's worker pool and results are fetched via
// GET /v1/jobs/{id}. With -data, accepted jobs are durable: a restart
// re-enqueues queued and interrupted work and completed results stay
// fetchable.
//
// -cluster-self plus -cluster-peers (the full membership, identical on
// every node) turn a set of daemons into one consistent-hash cluster:
// every node accepts every request, shortcut builds route to the key's
// ring owner, ingested graphs replicate to all peers, cache misses try
// peer stores before rebuilding (response "source":"peer"), and a
// background anti-entropy loop (-sync-interval) pulls records each node
// should own but lacks, so replicas converge after a node dies or
// rejoins. The internal /v1/peer/ API this uses re-verifies every fetched
// payload against its fingerprint — a corrupt peer can cause a miss,
// never a wrong answer. /readyz holds 503 while a reachable peer's ring
// configuration disagrees with this node's. Cluster mode requires -data.
// See OPERATIONS.md §9 for the cluster runbook.
//
// -data DIR makes the daemon durable: ingested graphs, built shortcuts,
// and async job records persist to the store in DIR, the graph catalog
// warm-starts on boot, and cache misses are served store-first — so a
// restart costs a store read per shortcut instead of a rebuild stampede.
// -store selects the backend (all pass the same conformance suite, see
// internal/store/storetest): "segment" (default) is the append-only
// segment store — sealed segments are memory-mapped read-only and binary
// responses serve their payloads as subslices of the mapping, zero-copy;
// -mmap=false forces the portable pread path (fresh buffer, per-read
// checksum) if a platform or filesystem misbehaves under mmap. "objdir"
// is a one-file-per-record object directory (an S3-style tier laid out
// on the local filesystem). "mem" is an ephemeral in-memory backend that
// takes no -data: the full store surface (jobs durability across the
// manager, verify, ls) without any disk, for tests and scratch serving;
// a restart starts empty. See OPERATIONS.md for the on-disk layouts and
// the locshortctl runbook (backup, gc, verify, jobs).
//
// -addr :0 picks a free port; the bound address is printed on stdout and,
// with -addrfile, written to PATH so scripts (CI, cmd/loadgen) can find
// the daemon without racing for a port. SIGINT/SIGTERM drain in-flight
// requests before exit; pending store writes are flushed before the
// process exits, so a clean shutdown never loses a completed build.
//
// -pprof ADDR serves net/http/pprof on a second listener (e.g.
// -pprof 127.0.0.1:6060), kept off the API listener so profiling is never
// exposed where the API is. Capture cold-build CPU and allocation
// profiles against the live daemon with
//
//	go tool pprof http://ADDR/debug/pprof/profile?seconds=10
//	go tool pprof http://ADDR/debug/pprof/allocs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"locshort/internal/cluster"
	"locshort/internal/jobs"
	"locshort/internal/obs"
	"locshort/internal/service"
	"locshort/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("locshortd: ", err)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a free port)")
		workers      = flag.Int("workers", 0, "job worker pool size (default GOMAXPROCS)")
		cacheCap     = flag.Int("cache", 0, "resident shortcut capacity (default 64)")
		queue        = flag.Int("queue", 0, "job queue depth (default 256)")
		asyncQueue   = flag.Int("async-queue", 0, "async job queue depth (default 1024)")
		asyncWorkers = flag.Int("async-workers", 0, "async dispatcher concurrency (default 4)")
		retries      = flag.Int("retries", 0, "re-runs of a failed async job before it is recorded failed")
		asyncKeep    = flag.Int("async-retention", 0, "terminal async job records kept in memory (default 4096; older results served from -data)")
		addrfile     = flag.String("addrfile", "", "write the bound address to this file")
		pprofA       = flag.String("pprof", "", "serve net/http/pprof on this address (empty: disabled)")
		data         = flag.String("data", "", "durable store directory (empty: in-memory only)")
		storeKind    = flag.String("store", store.KindSegment, "storage backend: segment | objdir | mem (mem is ephemeral and takes no -data)")
		mmapF        = flag.Bool("mmap", true, "memory-map sealed store segments for zero-copy reads (-mmap=false forces pread)")
		slowReq      = flag.Duration("slow-request", 0, "warn with a build-stage breakdown for requests at least this slow (0: disabled)")
		traceCap     = flag.Int("traces", 128, "build traces retained for GET /v1/traces")
		quiet        = flag.Bool("quiet", false, "suppress per-request log lines (metrics and traces stay on)")

		clusterSelf  = flag.String("cluster-self", "", "this node's advertised host:port; enables cluster mode (requires -data)")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated full cluster membership, including -cluster-self; identical on every node")
		clusterVN    = flag.Int("cluster-vnodes", 64, "virtual nodes per member on the consistent-hash ring")
		clusterRepl  = flag.Int("cluster-replicas", 2, "nodes that hold each shortcut record (clamped to the membership size)")
		syncInterval = flag.Duration("sync-interval", 10*time.Second, "anti-entropy round cadence in cluster mode")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(*traceCap)
	var logger *obs.Logger
	if !*quiet {
		logger = obs.NewLogger(os.Stderr)
	}

	cfg := service.Config{
		Workers:         *workers,
		CacheCapacity:   *cacheCap,
		QueueDepth:      *queue,
		AsyncQueueDepth: *asyncQueue,
		AsyncWorkers:    *asyncWorkers,
		AsyncRetries:    *retries,
		AsyncRetention:  *asyncKeep,
		Obs:             reg,
		Tracer:          tracer,
	}
	var st store.Backend
	if *storeKind == store.KindMem && *data != "" {
		return fmt.Errorf("-store=mem is ephemeral and takes no -data")
	}
	if *data != "" || *storeKind == store.KindMem {
		var err error
		st, err = store.OpenBackend(*storeKind, *data, store.Options{Obs: reg, NoMmap: !*mmapF})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		defer st.Close()
		cfg.Store = st
	}

	// Cluster mode: build the node's ring view before the engine so the
	// engine's miss chain can reach peer stores (cache → store → peer →
	// build). The engine is wired back in as the graph registrar below.
	var cl *cluster.Cluster
	if *clusterSelf != "" {
		if st == nil || *data == "" {
			return fmt.Errorf("cluster mode requires a durable -data store (peers pull records from it)")
		}
		var nodes []string
		for _, n := range strings.Split(*clusterPeers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:         *clusterSelf,
			Nodes:        nodes,
			VNodes:       *clusterVN,
			Replication:  *clusterRepl,
			SyncInterval: *syncInterval,
			Store:        st,
			Obs:          reg,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		cfg.Peers = cl
	}

	eng := service.New(cfg)
	defer eng.Close()
	if cl != nil {
		cl.SetRegistrar(eng)
	}

	jcfg := jobs.Config{
		QueueDepth: cfg.AsyncQueueDepth,
		Workers:    cfg.AsyncWorkers,
		Retries:    cfg.AsyncRetries,
		Retention:  cfg.AsyncRetention,
		Obs:        reg,
	}
	if st != nil {
		jcfg.Store = st
	}
	// ready gates the /v1/ API and GET /readyz: the listener binds first
	// (below) so probes answer during a long store replay, and the flag
	// flips only after warm start, job recovery, and dispatcher start.
	var ready atomic.Bool
	readyFn := ready.Load
	if cl != nil {
		// In cluster mode readiness also requires ring-config agreement
		// with every reachable peer (see handleReadyz).
		readyFn = func() bool { return ready.Load() && !cl.Drift() }
	}
	srv, handler := newServer(eng, jcfg, serverOptions{
		reg:         reg,
		tracer:      tracer,
		logger:      logger,
		slowRequest: *slowReq,
		ready:       readyFn,
		cluster:     cl,
		store:       st,
	})
	mgr := srv.mgr
	// Close order (LIFO with the defers above): manager first, so
	// interrupted async runs go durably back to queued, then the engine
	// (drains detached persists), then the store.
	defer mgr.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Printf("locshortd listening on http://%s\n", bound)
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	if *pprofA != "" {
		pln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("locshortd pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); !errors.Is(err, http.ErrServerClosed) {
				log.Println("locshortd: pprof server:", err)
			}
		}()
	}

	hsrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()

	// Warm start and job recovery run behind the live listener: /healthz
	// and /readyz (503 "starting") answer while the store replays, and
	// /v1/ requests are rejected with 503 until the flip below.
	if st != nil {
		loaded, err := eng.WarmStart()
		if err != nil {
			return fmt.Errorf("warm start: %w", err)
		}
		ss := st.OpenStats()
		loc := st.Dir()
		if loc == "" {
			loc = "memory"
		}
		log.Printf("locshortd: warm start from %s store (%s): %d graphs, %d shortcut records, %d job records (%d bytes)",
			*storeKind, loc, loaded, ss.Shortcuts, ss.Jobs, ss.Bytes)
		if ss.CorruptSkipped > 0 || ss.TruncatedBytes > 0 {
			log.Printf("locshortd: store repair on open: %d corrupt records skipped, %d bytes truncated",
				ss.CorruptSkipped, ss.TruncatedBytes)
		}
		// Recover after WarmStart: re-enqueued jobs reference graphs the
		// engine must already know.
		requeued, err := mgr.Recover()
		if err != nil {
			return fmt.Errorf("job recovery: %w", err)
		}
		if requeued > 0 {
			log.Printf("locshortd: re-enqueued %d interrupted async jobs", requeued)
		}
		if skipped := mgr.Stats().RecoverSkipped; skipped > 0 {
			log.Printf("locshortd: skipped %d undecodable job records (inspect with locshortctl)", skipped)
		}
	}
	mgr.Start()
	if cl != nil {
		// Synchronous config probe before the ready flip: a node booted
		// into a cluster whose reachable peers disagree on the ring never
		// reports ready. The anti-entropy loop re-probes every round, so
		// drift introduced (or healed) later moves readiness with it.
		drift, reachable := cl.CheckConfig(ctx)
		log.Printf("locshortd: cluster %s: %d members, %d peers reachable, drift=%v",
			cl.Self(), len(cl.Peers())+1, reachable, drift)
		cl.Start()
		defer cl.Stop()
	}
	ready.Store(true)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Println("locshortd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hsrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
