package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"locshort/internal/cluster"
	"locshort/internal/jobs"
	"locshort/internal/service"
	"locshort/internal/store"
)

// clusterSwap lets the test bind listeners (to learn their addresses)
// before the servers that own them are constructed.
type clusterSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *clusterSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *clusterSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type clusterNode struct {
	addr string
	st   *store.Store
	cl   *cluster.Cluster
	eng  *service.Engine
	srv  *server
	ts   *httptest.Server
	url  string
}

// newNodeCluster stands up n complete locshortd nodes — store, cluster
// view, engine with peer fetch, HTTP API with forwarding — sharing one
// ring, exactly as -cluster-self/-cluster-peers wires them in main.
func newNodeCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	swaps := make([]*clusterSwap, n)
	addrs := make([]string, n)
	for i := range nodes {
		swaps[i] = &clusterSwap{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		addr := strings.TrimPrefix(ts.URL, "http://")
		nodes[i] = &clusterNode{addr: addr, ts: ts, url: ts.URL}
		addrs[i] = addr
	}
	for i, node := range nodes {
		st, err := store.Open(filepath.Join(t.TempDir(), "data"), store.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:         node.addr,
			Nodes:        addrs,
			VNodes:       16,
			SyncInterval: time.Hour, // tests drive SyncNow explicitly
			FetchTimeout: 5 * time.Second,
			DownBackoff:  time.Minute, // a killed node stays skipped for the whole test
			Store:        st,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := service.New(service.Config{Workers: 2, Store: st, Peers: cl})
		cl.SetRegistrar(eng)
		srv, h := newServer(eng, jobs.Config{Store: st}, serverOptions{cluster: cl})
		srv.mgr.Start()
		node.st, node.cl, node.eng, node.srv = st, cl, eng, srv
		swaps[i].set(h)
		t.Cleanup(func() {
			srv.mgr.Close()
			eng.Close()
			st.Close()
		})
	}
	return nodes
}

// totalBuilds sums completed constructions across every node's engine.
func totalBuilds(nodes []*clusterNode) uint64 {
	var total uint64
	for _, n := range nodes {
		if n != nil {
			total += n.eng.Stats().Builds
		}
	}
	return total
}

// postShortcut posts one build request and decodes the response; header,
// when non-empty, is set as X-Locshort-Forwarded.
func postShortcut(t *testing.T, url string, body map[string]any, forwarded bool) shortcutResponse {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/shortcuts", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if forwarded {
		req.Header.Set(cluster.ForwardedHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s/v1/shortcuts: status %d: %s", url, resp.StatusCode, e["error"])
	}
	var out shortcutResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterRouting: a graph ingested on one node is requestable on every
// node, the key's ring owner executes the build no matter which node the
// client dialed, and the whole cluster pays exactly one construction.
func TestClusterRouting(t *testing.T) {
	nodes := newNodeCluster(t, 3)

	var g graphResponse
	postJSON(t, nodes[0].url+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	// The ingest broadcast registered the graph on every engine.
	for _, n := range nodes {
		fp, err := service.ParseFingerprint(g.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := n.eng.Graph(fp); !ok {
			t.Fatalf("node %s does not know the broadcast graph", n.addr)
		}
	}

	build := map[string]any{"graph": g.Graph, "partition": "blobs:8", "seed": 3}
	resps := make([]shortcutResponse, 3)
	for i, n := range nodes {
		resps[i] = postShortcut(t, n.url, build, false)
	}
	for i, r := range resps[1:] {
		if r.Shortcut != resps[0].Shortcut {
			t.Fatalf("node %d resolved a different key: %s != %s", i+1, r.Shortcut, resps[0].Shortcut)
		}
	}
	if got := totalBuilds(nodes); got != 1 {
		t.Fatalf("cluster-wide builds = %d, want exactly 1", got)
	}
	// Every response was executed by the same node: the ring owner.
	key, err := service.ParseFingerprint(resps[0].Shortcut)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := nodes[0].cl.Owner(key)
	for i, r := range resps {
		if r.ServedBy != owner {
			t.Fatalf("response %d served_by %q, want owner %q", i, r.ServedBy, owner)
		}
	}
	// The two non-owner nodes forwarded.
	var forwards uint64
	for _, n := range nodes {
		forwards += n.cl.Stats().Forwards
	}
	if forwards < 2 {
		t.Fatalf("forwards = %d, want >= 2", forwards)
	}
}

// TestClusterPeerFetch: a shortcut built on node A is served from node B's
// peer-fetch path — source "peer", no second build anywhere.
func TestClusterPeerFetch(t *testing.T) {
	nodes := newNodeCluster(t, 3)

	var g graphResponse
	postJSON(t, nodes[0].url+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:8", "seed": 4}

	first := postShortcut(t, nodes[0].url, build, false)
	key, err := service.ParseFingerprint(first.Shortcut)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := nodes[0].cl.Owner(key)

	// Pick a node that did not build and force it to serve locally (the
	// forwarded flag, as if relayed): its miss chain is cache miss → store
	// miss → peer fetch from the owner's store.
	var other *clusterNode
	for _, n := range nodes {
		if n.addr != owner {
			other = n
			break
		}
	}
	resp := postShortcut(t, other.url, build, true)
	if resp.Source != "peer" {
		t.Fatalf("source = %q, want \"peer\"", resp.Source)
	}
	if resp.ServedBy != other.addr {
		t.Fatalf("served_by = %q, want %q (local serving)", resp.ServedBy, other.addr)
	}
	if resp.Shortcut != first.Shortcut {
		t.Fatalf("peer fetch resolved key %s, want %s", resp.Shortcut, first.Shortcut)
	}
	if got := totalBuilds(nodes); got != 1 {
		t.Fatalf("cluster-wide builds = %d, want exactly 1 (peer fetch must not rebuild)", got)
	}
	if hits := other.eng.Stats().PeerHits; hits != 1 {
		t.Fatalf("peer hits on %s = %d, want 1", other.addr, hits)
	}
	// The fetch imported the record: it is in the fetcher's store now.
	if !other.st.HasShortcut(key) {
		t.Fatal("peer-fetched record was not imported into the local store")
	}
}

// TestClusterKillOneNode: after anti-entropy has replicated the record,
// killing any one node leaves every request on the survivors answerable
// with zero errors.
func TestClusterKillOneNode(t *testing.T) {
	nodes := newNodeCluster(t, 3)

	var g graphResponse
	postJSON(t, nodes[0].url+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:8", "seed": 5}
	first := postShortcut(t, nodes[0].url, build, false)
	key, err := service.ParseFingerprint(first.Shortcut)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := nodes[0].cl.Owner(key)

	// Replicate: every node pulls what it should own.
	for _, n := range nodes {
		if sr := n.cl.SyncNow(t.Context()); sr.Errors != 0 {
			t.Fatalf("sync on %s: %d errors", n.addr, sr.Errors)
		}
	}

	// Kill the owner — the worst case: both survivors must fail over.
	var survivors []*clusterNode
	for i, n := range nodes {
		if n.addr == owner {
			n.ts.Close()
			nodes[i] = nil
			continue
		}
		survivors = append(survivors, n)
	}

	// Every request on every survivor must succeed. The first one pays the
	// failed dial to the dead owner, marks it down, and falls back to
	// local serving; the rest skip the corpse outright.
	for round := 0; round < 3; round++ {
		for _, n := range survivors {
			resp := postShortcut(t, n.url, build, false)
			if resp.Shortcut != first.Shortcut {
				t.Fatalf("survivor %s resolved key %s, want %s", n.addr, resp.Shortcut, first.Shortcut)
			}
		}
	}
	if got := totalBuilds(survivors); got > 1 {
		t.Fatalf("builds on survivors = %d; failover must reuse the replicated record", got)
	}
}

// TestClusterDriftHoldsReadyz: a node whose ring config disagrees with a
// reachable peer's answers 503 on /readyz until the configs converge.
func TestClusterDriftHoldsReadyz(t *testing.T) {
	nodes := newNodeCluster(t, 3)

	// Sabotage node 0: same membership, different vnode count.
	drifted, err := cluster.New(cluster.Config{
		Self:         nodes[0].addr,
		Nodes:        []string{nodes[0].addr, nodes[1].addr, nodes[2].addr},
		VNodes:       8,
		SyncInterval: time.Hour,
		Store:        nodes[0].st,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].srv.cl = drifted
	if d, _ := drifted.CheckConfig(t.Context()); !d {
		t.Fatal("drifted node did not detect the disagreement")
	}

	resp, err := http.Get(nodes[0].url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz on drifted node: %d, want 503", resp.StatusCode)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "drift") {
		t.Fatalf("/readyz body %q does not name the drift", body.String())
	}

	// Peers probing node 0 see the foreign hash and latch drift too.
	if sr := nodes[1].cl.SyncNow(t.Context()); sr.Drift {
		// nodes[1] still serves the OLD handler for node 0 (srv.cl swap
		// only changes readiness), so drift here depends on which side
		// answers; either way its own /readyz must reflect Drift().
		if r2, err := http.Get(nodes[1].url + "/readyz"); err == nil {
			defer r2.Body.Close()
			if r2.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("peer latched drift but /readyz = %d", r2.StatusCode)
			}
		}
	}

	// Heal: restore the matching config and re-probe — ready again.
	nodes[0].srv.cl = nodes[0].cl
	if d, _ := nodes[0].cl.CheckConfig(t.Context()); d {
		t.Fatal("drift did not clear after configs converged")
	}
	r3, err := http.Get(nodes[0].url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after heal: %d, want 200", r3.StatusCode)
	}
}
