package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locshort/internal/jobs"
	"locshort/internal/obs"
	"locshort/internal/service"
	"locshort/internal/store"
)

// syncBuffer is a goroutine-safe log sink: the request log line is written
// after the handler returns, which can race the client seeing the response.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// eventually polls cond for up to 5s: post-response bookkeeping (metrics
// observation, log write) runs after the handler returns, so immediate
// assertions on it would race.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// scrape fetches and parses GET /metrics, failing the test on transport,
// status, or exposition-format errors — so a scrape that returns HTML or
// malformed lines fails here rather than silently passing HasFamily checks.
func scrape(t *testing.T, url string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	sc, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return sc
}

// TestObservabilityEndToEnd drives a cold build and a warm hit through the
// full HTTP stack with every subsystem instrumented, then asserts the
// /metrics exposition covers all four metric families (engine, builder
// stages, async jobs, durable store) plus the HTTP layer, and that
// /v1/traces retains the cold build with every Builder stage timed.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	logbuf := &syncBuffer{}
	st, err := store.Open(t.TempDir(), store.Options{Obs: reg, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st, Obs: reg, Tracer: tracer})
	srv, h := newServer(eng, jobs.Config{Store: st, Obs: reg}, serverOptions{
		reg:    reg,
		tracer: tracer,
		logger: obs.NewLogger(logbuf),
	})
	srv.mgr.Start()
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.mgr.Close()
		eng.Close()
		st.Close()
	})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:8", "seed": 3}
	var cold, warm struct {
		Shortcut string `json:"shortcut"`
		Cached   bool   `json:"cached"`
		Source   string `json:"source"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &cold)
	if cold.Cached || cold.Source != "built" {
		t.Fatalf("cold build: cached=%v source=%q, want fresh built", cold.Cached, cold.Source)
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &warm)
	if !warm.Cached || warm.Source != "cache" {
		t.Fatalf("warm hit: cached=%v source=%q, want cache hit", warm.Cached, warm.Source)
	}

	// One async job so the jobs layer has non-zero traffic to report.
	var job struct {
		ID string `json:"id"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"kind": "mst", "graph": g.Graph, "async": true,
	}, http.StatusAccepted, &job)
	eventually(t, "async job reaches done", func() bool {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "?wait=2s")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var v struct {
			State string `json:"state"`
		}
		if err := decodeBody(resp, &v); err != nil {
			return false
		}
		return v.State == "done"
	})

	sc := scrape(t, ts.URL)
	// Engine: exactly one construction, one hit, one miss from the two
	// synchronous requests (the async MST reuses the cached shortcut's
	// graph and builds nothing).
	if v, ok := sc.Value("locshort_engine_builds_total", nil); !ok || v != 1 {
		t.Errorf("locshort_engine_builds_total = %v, %v; want 1", v, ok)
	}
	if v, ok := sc.Value("locshort_engine_cache_hits_total", nil); !ok || v < 1 {
		t.Errorf("locshort_engine_cache_hits_total = %v, %v; want >= 1", v, ok)
	}
	if v, ok := sc.Value("locshort_engine_cache_misses_total", nil); !ok || v < 1 {
		t.Errorf("locshort_engine_cache_misses_total = %v, %v; want >= 1", v, ok)
	}
	if h, ok := sc.Histogram("locshort_engine_build_seconds", nil); !ok || h.Count() != 1 {
		t.Errorf("locshort_engine_build_seconds count = %d, %v; want 1", h.Count(), ok)
	}
	// Builder stages: the singleton stages observed exactly once, levels
	// at least once.
	for _, stage := range []string{"choose_root", "bfs_tree", "sweep", "assemble"} {
		if h, ok := sc.Histogram("locshort_builder_stage_seconds", obs.Labels{"stage": stage}); !ok || h.Count() != 1 {
			t.Errorf("builder stage %q count = %d, %v; want 1", stage, h.Count(), ok)
		}
	}
	if h, ok := sc.Histogram("locshort_builder_stage_seconds", obs.Labels{"stage": "level"}); !ok || h.Count() < 1 {
		t.Errorf("builder stage \"level\" count = %d, %v; want >= 1", h.Count(), ok)
	}
	// Jobs and store layers.
	if v, ok := sc.Value("locshort_jobs_submitted_total", nil); !ok || v != 1 {
		t.Errorf("locshort_jobs_submitted_total = %v, %v; want 1", v, ok)
	}
	if v, ok := sc.Value("locshort_jobs_finished_total", obs.Labels{"outcome": "done"}); !ok || v != 1 {
		t.Errorf("locshort_jobs_finished_total{outcome=done} = %v, %v; want 1", v, ok)
	}
	if v, ok := sc.Value("locshort_store_appends_total", obs.Labels{"kind": "shortcut"}); !ok || v != 1 {
		t.Errorf("locshort_store_appends_total{kind=shortcut} = %v, %v; want 1", v, ok)
	}
	for _, fam := range []string{
		"locshort_engine_measure_seconds", "locshort_engine_persist_seconds",
		"locshort_jobs_exec_seconds", "locshort_jobs_queue_wait_seconds",
		"locshort_store_append_seconds", "locshort_store_segments",
		"locshort_engine_queue_depth", "locshort_engine_cache_entries",
	} {
		if !sc.HasFamily(fam) {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	// HTTP layer: both synchronous builds observed under the route pattern
	// (post-response bookkeeping, so poll).
	eventually(t, "http request metrics observed", func() bool {
		sc := scrape(t, ts.URL)
		v, ok := sc.Value("locshort_http_requests_total",
			obs.Labels{"route": "POST /v1/shortcuts", "code": "200"})
		if !ok || v != 2 {
			return false
		}
		h, ok := sc.Histogram("locshort_http_request_seconds",
			obs.Labels{"route": "POST /v1/shortcuts"})
		return ok && h.Count() == 2
	})

	// /v1/traces: the cold build's trace, newest-first, with the store
	// probe, every Builder stage, and the quality measurement timed.
	resp, err := http.Get(ts.URL + "/v1/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := decodeBody(resp, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 1 {
		t.Fatalf("got %d traces, want 1 (only the cold build publishes)", len(tr.Traces))
	}
	trace := tr.Traces[0]
	if trace.Op != "build" || trace.Fingerprint != cold.Shortcut {
		t.Errorf("trace op=%q fp=%q, want build/%s", trace.Op, trace.Fingerprint, cold.Shortcut)
	}
	spans := make(map[string]bool, len(trace.Spans))
	sawLevel := false
	for _, sp := range trace.Spans {
		spans[sp.Name] = true
		if strings.HasPrefix(sp.Name, "level(d=") {
			sawLevel = true
		}
		if sp.DurNs < 0 || sp.StartNs < 0 {
			t.Errorf("span %q has negative timing: start=%d dur=%d", sp.Name, sp.StartNs, sp.DurNs)
		}
	}
	for _, want := range []string{"store_check", "choose_root", "bfs_tree", "sweep", "assemble", "measure"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (have %v)", want, trace.Spans)
		}
	}
	if !sawLevel {
		t.Errorf("trace has no level(d=N) span: %v", trace.Spans)
	}

	// Request log: one info line per request with ID, route, and the
	// latency class that served it.
	eventually(t, "request log lines written", func() bool {
		s := logbuf.String()
		return strings.Contains(s, "route=\"POST /v1/shortcuts\"") &&
			strings.Contains(s, "source=built") && strings.Contains(s, "source=cache") &&
			strings.Contains(s, "id=")
	})
}

// decodeBody drains and closes an http.Response body into out.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestSlowRequestWarn sets the slow-request threshold to one nanosecond so
// every request trips it, and asserts the escalated warn line carries the
// per-stage breakdown of the build it served.
func TestSlowRequestWarn(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	logbuf := &syncBuffer{}
	eng := service.New(service.Config{Workers: 2, Obs: reg, Tracer: tracer})
	srv, h := newServer(eng, jobs.Config{}, serverOptions{
		reg:         reg,
		tracer:      tracer,
		logger:      obs.NewLogger(logbuf),
		slowRequest: time.Nanosecond,
	})
	srv.mgr.Start()
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.mgr.Close()
		eng.Close()
	})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:4"}, http.StatusOK, nil)
	eventually(t, "slow_request warn with stage breakdown", func() bool {
		s := logbuf.String()
		return strings.Contains(s, "level=warn") && strings.Contains(s, "msg=slow_request") &&
			strings.Contains(s, "choose_root=") && strings.Contains(s, "measure=")
	})
}

// TestReadyzGate proves the readiness gate: before ready flips, /v1/
// requests bounce with 503 and /readyz reports starting while /healthz
// stays 200; after the flip everything serves.
func TestReadyzGate(t *testing.T) {
	var ready atomic.Bool
	eng := service.New(service.Config{Workers: 1})
	srv, h := newServer(eng, jobs.Config{}, serverOptions{ready: ready.Load})
	srv.mgr.Start()
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.mgr.Close()
		eng.Close()
	})

	status := func(method, path string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(`{"spec":"grid:4x4"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("GET", "/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz before ready = %d, want 503", got)
	}
	if got := status("GET", "/healthz"); got != http.StatusOK {
		t.Errorf("GET /healthz before ready = %d, want 200 (liveness is not readiness)", got)
	}
	if got := status("POST", "/v1/graphs"); got != http.StatusServiceUnavailable {
		t.Errorf("POST /v1/graphs before ready = %d, want 503", got)
	}
	ready.Store(true)
	if got := status("GET", "/readyz"); got != http.StatusOK {
		t.Errorf("GET /readyz after ready = %d, want 200", got)
	}
	if got := status("POST", "/v1/graphs"); got != http.StatusOK {
		t.Errorf("POST /v1/graphs after ready = %d, want 200", got)
	}
}
