package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/service"
)

// postJSON round-trips a JSON request against the test server, failing the
// test on transport errors and decoding into out when the status matches.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, e["error"])
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEndToEnd ingests a grid, builds a shortcut (cold then hot), and runs
// MST and aggregation through the HTTP API — the full daemon lifecycle
// minus the TCP listener.
func TestEndToEnd(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// Ingest a 16x16 grid by family spec.
	var g struct {
		Graph string `json:"graph"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g)
	if g.Nodes != 256 || g.Edges != 480 {
		t.Fatalf("grid ingest = %d nodes / %d edges, want 256/480", g.Nodes, g.Edges)
	}

	// Re-ingesting the same content must return the same fingerprint.
	var g2 struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g2)
	if g2.Graph != g.Graph {
		t.Fatalf("re-ingest fingerprint %s != %s", g2.Graph, g.Graph)
	}

	// Build a shortcut: cold, then a cache hit for the same request.
	build := map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 7}
	var s1, s2 struct {
		Shortcut     string  `json:"shortcut"`
		Cached       bool    `json:"cached"`
		BuildMillis  float64 `json:"build_ms"`
		Congestion   int     `json:"congestion"`
		Dilation     int     `json:"dilation"`
		CoveredParts int     `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s1)
	if s1.Cached {
		t.Error("first build reported cached")
	}
	if s1.CoveredParts != 16 || s1.Congestion < 1 || s1.Dilation < 1 {
		t.Errorf("implausible quality: %+v", s1)
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if !s2.Cached || s2.Shortcut != s1.Shortcut {
		t.Errorf("second build: cached=%v key=%s, want hit on %s", s2.Cached, s2.Shortcut, s1.Shortcut)
	}

	// A different partition seed is a different shortcut.
	var s3 struct {
		Shortcut string `json:"shortcut"`
		Cached   bool   `json:"cached"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 8},
		http.StatusOK, &s3)
	if s3.Cached || s3.Shortcut == s1.Shortcut {
		t.Error("distinct partition seed did not produce a distinct cold build")
	}

	// MST through the API matches Kruskal computed locally.
	var mst struct {
		Weight float64 `json:"weight"`
		Edges  int     `json:"edges"`
		Phases int     `json:"phases"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "mst", "graph": g.Graph},
		http.StatusOK, &mst)
	local, _, err := cli.ParseGraph("grid:16x16", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, want := graph.Kruskal(local)
	if math.Abs(mst.Weight-want) > 1e-9 || mst.Edges != 255 {
		t.Errorf("MST = %+v, want weight %v with 255 edges", mst, want)
	}

	// Aggregation over the cached shortcut counts part sizes.
	var agg struct {
		Parts []int64 `json:"parts"`
	}
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "aggregate", "shortcut": s1.Shortcut, "op": "sum"},
		http.StatusOK, &agg)
	total := int64(0)
	for _, p := range agg.Parts {
		total += p
	}
	if len(agg.Parts) != 16 || total != 256 {
		t.Errorf("aggregate parts = %v (total %d), want 16 parts totaling 256", agg.Parts, total)
	}

	// Measure over the cached shortcut agrees with the build response.
	var meas struct {
		Congestion int `json:"congestion"`
		Dilation   int `json:"dilation"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "measure", "shortcut": s1.Shortcut},
		http.StatusOK, &meas)
	if meas.Congestion != s1.Congestion || meas.Dilation != s1.Dilation {
		t.Errorf("measure %+v disagrees with build response %+v", meas, s1)
	}

	// Stats reflect the traffic.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Stats   service.Stats `json:"stats"`
		HitRate float64       `json:"hit_rate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Builds != 2 {
		t.Errorf("Builds = %d, want 2 (two distinct shortcuts)", stats.Stats.Builds)
	}
	if stats.Stats.CacheHits == 0 || stats.HitRate <= 0 {
		t.Errorf("no cache hits recorded: %+v", stats)
	}
	if stats.Stats.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1", stats.Stats.Graphs)
	}
}

func TestEndToEndExplicitEdgesAndParts(t *testing.T) {
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// A weighted 4-cycle given as an explicit edge list.
	var g struct {
		Graph string `json:"graph"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"nodes": 4,
		"edges": [][]float64{{0, 1}, {1, 2, 2.5}, {2, 3}, {3, 0}},
	}, http.StatusOK, &g)
	if g.Edges != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges)
	}

	var sc struct {
		Shortcut     string `json:"shortcut"`
		CoveredParts int    `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", map[string]any{
		"graph": g.Graph,
		"parts": [][]int{{0, 1}, {2, 3}},
	}, http.StatusOK, &sc)
	if sc.CoveredParts != 2 {
		t.Errorf("covered parts = %d, want 2", sc.CoveredParts)
	}
}

func TestAPIErrors(t *testing.T) {
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// Unknown graph fingerprint: 404.
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": "00000000000000ff", "partition": "blobs:4"},
		http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "mst", "graph": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Unknown shortcut key: 404.
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "measure", "shortcut": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Malformed requests: 400.
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"spec": "nosuch:1"}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"nodes": 3, "edges": [][]float64{{0, 0}}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "frobnicate"}, http.StatusBadRequest, nil)

	// Bad options string: 400.
	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "path:4"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "singletons", "options": "zeta=1"},
		http.StatusBadRequest, nil)
}
