package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/service"
	"locshort/internal/store"
)

// postJSON round-trips a JSON request against the test server, failing the
// test on transport errors and decoding into out when the status matches.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, e["error"])
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEndToEnd ingests a grid, builds a shortcut (cold then hot), and runs
// MST and aggregation through the HTTP API — the full daemon lifecycle
// minus the TCP listener.
func TestEndToEnd(t *testing.T) {
	eng := service.New(service.Config{Workers: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// Ingest a 16x16 grid by family spec.
	var g struct {
		Graph string `json:"graph"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g)
	if g.Nodes != 256 || g.Edges != 480 {
		t.Fatalf("grid ingest = %d nodes / %d edges, want 256/480", g.Nodes, g.Edges)
	}

	// Re-ingesting the same content must return the same fingerprint.
	var g2 struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g2)
	if g2.Graph != g.Graph {
		t.Fatalf("re-ingest fingerprint %s != %s", g2.Graph, g.Graph)
	}

	// Build a shortcut: cold, then a cache hit for the same request.
	build := map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 7}
	var s1, s2 struct {
		Shortcut     string  `json:"shortcut"`
		Cached       bool    `json:"cached"`
		BuildMillis  float64 `json:"build_ms"`
		Congestion   int     `json:"congestion"`
		Dilation     int     `json:"dilation"`
		CoveredParts int     `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s1)
	if s1.Cached {
		t.Error("first build reported cached")
	}
	if s1.CoveredParts != 16 || s1.Congestion < 1 || s1.Dilation < 1 {
		t.Errorf("implausible quality: %+v", s1)
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if !s2.Cached || s2.Shortcut != s1.Shortcut {
		t.Errorf("second build: cached=%v key=%s, want hit on %s", s2.Cached, s2.Shortcut, s1.Shortcut)
	}

	// A different partition seed is a different shortcut.
	var s3 struct {
		Shortcut string `json:"shortcut"`
		Cached   bool   `json:"cached"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 8},
		http.StatusOK, &s3)
	if s3.Cached || s3.Shortcut == s1.Shortcut {
		t.Error("distinct partition seed did not produce a distinct cold build")
	}

	// MST through the API matches Kruskal computed locally.
	var mst struct {
		Weight float64 `json:"weight"`
		Edges  int     `json:"edges"`
		Phases int     `json:"phases"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "mst", "graph": g.Graph},
		http.StatusOK, &mst)
	local, _, err := cli.ParseGraph("grid:16x16", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, want := graph.Kruskal(local)
	if math.Abs(mst.Weight-want) > 1e-9 || mst.Edges != 255 {
		t.Errorf("MST = %+v, want weight %v with 255 edges", mst, want)
	}

	// Aggregation over the cached shortcut counts part sizes.
	var agg struct {
		Parts []int64 `json:"parts"`
	}
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "aggregate", "shortcut": s1.Shortcut, "op": "sum"},
		http.StatusOK, &agg)
	total := int64(0)
	for _, p := range agg.Parts {
		total += p
	}
	if len(agg.Parts) != 16 || total != 256 {
		t.Errorf("aggregate parts = %v (total %d), want 16 parts totaling 256", agg.Parts, total)
	}

	// Measure over the cached shortcut agrees with the build response.
	var meas struct {
		Congestion int `json:"congestion"`
		Dilation   int `json:"dilation"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "measure", "shortcut": s1.Shortcut},
		http.StatusOK, &meas)
	if meas.Congestion != s1.Congestion || meas.Dilation != s1.Dilation {
		t.Errorf("measure %+v disagrees with build response %+v", meas, s1)
	}

	// Stats reflect the traffic.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Stats   service.Stats `json:"stats"`
		HitRate float64       `json:"hit_rate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Builds != 2 {
		t.Errorf("Builds = %d, want 2 (two distinct shortcuts)", stats.Stats.Builds)
	}
	if stats.Stats.CacheHits == 0 || stats.HitRate <= 0 {
		t.Errorf("no cache hits recorded: %+v", stats)
	}
	if stats.Stats.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1", stats.Stats.Graphs)
	}
}

func TestEndToEndExplicitEdgesAndParts(t *testing.T) {
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// A weighted 4-cycle given as an explicit edge list.
	var g struct {
		Graph string `json:"graph"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"nodes": 4,
		"edges": [][]float64{{0, 1}, {1, 2, 2.5}, {2, 3}, {3, 0}},
	}, http.StatusOK, &g)
	if g.Edges != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges)
	}

	var sc struct {
		Shortcut     string `json:"shortcut"`
		CoveredParts int    `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", map[string]any{
		"graph": g.Graph,
		"parts": [][]int{{0, 1}, {2, 3}},
	}, http.StatusOK, &sc)
	if sc.CoveredParts != 2 {
		t.Errorf("covered parts = %d, want 2", sc.CoveredParts)
	}
}

func TestAPIErrors(t *testing.T) {
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	// Unknown graph fingerprint: 404.
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": "00000000000000ff", "partition": "blobs:4"},
		http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "mst", "graph": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Unknown shortcut key: 404.
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "measure", "shortcut": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Malformed requests: 400.
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"spec": "nosuch:1"}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"nodes": 3, "edges": [][]float64{{0, 0}}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "frobnicate"}, http.StatusBadRequest, nil)

	// Bad options string: 400.
	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "path:4"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "singletons", "options": "zeta=1"},
		http.StatusBadRequest, nil)
}

// getJSON decodes a GET endpoint.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWarmStart is the restart-recovery e2e: a shortcut built before
// the daemon goes down is served after a restart on the same data directory
// without invoking Build at all — asserted through the engine Stats
// counters — and with identical measured quality.
func TestRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	ts := httptest.NewServer(newServer(eng))

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:12", "seed": 5}
	var s1 struct {
		Shortcut   string `json:"shortcut"`
		Source     string `json:"source"`
		Congestion int    `json:"congestion"`
		Dilation   int    `json:"dilation"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s1)
	if s1.Source != "built" {
		t.Fatalf("first build source = %q, want built", s1.Source)
	}
	// Clean shutdown: engine Close drains the detached store write.
	ts.Close()
	eng.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine over the same directory.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := service.New(service.Config{Workers: 2, Store: st2})
	defer func() {
		eng2.Close()
		st2.Close()
	}()
	if n, err := eng2.WarmStart(); err != nil || n != 1 {
		t.Fatalf("WarmStart = (%d, %v), want (1, nil)", n, err)
	}
	ts2 := httptest.NewServer(newServer(eng2))
	defer ts2.Close()

	// The warm-started catalog lists the graph without re-ingesting.
	var list struct {
		Graphs []struct {
			Graph string `json:"graph"`
			Nodes int    `json:"nodes"`
		} `json:"graphs"`
	}
	getJSON(t, ts2.URL+"/v1/graphs", &list)
	if len(list.Graphs) != 1 || list.Graphs[0].Graph != g.Graph || list.Graphs[0].Nodes != 144 {
		t.Fatalf("post-restart graph list = %+v, want the persisted 12x12 grid", list)
	}

	var s2 struct {
		Shortcut   string `json:"shortcut"`
		Cached     bool   `json:"cached"`
		Source     string `json:"source"`
		Congestion int    `json:"congestion"`
		Dilation   int    `json:"dilation"`
	}
	postJSON(t, ts2.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if s2.Source != "store" || s2.Cached {
		t.Errorf("post-restart source = %q (cached=%v), want a store hit", s2.Source, s2.Cached)
	}
	if s2.Shortcut != s1.Shortcut {
		t.Errorf("post-restart key %s != pre-restart %s", s2.Shortcut, s1.Shortcut)
	}
	if s2.Congestion != s1.Congestion || s2.Dilation != s1.Dilation {
		t.Errorf("post-restart quality (%d,%d) != pre-restart (%d,%d)",
			s2.Congestion, s2.Dilation, s1.Congestion, s1.Dilation)
	}
	stats := eng2.Stats()
	if stats.Builds != 0 {
		t.Errorf("Builds = %d after restart, want 0 (no rebuild)", stats.Builds)
	}
	if stats.StoreHits != 1 {
		t.Errorf("StoreHits = %d, want 1", stats.StoreHits)
	}
	// Second request for the same key is now a resident cache hit.
	postJSON(t, ts2.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if s2.Source != "cache" || !s2.Cached {
		t.Errorf("repeat request source = %q (cached=%v), want cache", s2.Source, s2.Cached)
	}
	// The store itself verifies clean.
	if problems := st2.Verify(); len(problems) != 0 {
		t.Errorf("store verify after restart: %v", problems)
	}
}

// TestGraphListAndDelete exercises GET /v1/graphs and DELETE
// /v1/graphs/{fp}: eviction empties the cache and the store, and the
// fingerprint 404s afterwards.
func TestGraphListAndDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	defer func() {
		eng.Close()
		st.Close()
	}()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:8"}, http.StatusOK, nil)

	var del struct {
		Evicted int `json:"evicted_shortcuts"`
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+g.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	if del.Evicted != 1 {
		t.Errorf("evicted %d cached shortcuts, want 1", del.Evicted)
	}
	// Gone from the listing, from the engine, and from the store.
	var list struct {
		Graphs []any `json:"graphs"`
	}
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list.Graphs) != 0 {
		t.Errorf("graph list after delete = %+v, want empty", list.Graphs)
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:8"}, http.StatusNotFound, nil)
	if ss := st.OpenStats(); ss.Graphs != 0 || ss.Shortcuts != 0 {
		t.Errorf("store still holds %d graphs / %d shortcuts after delete", ss.Graphs, ss.Shortcuts)
	}
	// Deleting again: 404.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+g.Graph, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", resp2.StatusCode)
	}
}
