package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/service"
	"locshort/internal/store"
)

// newTestServer stands up an engine, the HTTP API, and a started async
// job manager, torn down in reverse order with the test.
func newTestServer(t *testing.T, cfg service.Config, jcfg jobs.Config) (*httptest.Server, *server) {
	t.Helper()
	eng := service.New(cfg)
	srv, h := newServer(eng, jcfg, serverOptions{})
	srv.mgr.Start()
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.mgr.Close()
		eng.Close()
	})
	return ts, srv
}

// postJSON round-trips a JSON request against the test server, failing the
// test on transport errors and decoding into out when the status matches.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, e["error"])
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEndToEnd ingests a grid, builds a shortcut (cold then hot), and runs
// MST and aggregation through the HTTP API — the full daemon lifecycle
// minus the TCP listener.
func TestEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2}, jobs.Config{})

	// Ingest a 16x16 grid by family spec.
	var g struct {
		Graph string `json:"graph"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g)
	if g.Nodes != 256 || g.Edges != 480 {
		t.Fatalf("grid ingest = %d nodes / %d edges, want 256/480", g.Nodes, g.Edges)
	}

	// Re-ingesting the same content must return the same fingerprint.
	var g2 struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g2)
	if g2.Graph != g.Graph {
		t.Fatalf("re-ingest fingerprint %s != %s", g2.Graph, g.Graph)
	}

	// Build a shortcut: cold, then a cache hit for the same request.
	build := map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 7}
	var s1, s2 struct {
		Shortcut     string  `json:"shortcut"`
		Cached       bool    `json:"cached"`
		BuildMillis  float64 `json:"build_ms"`
		Congestion   int     `json:"congestion"`
		Dilation     int     `json:"dilation"`
		CoveredParts int     `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s1)
	if s1.Cached {
		t.Error("first build reported cached")
	}
	if s1.CoveredParts != 16 || s1.Congestion < 1 || s1.Dilation < 1 {
		t.Errorf("implausible quality: %+v", s1)
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if !s2.Cached || s2.Shortcut != s1.Shortcut {
		t.Errorf("second build: cached=%v key=%s, want hit on %s", s2.Cached, s2.Shortcut, s1.Shortcut)
	}

	// A different partition seed is a different shortcut.
	var s3 struct {
		Shortcut string `json:"shortcut"`
		Cached   bool   `json:"cached"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 8},
		http.StatusOK, &s3)
	if s3.Cached || s3.Shortcut == s1.Shortcut {
		t.Error("distinct partition seed did not produce a distinct cold build")
	}

	// MST through the API matches Kruskal computed locally.
	var mst struct {
		Weight float64 `json:"weight"`
		Edges  int     `json:"edges"`
		Phases int     `json:"phases"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "mst", "graph": g.Graph},
		http.StatusOK, &mst)
	local, _, err := cli.ParseGraph("grid:16x16", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, want := graph.Kruskal(local)
	if math.Abs(mst.Weight-want) > 1e-9 || mst.Edges != 255 {
		t.Errorf("MST = %+v, want weight %v with 255 edges", mst, want)
	}

	// Aggregation over the cached shortcut counts part sizes.
	var agg struct {
		Parts []int64 `json:"parts"`
	}
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "aggregate", "shortcut": s1.Shortcut, "op": "sum"},
		http.StatusOK, &agg)
	total := int64(0)
	for _, p := range agg.Parts {
		total += p
	}
	if len(agg.Parts) != 16 || total != 256 {
		t.Errorf("aggregate parts = %v (total %d), want 16 parts totaling 256", agg.Parts, total)
	}

	// Measure over the cached shortcut agrees with the build response.
	var meas struct {
		Congestion int `json:"congestion"`
		Dilation   int `json:"dilation"`
	}
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "measure", "shortcut": s1.Shortcut},
		http.StatusOK, &meas)
	if meas.Congestion != s1.Congestion || meas.Dilation != s1.Dilation {
		t.Errorf("measure %+v disagrees with build response %+v", meas, s1)
	}

	// Stats reflect the traffic.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Stats   service.Stats `json:"stats"`
		HitRate float64       `json:"hit_rate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Builds != 2 {
		t.Errorf("Builds = %d, want 2 (two distinct shortcuts)", stats.Stats.Builds)
	}
	if stats.Stats.CacheHits == 0 || stats.HitRate <= 0 {
		t.Errorf("no cache hits recorded: %+v", stats)
	}
	if stats.Stats.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1", stats.Stats.Graphs)
	}
}

func TestEndToEndExplicitEdgesAndParts(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1}, jobs.Config{})

	// A weighted 4-cycle given as an explicit edge list.
	var g struct {
		Graph string `json:"graph"`
		Edges int    `json:"edges"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"nodes": 4,
		"edges": [][]float64{{0, 1}, {1, 2, 2.5}, {2, 3}, {3, 0}},
	}, http.StatusOK, &g)
	if g.Edges != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges)
	}

	var sc struct {
		Shortcut     string `json:"shortcut"`
		CoveredParts int    `json:"covered_parts"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", map[string]any{
		"graph": g.Graph,
		"parts": [][]int{{0, 1}, {2, 3}},
	}, http.StatusOK, &sc)
	if sc.CoveredParts != 2 {
		t.Errorf("covered parts = %d, want 2", sc.CoveredParts)
	}
}

func TestAPIErrors(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1}, jobs.Config{})

	// Unknown graph fingerprint: 404.
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": "00000000000000ff", "partition": "blobs:4"},
		http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "mst", "graph": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Unknown shortcut key: 404.
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "measure", "shortcut": "00000000000000ff"},
		http.StatusNotFound, nil)
	// Malformed requests: 400.
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"spec": "nosuch:1"}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/graphs",
		map[string]any{"nodes": 3, "edges": [][]float64{{0, 0}}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "frobnicate"}, http.StatusBadRequest, nil)

	// Bad options string: 400.
	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "path:4"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "singletons", "options": "zeta=1"},
		http.StatusBadRequest, nil)
}

// getJSON decodes a GET endpoint.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWarmStart is the restart-recovery e2e: a shortcut built before
// the daemon goes down is served after a restart on the same data directory
// without invoking Build at all — asserted through the engine Stats
// counters — and with identical measured quality.
func TestRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	srv1, h1 := newServer(eng, jobs.Config{Store: st}, serverOptions{})
	srv1.mgr.Start()
	ts := httptest.NewServer(h1)

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:12", "seed": 5}
	var s1 struct {
		Shortcut   string `json:"shortcut"`
		Source     string `json:"source"`
		Congestion int    `json:"congestion"`
		Dilation   int    `json:"dilation"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, &s1)
	if s1.Source != "built" {
		t.Fatalf("first build source = %q, want built", s1.Source)
	}
	// Clean shutdown: engine Close drains the detached store write.
	ts.Close()
	srv1.mgr.Close()
	eng.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine over the same directory.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := service.New(service.Config{Workers: 2, Store: st2})
	defer func() {
		eng2.Close()
		st2.Close()
	}()
	if n, err := eng2.WarmStart(); err != nil || n != 1 {
		t.Fatalf("WarmStart = (%d, %v), want (1, nil)", n, err)
	}
	srv2, h2 := newServer(eng2, jobs.Config{Store: st2}, serverOptions{})
	srv2.mgr.Start()
	defer srv2.mgr.Close()
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()

	// The warm-started catalog lists the graph without re-ingesting.
	var list struct {
		Graphs []struct {
			Graph string `json:"graph"`
			Nodes int    `json:"nodes"`
		} `json:"graphs"`
	}
	getJSON(t, ts2.URL+"/v1/graphs", &list)
	if len(list.Graphs) != 1 || list.Graphs[0].Graph != g.Graph || list.Graphs[0].Nodes != 144 {
		t.Fatalf("post-restart graph list = %+v, want the persisted 12x12 grid", list)
	}

	var s2 struct {
		Shortcut   string `json:"shortcut"`
		Cached     bool   `json:"cached"`
		Source     string `json:"source"`
		Congestion int    `json:"congestion"`
		Dilation   int    `json:"dilation"`
	}
	postJSON(t, ts2.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if s2.Source != "store" || s2.Cached {
		t.Errorf("post-restart source = %q (cached=%v), want a store hit", s2.Source, s2.Cached)
	}
	if s2.Shortcut != s1.Shortcut {
		t.Errorf("post-restart key %s != pre-restart %s", s2.Shortcut, s1.Shortcut)
	}
	if s2.Congestion != s1.Congestion || s2.Dilation != s1.Dilation {
		t.Errorf("post-restart quality (%d,%d) != pre-restart (%d,%d)",
			s2.Congestion, s2.Dilation, s1.Congestion, s1.Dilation)
	}
	stats := eng2.Stats()
	if stats.Builds != 0 {
		t.Errorf("Builds = %d after restart, want 0 (no rebuild)", stats.Builds)
	}
	if stats.StoreHits != 1 {
		t.Errorf("StoreHits = %d, want 1", stats.StoreHits)
	}
	// Second request for the same key is now a resident cache hit.
	postJSON(t, ts2.URL+"/v1/shortcuts", build, http.StatusOK, &s2)
	if s2.Source != "cache" || !s2.Cached {
		t.Errorf("repeat request source = %q (cached=%v), want cache", s2.Source, s2.Cached)
	}
	// The store itself verifies clean.
	if problems := st2.Verify(); len(problems) != 0 {
		t.Errorf("store verify after restart: %v", problems)
	}
}

// TestGraphListAndDelete exercises GET /v1/graphs and DELETE
// /v1/graphs/{fp}: eviction empties the cache and the store, and the
// fingerprint 404s afterwards.
func TestGraphListAndDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	defer func() {
		eng.Close()
		st.Close()
	}()
	srv, h := newServer(eng, jobs.Config{Store: st}, serverOptions{})
	srv.mgr.Start()
	defer srv.mgr.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:8"}, http.StatusOK, nil)

	var del struct {
		Evicted int `json:"evicted_shortcuts"`
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+g.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	if del.Evicted != 1 {
		t.Errorf("evicted %d cached shortcuts, want 1", del.Evicted)
	}
	// Gone from the listing, from the engine, and from the store.
	var list struct {
		Graphs []any `json:"graphs"`
	}
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list.Graphs) != 0 {
		t.Errorf("graph list after delete = %+v, want empty", list.Graphs)
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:8"}, http.StatusNotFound, nil)
	if ss := st.OpenStats(); ss.Graphs != 0 || ss.Shortcuts != 0 {
		t.Errorf("store still holds %d graphs / %d shortcuts after delete", ss.Graphs, ss.Shortcuts)
	}
	// Deleting again: 404.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+g.Graph, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", resp2.StatusCode)
	}
}

// doJSON issues a request with an arbitrary method, asserting the status
// and decoding the body when out is non-nil.
func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e["error"])
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// jobStatus is the wire form of one async job as the tests read it.
type jobStatus struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// waitJob long-polls GET /v1/jobs/{id} until the job is terminal.
func waitJob(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var js jobStatus
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id+"?wait=2s", nil, http.StatusOK, &js)
		switch js.State {
		case "done", "failed", "canceled":
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, js.State)
		}
	}
}

// TestAsyncShortcutEndToEnd submits a build with "async": true, fetches
// the result by job ID, and checks it matches what the synchronous path
// serves (same content-addressed key, now a cache hit).
func TestAsyncShortcutEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2}, jobs.Config{Workers: 2})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:16x16"}, http.StatusOK, &g)

	var sub jobStatus
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 3, "async": true},
		http.StatusAccepted, &sub)
	if sub.ID == "" || sub.State != "queued" || sub.Kind != "shortcut" {
		t.Fatalf("async submit ack = %+v, want a queued shortcut job", sub)
	}

	js := waitJob(t, ts.URL, sub.ID)
	if js.State != "done" {
		t.Fatalf("job = %+v, want done", js)
	}
	var res struct {
		Shortcut     string `json:"shortcut"`
		Source       string `json:"source"`
		CoveredParts int    `json:"covered_parts"`
	}
	if err := json.Unmarshal(js.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.CoveredParts != 16 || res.Source != "built" {
		t.Fatalf("async result = %+v, want a cold build covering 16 parts", res)
	}

	// The synchronous path now hits the same cache entry.
	var sync struct {
		Shortcut string `json:"shortcut"`
		Cached   bool   `json:"cached"`
	}
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:16", "seed": 3},
		http.StatusOK, &sync)
	if !sync.Cached || sync.Shortcut != res.Shortcut {
		t.Errorf("sync follow-up = %+v, want a cache hit on %s", sync, res.Shortcut)
	}

	// The job shows up in the listing, and canceling a done job is 409.
	var list struct {
		Jobs []jobStatus `json:"jobs"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=done", nil, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Errorf("job listing = %+v, want exactly the done job", list.Jobs)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil, http.StatusConflict, nil)

	// Stats carry the async gauges.
	var stats struct {
		Stats service.Stats `json:"stats"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Stats.AsyncSubmitted != 1 || stats.Stats.AsyncDone != 1 ||
		stats.Stats.AsyncQueued != 0 || stats.Stats.AsyncRunning != 0 {
		t.Errorf("async stats = %+v, want 1 submitted and done, queue drained", stats.Stats)
	}
}

// TestAsyncJobsAndErrors covers async query jobs and the error statuses of
// the job endpoints.
func TestAsyncJobsAndErrors(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2}, jobs.Config{Workers: 2})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)

	// Async MST completes with the same payload as the sync endpoint.
	var sub jobStatus
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "mst", "graph": g.Graph, "async": true},
		http.StatusAccepted, &sub)
	js := waitJob(t, ts.URL, sub.ID)
	if js.State != "done" {
		t.Fatalf("async mst = %+v, want done", js)
	}
	var mst struct {
		Weight float64 `json:"weight"`
		Edges  int     `json:"edges"`
	}
	if err := json.Unmarshal(js.Result, &mst); err != nil {
		t.Fatal(err)
	}
	if mst.Edges != 63 {
		t.Errorf("async mst edges = %d, want 63", mst.Edges)
	}

	// A job referencing an unknown graph is accepted and then fails, with
	// the engine error recorded.
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": "00000000000000ff", "partition": "blobs:4", "async": true},
		http.StatusAccepted, &sub)
	js = waitJob(t, ts.URL, sub.ID)
	if js.State != "failed" || js.Error == "" {
		t.Fatalf("job on unknown graph = %+v, want failed with an error", js)
	}

	// Unknown async kind is rejected before acceptance.
	postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"kind": "frobnicate", "async": true}, http.StatusBadRequest, nil)
	// Job endpoint statuses: malformed id, unknown id, bad wait, unknown
	// cancel.
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/zzz", nil, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/00000000000000aa", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"?wait=bogus", nil, http.StatusOK, nil) // terminal: wait ignored
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/00000000000000aa", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=nosuch", nil, http.StatusBadRequest, nil)
}

// TestBatch submits a mixed batch, drains it, and checks batch-level
// validation accepts nothing when any item is malformed.
func TestBatch(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 4}, jobs.Config{Workers: 4})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)

	// 8 distinct cold builds plus one MST job.
	reqs := make([]map[string]any, 0, 9)
	for seed := 0; seed < 8; seed++ {
		reqs = append(reqs, map[string]any{"graph": g.Graph, "partition": "blobs:12", "seed": seed})
	}
	reqs = append(reqs, map[string]any{"kind": "mst", "graph": g.Graph})
	var batch struct {
		Jobs []jobStatus `json:"jobs"`
	}
	postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": reqs}, http.StatusAccepted, &batch)
	if len(batch.Jobs) != 9 {
		t.Fatalf("batch accepted %d jobs, want 9", len(batch.Jobs))
	}
	keys := map[string]bool{}
	for _, j := range batch.Jobs {
		got := waitJob(t, ts.URL, j.ID)
		if got.State != "done" {
			t.Fatalf("batch job %s (%s) = %+v, want done", j.ID, j.Kind, got)
		}
		if j.Kind == "shortcut" {
			var res struct {
				Shortcut string `json:"shortcut"`
			}
			if err := json.Unmarshal(got.Result, &res); err != nil {
				t.Fatal(err)
			}
			keys[res.Shortcut] = true
		}
	}
	if len(keys) != 8 {
		t.Errorf("batch built %d distinct shortcuts, want 8", len(keys))
	}

	// Whole-batch validation: one malformed item rejects everything.
	var stats struct {
		Stats service.Stats `json:"stats"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	before := stats.Stats.AsyncSubmitted
	postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": []map[string]any{
		{"graph": g.Graph, "partition": "blobs:12"},
		{"kind": "nosuch"},
	}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": []map[string]any{}}, http.StatusBadRequest, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Stats.AsyncSubmitted != before {
		t.Errorf("rejected batches enqueued jobs: submitted %d → %d", before, stats.Stats.AsyncSubmitted)
	}
}

// TestAsyncQueueFull checks 429 on a saturated queue, including the
// partial-acceptance report of /v1/batch.
func TestAsyncQueueFull(t *testing.T) {
	eng := service.New(service.Config{Workers: 1})
	defer eng.Close()
	// Manager deliberately not started: nothing drains, so the depth-2
	// queue saturates deterministically.
	srv, h := newServer(eng, jobs.Config{QueueDepth: 2}, serverOptions{})
	defer srv.mgr.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "path:4"}, http.StatusOK, &g)
	sc := map[string]any{"graph": g.Graph, "partition": "singletons", "async": true}
	postJSON(t, ts.URL+"/v1/shortcuts", sc, http.StatusAccepted, nil)
	postJSON(t, ts.URL+"/v1/shortcuts", sc, http.StatusAccepted, nil)
	postJSON(t, ts.URL+"/v1/shortcuts", sc, http.StatusTooManyRequests, nil)

	// Batch with zero remaining slots: the first item already fails,
	// reporting zero accepted.
	var partial struct {
		Error string      `json:"error"`
		Jobs  []jobStatus `json:"jobs"`
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"requests":[{"graph":"`+g.Graph+`","partition":"singletons"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch into full queue: status %d, want 429", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Jobs) != 0 || partial.Error == "" {
		t.Errorf("partial batch report = %+v, want 0 accepted with an error", partial)
	}
}

// TestPartitionMemoEvictedOnDelete is the regression test for the memo
// leak: deleting a graph must drop its partition memo entries and release
// their budget, and a re-ingested graph must be re-parsed fresh.
func TestPartitionMemoEvictedOnDelete(t *testing.T) {
	ts, srv := newTestServer(t, service.Config{Workers: 2}, jobs.Config{})

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)
	build := map[string]any{"graph": g.Graph, "partition": "blobs:8", "seed": 1}
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, nil)
	if n := srv.partCount.Load(); n != 1 {
		t.Fatalf("partition memo count after build = %d, want 1", n)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+g.Graph, nil, http.StatusOK, nil)
	if n := srv.partCount.Load(); n != 0 {
		t.Fatalf("partition memo count after delete = %d, want 0 (budget released)", n)
	}
	leaked := 0
	srv.parts.Range(func(k, v any) bool { leaked++; return true })
	if leaked != 0 {
		t.Fatalf("%d memo entries survived the delete", leaked)
	}
	// Re-ingest and rebuild: parsed fresh against the new representative.
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:8x8"}, http.StatusOK, &g)
	postJSON(t, ts.URL+"/v1/shortcuts", build, http.StatusOK, nil)
	if n := srv.partCount.Load(); n != 1 {
		t.Errorf("partition memo count after re-ingest = %d, want 1", n)
	}
}

// TestConcurrentGraphDeleteRace hammers ingest/delete against concurrent
// sync builds and async submissions. Run under -race: the nil-dereference
// window in handleGraphs and any engine/memo race shows up here. Every
// response must be a well-formed JSON status, never a 5xx.
func TestConcurrentGraphDeleteRace(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 4, CacheCapacity: 8},
		jobs.Config{Workers: 2, QueueDepth: 4096})

	// The fingerprint is content-derived, so every re-ingest of the spec
	// yields the same fp; learn it once.
	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:6x6"}, http.StatusOK, &g)
	fp := g.Graph

	const iters = 60
	var wg sync.WaitGroup
	fail := make(chan string, 256)
	allow := func(who string, code int, allowed ...int) {
		for _, a := range allowed {
			if code == a {
				return
			}
		}
		select {
		case fail <- fmt.Sprintf("%s: unexpected status %d", who, code):
		default:
		}
	}
	// Churners: ingest then delete, repeatedly. Two of them, so one's
	// DELETE lands inside the other's ingest (between AddGraph and the
	// response) — the exact window of the old nil-dereference panic.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/v1/graphs", "application/json",
					strings.NewReader(`{"spec":"grid:6x6"}`))
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				allow("ingest", resp.StatusCode, http.StatusOK)
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+fp, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, dresp.Body)
				dresp.Body.Close()
				allow("delete", dresp.StatusCode, http.StatusOK, http.StatusNotFound)
			}
		}()
	}
	// Sync builders: 200 when the graph is registered, 404 when the
	// churner won the race.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"graph":%q,"partition":"blobs:6","seed":%d}`, fp, i%3)
				resp, err := http.Post(ts.URL+"/v1/shortcuts", "application/json", strings.NewReader(body))
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				allow("build", resp.StatusCode, http.StatusOK, http.StatusNotFound)
			}
		}(w)
	}
	// Async submitter: acceptance must always succeed; the jobs
	// themselves may fail with unknown-graph, which is fine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			body := fmt.Sprintf(`{"graph":%q,"partition":"blobs:6","seed":%d,"async":true}`, fp, i%3)
			resp, err := http.Post(ts.URL+"/v1/shortcuts", "application/json", strings.NewReader(body))
			if err != nil {
				fail <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			allow("async", resp.StatusCode, http.StatusAccepted)
		}
	}()
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	// The daemon is still healthy.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after race: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestRequestBodyLimit proves an oversized body maps to 413, not 400.
func TestRequestBodyLimit(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1}, jobs.Config{})
	// 65 MiB of spec, past the 64 MiB cap.
	body := append([]byte(`{"spec":"`), bytes.Repeat([]byte{'a'}, 65<<20)...)
	body = append(body, `"}`...)
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestRestartQueuedJobCompletes is the async restart e2e: a job accepted
// (202) but never dispatched before "SIGTERM" — simulated by tearing the
// stack down with the dispatcher pool never started — is re-enqueued from
// the durable store on warm start and completes.
func TestRestartQueuedJobCompletes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 2, Store: st})
	srv1, h1 := newServer(eng, jobs.Config{Store: st}, serverOptions{}) // dispatchers never started
	ts := httptest.NewServer(h1)

	var g struct {
		Graph string `json:"graph"`
	}
	postJSON(t, ts.URL+"/v1/graphs", map[string]any{"spec": "grid:12x12"}, http.StatusOK, &g)
	var sub jobStatus
	postJSON(t, ts.URL+"/v1/shortcuts",
		map[string]any{"graph": g.Graph, "partition": "blobs:12", "seed": 9, "async": true},
		http.StatusAccepted, &sub)
	var snap jobStatus
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil, http.StatusOK, &snap)
	if snap.State != "queued" {
		t.Fatalf("pre-restart job state = %s, want queued", snap.State)
	}
	ts.Close()
	srv1.mgr.Close()
	eng.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := service.New(service.Config{Workers: 2, Store: st2})
	defer func() {
		eng2.Close()
		st2.Close()
	}()
	if _, err := eng2.WarmStart(); err != nil {
		t.Fatal(err)
	}
	srv2, h2 := newServer(eng2, jobs.Config{Store: st2}, serverOptions{})
	requeued, err := srv2.mgr.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("Recover re-enqueued %d jobs, want the 1 accepted pre-restart", requeued)
	}
	srv2.mgr.Start()
	defer srv2.mgr.Close()
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()

	js := waitJob(t, ts2.URL, sub.ID)
	if js.State != "done" {
		t.Fatalf("post-restart job = %+v, want done", js)
	}
	var res struct {
		Shortcut     string `json:"shortcut"`
		CoveredParts int    `json:"covered_parts"`
	}
	if err := json.Unmarshal(js.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.CoveredParts != 12 || res.Shortcut == "" {
		t.Fatalf("post-restart result = %+v, want a valid 12-part shortcut", res)
	}
	// The completed record is durable: the store verifies clean and the
	// job is listed done.
	if problems := st2.Verify(); len(problems) != 0 {
		t.Errorf("store verify after drain: %v", problems)
	}
}
