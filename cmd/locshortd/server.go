package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/cli"
	"locshort/internal/cluster"
	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/obs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/store"
	"locshort/internal/wire"
)

// server wires the service engine and the async job manager to the HTTP
// JSON API. Handlers are thin: decode, translate fingerprints, call the
// engine, encode. Request execution is factored into buildShortcut/runJob
// so the synchronous handlers and the async dispatcher run the identical
// path; all concurrency control (worker pool, cache, singleflight, job
// queue) lives in internal/service and internal/jobs.
type server struct {
	eng   *service.Engine
	mgr   *jobs.Manager
	start time.Time
	// cl is the cluster view in multi-node mode (nil single-node): the
	// request router forwards misdirected build requests to the key's ring
	// owner, ingested graphs broadcast to peers, and /v1/peer/ serves the
	// internal record-exchange API.
	cl *cluster.Cluster
	// st is the durable store when the daemon runs with -data (nil
	// otherwise): the binary /v1/shortcuts response path serves the stored
	// canonical payload from it — zero-copy off a mapped segment — instead
	// of re-encoding the cached result.
	st store.Backend
	// encodeErrs counts response encode/write failures
	// (locshort_http_encode_errors_total).
	encodeErrs atomic.Uint64
	// Observability wiring (see obs.go); all optional, nil when the server
	// is constructed with a zero serverOptions.
	obsReg      *obs.Registry
	tracer      *obs.Tracer
	logger      *obs.Logger
	metrics     *httpMetrics
	slowRequest time.Duration
	ready       func() bool
	// parts memoizes the (graph, partition spec, seed) → Partition
	// translation, which is deterministic but costs a BFS per request;
	// without it, partition parsing dominates cache-hit latency. The memo
	// stops growing at partMemoLimit entries so unbounded distinct
	// requests cannot exhaust memory (beyond the limit, parsing just
	// stays uncached). Entries are keyed by "<fp>/<spec>/<seed>" and
	// evicted when their graph is deleted — a stale entry would pin the
	// removed representative and silently serve a partition parsed
	// against a graph instance the engine no longer holds.
	parts     sync.Map // string → *partition.Partition
	partCount atomic.Int64
}

// partMemoLimit caps the partition memo; far above any realistic working
// set (the shortcut cache holds far fewer entries anyway).
const partMemoLimit = 4096

// newServer builds the HTTP API over eng plus an async job manager
// configured by jcfg. The caller owns the manager lifecycle: Recover
// (after the engine's WarmStart) and Start before serving, Close on
// shutdown before the engine closes. o wires the observability layer —
// the zero value serves the API with no instrumentation.
func newServer(eng *service.Engine, jcfg jobs.Config, o serverOptions) (*server, http.Handler) {
	s := &server{
		eng:         eng,
		start:       time.Now(),
		obsReg:      o.reg,
		tracer:      o.tracer,
		logger:      o.logger,
		metrics:     newHTTPMetrics(o.reg),
		slowRequest: o.slowRequest,
		ready:       o.ready,
		cl:          o.cluster,
		st:          o.store,
	}
	if o.reg != nil {
		o.reg.CounterFunc("locshort_http_encode_errors_total",
			"Response encode or write failures (previously dropped silently).",
			nil, func() float64 { return float64(s.encodeErrs.Load()) })
		// Cumulative heap allocation count: loadgen samples it around a run
		// to report allocs per request without attaching a profiler.
		o.reg.CounterFunc("locshort_go_mallocs_total",
			"Cumulative heap objects allocated (runtime.MemStats.Mallocs).",
			nil, func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.Mallocs)
			})
	}
	s.mgr = jobs.New(jcfg, s.execAsync)
	mux := http.NewServeMux()
	if s.cl != nil {
		// Internal peer API; exempt from the readiness gate (peers compare
		// ring configs and pull records while this node warms up).
		mux.Handle("/v1/peer/", s.cl.Handler())
	}
	mux.HandleFunc("POST /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	mux.HandleFunc("DELETE /v1/graphs/{fp}", s.handleGraphDelete)
	mux.HandleFunc("POST /v1/shortcuts", s.handleShortcuts)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s, s.instrument(mux)
}

// pooledEncoder pairs a reusable buffer with a json.Encoder bound to it.
// Encoding into a pooled buffer and writing once replaces the old
// per-response json.NewEncoder(w) — one allocation-heavy construction per
// request on the warm path — and gives every response a single Write whose
// error is actually checked.
type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &pooledEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// maxPooledBuf keeps one giant response (a full job listing, say) from
// pinning its buffer in the pool forever.
const maxPooledBuf = 1 << 20

// writeJSONStatus encodes v through the encoder pool and writes it with
// the given status (0: implicit 200). Encode and write failures — silently
// dropped before — are logged and counted in
// locshort_http_encode_errors_total.
func (s *server) writeJSONStatus(w http.ResponseWriter, code int, v any) {
	e := encPool.Get().(*pooledEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		encPool.Put(e)
		s.encodeFailed(err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", "encode: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if code != 0 {
		w.WriteHeader(code)
	}
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		// Headers are gone; log so a flaky client link is diagnosable.
		s.encodeFailed(err)
	}
	if e.buf.Cap() <= maxPooledBuf {
		encPool.Put(e)
	}
}

func (s *server) writeJSON(w http.ResponseWriter, v any) { s.writeJSONStatus(w, 0, v) }

// httpError is the uniform error envelope.
func (s *server) httpError(w http.ResponseWriter, code int, err error) {
	s.writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}

func (s *server) encodeFailed(err error) {
	s.encodeErrs.Add(1)
	if s.logger != nil {
		s.logger.Warn("http_encode_failed", "err", err.Error())
	}
}

// decode reads a JSON request body capped at 64 MiB. The ResponseWriter
// is handed to MaxBytesReader so an oversized body also closes the
// connection (the client would otherwise keep streaming into a void);
// decodeStatus maps the resulting error to 413.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// decodeStatus maps a decode error to its status: 413 when the body cap
// tripped, 400 for everything else malformed.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// strictUnmarshal is decode's strictness (unknown fields rejected) for
// payloads that are already in memory: batch items and async job records.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// statusError tags an error with the HTTP status it maps to. The shared
// execution helpers (buildShortcut, runJob) use it to carry 400-class
// decisions out to whichever caller — the synchronous handler or the
// async dispatcher, which runs detached from any HTTP request.
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

func badRequest(err error) error { return &statusError{status: http.StatusBadRequest, err: err} }

// statusFor maps engine errors to HTTP statuses.
func statusFor(err error) int {
	var se *statusError
	switch {
	case errors.As(err, &se):
		return se.status
	case errors.Is(err, service.ErrUnknownGraph), errors.Is(err, service.ErrUnknownShortcut):
		return http.StatusNotFound
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// graphRequest ingests a graph either by family spec ("grid:32x32", the
// internal/cli language) or as an explicit edge list [[u,v],[u,v,w],...].
type graphRequest struct {
	Spec  string      `json:"spec,omitempty"`
	Seed  int64       `json:"seed,omitempty"`
	Nodes int         `json:"nodes,omitempty"`
	Edges [][]float64 `json:"edges,omitempty"`
}

type graphResponse struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if wire.IsBinary(r.Header.Get("Content-Type")) {
		s.handleGraphsBinary(w, r)
		return
	}
	var req graphRequest
	if err := decode(w, r, &req); err != nil {
		s.httpError(w, decodeStatus(err), err)
		return
	}
	var g *graph.Graph
	switch {
	case req.Spec != "" && req.Edges != nil:
		s.httpError(w, http.StatusBadRequest, errors.New("give either spec or edges, not both"))
		return
	case req.Spec != "":
		var err error
		g, _, err = cli.ParseGraph(req.Spec, req.Seed)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
	case req.Edges != nil:
		var err error
		g, err = graphFromEdges(req.Nodes, req.Edges)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
	default:
		s.httpError(w, http.StatusBadRequest, errors.New("need spec or nodes+edges"))
		return
	}
	fp, err := s.eng.AddGraph(g)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Cluster mode: replicate the graph to every peer before acknowledging,
	// so a shortcut request for it can land on any node immediately.
	// Best-effort — a down peer is healed by its next anti-entropy round,
	// and the forward path re-pushes on a 404.
	if s.cl != nil {
		s.cl.BroadcastGraph(r.Context(), fp, store.EncodeGraphPayload(g))
	}
	// Respond with the submitted graph's size: on re-ingest of known
	// content it matches the representative by construction, and unlike a
	// Graph(fp) readback it cannot race a concurrent DELETE of the
	// fingerprint into a nil dereference.
	s.respondGraph(w, r, fp, g)
}

// handleGraphsBinary ingests a canonical graph payload directly: the body
// bytes are exactly what the store would persist and what the fingerprint
// is computed over, so the JSON decode → graph build → re-encode round
// trip collapses to one hash plus one structural validation. An
// If-None-Match header carrying a fingerprint the engine already knows
// short-circuits to 304 before the body is even read — the repeat-ingest
// dedupe probe costs a header, not an upload.
func (s *server) handleGraphsBinary(w http.ResponseWriter, r *http.Request) {
	if inm := strings.Trim(r.Header.Get("If-None-Match"), `"`); inm != "" {
		fp, err := service.ParseFingerprint(inm)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad If-None-Match: %w", err))
			return
		}
		if _, known := s.eng.Graph(fp); known {
			w.Header().Set(wire.HeaderGraph, fp.String())
			w.Header().Set("ETag", `"`+fp.String()+`"`)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.httpError(w, decodeStatus(err), err)
		return
	}
	if len(payload) < 1 {
		s.httpError(w, http.StatusBadRequest, errors.New("empty graph payload"))
		return
	}
	fp := service.FingerprintBytes(payload[1:])
	// Decode validates version, structure, and canonical form; a payload
	// that survives it round-trips to the same bytes, so fp is authentic.
	g, err := store.DecodeGraphPayload(payload, fp)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.eng.AddGraphDecoded(fp, g, payload)
	if s.cl != nil {
		s.cl.BroadcastGraph(r.Context(), fp, payload)
	}
	s.respondGraph(w, r, fp, g)
}

// respondGraph acknowledges an ingest in the client's preferred shape. The
// fingerprint rides in an ETag either way, so any client can turn its next
// re-ingest into an If-None-Match probe.
func (s *server) respondGraph(w http.ResponseWriter, r *http.Request, fp service.Fingerprint, g *graph.Graph) {
	w.Header().Set("ETag", `"`+fp.String()+`"`)
	if wire.IsBinary(r.Header.Get("Accept")) {
		w.Header().Set(wire.HeaderGraph, fp.String())
		w.Header().Set(wire.HeaderNodes, strconv.Itoa(g.NumNodes()))
		w.Header().Set(wire.HeaderEdges, strconv.Itoa(g.NumEdges()))
		w.WriteHeader(http.StatusOK)
		return
	}
	s.writeJSON(w, graphResponse{Graph: fp.String(), Nodes: g.NumNodes(), Edges: g.NumEdges()})
}

// graphFromEdges validates and assembles an explicit edge list; unlike
// graph.AddEdge it rejects bad input with an error instead of panicking.
func graphFromEdges(nodes int, edges [][]float64) (*graph.Graph, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("nodes must be positive, got %d", nodes)
	}
	g := graph.New(nodes)
	for i, e := range edges {
		if len(e) != 2 && len(e) != 3 {
			return nil, fmt.Errorf("edge %d: want [u,v] or [u,v,w], got %d values", i, len(e))
		}
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return nil, fmt.Errorf("edge %d: endpoints must be integers", i)
		}
		if u < 0 || u >= nodes || v < 0 || v >= nodes {
			return nil, fmt.Errorf("edge %d: endpoints {%d,%d} out of range [0,%d)", i, u, v, nodes)
		}
		if u == v {
			return nil, fmt.Errorf("edge %d: self-loop at node %d", i, u)
		}
		w := 1.0
		if len(e) == 3 {
			w = e[2]
		}
		g.AddWeightedEdge(u, v, w)
	}
	return g, nil
}

// graphInfo is one row of the GET /v1/graphs listing.
type graphInfo struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	infos := s.eng.Graphs()
	out := make([]graphInfo, len(infos))
	for i, gi := range infos {
		out[i] = graphInfo{Graph: gi.Fingerprint.String(), Nodes: gi.Nodes, Edges: gi.Edges}
	}
	s.writeJSON(w, map[string]any{"graphs": out})
}

// handleGraphDelete evicts a graph everywhere: the engine registration,
// every resident cached shortcut built on it, the partition memo entries
// parsed against it, and — when the daemon runs with -data — the durable
// records (reclaimed by the next locshortctl gc).
func (s *server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	fp, err := service.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	evicted, err := s.eng.RemoveGraph(fp)
	if err != nil {
		s.httpError(w, statusFor(err), err)
		return
	}
	// Evict the partition memos keyed under the deleted fingerprint: left
	// behind they pin the removed graph representative in memory and
	// would be silently reused (against the wrong graph instance) if the
	// same content is re-ingested. Decrementing the count per entry keeps
	// the memo cap from ratcheting shut under ingest/delete churn.
	prefix := fp.String() + "/"
	s.parts.Range(func(k, _ any) bool {
		if strings.HasPrefix(k.(string), prefix) {
			if _, loaded := s.parts.LoadAndDelete(k); loaded {
				s.partCount.Add(-1)
			}
		}
		return true
	})
	s.writeJSON(w, map[string]any{"graph": fp.String(), "evicted_shortcuts": evicted})
}

// shortcutRequest asks for a build-or-get of a shortcut on a registered
// graph. The partition is given as an internal/cli spec plus seed or as an
// explicit part list; options use the canonical internal/cli textual form.
// Async submissions return 202 with a job ID instead of blocking.
type shortcutRequest struct {
	Graph     string  `json:"graph"`
	Partition string  `json:"partition,omitempty"`
	Parts     [][]int `json:"parts,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Options   string  `json:"options,omitempty"`
	Async     bool    `json:"async,omitempty"`
	// Forwarded is set from the X-Locshort-Forwarded header, never the
	// body: a relayed request is served locally, not routed again.
	Forwarded bool `json:"-"`
}

type shortcutResponse struct {
	Shortcut string `json:"shortcut"`
	Graph    string `json:"graph"`
	Cached   bool   `json:"cached"`
	// Source is the latency class that served this response: "cache"
	// (resident entry), "store" (reloaded from the durable store), "peer"
	// (fetched from a cluster peer's store), or "built" (cold
	// construction). Cached is true exactly when Source is "cache".
	Source string `json:"source"`
	// ServedBy is the node that executed the request (cluster mode only):
	// on a forwarded request it names the owner, not the node the client
	// dialed.
	ServedBy     string  `json:"served_by,omitempty"`
	BuildMillis  float64 `json:"build_ms"`
	Delta        int     `json:"delta"`
	Congestion   int     `json:"congestion"`
	Dilation     int     `json:"dilation"`
	MaxBlocks    int     `json:"max_blocks"`
	CoveredParts int     `json:"covered_parts"`
}

// resolveParts translates a request's partition description — memoized
// spec or explicit part list — into a Partition against g. Shared by the
// JSON and binary shortcut paths; request-shape problems come back as
// statusError(400).
func (s *server) resolveParts(g *graph.Graph, fp service.Fingerprint, req shortcutRequest) (*partition.Partition, error) {
	var parts *partition.Partition
	var err error
	switch {
	case req.Partition != "" && req.Parts != nil:
		return nil, badRequest(errors.New("give either partition or parts, not both"))
	case req.Partition != "":
		pkey := req.Graph + "/" + req.Partition + "/" + strconv.FormatInt(req.Seed, 10)
		if cached, ok := s.parts.Load(pkey); ok {
			parts = cached.(*partition.Partition)
		} else if parts, err = cli.ParsePartition(g, req.Partition, req.Seed); err == nil &&
			s.partCount.Load() < partMemoLimit {
			if _, loaded := s.parts.LoadOrStore(pkey, parts); !loaded {
				s.partCount.Add(1)
				// Re-check the registration: a DELETE that ran between our
				// Graph(fp) read and this insert has already swept the
				// memo, so an entry parsed against the removed
				// representative would be left behind (and silently reused
				// on re-ingest). Seeing the graph gone here means the
				// sweep ran; evicting our own insert closes the window.
				if _, still := s.eng.Graph(fp); !still {
					if _, loaded := s.parts.LoadAndDelete(pkey); loaded {
						s.partCount.Add(-1)
					}
				}
			}
		}
	case req.Parts != nil:
		parts, err = partition.New(g, req.Parts)
	default:
		return nil, badRequest(errors.New("need partition spec or parts"))
	}
	if err != nil {
		return nil, badRequest(err)
	}
	return parts, nil
}

// buildShortcut executes one build-or-get request: the path shared by the
// synchronous POST /v1/shortcuts handler and the async dispatcher.
// Request-shape problems come back as statusError(400); everything else
// maps through statusFor.
func (s *server) buildShortcut(ctx context.Context, req shortcutRequest) (shortcutResponse, error) {
	var zero shortcutResponse
	fp, err := service.ParseFingerprint(req.Graph)
	if err != nil {
		return zero, badRequest(err)
	}
	g, ok := s.eng.Graph(fp)
	if !ok {
		return zero, service.ErrUnknownGraph
	}
	opts, err := cli.ParseBuildOptions(req.Options)
	if err != nil {
		return zero, badRequest(err)
	}
	breq := service.BuildRequest{Graph: fp, Options: opts}
	if breq.Parts, err = s.resolveParts(g, fp, req); err != nil {
		return zero, err
	}
	// Cluster routing: any node accepts the request, but the key's ring
	// owner executes it (one singleflight, one build, one persisted record
	// cluster-wide). A request already relayed once is served here
	// unconditionally, and an unreachable owner degrades to local serving
	// (peer fetch, then rebuild) rather than an error.
	if s.cl != nil && !req.Forwarded {
		key := service.ShortcutKey(fp, breq.Parts, opts)
		if owner, self := s.cl.Owner(key); !self {
			if resp, err, handled := s.forwardShortcut(ctx, owner, fp, g, req); handled {
				return resp, err
			}
		}
	}
	c, hit, err := s.eng.Build(ctx, breq)
	if err != nil {
		return zero, err
	}
	// Quality via the engine so first-touch measurement runs on the
	// bounded worker pool, not the serving goroutine; memoized, so hits
	// pay only a cache lookup. Measured on the held entry: re-resolving
	// c.Key here would race eviction under capacity pressure. Warm hits
	// take the lock-free memo read and skip the pool round trip entirely.
	q, ok := c.QualityIfReady()
	if !ok {
		if q, err = s.eng.MeasureCached(ctx, c); err != nil {
			return zero, err
		}
	}
	source := "cache"
	if !hit {
		source = c.Source.String()
	}
	servedBy := ""
	if s.cl != nil {
		servedBy = s.cl.Self()
	}
	// Annotate the request log (no-op off the HTTP path): which graph and
	// shortcut this request resolved to, and the latency class that served
	// it — the three facts a slow-request investigation starts from.
	annotate(ctx, func(ri *reqInfo) {
		ri.graph = c.GraphFP.String()
		ri.shortcut = c.Key.String()
		ri.source = source
	})
	return shortcutResponse{
		Shortcut:     c.Key.String(),
		Graph:        c.GraphFP.String(),
		Cached:       hit,
		Source:       source,
		ServedBy:     servedBy,
		BuildMillis:  float64(c.BuildTime.Microseconds()) / 1000,
		Delta:        c.Result.Delta,
		Congestion:   q.Congestion,
		Dilation:     q.Dilation,
		MaxBlocks:    q.MaxBlocks,
		CoveredParts: q.CoveredParts,
	}, nil
}

// forwardShortcut relays one build request to the key's owner node.
// handled is false only when the owner is unreachable (down backoff or
// transport failure): the caller serves locally as the degraded path. A
// reachable owner's answer — success or error — is final and relayed to
// the client. An owner that has not seen the graph yet (404: the ingest
// broadcast raced or was missed) gets the graph payload pushed and the
// request retried once.
func (s *server) forwardShortcut(ctx context.Context, owner string, fp service.Fingerprint,
	g *graph.Graph, req shortcutRequest) (shortcutResponse, error, bool) {
	var zero shortcutResponse
	if !s.cl.Available(owner) {
		return zero, nil, false
	}
	// Forwarded requests are always synchronous: async acceptance and the
	// durable job record belong to the node the client dialed; the job's
	// execution forwards through here.
	req.Async = false
	body, err := json.Marshal(req)
	if err != nil {
		return zero, err, true
	}
	for attempt := 0; ; attempt++ {
		status, respBody, err := s.cl.ForwardRequest(ctx, owner, "/v1/shortcuts", body)
		if err != nil {
			if s.logger != nil {
				s.logger.Warn("forward_failed", "owner", owner, "err", err.Error())
			}
			return zero, nil, false
		}
		switch {
		case status == http.StatusOK:
			var resp shortcutResponse
			if err := json.Unmarshal(respBody, &resp); err != nil {
				return zero, fmt.Errorf("forward: owner %s sent a malformed response: %w", owner, err), true
			}
			annotate(ctx, func(ri *reqInfo) {
				ri.graph = resp.Graph
				ri.shortcut = resp.Shortcut
				ri.source = "forward:" + resp.Source
			})
			return resp, nil, true
		case status == http.StatusNotFound && attempt == 0:
			// The owner does not know the graph: push our copy and retry.
			if err := s.cl.PushGraph(ctx, owner, fp, store.EncodeGraphPayload(g)); err != nil {
				return zero, nil, false
			}
		default:
			var envelope struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(respBody, &envelope)
			if envelope.Error == "" {
				envelope.Error = fmt.Sprintf("owner %s answered %d", owner, status)
			}
			return zero, &statusError{status: status, err: errors.New(envelope.Error)}, true
		}
	}
}

func (s *server) handleShortcuts(w http.ResponseWriter, r *http.Request) {
	var req shortcutRequest
	if wire.IsBinary(r.Header.Get("Content-Type")) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			s.httpError(w, decodeStatus(err), err)
			return
		}
		breq, err := wire.DecodeShortcutRequest(body)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
		req = shortcutRequest{
			Graph:     breq.Graph.String(),
			Partition: breq.Partition,
			Seed:      breq.Seed,
			Options:   breq.Options,
		}
	} else if err := decode(w, r, &req); err != nil {
		s.httpError(w, decodeStatus(err), err)
		return
	}
	req.Forwarded = r.Header.Get(cluster.ForwardedHeader) != ""
	if req.Async {
		s.submitAsync(w, jobKindShortcut, req)
		return
	}
	if wire.IsBinary(r.Header.Get("Accept")) {
		s.serveShortcutBinary(w, r, req)
		return
	}
	resp, err := s.buildShortcut(r.Context(), req)
	if err != nil {
		s.httpError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, resp)
}

// serveShortcutBinary answers a build-or-get with the canonical shortcut
// record payload as the body and the envelope metadata in headers. The
// warm path this enables: request decode is a fixed-layout parse, the
// quality measurement round trip is skipped (binary responses don't carry
// quality numbers), and the body is the stored payload — zero-copy off a
// mapped segment when the daemon runs with -data — instead of a fresh
// JSON encode.
func (s *server) serveShortcutBinary(w http.ResponseWriter, r *http.Request, req shortcutRequest) {
	ctx := r.Context()
	fp, err := service.ParseFingerprint(req.Graph)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	g, ok := s.eng.Graph(fp)
	if !ok {
		s.httpError(w, statusFor(service.ErrUnknownGraph), service.ErrUnknownGraph)
		return
	}
	opts, err := cli.ParseBuildOptions(req.Options)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	parts, err := s.resolveParts(g, fp, req)
	if err != nil {
		s.httpError(w, statusFor(err), err)
		return
	}
	// Cluster routing mirrors buildShortcut: the key's ring owner executes,
	// an unreachable owner degrades to local serving. Spec-form requests
	// relay over the binary protocol end to end; explicit part lists have
	// no binary request form, so a misdirected one is served locally (rare
	// and cold — the duplicate build is bounded by the replica count).
	if s.cl != nil && !req.Forwarded && req.Partition != "" {
		key := service.ShortcutKey(fp, parts, opts)
		if owner, self := s.cl.Owner(key); !self {
			if s.forwardShortcutBinary(w, r, owner, fp, g, req) {
				return
			}
		}
	}
	c, hit, err := s.eng.Build(ctx, service.BuildRequest{Graph: fp, Options: opts, Parts: parts})
	if err != nil {
		s.httpError(w, statusFor(err), err)
		return
	}
	source := "cache"
	if !hit {
		source = c.Source.String()
	}
	annotate(ctx, func(ri *reqInfo) {
		ri.graph = c.GraphFP.String()
		ri.shortcut = c.Key.String()
		ri.source = source
	})
	// Body: prefer the stored record payload (zero-copy when mapped);
	// encode fresh only when the record is not durable — storeless daemon,
	// or a detached persist that has not landed yet.
	var payload []byte
	if s.st != nil {
		if p, ok, err := s.st.ShortcutPayload(c.Key); err == nil && ok {
			payload = p
		}
	}
	if payload == nil {
		payload = store.EncodeShortcutRecordPayload(c.GraphFP, c.Parts, opts, c.Result, c.BuildTime)
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentType)
	h.Set(wire.HeaderKey, c.Key.String())
	h.Set(wire.HeaderGraph, c.GraphFP.String())
	h.Set(wire.HeaderSource, source)
	h.Set(wire.HeaderBuildNs, strconv.FormatInt(c.BuildTime.Nanoseconds(), 10))
	if s.cl != nil {
		h.Set(wire.HeaderServedBy, s.cl.Self())
	}
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	if _, err := w.Write(payload); err != nil {
		s.encodeFailed(err)
	}
}

// forwardShortcutBinary relays a binary shortcut request to the key's
// owner and copies its answer — status, metadata headers, payload body —
// through verbatim. Returns false when the owner is unreachable, in which
// case the caller serves locally (same degraded path as forwardShortcut);
// a reachable owner's answer is final. A 404 (owner missed the graph
// broadcast) gets the graph pushed and one retry.
func (s *server) forwardShortcutBinary(w http.ResponseWriter, r *http.Request, owner string,
	fp service.Fingerprint, g *graph.Graph, req shortcutRequest) bool {
	if !s.cl.Available(owner) {
		return false
	}
	ctx := r.Context()
	body := wire.AppendShortcutRequest(nil, wire.ShortcutRequest{
		Graph: fp, Partition: req.Partition, Seed: req.Seed, Options: req.Options,
	})
	for attempt := 0; ; attempt++ {
		status, hdr, respBody, err := s.cl.ForwardRequestBinary(ctx, owner, "/v1/shortcuts", body)
		if err != nil {
			if s.logger != nil {
				s.logger.Warn("forward_failed", "owner", owner, "err", err.Error())
			}
			return false
		}
		if status == http.StatusNotFound && attempt == 0 {
			// The owner does not know the graph: push our copy and retry.
			if err := s.cl.PushGraph(ctx, owner, fp, store.EncodeGraphPayload(g)); err != nil {
				return false
			}
			continue
		}
		for _, k := range []string{"Content-Type", wire.HeaderKey, wire.HeaderGraph,
			wire.HeaderServedBy, wire.HeaderBuildNs} {
			if v := hdr.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		if src := hdr.Get(wire.HeaderSource); src != "" {
			w.Header().Set(wire.HeaderSource, "forward:"+src)
			annotate(ctx, func(ri *reqInfo) {
				ri.graph = hdr.Get(wire.HeaderGraph)
				ri.shortcut = hdr.Get(wire.HeaderKey)
				ri.source = "forward:" + src
			})
		}
		w.WriteHeader(status)
		if _, err := w.Write(respBody); err != nil {
			s.encodeFailed(err)
		}
		return true
	}
}

// jobRequest runs a query job. Kind selects the algorithm; graph-level
// jobs (mst, mincut) address a graph fingerprint, shortcut-level jobs
// (aggregate, measure) address a shortcut key from /v1/shortcuts. Async
// submissions return 202 with a job ID instead of blocking.
type jobRequest struct {
	Kind     string `json:"kind"`
	Graph    string `json:"graph,omitempty"`
	Shortcut string `json:"shortcut,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Op is the aggregation operator: "sum" (default), "min", or "max".
	Op string `json:"op,omitempty"`
	// Values optionally carries one int per node for aggregate jobs
	// (default: constant 1, so sum counts part sizes).
	Values []int64 `json:"values,omitempty"`
	// Provider selects the MST/MinCut shortcut provider: "central"
	// (default), "distributed", "adaptive", or "trivial".
	Provider string `json:"provider,omitempty"`
	Async    bool   `json:"async,omitempty"`
}

// jobKindShortcut is the async-manager kind for build-or-get shortcut
// requests; the query kinds ("mst", "mincut", "aggregate", "measure")
// pass through jobRequest.Kind unchanged.
const jobKindShortcut = "shortcut"

// validJobKind reports whether kind names a query-job algorithm.
func validJobKind(kind string) bool {
	switch kind {
	case "mst", "mincut", "aggregate", "measure":
		return true
	}
	return false
}

func parseOp(s string) (dist.Op, error) {
	switch s {
	case "", "sum":
		return dist.OpSum, nil
	case "min":
		return dist.OpMin, nil
	case "max":
		return dist.OpMax, nil
	}
	return 0, fmt.Errorf("unknown op %q (want sum, min, or max)", s)
}

func parseProvider(s string) (dist.ProviderKind, error) {
	switch s {
	case "", "central":
		return dist.ProviderCentral, nil
	case "distributed":
		return dist.ProviderDistributed, nil
	case "adaptive":
		return dist.ProviderCentralAdaptive, nil
	case "trivial":
		return dist.ProviderTrivial, nil
	}
	return 0, fmt.Errorf("unknown provider %q (want central, distributed, adaptive, or trivial)", s)
}

type roundsJSON struct {
	Measured int `json:"measured"`
	Sync     int `json:"sync"`
	Charged  int `json:"charged"`
	Total    int `json:"total"`
}

func roundsOf(r dist.Rounds) roundsJSON {
	return roundsJSON{Measured: r.Measured, Sync: r.Sync, Charged: r.Charged, Total: r.Total()}
}

// runJob executes one query job: the path shared by the synchronous
// POST /v1/jobs handler and the async dispatcher.
func (s *server) runJob(ctx context.Context, req jobRequest) (map[string]any, error) {
	switch req.Kind {
	case "mst":
		fp, err := service.ParseFingerprint(req.Graph)
		if err != nil {
			return nil, badRequest(err)
		}
		provider, err := parseProvider(req.Provider)
		if err != nil {
			return nil, badRequest(err)
		}
		res, err := s.eng.MST(ctx, service.MSTRequest{
			Graph:   fp,
			Options: dist.MSTOptions{Provider: provider, Seed: req.Seed},
		})
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"kind": "mst", "weight": res.Weight, "edges": len(res.EdgeIDs),
			"phases": res.Phases, "rounds": roundsOf(res.Rounds),
		}, nil
	case "mincut":
		fp, err := service.ParseFingerprint(req.Graph)
		if err != nil {
			return nil, badRequest(err)
		}
		res, err := s.eng.MinCut(ctx, service.MinCutRequest{
			Graph:   fp,
			Options: dist.MinCutOptions{Seed: req.Seed},
		})
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"kind": "mincut", "value": res.Value, "trees": res.Trees,
			"rounds": roundsOf(res.Rounds),
		}, nil
	case "aggregate":
		key, err := service.ParseFingerprint(req.Shortcut)
		if err != nil {
			return nil, badRequest(err)
		}
		op, err := parseOp(req.Op)
		if err != nil {
			return nil, badRequest(err)
		}
		areq := service.AggregateRequest{Shortcut: key, Op: op, Seed: req.Seed}
		if req.Values != nil {
			areq.Values = make([]dist.Payload, len(req.Values))
			for i, v := range req.Values {
				areq.Values[i] = dist.Payload{v, v, v}
			}
		}
		res, err := s.eng.Aggregate(ctx, areq)
		if err != nil {
			return nil, err
		}
		parts := make([]int64, len(res.PartResult))
		for i, p := range res.PartResult {
			parts[i] = p[0]
		}
		return map[string]any{
			"kind": "aggregate", "parts": parts, "rounds": roundsOf(res.Rounds),
		}, nil
	case "measure":
		key, err := service.ParseFingerprint(req.Shortcut)
		if err != nil {
			return nil, badRequest(err)
		}
		q, err := s.eng.Measure(ctx, key)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"kind": "measure", "congestion": q.Congestion, "dilation": q.Dilation,
			"max_blocks": q.MaxBlocks, "covered_parts": q.CoveredParts,
			"dilation_exact": q.DilationExact,
		}, nil
	default:
		return nil, badRequest(
			fmt.Errorf("unknown job kind %q (want mst, mincut, aggregate, or measure)", req.Kind))
	}
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decode(w, r, &req); err != nil {
		s.httpError(w, decodeStatus(err), err)
		return
	}
	if req.Async {
		// Reject unknown kinds before accepting: a 202 for a job that can
		// only ever fail helps nobody.
		if !validJobKind(req.Kind) {
			s.httpError(w, http.StatusBadRequest,
				fmt.Errorf("unknown job kind %q (want mst, mincut, aggregate, or measure)", req.Kind))
			return
		}
		s.submitAsync(w, req.Kind, req)
		return
	}
	out, err := s.runJob(r.Context(), req)
	if err != nil {
		s.httpError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, out)
}

// execAsync is the jobs.Executor: it re-decodes the persisted request body
// and runs the identical execution path as the synchronous handlers. The
// ctx is the job's own (canceled by DELETE /v1/jobs/{id} and by
// shutdown), not an HTTP request context.
func (s *server) execAsync(ctx context.Context, kind string, request json.RawMessage) (json.RawMessage, error) {
	if kind == jobKindShortcut {
		var req shortcutRequest
		if err := strictUnmarshal(request, &req); err != nil {
			return nil, err
		}
		resp, err := s.buildShortcut(ctx, req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	}
	var req jobRequest
	if err := strictUnmarshal(request, &req); err != nil {
		return nil, err
	}
	req.Kind = kind
	out, err := s.runJob(ctx, req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(out)
}

// asyncStatus maps manager submission errors to HTTP statuses.
func asyncStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// submitAsync marshals the decoded request back to JSON (its durable
// form), submits it, and acknowledges with 202 + the queued job record.
func (s *server) submitAsync(w http.ResponseWriter, kind string, req any) {
	payload, err := json.Marshal(req)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	rec, err := s.mgr.Submit(kind, payload)
	if err != nil {
		s.httpError(w, asyncStatus(err), err)
		return
	}
	s.writeJSONStatus(w, http.StatusAccepted, jobView(rec, false))
}

// jobViewJSON is the wire form of a job record. Result is included only
// where the full record was asked for (GET /v1/jobs/{id}); listings and
// submission acknowledgements omit it.
type jobViewJSON struct {
	ID              string          `json:"id"`
	Kind            string          `json:"kind"`
	State           string          `json:"state"`
	Attempts        int             `json:"attempts,omitempty"`
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	Created         string          `json:"created"`
	Started         string          `json:"started,omitempty"`
	Finished        string          `json:"finished,omitempty"`
	Error           string          `json:"error,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"`
}

func jobView(rec jobs.Record, withResult bool) jobViewJSON {
	ts := func(ns int64) string {
		if ns == 0 {
			return ""
		}
		return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	v := jobViewJSON{
		ID:              rec.ID.String(),
		Kind:            rec.Kind,
		State:           rec.State.String(),
		Attempts:        rec.Attempts,
		CancelRequested: rec.CancelRequested,
		Created:         ts(rec.CreatedNs),
		Started:         ts(rec.StartedNs),
		Finished:        ts(rec.FinishedNs),
		Error:           rec.Error,
	}
	if withResult {
		v.Result = rec.Result
	}
	return v
}

// batchRequest is a list of async submissions: each item is either a
// shortcut request (no "kind" field) or a query-job request. The whole
// batch is validated before anything is accepted, so a 400 means nothing
// was enqueued.
type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// maxBatchItems bounds one batch; larger workloads paginate.
const maxBatchItems = 4096

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decode(w, r, &req); err != nil {
		s.httpError(w, decodeStatus(err), err)
		return
	}
	if len(req.Requests) == 0 {
		s.httpError(w, http.StatusBadRequest, errors.New("empty batch: need requests"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		s.httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d requests exceeds the %d-item limit", len(req.Requests), maxBatchItems))
		return
	}
	// Pass 1: validate shape so a malformed item rejects the whole batch
	// before any job is accepted.
	kinds := make([]string, len(req.Requests))
	for i, raw := range req.Requests {
		var probe struct {
			Kind string `json:"kind"`
		}
		_ = json.Unmarshal(raw, &probe) // shape errors surface in the strict pass below
		if probe.Kind == "" {
			var sr shortcutRequest
			if err := strictUnmarshal(raw, &sr); err != nil {
				s.httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: %w", i, err))
				return
			}
			kinds[i] = jobKindShortcut
			continue
		}
		var jr jobRequest
		if err := strictUnmarshal(raw, &jr); err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: %w", i, err))
			return
		}
		if !validJobKind(jr.Kind) {
			s.httpError(w, http.StatusBadRequest,
				fmt.Errorf("request %d: unknown job kind %q", i, jr.Kind))
			return
		}
		kinds[i] = jr.Kind
	}
	// Pass 2: submit. A queue-full mid-batch reports what was accepted —
	// those jobs are already durable and will run.
	accepted := make([]jobViewJSON, 0, len(req.Requests))
	for i, raw := range req.Requests {
		rec, err := s.mgr.Submit(kinds[i], raw)
		if err != nil {
			s.writeJSONStatus(w, asyncStatus(err), map[string]any{
				"error": fmt.Sprintf("request %d: %v (%d accepted)", i, err, len(accepted)),
				"jobs":  accepted,
			})
			return
		}
		accepted = append(accepted, jobView(rec, false))
	}
	s.writeJSONStatus(w, http.StatusAccepted, map[string]any{"jobs": accepted})
}

// maxJobWait caps the GET /v1/jobs/{id} long-poll; clients with longer
// horizons re-poll.
const maxJobWait = 5 * time.Minute

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, err := jobs.ParseID(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	rec, ok := s.mgr.Get(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, jobs.ErrUnknownJob)
		return
	}
	if ws := r.URL.Query().Get("wait"); ws != "" && !rec.State.Terminal() {
		wait, err := time.ParseDuration(ws)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %w", ws, err))
			return
		}
		if wait > maxJobWait {
			wait = maxJobWait
		}
		if wait > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), wait)
			rec, _ = s.mgr.Wait(ctx, id)
			cancel()
		}
	}
	s.writeJSON(w, jobView(rec, true))
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	var filter *jobs.State
	if fs := r.URL.Query().Get("state"); fs != "" {
		st, err := jobs.ParseState(fs)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
		filter = &st
	}
	recs := s.mgr.List()
	out := make([]jobViewJSON, 0, len(recs))
	for _, rec := range recs {
		if filter != nil && rec.State != *filter {
			continue
		}
		out = append(out, jobView(rec, false))
	}
	s.writeJSON(w, map[string]any{"jobs": out})
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobs.ParseID(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.mgr.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		s.httpError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrFinished):
		s.httpError(w, http.StatusConflict,
			fmt.Errorf("job %s already %s", id, rec.State))
	case err != nil:
		s.httpError(w, http.StatusInternalServerError, err)
	default:
		s.writeJSON(w, jobView(rec, false))
	}
}

// snapshotStats is the single merge path for engine and async-manager
// counters: every consumer (the /v1/stats handler today; anything added
// later) must go through it. The read order is load-bearing: engine
// counters are sampled FIRST, manager counters SECOND. A job's build is
// recorded by the engine strictly after the manager recorded its
// submission, so sampling the engine at t1 and the manager at t2 > t1 can
// only see submissions the engine-side work hasn't landed for yet — never
// the reverse. One response can therefore never report more async-driven
// builds than job submissions, which the old two-reads-in-the-handler
// arrangement did not guarantee against reordering edits.
func (s *server) snapshotStats() service.Stats {
	st := s.eng.Stats()
	if s.mgr != nil {
		js := s.mgr.Stats()
		st.AsyncSubmitted = js.Submitted
		st.AsyncQueued = js.Queued
		st.AsyncRunning = js.Running
		st.AsyncDone = js.Done
		st.AsyncFailed = js.Failed
		st.AsyncCanceled = js.Canceled
		st.AsyncRetries = js.Retries
		st.AsyncPersistErrors = js.PersistErrors
		st.AsyncRecoverSkip = js.RecoverSkipped
	}
	if s.cl != nil {
		cs := s.cl.Stats()
		st.Forwards = cs.Forwards
		st.ForwardErrors = cs.ForwardErrors
		st.SyncPulls = cs.SyncPulls
		st.SyncRounds = cs.SyncRounds
		st.SyncErrors = cs.SyncErrors
		st.PeersReachable = cs.PeersReachable
	}
	return st
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.snapshotStats()
	s.writeJSON(w, map[string]any{
		"stats":          st,
		"hit_rate":       st.HitRate(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}
