package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/cli"
	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/service"
)

// server wires the service engine to the HTTP JSON API. Handlers are thin:
// decode, translate fingerprints, call the engine, encode. All concurrency
// control (worker pool, cache, singleflight) lives in internal/service.
type server struct {
	eng   *service.Engine
	start time.Time
	// parts memoizes the (graph, partition spec, seed) → Partition
	// translation, which is deterministic but costs a BFS per request;
	// without it, partition parsing dominates cache-hit latency. The memo
	// stops growing at partMemoLimit entries so unbounded distinct
	// requests cannot exhaust memory (beyond the limit, parsing just
	// stays uncached).
	parts     sync.Map // string → *partition.Partition
	partCount atomic.Int64
}

// partMemoLimit caps the partition memo; far above any realistic working
// set (the shortcut cache holds far fewer entries anyway).
const partMemoLimit = 4096

func newServer(eng *service.Engine) http.Handler {
	s := &server{eng: eng, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	mux.HandleFunc("DELETE /v1/graphs/{fp}", s.handleGraphDelete)
	mux.HandleFunc("POST /v1/shortcuts", s.handleShortcuts)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError is the uniform error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// statusFor maps engine errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownGraph), errors.Is(err, service.ErrUnknownShortcut):
		return http.StatusNotFound
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// graphRequest ingests a graph either by family spec ("grid:32x32", the
// internal/cli language) or as an explicit edge list [[u,v],[u,v,w],...].
type graphRequest struct {
	Spec  string      `json:"spec,omitempty"`
	Seed  int64       `json:"seed,omitempty"`
	Nodes int         `json:"nodes,omitempty"`
	Edges [][]float64 `json:"edges,omitempty"`
}

type graphResponse struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var g *graph.Graph
	switch {
	case req.Spec != "" && req.Edges != nil:
		httpError(w, http.StatusBadRequest, errors.New("give either spec or edges, not both"))
		return
	case req.Spec != "":
		var err error
		g, _, err = cli.ParseGraph(req.Spec, req.Seed)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	case req.Edges != nil:
		var err error
		g, err = graphFromEdges(req.Nodes, req.Edges)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, errors.New("need spec or nodes+edges"))
		return
	}
	fp, err := s.eng.AddGraph(g)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Respond with the representative's size: on re-ingest of known
	// content these match the submitted graph by construction.
	rep, _ := s.eng.Graph(fp)
	writeJSON(w, graphResponse{Graph: fp.String(), Nodes: rep.NumNodes(), Edges: rep.NumEdges()})
}

// graphFromEdges validates and assembles an explicit edge list; unlike
// graph.AddEdge it rejects bad input with an error instead of panicking.
func graphFromEdges(nodes int, edges [][]float64) (*graph.Graph, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("nodes must be positive, got %d", nodes)
	}
	g := graph.New(nodes)
	for i, e := range edges {
		if len(e) != 2 && len(e) != 3 {
			return nil, fmt.Errorf("edge %d: want [u,v] or [u,v,w], got %d values", i, len(e))
		}
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return nil, fmt.Errorf("edge %d: endpoints must be integers", i)
		}
		if u < 0 || u >= nodes || v < 0 || v >= nodes {
			return nil, fmt.Errorf("edge %d: endpoints {%d,%d} out of range [0,%d)", i, u, v, nodes)
		}
		if u == v {
			return nil, fmt.Errorf("edge %d: self-loop at node %d", i, u)
		}
		w := 1.0
		if len(e) == 3 {
			w = e[2]
		}
		g.AddWeightedEdge(u, v, w)
	}
	return g, nil
}

// graphInfo is one row of the GET /v1/graphs listing.
type graphInfo struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	infos := s.eng.Graphs()
	out := make([]graphInfo, len(infos))
	for i, gi := range infos {
		out[i] = graphInfo{Graph: gi.Fingerprint.String(), Nodes: gi.Nodes, Edges: gi.Edges}
	}
	writeJSON(w, map[string]any{"graphs": out})
}

// handleGraphDelete evicts a graph everywhere: the engine registration,
// every resident cached shortcut built on it, and — when the daemon runs
// with -data — the durable records (reclaimed by the next locshortctl gc).
func (s *server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	fp, err := service.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	evicted, err := s.eng.RemoveGraph(fp)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, map[string]any{"graph": fp.String(), "evicted_shortcuts": evicted})
}

// shortcutRequest asks for a build-or-get of a shortcut on a registered
// graph. The partition is given as an internal/cli spec plus seed or as an
// explicit part list; options use the canonical internal/cli textual form.
type shortcutRequest struct {
	Graph     string  `json:"graph"`
	Partition string  `json:"partition,omitempty"`
	Parts     [][]int `json:"parts,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Options   string  `json:"options,omitempty"`
}

type shortcutResponse struct {
	Shortcut string `json:"shortcut"`
	Graph    string `json:"graph"`
	Cached   bool   `json:"cached"`
	// Source is the latency class that served this response: "cache"
	// (resident entry), "store" (reloaded from the durable store), or
	// "built" (cold construction). Cached is true exactly when Source is
	// "cache".
	Source       string  `json:"source"`
	BuildMillis  float64 `json:"build_ms"`
	Delta        int     `json:"delta"`
	Congestion   int     `json:"congestion"`
	Dilation     int     `json:"dilation"`
	MaxBlocks    int     `json:"max_blocks"`
	CoveredParts int     `json:"covered_parts"`
}

func (s *server) handleShortcuts(w http.ResponseWriter, r *http.Request) {
	var req shortcutRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fp, err := service.ParseFingerprint(req.Graph)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, ok := s.eng.Graph(fp)
	if !ok {
		httpError(w, http.StatusNotFound, service.ErrUnknownGraph)
		return
	}
	opts, err := cli.ParseBuildOptions(req.Options)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	breq := service.BuildRequest{Graph: fp, Options: opts}
	switch {
	case req.Partition != "" && req.Parts != nil:
		httpError(w, http.StatusBadRequest, errors.New("give either partition or parts, not both"))
		return
	case req.Partition != "":
		pkey := fmt.Sprintf("%s/%s/%d", req.Graph, req.Partition, req.Seed)
		if cached, ok := s.parts.Load(pkey); ok {
			breq.Parts = cached.(*partition.Partition)
		} else if breq.Parts, err = cli.ParsePartition(g, req.Partition, req.Seed); err == nil &&
			s.partCount.Load() < partMemoLimit {
			if _, loaded := s.parts.LoadOrStore(pkey, breq.Parts); !loaded {
				s.partCount.Add(1)
			}
		}
	case req.Parts != nil:
		breq.Parts, err = partition.New(g, req.Parts)
	default:
		httpError(w, http.StatusBadRequest, errors.New("need partition spec or parts"))
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	c, hit, err := s.eng.Build(r.Context(), breq)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	// Quality via the engine so first-touch measurement runs on the
	// bounded worker pool, not the serving goroutine; memoized, so hits
	// pay only a cache lookup. Measured on the held entry: re-resolving
	// c.Key here would race eviction under capacity pressure.
	q, err := s.eng.MeasureCached(r.Context(), c)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	source := "cache"
	if !hit {
		source = c.Source.String()
	}
	writeJSON(w, shortcutResponse{
		Shortcut:     c.Key.String(),
		Graph:        c.GraphFP.String(),
		Cached:       hit,
		Source:       source,
		BuildMillis:  float64(c.BuildTime.Microseconds()) / 1000,
		Delta:        c.Result.Delta,
		Congestion:   q.Congestion,
		Dilation:     q.Dilation,
		MaxBlocks:    q.MaxBlocks,
		CoveredParts: q.CoveredParts,
	})
}

// jobRequest runs a query job. Kind selects the algorithm; graph-level
// jobs (mst, mincut) address a graph fingerprint, shortcut-level jobs
// (aggregate, measure) address a shortcut key from /v1/shortcuts.
type jobRequest struct {
	Kind     string `json:"kind"`
	Graph    string `json:"graph,omitempty"`
	Shortcut string `json:"shortcut,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Op is the aggregation operator: "sum" (default), "min", or "max".
	Op string `json:"op,omitempty"`
	// Values optionally carries one int per node for aggregate jobs
	// (default: constant 1, so sum counts part sizes).
	Values []int64 `json:"values,omitempty"`
	// Provider selects the MST/MinCut shortcut provider: "central"
	// (default), "distributed", "adaptive", or "trivial".
	Provider string `json:"provider,omitempty"`
}

func parseOp(s string) (dist.Op, error) {
	switch s {
	case "", "sum":
		return dist.OpSum, nil
	case "min":
		return dist.OpMin, nil
	case "max":
		return dist.OpMax, nil
	}
	return 0, fmt.Errorf("unknown op %q (want sum, min, or max)", s)
}

func parseProvider(s string) (dist.ProviderKind, error) {
	switch s {
	case "", "central":
		return dist.ProviderCentral, nil
	case "distributed":
		return dist.ProviderDistributed, nil
	case "adaptive":
		return dist.ProviderCentralAdaptive, nil
	case "trivial":
		return dist.ProviderTrivial, nil
	}
	return 0, fmt.Errorf("unknown provider %q (want central, distributed, adaptive, or trivial)", s)
}

type roundsJSON struct {
	Measured int `json:"measured"`
	Sync     int `json:"sync"`
	Charged  int `json:"charged"`
	Total    int `json:"total"`
}

func roundsOf(r dist.Rounds) roundsJSON {
	return roundsJSON{Measured: r.Measured, Sync: r.Sync, Charged: r.Charged, Total: r.Total()}
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	switch req.Kind {
	case "mst":
		fp, err := service.ParseFingerprint(req.Graph)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		provider, err := parseProvider(req.Provider)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.eng.MST(ctx, service.MSTRequest{
			Graph:   fp,
			Options: dist.MSTOptions{Provider: provider, Seed: req.Seed},
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"kind": "mst", "weight": res.Weight, "edges": len(res.EdgeIDs),
			"phases": res.Phases, "rounds": roundsOf(res.Rounds),
		})
	case "mincut":
		fp, err := service.ParseFingerprint(req.Graph)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.eng.MinCut(ctx, service.MinCutRequest{
			Graph:   fp,
			Options: dist.MinCutOptions{Seed: req.Seed},
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"kind": "mincut", "value": res.Value, "trees": res.Trees,
			"rounds": roundsOf(res.Rounds),
		})
	case "aggregate":
		key, err := service.ParseFingerprint(req.Shortcut)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		op, err := parseOp(req.Op)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		areq := service.AggregateRequest{Shortcut: key, Op: op, Seed: req.Seed}
		if req.Values != nil {
			areq.Values = make([]dist.Payload, len(req.Values))
			for i, v := range req.Values {
				areq.Values[i] = dist.Payload{v, v, v}
			}
		}
		res, err := s.eng.Aggregate(ctx, areq)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		parts := make([]int64, len(res.PartResult))
		for i, p := range res.PartResult {
			parts[i] = p[0]
		}
		writeJSON(w, map[string]any{
			"kind": "aggregate", "parts": parts, "rounds": roundsOf(res.Rounds),
		})
	case "measure":
		key, err := service.ParseFingerprint(req.Shortcut)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		q, err := s.eng.Measure(ctx, key)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"kind": "measure", "congestion": q.Congestion, "dilation": q.Dilation,
			"max_blocks": q.MaxBlocks, "covered_parts": q.CoveredParts,
			"dilation_exact": q.DilationExact,
		})
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown job kind %q (want mst, mincut, aggregate, or measure)", req.Kind))
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]any{
		"stats":          st,
		"hit_rate":       st.HitRate(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}
