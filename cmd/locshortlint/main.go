// Command locshortlint is the repo's invariant checker: a multichecker
// driver for the internal/analysis suite. It loads the packages matched
// by its arguments (default ./...), applies every analyzer, and prints
// vet-style file:line:col diagnostics, exiting nonzero when any fire.
//
// Usage:
//
//	locshortlint [-list] [-run name,name] [packages]
//
// CI runs `go run ./cmd/locshortlint ./...` in the same matrix as gofmt
// and go vet; a violation fails the build. Audited exceptions are
// annotated in source with //locshort:*-ok escape comments (see
// internal/analysis and DESIGN.md §12), never silenced here.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"locshort/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "locshortlint: unknown analyzer %q\n", name)
			os.Exit(1)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locshortlint: %v\n", err)
		os.Exit(1)
	}
	bad := false
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "locshortlint: %s: %v\n", pkg.ImportPath, err)
				os.Exit(1)
			}
			for _, d := range diags {
				bad = true
				fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
	if bad {
		os.Exit(2)
	}
}
