package locshort_test

import (
	"context"
	"fmt"

	"locshort"
)

// ExampleBuild runs the Theorem 3.1 construction with the parameter-free
// doubling search on a planar grid partitioned into its rows, the
// paper's canonical bounded-density instance.
func ExampleBuild() {
	g := locshort.Grid(8, 8)
	p, _ := locshort.GridRows(g, 8, 8)
	res, err := locshort.Build(g, p, locshort.BuildOptions{})
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	fmt.Println("accepted delta':", res.Delta)
	fmt.Println("iterations:", res.Iterations)
	fmt.Println("covered parts:", res.Shortcut.CoveredCount(), "of", p.NumParts())
	// Output:
	// accepted delta': 1
	// iterations: 1
	// covered parts: 8 of 8
}

// ExampleMeasure checks a built shortcut against the Theorem 1.2 quality
// bounds: congestion and dilation are both O(delta * D) up to logs.
func ExampleMeasure() {
	g := locshort.Grid(8, 8)
	p, _ := locshort.GridRows(g, 8, 8)
	res, _ := locshort.Build(g, p, locshort.BuildOptions{})
	q := locshort.Measure(res.Shortcut)
	fmt.Println("congestion:", q.Congestion)
	fmt.Println("dilation:", q.Dilation)
	fmt.Println("max blocks:", q.MaxBlocks)
	fmt.Println("quality Q = c + d:", q.Value())
	// Output:
	// congestion: 5
	// dilation: 11
	// max blocks: 1
	// quality Q = c + d: 16
}

// ExampleNewServiceEngine exercises the serving layer in-process: register
// a graph by content, build a shortcut once, and observe that the second
// identical request is answered from the cache without rebuilding.
func ExampleNewServiceEngine() {
	eng := locshort.NewServiceEngine(locshort.ServiceConfig{Workers: 2})
	defer eng.Close()

	g := locshort.Grid(8, 8)
	fp, _ := eng.AddGraph(g)
	parts, _ := locshort.GridRows(g, 8, 8)
	req := locshort.ServiceBuildRequest{Graph: fp, Parts: parts}

	ctx := context.Background()
	c1, hit1, _ := eng.Build(ctx, req)
	c2, hit2, _ := eng.Build(ctx, req)

	fmt.Println("first request hit:", hit1)
	fmt.Println("second request hit:", hit2)
	fmt.Println("same shortcut key:", c1.Key == c2.Key)
	stats := eng.Stats()
	fmt.Println("constructions run:", stats.Builds)
	// Output:
	// first request hit: false
	// second request hit: true
	// same shortcut key: true
	// constructions run: 1
}
