module locshort

go 1.24
