package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
)

// swapHandler lets a test bind httptest servers (to learn their addresses)
// before the clusters that serve on them exist.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	addr string
	st   *store.Store
	cl   *Cluster
	srv  *httptest.Server
	sw   *swapHandler
}

// newTestCluster brings up n peer-API-only nodes (stores + Cluster +
// Handler, no engines) on loopback listeners sharing one membership.
func newTestCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{addr: strings.TrimPrefix(srv.URL, "http://"), srv: srv, sw: sw}
		addrs[i] = nodes[i].addr
	}
	for i, node := range nodes {
		st, err := store.Open(filepath.Join(t.TempDir(), "data"), store.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cl, err := New(Config{
			Self:         node.addr,
			Nodes:        addrs,
			VNodes:       16,
			SyncInterval: time.Hour, // tests drive SyncNow explicitly
			FetchTimeout: 5 * time.Second,
			DownBackoff:  50 * time.Millisecond,
			Store:        st,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].st, nodes[i].cl = st, cl
		node.sw.set(cl.Handler())
	}
	return nodes
}

// clusterFixture builds one (graph, partition, shortcut) triple and returns
// it with its content-addressed identities.
func clusterFixture(t *testing.T, spec, partSpec string, seed int64) (
	*graph.Graph, *partition.Partition, *shortcut.Result, service.Fingerprint, service.Fingerprint) {
	t.Helper()
	g, _, err := cli.ParseGraph(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.ParsePartition(g, partSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.Build(g, p, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gfp := service.FingerprintGraph(g)
	key := service.ShortcutKey(gfp, p, shortcut.Options{})
	return g, p, res, gfp, key
}

// seedRecord persists the fixture into one node's store.
func seedRecord(t *testing.T, node *testNode, g *graph.Graph, p *partition.Partition,
	res *shortcut.Result, gfp, key service.Fingerprint) {
	t.Helper()
	if err := node.st.PutGraph(gfp, g); err != nil {
		t.Fatal(err)
	}
	if err := node.st.PutShortcut(key, gfp, p, shortcut.Options{}, res, 123*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestFetchShortcutFromPeer(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, p, res, gfp, key := clusterFixture(t, "grid:8x8", "blobs:4", 1)
	seedRecord(t, nodes[0], g, p, res, gfp, key)

	fetched, bt, ok, err := nodes[1].cl.FetchShortcut(context.Background(), key, g, p)
	if err != nil || !ok {
		t.Fatalf("FetchShortcut: ok=%v err=%v", ok, err)
	}
	if fetched == nil || len(fetched.Shortcut.H) != len(res.Shortcut.H) {
		t.Fatalf("fetched shortcut shape mismatch")
	}
	if bt != 123*time.Millisecond {
		t.Fatalf("build time not preserved: %v", bt)
	}
	// The fetch imported the record: node 1 now serves it from its own
	// store (and can answer peers for it) without another fetch.
	if !nodes[1].st.HasShortcut(key) {
		t.Fatal("fetched record was not imported into the local store")
	}
	if !nodes[1].st.GraphKnown(gfp) {
		t.Fatal("fetched record's graph was not imported")
	}
}

func TestFetchShortcutCleanMiss(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, p, _, _, key := clusterFixture(t, "grid:6x6", "blobs:3", 2)

	_, _, ok, err := nodes[0].cl.FetchShortcut(context.Background(), key, g, p)
	if ok {
		t.Fatal("fetch reported a hit for a record nobody holds")
	}
	if err != nil {
		t.Fatalf("clean miss must not be an error: %v", err)
	}
}

func TestFetchShortcutRejectsTamperedRecord(t *testing.T) {
	nodes := newTestCluster(t, 2)
	g, p, res, gfp, key := clusterFixture(t, "grid:8x8", "blobs:4", 3)
	seedRecord(t, nodes[0], g, p, res, gfp, key)

	// Byzantine node 0: serve the real record with one payload byte
	// flipped. Verification on the fetching side must reject it.
	inner := nodes[0].cl.Handler()
	nodes[0].sw.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/peer/records/") {
			inner.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		var wire Record
		if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil || len(wire.ShortcutPayload) == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		wire.ShortcutPayload[len(wire.ShortcutPayload)/2] ^= 0x01
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire)
	}))

	_, _, ok, err := nodes[1].cl.FetchShortcut(context.Background(), key, g, p)
	if ok {
		t.Fatal("tampered record was accepted")
	}
	if err == nil {
		t.Fatal("tampered record must surface as an error, not a clean miss")
	}
	if nodes[1].st.HasShortcut(key) {
		t.Fatal("tampered record was imported")
	}
}

func TestFetchShortcutSurvivesDeadPeer(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, p, res, gfp, key := clusterFixture(t, "grid:8x8", "blobs:4", 4)
	// Both non-fetching nodes hold the record; kill one of them.
	seedRecord(t, nodes[0], g, p, res, gfp, key)
	seedRecord(t, nodes[1], g, p, res, gfp, key)
	nodes[0].srv.Close()

	for i := 0; i < 3; i++ {
		_, _, ok, err := nodes[2].cl.FetchShortcut(context.Background(), key, g, p)
		if !ok || err != nil {
			t.Fatalf("fetch %d with one dead holder: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestSyncPullsOwnedRecords(t *testing.T) {
	nodes := newTestCluster(t, 3)
	byAddr := make(map[string]*testNode)
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	g, p, res, gfp, key := clusterFixture(t, "grid:8x8", "blobs:4", 5)

	// Seed the record on exactly one node (wherever it lands is fine:
	// sync pulls from any holder, the filter is ShouldOwn on the puller).
	seedRecord(t, nodes[0], g, p, res, gfp, key)

	for _, n := range nodes {
		sr := n.cl.SyncNow(context.Background())
		if sr.Reachable != 2 {
			t.Fatalf("node %s: reachable=%d, want 2", n.addr, sr.Reachable)
		}
		if sr.Drift {
			t.Fatalf("node %s: unexpected drift", n.addr)
		}
		if sr.Errors != 0 {
			t.Fatalf("node %s: sync errors: %d", n.addr, sr.Errors)
		}
	}

	// Every replica holds the shortcut now; every node holds the graph
	// (graphs replicate everywhere).
	for _, owner := range nodes[0].cl.Replicas(key) {
		if !byAddr[owner].st.HasShortcut(key) {
			t.Fatalf("replica %s is missing the record after sync", owner)
		}
	}
	for _, n := range nodes {
		if !n.st.GraphKnown(gfp) {
			t.Fatalf("node %s is missing the graph after sync", n.addr)
		}
	}
	// Non-replicas must NOT have pulled the shortcut.
	replicas := make(map[string]bool)
	for _, owner := range nodes[0].cl.Replicas(key) {
		replicas[owner] = true
	}
	for _, n := range nodes {
		if n == nodes[0] || replicas[n.addr] {
			continue
		}
		if n.st.HasShortcut(key) {
			t.Fatalf("non-replica %s pulled the record", n.addr)
		}
	}
}

func TestSyncDetectsConfigDrift(t *testing.T) {
	nodes := newTestCluster(t, 3)
	// Rebuild node 0's cluster with a different vnode count on the same
	// address and store: config drift.
	drifted, err := New(Config{
		Self:         nodes[0].addr,
		Nodes:        []string{nodes[0].addr, nodes[1].addr, nodes[2].addr},
		VNodes:       8,
		SyncInterval: time.Hour,
		Store:        nodes[0].st,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].sw.set(drifted.Handler())

	sr := nodes[1].cl.SyncNow(context.Background())
	if !sr.Drift {
		t.Fatal("sync did not detect the vnode-count drift")
	}
	if !nodes[1].cl.Drift() {
		t.Fatal("Drift() not latched after drifted round")
	}
	if d, _ := nodes[2].cl.CheckConfig(context.Background()); !d {
		t.Fatal("CheckConfig did not detect the drift")
	}

	// Heal the config: drift clears on the next round.
	nodes[0].sw.set(nodes[0].cl.Handler())
	if sr := nodes[1].cl.SyncNow(context.Background()); sr.Drift {
		t.Fatal("drift did not clear after configs converged")
	}
	if nodes[1].cl.Drift() {
		t.Fatal("Drift() still latched after clean round")
	}
}

func TestSyncUnreachablePeerIsNotDrift(t *testing.T) {
	nodes := newTestCluster(t, 3)
	nodes[0].srv.Close()
	sr := nodes[1].cl.SyncNow(context.Background())
	if sr.Drift {
		t.Fatal("an unreachable peer must not count as config drift")
	}
	if sr.Reachable != 1 {
		t.Fatalf("reachable=%d, want 1", sr.Reachable)
	}
}

func TestBroadcastGraph(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, _, _, gfp, _ := clusterFixture(t, "grid:6x6", "blobs:3", 6)
	if err := nodes[0].st.PutGraph(gfp, g); err != nil {
		t.Fatal(err)
	}
	payload, ok, err := nodes[0].st.GraphPayload(gfp)
	if err != nil || !ok {
		t.Fatalf("graph payload: ok=%v err=%v", ok, err)
	}
	nodes[0].cl.BroadcastGraph(context.Background(), gfp, payload)
	for _, n := range nodes[1:] {
		if !n.st.GraphKnown(gfp) {
			t.Fatalf("node %s did not receive the graph broadcast", n.addr)
		}
	}
	if s := nodes[0].cl.Stats(); s.GraphPushes != 2 || s.GraphPushErrors != 0 {
		t.Fatalf("push counters: %+v", s)
	}
}

func TestGraphPutRejectsWrongFingerprint(t *testing.T) {
	nodes := newTestCluster(t, 2)
	g, _, _, gfp, _ := clusterFixture(t, "grid:6x6", "blobs:3", 7)
	if err := nodes[0].st.PutGraph(gfp, g); err != nil {
		t.Fatal(err)
	}
	payload, _, err := nodes[0].st.GraphPayload(gfp)
	if err != nil {
		t.Fatal(err)
	}
	// Push the real payload under a lying fingerprint: must be rejected.
	bogus := service.Fingerprint(gfp ^ 1)
	if err := nodes[0].cl.PushGraph(context.Background(), nodes[1].addr, bogus, payload); err == nil {
		t.Fatal("peer accepted a graph under the wrong fingerprint")
	}
	if nodes[1].st.GraphKnown(bogus) || nodes[1].st.GraphKnown(gfp) {
		t.Fatal("rejected push still left a record behind")
	}
}

func TestForwardRequestTransportError(t *testing.T) {
	nodes := newTestCluster(t, 2)
	nodes[1].srv.Close()
	_, _, err := nodes[0].cl.ForwardRequest(context.Background(), nodes[1].addr, "/v1/shortcuts", []byte(`{}`))
	if err == nil {
		t.Fatal("forward to a dead node must error")
	}
	if s := nodes[0].cl.Stats(); s.ForwardErrors != 1 {
		t.Fatalf("forward error not counted: %+v", s)
	}
	// The dead node is now in down backoff: peer fetches skip it.
	if nodes[0].cl.available(nodes[1].addr) {
		t.Fatal("dead node not marked down")
	}
	time.Sleep(60 * time.Millisecond)
	if !nodes[0].cl.available(nodes[1].addr) {
		t.Fatal("down mark did not expire after the backoff window")
	}
}

func TestRingInfoEndpoint(t *testing.T) {
	nodes := newTestCluster(t, 3)
	info, err := nodes[0].cl.RingInfoOf(context.Background(), nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Self != nodes[1].addr {
		t.Fatalf("self=%q, want %q", info.Self, nodes[1].addr)
	}
	if len(info.Nodes) != 3 || info.VNodes != 16 || info.Replication != 2 {
		t.Fatalf("ring info: %+v", info)
	}
	want := strconv.FormatUint(nodes[0].cl.ConfigHash(), 16)
	if info.ConfigHash != want {
		t.Fatalf("config hash %q != local %q (configs agree)", info.ConfigHash, want)
	}
}

func TestConfigHashCoversReplication(t *testing.T) {
	nodes := newTestCluster(t, 3)
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	other, err := New(Config{
		Self: nodes[0].addr, Nodes: addrs, VNodes: 16, Replication: 3,
		SyncInterval: time.Hour, Store: nodes[0].st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.ConfigHash() == nodes[0].cl.ConfigHash() {
		t.Fatal("replication factor does not affect the config hash")
	}
}

func TestNewValidation(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "data"), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := New(Config{Self: "a:1", Nodes: []string{"a:1"}, Store: nil}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(Config{Self: "c:3", Nodes: []string{"a:1", "b:2"}, Store: st}); err == nil {
		t.Fatal("self outside membership accepted")
	}
	if _, err := New(Config{Self: "", Nodes: []string{"a:1"}, Store: st}); err == nil {
		t.Fatal("empty self accepted")
	}
}

func TestStartStop(t *testing.T) {
	nodes := newTestCluster(t, 2)
	g, p, res, gfp, key := clusterFixture(t, "grid:8x8", "blobs:4", 8)
	seedRecord(t, nodes[0], g, p, res, gfp, key)
	nodes[1].cl.Start()
	// Start runs one round immediately; wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].cl.Stats().SyncRounds == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	nodes[1].cl.Stop()
	nodes[1].cl.Stop() // idempotent
	if nodes[1].cl.Stats().SyncRounds == 0 {
		t.Fatal("background loop never ran a round")
	}
}
