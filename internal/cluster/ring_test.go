package cluster

import (
	"math/rand"
	"testing"

	"locshort/internal/service"
)

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatalf("NewRing(%v, %d): %v", nodes, vnodes, err)
	}
	return r
}

// sampleKeys returns deterministic pseudo-random fingerprints: the keyspace
// positions real shortcut keys occupy (FNV-1a outputs are uniform).
func sampleKeys(n int, seed int64) []service.Fingerprint {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]service.Fingerprint, n)
	for i := range keys {
		keys[i] = service.Fingerprint(rng.Uint64())
	}
	return keys
}

// TestRingBalance pins the satellite requirement: at 3 nodes x 64 vnodes,
// primary ownership is within 5% of even — both by keyspace share and by
// sampled key counts — across several membership sets, so the bound is a
// property of the construction, not of one lucky node list.
func TestRingBalance(t *testing.T) {
	memberships := [][]string{
		{"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001"},
		{"127.0.0.1:8080", "127.0.0.1:8081", "127.0.0.1:8082"},
		{"node-a.internal:9000", "node-b.internal:9000", "node-c.internal:9000"},
		{"a:1", "b:1", "c:1"},
	}
	const vnodes = 64
	for _, nodes := range memberships {
		r := mustRing(t, nodes, vnodes)
		want := 1.0 / float64(len(nodes))
		shareSum := 0.0
		for _, n := range nodes {
			share := r.Share(n)
			shareSum += share
			if dev := share - want; dev > 0.05 || dev < -0.05 {
				t.Errorf("nodes %v: node %s owns share %.4f, want %.4f +/- 0.05",
					nodes, n, share, want)
			}
		}
		if shareSum < 0.999 || shareSum > 1.001 {
			t.Errorf("nodes %v: shares sum to %.6f, want 1", nodes, shareSum)
		}

		keys := sampleKeys(30000, 1)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		for _, n := range nodes {
			frac := float64(counts[n]) / float64(len(keys))
			if dev := frac - want; dev > 0.05 || dev < -0.05 {
				t.Errorf("nodes %v: node %s owns %.4f of sampled keys, want %.4f +/- 0.05",
					nodes, n, frac, want)
			}
		}
	}
}

// TestRingMinimalMovement pins consistent hashing's defining property:
// removing one node moves only the keys that node owned; every key owned by
// a survivor keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	nodes := []string{"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001"}
	const vnodes = 64
	full := mustRing(t, nodes, vnodes)
	keys := sampleKeys(20000, 2)
	for _, dead := range nodes {
		var survivors []string
		for _, n := range nodes {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		reduced := mustRing(t, survivors, vnodes)
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), reduced.Owner(k)
			if before != dead {
				if after != before {
					t.Fatalf("removing %s churned key %s: owner %s -> %s",
						dead, k, before, after)
				}
				continue
			}
			if after == dead {
				t.Fatalf("removed node %s still owns key %s", dead, k)
			}
			moved++
		}
		// The moved fraction should be the dead node's share (±5%), not a
		// full reshuffle.
		frac := float64(moved) / float64(len(keys))
		if share := full.Share(dead); frac-share > 0.05 || share-frac > 0.05 {
			t.Errorf("removing %s moved %.4f of keys, but its share was %.4f",
				dead, frac, share)
		}
	}
}

// TestRingOwners checks replica sets: distinct nodes, primary first,
// clamped to the membership size.
func TestRingOwners(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r := mustRing(t, nodes, 16)
	for _, k := range sampleKeys(2000, 3) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s, 2) = %v, want 2 nodes", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%s)[0] = %s, Owner = %s", k, owners[0], r.Owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%s) repeats %s", k, owners[0])
		}
	}
	if got := r.Owners(sampleKeys(1, 4)[0], 10); len(got) != len(nodes) {
		t.Fatalf("Owners(n=10) = %v, want all %d nodes", got, len(nodes))
	}
}

// TestRingReplicaRanges checks that the per-node replica ranges agree with
// the per-key replica sets: a key is in node N's ranges iff N is in the
// key's replica set.
func TestRingReplicaRanges(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r := mustRing(t, nodes, 16)
	const repl = 2
	ranges := make(map[string][]Range)
	for _, n := range nodes {
		ranges[n] = r.ReplicaRanges(n, repl)
		if len(ranges[n]) == 0 {
			t.Fatalf("node %s has no replica ranges", n)
		}
	}
	inRanges := func(n string, key uint64) bool {
		for _, a := range ranges[n] {
			if a.Contains(key) {
				return true
			}
		}
		return false
	}
	for _, k := range sampleKeys(5000, 5) {
		owners := r.Owners(k, repl)
		for _, n := range nodes {
			want := false
			for _, o := range owners {
				if o == n {
					want = true
				}
			}
			if got := inRanges(n, uint64(k)); got != want {
				t.Fatalf("key %s: node %s in replica ranges = %v, in Owners = %v",
					k, n, got, want)
			}
		}
	}
}

// TestRingDeterminism: ring construction must not depend on input order.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, []string{"a:1", "b:1", "c:1"}, 32)
	b := mustRing(t, []string{"c:1", "a:1", "b:1"}, 32)
	if a.ConfigHash() != b.ConfigHash() {
		t.Fatalf("config hash depends on node order: %x vs %x", a.ConfigHash(), b.ConfigHash())
	}
	for _, k := range sampleKeys(1000, 6) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s depends on node order", k)
		}
	}
}

// TestRingConfigHash: any membership or vnode difference must change the
// digest — it is the split-brain guard.
func TestRingConfigHash(t *testing.T) {
	base := mustRing(t, []string{"a:1", "b:1", "c:1"}, 64)
	diffNodes := mustRing(t, []string{"a:1", "b:1", "d:1"}, 64)
	diffVNodes := mustRing(t, []string{"a:1", "b:1", "c:1"}, 32)
	fewer := mustRing(t, []string{"a:1", "b:1"}, 64)
	for name, other := range map[string]*Ring{
		"different node": diffNodes, "different vnodes": diffVNodes, "fewer nodes": fewer,
	} {
		if base.ConfigHash() == other.ConfigHash() {
			t.Errorf("%s: config hash collides with base", name)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 64); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a:1"}, 0); err == nil {
		t.Error("zero vnodes accepted")
	}
	if _, err := NewRing([]string{""}, 4); err == nil {
		t.Error("empty node address accepted")
	}
}

// TestRingSingleNode: the degenerate ring owns everything.
func TestRingSingleNode(t *testing.T) {
	r := mustRing(t, []string{"only:1"}, 8)
	if s := r.Share("only:1"); s != 1 {
		t.Fatalf("single node share = %v, want 1", s)
	}
	for _, k := range sampleKeys(100, 7) {
		if r.Owner(k) != "only:1" {
			t.Fatalf("single node does not own %s", k)
		}
	}
	ranges := r.ReplicaRanges("only:1", 2)
	if len(ranges) != 1 || ranges[0].From != ranges[0].To {
		t.Fatalf("single node replica ranges = %v, want one full-circle arc", ranges)
	}
}
