package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/graph"
	"locshort/internal/obs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
	"locshort/internal/wire"
)

// Config wires a Cluster. Self and Nodes are required (Self must appear in
// Nodes) and so is Store: cluster mode without a durable store has nothing
// to replicate. The zero value of every other field selects defaults.
type Config struct {
	// Self is this node's advertised host:port — the address peers dial,
	// which must equal the address this node listed in their Nodes config
	// (the ring hashes addresses, so "localhost:8080" and "127.0.0.1:8080"
	// are different nodes).
	Self string
	// Nodes is the full static membership, including Self. Every node must
	// be configured with the identical set; the config-hash drift guard
	// holds readiness down when they disagree.
	Nodes []string
	// VNodes is the configured virtual nodes per member (default 64).
	VNodes int
	// Replication is how many distinct nodes should hold each shortcut
	// record (default 2, clamped to the membership size). The primary owner
	// builds; anti-entropy copies the record to the remaining replicas.
	Replication int
	// SyncInterval is the anti-entropy cadence (default 10s).
	SyncInterval time.Duration
	// FetchTimeout bounds each peer metadata/record call (default 10s).
	FetchTimeout time.Duration
	// ForwardTimeout bounds a forwarded build request (default 2m — it may
	// pay a full cold construction on the owner).
	ForwardTimeout time.Duration
	// DownBackoff is how long a peer stays marked down after a transport
	// failure before it is dialed again (default 2s). This is what bounds
	// the kill-one-node degradation window: after the first failed dial,
	// requests stop paying the dead peer's connect latency.
	DownBackoff time.Duration
	// Store is the node's durable store; fetched records import into it.
	Store store.Backend
	// Obs, when non-nil, registers the cluster metric families.
	Obs *obs.Registry
	// Logger, when non-nil, receives forward/sync/drift log lines.
	Logger *obs.Logger
	// Client overrides the HTTP client used for all peer calls.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Nodes) {
		c.Replication = len(c.Nodes)
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 10 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Minute
	}
	if c.DownBackoff <= 0 {
		c.DownBackoff = 2 * time.Second
	}
	if c.Client == nil {
		// Peer traffic is many small requests to a handful of fixed
		// addresses; the stock Transport's two idle connections per host
		// forces re-dials under concurrency. Keep a generous idle pool so
		// forwards, fetches, and anti-entropy rounds ride persistent
		// connections.
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// GraphRegistrar registers a decoded graph with a serving engine so records
// pulled by anti-entropy become requestable without a restart.
// *service.Engine implements it.
type GraphRegistrar interface {
	AddGraph(g *graph.Graph) (service.Fingerprint, error)
}

// GraphPayloadRegistrar is the optional fast path of GraphRegistrar: a
// registrar that can take the already-decoded graph together with the
// canonical payload bytes it came from, skipping the re-fingerprint and
// re-encode AddGraph would pay. *service.Engine implements it.
type GraphPayloadRegistrar interface {
	AddGraphDecoded(fp service.Fingerprint, g *graph.Graph, payload []byte)
}

// Cluster is one node's view of a static-membership locshortd cluster: the
// consistent-hash ring, the peer-API client (fetch, forward, push, sync) and
// server (Handler), per-peer health, and the anti-entropy loop. It
// implements service.PeerFetcher. All methods are safe for concurrent use.
type Cluster struct {
	cfg   Config
	ring  *Ring
	self  string
	peers []string // Nodes minus Self, sorted
	hc    *http.Client
	st    store.Backend
	log   *obs.Logger

	mu        sync.RWMutex
	registrar GraphRegistrar

	// downUntil[peer] is the unix-nano deadline before which the peer is
	// not dialed (0: up). Keys are fixed at construction, so reads are
	// lock-free map lookups on an immutable map of atomics.
	downUntil map[string]*atomic.Int64

	drift     atomic.Bool
	reachable atomic.Int64

	forwards    atomic.Uint64
	forwardErrs atomic.Uint64
	pushes      atomic.Uint64
	pushErrs    atomic.Uint64
	syncPulls   atomic.Uint64
	syncRounds  atomic.Uint64
	syncErrs    atomic.Uint64

	metrics *clusterMetrics

	loopStop chan struct{}
	loopDone chan struct{}
	started  atomic.Bool
}

var _ service.PeerFetcher = (*Cluster)(nil)

// New validates cfg and builds the node's cluster view. No network traffic
// happens here; call CheckConfig for the startup drift probe and Start for
// the anti-entropy loop.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: Store is required (cluster mode needs -data)")
	}
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	selfKnown := false
	var peers []string
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			selfKnown = true
			continue
		}
		peers = append(peers, n)
	}
	if !selfKnown {
		return nil, fmt.Errorf("cluster: self %q is not in the node list %v", cfg.Self, cfg.Nodes)
	}
	c := &Cluster{
		cfg:       cfg,
		ring:      ring,
		self:      cfg.Self,
		peers:     peers,
		hc:        cfg.Client,
		st:        cfg.Store,
		log:       cfg.Logger,
		downUntil: make(map[string]*atomic.Int64, len(peers)),
		loopStop:  make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	for _, p := range peers {
		c.downUntil[p] = &atomic.Int64{}
	}
	if cfg.Obs != nil {
		c.metrics = newClusterMetrics(cfg.Obs, c)
	}
	return c, nil
}

// SetRegistrar wires the serving engine in after construction (the engine's
// Config needs the Cluster first, so the dependency is circular at build
// time and resolved here).
func (c *Cluster) SetRegistrar(r GraphRegistrar) {
	c.mu.Lock()
	c.registrar = r
	c.mu.Unlock()
}

func (c *Cluster) getRegistrar() GraphRegistrar {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.registrar
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the other members, sorted.
func (c *Cluster) Peers() []string { return append([]string(nil), c.peers...) }

// Ring returns the (immutable) consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Replication returns the effective replica count.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// ConfigHash digests the full cluster configuration: ring membership,
// vnodes, and replication. Nodes whose hashes differ must not serve as one
// cluster; /readyz holds 503 while a reachable peer disagrees.
func (c *Cluster) ConfigHash() uint64 {
	return mix64(c.ring.ConfigHash() ^ mix64(uint64(c.cfg.Replication)+1))
}

// Owner returns the primary owner of key and whether it is this node.
func (c *Cluster) Owner(key service.Fingerprint) (node string, self bool) {
	node = c.ring.Owner(key)
	return node, node == c.self
}

// Replicas returns the nodes that should hold key's record, primary first.
func (c *Cluster) Replicas(key service.Fingerprint) []string {
	return c.ring.Owners(key, c.cfg.Replication)
}

// ShouldOwn reports whether this node is in key's replica set — the
// anti-entropy pull filter.
func (c *Cluster) ShouldOwn(key service.Fingerprint) bool {
	for _, n := range c.Replicas(key) {
		if n == c.self {
			return true
		}
	}
	return false
}

// Drift reports whether the last configuration probe found a reachable peer
// whose ring config disagrees with ours.
func (c *Cluster) Drift() bool { return c.drift.Load() }

// Available reports whether peer is currently dialable — false while the
// peer sits in down backoff after a transport failure. The router uses it
// to skip forwarding to a node known to be dead (and serve locally
// instead) without paying a dial.
func (c *Cluster) Available(peer string) bool { return c.available(peer) }

// available reports whether peer is currently dialable (not in backoff).
func (c *Cluster) available(peer string) bool {
	d, ok := c.downUntil[peer]
	if !ok {
		return false
	}
	until := d.Load()
	return until == 0 || time.Now().UnixNano() >= until
}

// markDown puts peer in dial backoff after a transport failure.
func (c *Cluster) markDown(peer string) {
	if d, ok := c.downUntil[peer]; ok {
		d.Store(time.Now().Add(c.cfg.DownBackoff).UnixNano())
	}
}

// markUp clears peer's backoff after a successful exchange.
func (c *Cluster) markUp(peer string) {
	if d, ok := c.downUntil[peer]; ok {
		d.Store(0)
	}
}

// Stats is an atomic snapshot of the cluster counters.
type Stats struct {
	Forwards        uint64
	ForwardErrors   uint64
	GraphPushes     uint64
	GraphPushErrors uint64
	SyncPulls       uint64
	SyncRounds      uint64
	SyncErrors      uint64
	PeersReachable  int64
	Drift           bool
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Forwards:        c.forwards.Load(),
		ForwardErrors:   c.forwardErrs.Load(),
		GraphPushes:     c.pushes.Load(),
		GraphPushErrors: c.pushErrs.Load(),
		SyncPulls:       c.syncPulls.Load(),
		SyncRounds:      c.syncRounds.Load(),
		SyncErrors:      c.syncErrs.Load(),
		PeersReachable:  c.reachable.Load(),
		Drift:           c.drift.Load(),
	}
}

// ---- peer API wire types ----

// RingInfo is GET /v1/peer/ring: the node's view of the cluster config plus
// its inventory counts (what locshortctl cluster status tabulates).
type RingInfo struct {
	Self        string   `json:"self"`
	Nodes       []string `json:"nodes"`
	VNodes      int      `json:"vnodes"`
	Replication int      `json:"replication"`
	// ConfigHash is the 16-hex digest of (nodes, vnodes, replication);
	// peers compare it to detect config drift.
	ConfigHash string `json:"config_hash"`
	Shortcuts  int    `json:"shortcuts"`
	Graphs     int    `json:"graphs"`
}

// InventoryEntry is one shortcut record in GET /v1/peer/inventory.
type InventoryEntry struct {
	Key       string `json:"key"`
	Graph     string `json:"graph"`
	Partition string `json:"partition"`
}

// Inventory is GET /v1/peer/inventory: the node's live record keys,
// optionally restricted to a fingerprint arc (?lo=&hi=, the (lo, hi]
// wrapping convention of cluster.Range).
type Inventory struct {
	Shortcuts []InventoryEntry `json:"shortcuts"`
	Graphs    []string         `json:"graphs"`
}

// Record is GET /v1/peer/records/{key}: a shortcut and its dependency
// payloads, the canonical store encodings verbatim ([]byte marshals as
// base64). Nothing in it is trusted by the receiver: every payload is
// re-hashed and the key re-derived before the record is served or stored.
type Record struct {
	Key              string `json:"key"`
	Graph            string `json:"graph"`
	Partition        string `json:"partition"`
	GraphPayload     []byte `json:"graph_payload"`
	PartitionPayload []byte `json:"partition_payload"`
	ShortcutPayload  []byte `json:"shortcut_payload"`
}

// GraphPayload is GET/PUT /v1/peer/graphs/{fp}: one graph record payload.
type GraphPayload struct {
	Payload []byte `json:"payload"`
}

// toPeerRecord parses the wire record back into store fingerprints.
func toPeerRecord(r Record) (store.PeerRecord, error) {
	var rec store.PeerRecord
	var err error
	if rec.Key, err = service.ParseFingerprint(r.Key); err != nil {
		return rec, fmt.Errorf("cluster: record key: %w", err)
	}
	if rec.GraphFP, err = service.ParseFingerprint(r.Graph); err != nil {
		return rec, fmt.Errorf("cluster: record graph: %w", err)
	}
	if rec.PartitionFP, err = service.ParseFingerprint(r.Partition); err != nil {
		return rec, fmt.Errorf("cluster: record partition: %w", err)
	}
	rec.GraphPayload = r.GraphPayload
	rec.PartitionPayload = r.PartitionPayload
	rec.ShortcutPayload = r.ShortcutPayload
	return rec, nil
}

func fromPeerRecord(rec store.PeerRecord) Record {
	return Record{
		Key:              rec.Key.String(),
		Graph:            rec.GraphFP.String(),
		Partition:        rec.PartitionFP.String(),
		GraphPayload:     rec.GraphPayload,
		PartitionPayload: rec.PartitionPayload,
		ShortcutPayload:  rec.ShortcutPayload,
	}
}

// ---- peer API client ----

// errNotFound distinguishes a peer's 404 (clean miss) from real failures.
var errNotFound = fmt.Errorf("cluster: peer record not found")

// getJSON GETs http://<peer><path> and decodes the JSON response. Transport
// failures mark the peer down; a reachable peer that answers marks it up.
func (c *Cluster) getJSON(ctx context.Context, peer, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.markDown(peer)
		return fmt.Errorf("cluster: peer %s unreachable: %w", peer, err)
	}
	defer resp.Body.Close()
	c.markUp(peer)
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: peer %s %s: %s: %s", peer, path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(out)
}

// RingInfoOf fetches a peer's ring view.
func (c *Cluster) RingInfoOf(ctx context.Context, peer string) (RingInfo, error) {
	var info RingInfo
	err := c.getJSON(ctx, peer, "/v1/peer/ring", &info)
	return info, err
}

// InventoryOf fetches a peer's full record inventory.
func (c *Cluster) InventoryOf(ctx context.Context, peer string) (Inventory, error) {
	var inv Inventory
	err := c.getJSON(ctx, peer, "/v1/peer/inventory", &inv)
	return inv, err
}

// getBinary GETs http://<peer><path> asking for the binary protocol and
// returns the raw body when the peer answered in it. A peer that answers
// JSON instead (binary=false) is handled by the caller's JSON path, so the
// client interoperates with nodes that have not negotiated binary — the
// fetch just costs the base64 round trip it always did. Transport failures
// mark the peer down; any answer marks it up.
func (c *Cluster) getBinary(ctx context.Context, peer, path string) (body []byte, binary bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+path, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.markDown(peer)
		return nil, false, fmt.Errorf("cluster: peer %s unreachable: %w", peer, err)
	}
	defer resp.Body.Close()
	c.markUp(peer)
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, false, fmt.Errorf("cluster: peer %s %s: %s: %s", peer, path, resp.Status, bytes.TrimSpace(b))
	}
	if !wire.IsBinary(resp.Header.Get("Content-Type")) {
		// The peer declined binary; hand the JSON body back for the
		// caller's decoder.
		b, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		return b, false, err
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// recordOf fetches one shortcut record from a peer over the binary
// protocol (JSON fallback when the peer answers in it). found is false on
// a clean 404.
func (c *Cluster) recordOf(ctx context.Context, peer string, key service.Fingerprint) (store.PeerRecord, bool, error) {
	body, binary, err := c.getBinary(ctx, peer, "/v1/peer/records/"+key.String())
	if err == errNotFound {
		return store.PeerRecord{}, false, nil
	}
	if err != nil {
		return store.PeerRecord{}, false, err
	}
	var rec store.PeerRecord
	if binary {
		rec, err = store.DecodePeerRecord(body)
	} else {
		var wr Record
		if err = json.Unmarshal(body, &wr); err == nil {
			rec, err = toPeerRecord(wr)
		}
	}
	if err != nil {
		return store.PeerRecord{}, false, err
	}
	if rec.Key != key {
		return store.PeerRecord{}, false, fmt.Errorf("cluster: peer %s returned record %s for key %s", peer, rec.Key, key)
	}
	return rec, true, nil
}

// graphPayloadOf fetches one graph record payload from a peer over the
// binary protocol (JSON fallback).
func (c *Cluster) graphPayloadOf(ctx context.Context, peer string, fp service.Fingerprint) ([]byte, bool, error) {
	body, binary, err := c.getBinary(ctx, peer, "/v1/peer/graphs/"+fp.String())
	if err == errNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if binary {
		return body, true, nil
	}
	var wr GraphPayload
	if err := json.Unmarshal(body, &wr); err != nil {
		return nil, false, err
	}
	return wr.Payload, true, nil
}

// PushGraph PUTs a graph record payload to one peer, raw over the binary
// protocol — no base64 envelope, no decode on our side.
func (c *Cluster) PushGraph(ctx context.Context, peer string, fp service.Fingerprint, payload []byte) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		"http://"+peer+"/v1/peer/graphs/"+fp.String(), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.markDown(peer)
		return fmt.Errorf("cluster: peer %s unreachable: %w", peer, err)
	}
	defer resp.Body.Close()
	c.markUp(peer)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s rejected graph %s: %s", peer, fp, resp.Status)
	}
	return nil
}

// BroadcastGraph best-effort pushes an ingested graph's payload to every
// peer (skipping those in down backoff), so any node can accept shortcut
// requests for it immediately — graphs are replicated everywhere, only
// shortcut records are ring-partitioned. Failures count in GraphPushErrors;
// anti-entropy heals the gap on the next round.
func (c *Cluster) BroadcastGraph(ctx context.Context, fp service.Fingerprint, payload []byte) {
	var wg sync.WaitGroup
	for _, peer := range c.peers {
		if !c.available(peer) {
			c.pushErrs.Add(1)
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if err := c.PushGraph(ctx, peer, fp, payload); err != nil {
				c.pushErrs.Add(1)
				if c.log != nil {
					c.log.Warn("cluster_graph_push_failed", "peer", peer, "graph", fp.String(), "err", err.Error())
				}
				return
			}
			c.pushes.Add(1)
		}(peer)
	}
	wg.Wait()
}

// ForwardRequest relays a JSON request body to the owner node's public API
// and returns the response. err is non-nil only for transport failures (the
// owner is down — the caller falls back to serving locally); an HTTP error
// status from the owner comes back as (status, body, nil) for the caller to
// interpret. The X-Locshort-Forwarded header stops the owner from
// forwarding again.
func (c *Cluster) ForwardRequest(ctx context.Context, owner, path string, body []byte) (int, []byte, error) {
	status, _, respBody, err := c.forward(ctx, owner, path, body, "application/json", "")
	return status, respBody, err
}

// ForwardRequestBinary is ForwardRequest over the binary protocol: the
// body is a binary request, the Accept header asks for a binary response,
// and the owner's response headers come back so the relay can copy the
// metadata headers (key, source, build cost) through to the client.
func (c *Cluster) ForwardRequestBinary(ctx context.Context, owner, path string, body []byte) (int, http.Header, []byte, error) {
	return c.forward(ctx, owner, path, body, wire.ContentType, wire.ContentType)
}

func (c *Cluster) forward(ctx context.Context, owner, path string, body []byte,
	contentType, accept string) (int, http.Header, []byte, error) {
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+owner+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	req.Header.Set(ForwardedHeader, "1")
	resp, err := c.hc.Do(req)
	d := time.Since(start)
	if err != nil {
		c.markDown(owner)
		c.forwardErrs.Add(1)
		if c.metrics != nil {
			c.metrics.forwardSeconds.Observe(d)
		}
		return 0, nil, nil, fmt.Errorf("cluster: owner %s unreachable: %w", owner, err)
	}
	defer resp.Body.Close()
	c.markUp(owner)
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.forwardErrs.Add(1)
		return 0, nil, nil, err
	}
	c.forwards.Add(1)
	if c.metrics != nil {
		c.metrics.forwardSeconds.Observe(d)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// ForwardedHeader marks a relayed request so the owner serves it locally
// instead of consulting the ring again (no forwarding loops).
const ForwardedHeader = "X-Locshort-Forwarded"

// FetchShortcut implements service.PeerFetcher: ask key's replica peers
// (then any remaining peer — during degraded operation a non-replica may
// hold a record it built as a fallback owner) for the record, re-verify the
// payloads locally, import the record into the local store, and return the
// shortcut decoded against this engine's representative. A clean miss
// everywhere is (ok=false, err=nil); transport or verification failures
// report the last error so the engine can count them.
func (c *Cluster) FetchShortcut(ctx context.Context, key service.Fingerprint,
	g *graph.Graph, parts *partition.Partition) (*shortcut.Result, time.Duration, bool, error) {

	// Replica peers first (most likely holders), then the rest.
	candidates := make([]string, 0, len(c.peers))
	inReplicas := make(map[string]bool)
	for _, n := range c.Replicas(key) {
		if n != c.self {
			candidates = append(candidates, n)
			inReplicas[n] = true
		}
	}
	for _, n := range c.peers {
		if !inReplicas[n] {
			candidates = append(candidates, n)
		}
	}
	var lastErr error
	for _, peer := range candidates {
		if !c.available(peer) {
			continue
		}
		rec, found, err := c.recordOf(ctx, peer, key)
		if err != nil {
			lastErr = err
			continue
		}
		if !found {
			continue
		}
		// Decode against OUR representative graph and the requested
		// partition: this is the full decodeShortcut verification chain
		// (structural validation + key re-derivation), so a tampered or
		// corrupt record is rejected here, before anything is served.
		res, bt, err := store.DecodeShortcutPayload(rec.ShortcutPayload, key, g, parts)
		if err != nil {
			lastErr = fmt.Errorf("cluster: record %s from %s failed verification: %w", key, peer, err)
			if c.log != nil {
				c.log.Warn("cluster_peer_record_rejected", "peer", peer, "key", key.String(), "err", err.Error())
			}
			continue
		}
		// Import the raw record (its own full verification runs against the
		// payload's canonical graph): this node is serving the key, so it
		// keeps a durable copy and stops re-fetching. Import failure is not
		// a serving failure.
		if _, _, err := c.st.ImportShortcut(rec); err != nil {
			if c.log != nil {
				c.log.Warn("cluster_peer_import_failed", "key", key.String(), "err", err.Error())
			}
		}
		if c.log != nil {
			c.log.Info("cluster_peer_fetch", "peer", peer, "key", key.String())
		}
		return res, bt, true, nil
	}
	return nil, 0, false, lastErr
}

// ---- peer API server ----

// Handler serves the internal peer API under /v1/peer/. Mount it on the
// node's public mux; it is exempt from the readiness gate (peers must be
// able to compare configs and pull records while a node warms up).
//
//	GET /v1/peer/ring          ring config + inventory counts
//	GET /v1/peer/inventory     live record keys (?lo=&hi= restricts the arc)
//	GET /v1/peer/records/{key} one shortcut record + dependency payloads
//	GET /v1/peer/graphs/{fp}   one graph record payload
//	PUT /v1/peer/graphs/{fp}   ingest-broadcast receiver: verify + register
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/peer/ring", c.handleRing)
	mux.HandleFunc("GET /v1/peer/inventory", c.handleInventory)
	mux.HandleFunc("GET /v1/peer/records/{key}", c.handleRecord)
	mux.HandleFunc("GET /v1/peer/graphs/{fp}", c.handleGraphGet)
	mux.HandleFunc("PUT /v1/peer/graphs/{fp}", c.handleGraphPut)
	return mux
}

func (c *Cluster) peerJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && c.log != nil {
		// Headers are gone; log so a flaky peer link is diagnosable.
		c.log.Warn("cluster_encode_failed", "err", err.Error())
	}
}

func (c *Cluster) peerError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if eerr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); eerr != nil && c.log != nil {
		c.log.Warn("cluster_encode_failed", "err", eerr.Error())
	}
}

func (c *Cluster) handleRing(w http.ResponseWriter, r *http.Request) {
	ss := c.st.OpenStats()
	c.peerJSON(w, RingInfo{
		Self:        c.self,
		Nodes:       c.ring.Nodes(),
		VNodes:      c.cfg.VNodes,
		Replication: c.cfg.Replication,
		ConfigHash:  strconv.FormatUint(c.ConfigHash(), 16),
		Shortcuts:   ss.Shortcuts,
		Graphs:      ss.Graphs,
	})
}

func (c *Cluster) handleInventory(w http.ResponseWriter, r *http.Request) {
	lo, hi := uint64(0), uint64(0)
	if ls := r.URL.Query().Get("lo"); ls != "" {
		v, err := strconv.ParseUint(ls, 16, 64)
		if err != nil {
			c.peerError(w, http.StatusBadRequest, fmt.Errorf("bad lo %q: %w", ls, err))
			return
		}
		lo = v
	}
	if hs := r.URL.Query().Get("hi"); hs != "" {
		v, err := strconv.ParseUint(hs, 16, 64)
		if err != nil {
			c.peerError(w, http.StatusBadRequest, fmt.Errorf("bad hi %q: %w", hs, err))
			return
		}
		hi = v
	}
	entries := c.st.ShortcutInventory(lo, hi)
	inv := Inventory{Shortcuts: make([]InventoryEntry, len(entries))}
	for i, e := range entries {
		inv.Shortcuts[i] = InventoryEntry{
			Key: e.Key.String(), Graph: e.GraphFP.String(), Partition: e.PartitionFP.String(),
		}
	}
	for _, fp := range c.st.GraphFingerprints() {
		inv.Graphs = append(inv.Graphs, fp.String())
	}
	c.peerJSON(w, inv)
}

func (c *Cluster) handleRecord(w http.ResponseWriter, r *http.Request) {
	key, err := service.ParseFingerprint(r.PathValue("key"))
	if err != nil {
		c.peerError(w, http.StatusBadRequest, err)
		return
	}
	rec, ok, err := c.st.ShortcutRecord(key)
	if err != nil {
		c.peerError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		c.peerError(w, http.StatusNotFound, fmt.Errorf("no record for %s", key))
		return
	}
	if wire.IsBinary(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", wire.ContentType)
		if _, err := w.Write(store.AppendPeerRecord(nil, rec)); err != nil && c.log != nil {
			c.log.Warn("cluster_encode_failed", "err", err.Error())
		}
		return
	}
	c.peerJSON(w, fromPeerRecord(rec))
}

func (c *Cluster) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	fp, err := service.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		c.peerError(w, http.StatusBadRequest, err)
		return
	}
	payload, ok, err := c.st.GraphPayload(fp)
	if err != nil {
		c.peerError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		c.peerError(w, http.StatusNotFound, fmt.Errorf("no graph record for %s", fp))
		return
	}
	if wire.IsBinary(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", wire.ContentType)
		if _, err := w.Write(payload); err != nil && c.log != nil {
			c.log.Warn("cluster_encode_failed", "err", err.Error())
		}
		return
	}
	c.peerJSON(w, GraphPayload{Payload: payload})
}

func (c *Cluster) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	fp, err := service.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		c.peerError(w, http.StatusBadRequest, err)
		return
	}
	var payload []byte
	if wire.IsBinary(r.Header.Get("Content-Type")) {
		payload, err = io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			c.peerError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var wr GraphPayload
		if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(&wr); err != nil {
			c.peerError(w, http.StatusBadRequest, err)
			return
		}
		payload = wr.Payload
	}
	// Decode verifies the payload hashes to fp — a peer cannot plant a
	// graph under a fingerprint it does not own.
	g, err := store.DecodeGraphPayload(payload, fp)
	if err != nil {
		c.peerError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := c.registerGraph(fp, g, payload); err != nil {
		c.peerError(w, http.StatusInternalServerError, err)
		return
	}
	c.peerJSON(w, map[string]string{"graph": fp.String()})
}

// registerGraph installs a verified graph: through the engine when wired
// (which also persists it), else straight into the store. Payload is the
// canonical bytes g decoded from; carrying it through lets the engine and
// store persist it verbatim instead of paying a re-encode.
func (c *Cluster) registerGraph(fp service.Fingerprint, g *graph.Graph, payload []byte) error {
	if reg := c.getRegistrar(); reg != nil {
		if pr, ok := reg.(GraphPayloadRegistrar); ok && len(payload) > 0 {
			pr.AddGraphDecoded(fp, g, payload)
			return nil
		}
		_, err := reg.AddGraph(g)
		return err
	}
	if len(payload) > 0 {
		return c.st.PutGraphPayload(fp, payload)
	}
	return c.st.PutGraph(fp, g)
}
