package cluster

import (
	"context"
	"strconv"
	"time"

	"locshort/internal/service"
	"locshort/internal/store"
)

// SyncResult summarizes one anti-entropy round.
type SyncResult struct {
	// Reachable is how many peers answered the ring probe this round.
	Reachable int
	// Drift is true when a reachable peer's config hash disagreed with ours.
	Drift bool
	// PulledShortcuts and PulledGraphs count records imported this round.
	PulledShortcuts int
	PulledGraphs    int
	// Errors counts failed inventory fetches, record fetches, and imports
	// (unreachable peers are not errors; they just reduce Reachable).
	Errors int
}

// SyncNow runs one full anti-entropy round against every peer: probe its
// ring view (this is also the reachability + config-drift check), then diff
// its record inventory against the local store and pull every record this
// node should own but does not. Fetched records go through the same
// re-hash-everything verification as request-path peer fetches; nothing a
// peer says is trusted. Safe to call concurrently with serving.
func (c *Cluster) SyncNow(ctx context.Context) SyncResult {
	start := time.Now()
	var res SyncResult
	myHash := strconv.FormatUint(c.ConfigHash(), 16)

	for _, peer := range c.peers {
		info, err := c.RingInfoOf(ctx, peer)
		if err != nil {
			continue // unreachable or warming up: not this node's error
		}
		res.Reachable++
		if info.ConfigHash != myHash {
			res.Drift = true
			if c.log != nil {
				c.log.Warn("cluster_config_drift", "peer", peer,
					"peer_hash", info.ConfigHash, "self_hash", myHash)
			}
			continue // never pull from a peer on a different ring
		}
		c.syncPeer(ctx, peer, &res)
		if ctx.Err() != nil {
			break
		}
	}

	c.drift.Store(res.Drift)
	c.reachable.Store(int64(res.Reachable))
	c.syncRounds.Add(1)
	if res.Errors > 0 {
		c.syncErrs.Add(uint64(res.Errors))
	}
	if c.metrics != nil {
		c.metrics.syncRoundSeconds.Observe(time.Since(start))
	}
	if c.log != nil && (res.PulledShortcuts > 0 || res.PulledGraphs > 0 || res.Drift) {
		c.log.Info("cluster_sync_round",
			"reachable", res.Reachable, "drift", res.Drift,
			"pulled_shortcuts", res.PulledShortcuts, "pulled_graphs", res.PulledGraphs,
			"errors", res.Errors)
	}
	return res
}

// syncPeer diffs one peer's inventory against the local store and pulls
// what is missing: every graph record (graphs replicate everywhere) and
// every shortcut record whose key this node is a replica for.
func (c *Cluster) syncPeer(ctx context.Context, peer string, res *SyncResult) {
	inv, err := c.InventoryOf(ctx, peer)
	if err != nil {
		res.Errors++
		return
	}
	for _, fps := range inv.Graphs {
		fp, err := service.ParseFingerprint(fps)
		if err != nil {
			res.Errors++
			continue
		}
		if c.st.GraphKnown(fp) {
			continue
		}
		if c.pullGraph(ctx, peer, fp) {
			res.PulledGraphs++
		} else {
			res.Errors++
		}
	}
	for _, e := range inv.Shortcuts {
		key, err := service.ParseFingerprint(e.Key)
		if err != nil {
			res.Errors++
			continue
		}
		if !c.ShouldOwn(key) || c.st.HasShortcut(key) {
			continue
		}
		if c.pullShortcut(ctx, peer, key) {
			res.PulledShortcuts++
		} else {
			res.Errors++
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// pullGraph fetches, verifies, and registers one graph record.
func (c *Cluster) pullGraph(ctx context.Context, peer string, fp service.Fingerprint) bool {
	payload, ok, err := c.graphPayloadOf(ctx, peer, fp)
	if err != nil || !ok {
		return false
	}
	g, err := store.DecodeGraphPayload(payload, fp)
	if err != nil {
		if c.log != nil {
			c.log.Warn("cluster_sync_graph_rejected", "peer", peer, "graph", fp.String(), "err", err.Error())
		}
		return false
	}
	if err := c.registerGraph(fp, g, payload); err != nil {
		return false
	}
	c.syncPulls.Add(1)
	return true
}

// pullShortcut fetches one shortcut record, verifies and imports it, and
// registers its graph with the engine so the record is servable right away.
func (c *Cluster) pullShortcut(ctx context.Context, peer string, key service.Fingerprint) bool {
	rec, found, err := c.recordOf(ctx, peer, key)
	if err != nil || !found {
		return false
	}
	g, imported, err := c.st.ImportShortcut(rec)
	if err != nil {
		if c.log != nil {
			c.log.Warn("cluster_sync_record_rejected", "peer", peer, "key", key.String(), "err", err.Error())
		}
		return false
	}
	if imported {
		c.syncPulls.Add(1)
		if reg := c.getRegistrar(); reg != nil {
			reg.AddGraph(g)
		}
	}
	return true
}

// CheckConfig probes every peer's ring view once, synchronously, and
// records drift and reachability — the startup gate locshortd runs before
// flipping ready, so a node booted with a disagreeing ring config never
// reports ready. Unreachable peers are not drift: a node must be able to
// boot first into an empty cluster.
func (c *Cluster) CheckConfig(ctx context.Context) (drift bool, reachable int) {
	myHash := strconv.FormatUint(c.ConfigHash(), 16)
	for _, peer := range c.peers {
		info, err := c.RingInfoOf(ctx, peer)
		if err != nil {
			continue
		}
		reachable++
		if info.ConfigHash != myHash {
			drift = true
			if c.log != nil {
				c.log.Warn("cluster_config_drift", "peer", peer,
					"peer_hash", info.ConfigHash, "self_hash", myHash)
			}
		}
	}
	c.drift.Store(drift)
	c.reachable.Store(int64(reachable))
	return drift, reachable
}

// Start launches the background anti-entropy loop: one round immediately,
// then one per SyncInterval until Stop. Second Start is a no-op.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.loopDone)
		ctx := context.Background()
		ticker := time.NewTicker(c.cfg.SyncInterval)
		defer ticker.Stop()
		c.SyncNow(ctx)
		for {
			select {
			case <-c.loopStop:
				return
			case <-ticker.C:
				c.SyncNow(ctx)
			}
		}
	}()
}

// Stop shuts the anti-entropy loop down and waits for the in-flight round
// to finish. Safe to call without Start, and more than once.
func (c *Cluster) Stop() {
	select {
	case <-c.loopStop:
	default:
		close(c.loopStop)
	}
	if c.started.Load() {
		<-c.loopDone
	}
}
