package cluster

import "locshort/internal/obs"

// clusterMetrics holds the cluster's observed histograms. Counters follow
// the engine's pattern: the atomic counters on Cluster stay the single
// source of truth and are exported as func-backed families read at scrape
// time, so no event is ever double-counted.
type clusterMetrics struct {
	forwardSeconds   *obs.Histogram // forwarded-request round trip
	syncRoundSeconds *obs.Histogram // full anti-entropy round
}

func newClusterMetrics(r *obs.Registry, c *Cluster) *clusterMetrics {
	m := &clusterMetrics{
		forwardSeconds: r.Histogram("locshort_cluster_forward_seconds",
			"Round-trip time of build requests forwarded to the key's owner node.", nil, nil),
		syncRoundSeconds: r.Histogram("locshort_cluster_sync_round_seconds",
			"Wall time of full anti-entropy rounds across all peers.", nil, nil),
	}

	counter := func(name, help string, labels obs.Labels, load func() uint64) {
		r.CounterFunc(name, help, labels, func() float64 { return float64(load()) })
	}
	counter("locshort_cluster_forwards_total", "Requests forwarded to the key's owner node, by outcome.",
		obs.Labels{"outcome": "ok"}, c.forwards.Load)
	counter("locshort_cluster_forwards_total", "Requests forwarded to the key's owner node, by outcome.",
		obs.Labels{"outcome": "error"}, c.forwardErrs.Load)
	counter("locshort_cluster_graph_pushes_total", "Graph payloads broadcast to peers on ingest, by outcome.",
		obs.Labels{"outcome": "ok"}, c.pushes.Load)
	counter("locshort_cluster_graph_pushes_total", "Graph payloads broadcast to peers on ingest, by outcome.",
		obs.Labels{"outcome": "error"}, c.pushErrs.Load)
	counter("locshort_cluster_sync_pulls_total", "Records imported from peers by the anti-entropy loop.",
		nil, c.syncPulls.Load)
	counter("locshort_cluster_sync_rounds_total", "Completed anti-entropy rounds.",
		nil, c.syncRounds.Load)
	counter("locshort_cluster_sync_errors_total", "Failed inventory fetches, record fetches, and imports during anti-entropy.",
		nil, c.syncErrs.Load)

	r.GaugeFunc("locshort_cluster_peers_reachable", "Peers that answered the last ring probe.", nil,
		func() float64 { return float64(c.reachable.Load()) })
	r.GaugeFunc("locshort_cluster_config_drift", "1 while a reachable peer's ring config disagrees with this node's (readiness is held down).", nil,
		func() float64 {
			if c.drift.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("locshort_cluster_nodes", "Configured cluster membership size, including this node.", nil,
		func() float64 { return float64(len(c.peers) + 1) })
	return m
}
