// Package cluster turns a set of locshortd nodes into one consistent-hash
// cluster with static membership.
//
// # Ring
//
// Ring places every node at VNodes stratified points on the 2^64 hash
// circle (each virtual node contributes several sub-points, Ketama-style,
// which is what keeps the 3-node/64-vnode load imbalance under 5%) and
// assigns each shortcut key — already a uniform 64-bit fingerprint — to the
// first point at or after it, wrapping. Ties are broken by rendezvous
// weight so the ring is a pure function of the membership set, independent
// of configuration order. Owners(key, n) walks forward to the next n-1
// distinct nodes, giving the replica set; ReplicaRanges inverts that into
// the fingerprint arcs a node is responsible for.
//
// # Cluster
//
// Cluster is one node's runtime view: it implements service.PeerFetcher
// (the engine's miss chain becomes cache, local store, peer store, cold
// build), serves the internal peer API under /v1/peer/ (Handler), relays
// misdirected build requests to the key's owner (ForwardRequest),
// broadcasts ingested graphs (BroadcastGraph — graphs replicate everywhere,
// only shortcut records are ring-partitioned), and runs the background
// anti-entropy loop (Start/SyncNow) that diffs peer inventories and pulls
// every record this node should own but does not, which is how replicas
// converge after a node dies or rejoins.
//
// Nothing received from a peer is trusted: graph and partition payloads are
// re-hashed to their fingerprints, shortcut payloads are structurally
// re-validated and their keys re-derived from (graph, partition, options)
// before a record is served or imported. A byzantine or corrupt peer can
// cause a miss, never a wrong answer.
//
// Every node must be configured with the identical membership, vnode count,
// and replication factor; ConfigHash digests those, peers exchange it on
// every probe, and a disagreement (config drift) holds the node's /readyz
// at 503 until configs converge — a half-edited cluster rollout fails
// closed instead of serving a split ring.
package cluster
