package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"locshort/internal/service"
)

// Ring is a consistent-hash ring over a static node set. Each node projects
// VNodes virtual points onto the 64-bit circle; a key's position is its raw
// content fingerprint (already FNV-1a over canonical bytes, so uniform), and
// its owner is the node of the first point at or after it, wrapping. Because
// key positions are the fingerprints themselves, the arcs between points are
// literal fingerprint ranges — the store's inventory listing filters on them
// directly, with no second hash space to translate through.
//
// Virtual-point placement is stratified: the circle is divided into VNodes
// equal strata and point v of every node lands inside stratum v, jittered by
// a hash of (node, v) mixed through a splitmix64 finalizer. Each node
// contributes exactly one point per stratum, so ownership imbalance comes
// only from within-stratum ordering and shrinks like 1/VNodes — independent
// per-point hashing (the naive construction) only manages 1/sqrt(VNodes) and
// misses the 5%-at-64-vnodes balance bound this package unit-tests. The
// placement is still per-node deterministic: removing a node deletes its
// points and touches nobody else's, which is what keeps key movement
// minimal on membership change. Two points that land on the identical
// position (a 64-bit collision) are ordered by rendezvous weight — a second
// hash of (node, position) — so tie-breaking depends only on ring content,
// never on configuration file order.
//
// A Ring is immutable after New; membership change means building a new Ring.
// Removing a node reassigns exactly the arcs its own points owned (every
// other point is unchanged), which is the minimal-movement property the unit
// tests pin down.
type Ring struct {
	nodes  []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by (pos, rendezvous weight desc)
}

type ringPoint struct {
	pos  uint64
	node int32 // index into nodes
}

// pointsPerVNode oversamples each configured virtual node into several
// internal ring points (the same trick as Ketama's 160 points per server):
// stratification alone removes point-count variance but gap lengths within a
// stratum still wander like 1/sqrt(points), so a configured 64 vnodes needs
// a few hundred internal points to hold the 5% balance bound. The cost is a
// slightly larger sorted array; lookups stay O(log points).
const pointsPerVNode = 8

// hash64 is FNV-1a over s followed by a splitmix64 finalizer.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijection that spreads nearby
// inputs across the full 64-bit circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousWeight orders points that collide on a position.
func rendezvousWeight(node string, pos uint64) uint64 {
	return hash64(node + "@" + strconv.FormatUint(pos, 16))
}

// NewRing builds the ring for the given membership. Nodes are sorted and
// must be unique and non-empty; vnodes must be at least 1.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes must be >= 1, got %d", vnodes)
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	strata := vnodes * pointsPerVNode
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*strata),
	}
	// Stratified placement: stratum v spans [v*width, (v+1)*width) and every
	// node puts its v-th point inside it. width is the floor division, so a
	// sliver of at most strata-1 positions past the last stratum wraps to
	// the first point — immeasurable against 2^64.
	width := uint64(math.MaxUint64) / uint64(strata)
	for ni, n := range sorted {
		for v := 0; v < strata; v++ {
			jitter := hash64(n+"#"+strconv.Itoa(v)) % width
			r.points = append(r.points, ringPoint{
				pos:  uint64(v)*width + jitter,
				node: int32(ni),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.pos != pb.pos {
			return pa.pos < pb.pos
		}
		return rendezvousWeight(r.nodes[pa.node], pa.pos) >
			rendezvousWeight(r.nodes[pb.node], pb.pos)
	})
	return r, nil
}

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the virtual points per node.
func (r *Ring) VNodes() int { return r.vnodes }

// successor returns the index of the first point at or after pos, wrapping.
func (r *Ring) successor(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node that owns key.
func (r *Ring) Owner(key service.Fingerprint) string {
	return r.nodes[r.points[r.successor(uint64(key))].node]
}

// Owners returns up to n distinct nodes for key, primary first, by walking
// successor points. This is the replica set: the record for key should live
// on Owners(key, replication).
func (r *Ring) Owners(key service.Fingerprint, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.successor(uint64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Share returns the fraction of the keyspace node primarily owns.
func (r *Ring) Share(node string) float64 {
	ni := sort.SearchStrings(r.nodes, node)
	if ni == len(r.nodes) || r.nodes[ni] != node {
		return 0
	}
	var total uint64
	exact := true
	for i, p := range r.points {
		if p.node != int32(ni) {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].pos
		arc := p.pos - prev // wraps correctly in uint64 arithmetic
		if len(r.points) == 1 {
			return 1
		}
		next := total + arc
		if next < total {
			exact = false // sum wrapped (only possible near a full circle)
		}
		total = next
	}
	if !exact {
		return 1
	}
	return float64(total) / math.Pow(2, 64)
}

// Range is an arc of the fingerprint circle: the keys k with From < k <= To,
// wrapping when From >= To. The degenerate From == To arc means the full
// circle (a single-point ring owns everything), matching the store's
// inventory-range convention.
type Range struct {
	From, To uint64
}

// Contains reports whether key falls in the arc.
func (a Range) Contains(key uint64) bool {
	switch {
	case a.From == a.To:
		return true
	case a.From < a.To:
		return key > a.From && key <= a.To
	default:
		return key > a.From || key <= a.To
	}
}

// ReplicaRanges returns the arcs whose replica set (the first n distinct
// nodes from the arc's owning point) includes node — i.e. the fingerprint
// ranges this node is responsible for holding at replication n. Adjacent
// arcs merge, so the slice is minimal.
func (r *Ring) ReplicaRanges(node string, n int) []Range {
	if len(r.points) == 1 {
		if r.nodes[r.points[0].node] == node {
			p := r.points[0].pos
			return []Range{{From: p, To: p}}
		}
		return nil
	}
	var arcs []Range
	for i, p := range r.points {
		owners := r.Owners(service.Fingerprint(p.pos), n)
		mine := false
		for _, o := range owners {
			if o == node {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].pos
		arcs = append(arcs, Range{From: prev, To: p.pos})
	}
	// Merge adjacent arcs (an arc whose From is the previous arc's To).
	if len(arcs) < 2 {
		return arcs
	}
	merged := arcs[:1]
	for _, a := range arcs[1:] {
		last := &merged[len(merged)-1]
		if last.To == a.From {
			last.To = a.To
		} else {
			merged = append(merged, a)
		}
	}
	// The walk starts at an arbitrary point, so the first and last arc can
	// be the two halves of one wrapping arc.
	if len(merged) > 1 && merged[len(merged)-1].To == merged[0].From {
		merged[0].From = merged[len(merged)-1].From
		merged = merged[:len(merged)-1]
	}
	return merged
}

// ConfigHash digests the ring configuration (membership and vnode count);
// two nodes whose hashes differ are not in the same cluster and must not
// sync. The cluster layer folds replication in on top.
func (r *Ring) ConfigHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ring1 vnodes=%d\n", r.vnodes)
	for _, n := range r.nodes {
		h.Write([]byte(n))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
