package bench

import (
	"fmt"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

func init() {
	register(Experiment{ID: "A1", Title: "Ablation: congestion threshold", Run: runA1})
	register(Experiment{ID: "A2", Title: "Ablation: randomized vs fixed PA scheduling", Run: runA2})
	register(Experiment{ID: "A3", Title: "Ablation: sampled vs exact overcongestion detection", Run: runA3})
	register(Experiment{ID: "A4", Title: "Ablation: BFS-tree root choice (center vs corner)", Run: runA4})
}

// runA1 sweeps the congestion threshold of the partial construction in
// absolute terms: below the paper's c = 8δD (which exceeds the part count k
// on any instance of this scale, so no edge is ever overcongested), smaller
// thresholds cut more edges, fragmenting parts into more blocks — the
// trade-off behind the paper's choice.
func runA1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "congestion threshold c: coverage/blocks trade-off",
		Claim: "(design choice) larger c covers more parts with fewer blocks at a higher congestion budget",
		Note: "absolute-c sweep relative to the part count k: the paper's c = 8δD sits above k at unit-test " +
			"scales (rightmost rows), where the construction degenerates to zero cuts.",
		Columns: []string{"c", "c/k", "covered", "of", "congestion", "max blocks",
			"mean blocks"},
	}
	side := 20
	if cfg.Quick {
		side = 10
	}
	g := graph.Grid(side, side)
	k := 2 * side
	p, err := partition.BFSBlobs(g, k, newRand(cfg.Seed+21))
	if err != nil {
		return nil, err
	}
	tr, err := tree.FromBFS(g, shortcut.ChooseRoot(g))
	if err != nil {
		return nil, err
	}
	for _, c := range []int{k / 8, k / 4, k / 2, k, 2 * k} {
		if c < 1 {
			c = 1
		}
		pr, err := shortcut.BuildPartial(g, tr, p, c, 1<<30, nil)
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(pr.Shortcut)
		// Mean block count over covered parts.
		total, covered := 0, 0
		for i := range pr.Shortcut.Covered {
			if pr.Shortcut.Covered[i] {
				covered++
				total += pr.DegB[i] + 1
			}
		}
		mean := 0.0
		if covered > 0 {
			mean = float64(total) / float64(covered)
		}
		t.AddRow(c, float64(c)/float64(k), covered, p.NumParts(), q.Congestion, q.MaxBlocks, mean)
	}
	return t, nil
}

// runA2 compares the randomized queue discipline against fixed service
// order in part-wise aggregation, across seeds.
func runA2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A2",
		Title: "PA contention scheduling: randomized vs fixed order",
		Claim: "(design choice) randomized service order realizes the random-delay schedule of [LMR94]",
		Columns: []string{"instance", "parts", "rounds random", "rounds fixed",
			"ratio fixed/random"},
	}
	type inst struct {
		name string
		g    *graph.Graph
		k    int
	}
	insts := []inst{
		{name: "grid 16x16", g: graph.Grid(16, 16), k: 32},
		{name: "torus 12x12", g: graph.Torus(12, 12), k: 24},
	}
	if cfg.Quick {
		insts = []inst{{name: "grid 8x8", g: graph.Grid(8, 8), k: 12}}
	}
	for _, in := range insts {
		p, err := partition.BFSBlobs(in.g, in.k, newRand(cfg.Seed+31))
		if err != nil {
			return nil, err
		}
		res, err := shortcut.Build(in.g, p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		routing, err := dist.NewPARouting(res.Shortcut)
		if err != nil {
			return nil, err
		}
		values := make([]dist.Payload, in.g.NumNodes())
		for v := range values {
			values[v] = dist.Payload{1, 0, 0}
		}
		budget := 64*in.g.NumNodes() + 4096
		random, err := dist.PartwiseAggregate(in.g, routing, dist.OpSum, values, cfg.Seed, true, budget)
		if err != nil {
			return nil, err
		}
		fixed, err := dist.PartwiseAggregate(in.g, routing, dist.OpSum, values, cfg.Seed, false, budget)
		if err != nil {
			return nil, err
		}
		ratio := float64(fixed.Rounds.Measured) / float64(maxInt(random.Rounds.Measured, 1))
		t.AddRow(in.name, in.k, random.Rounds.Measured, fixed.Rounds.Measured, ratio)
	}
	return t, nil
}

// runA3 compares the two Theorem 1.5 detection variants: sampled min-hash
// estimation vs exact capped ID sets.
func runA3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A3",
		Title: "overcongestion detection: min-hash sampling vs exact sets",
		Claim: "(design choice, [HIZ16a]) sampling trades exactness for a shorter wave schedule",
		Columns: []string{"instance", "variant", "δ'", "measured rounds", "total rounds",
			"congestion", "dilation", "covered"},
	}
	type inst struct {
		name string
		g    *graph.Graph
		k    int
	}
	insts := []inst{
		{name: "grid 16x16", g: graph.Grid(16, 16), k: 16},
		{name: "4-tree n=200", g: graph.KTree(200, 4, newRand(cfg.Seed+41)), k: 16},
	}
	if cfg.Quick {
		insts = []inst{{name: "grid 8x8", g: graph.Grid(8, 8), k: 8}}
	}
	for _, in := range insts {
		p, err := partition.BFSBlobs(in.g, in.k, newRand(cfg.Seed+42))
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			name    string
			variant dist.Variant
		}{{"sampled", dist.Randomized}, {"exact", dist.Deterministic}} {
			res, err := dist.Construct(in.g, p, dist.ConstructOptions{Variant: v.variant, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			q := shortcut.Measure(res.Shortcut)
			t.AddRow(in.name, v.name, res.Delta, res.Rounds.Measured, res.Rounds.Total(),
				q.Congestion, q.Dilation,
				fmt.Sprintf("%d/%d", res.Shortcut.CoveredCount(), in.k))
		}
	}
	return t, nil
}

// runA4 compares rooting the shortcut tree at the double-sweep center
// (ChooseRoot) against the naive minimum-ID corner root: depth roughly
// halves, and with it every quality bound — the reason Definition 2.3 asks
// for depth-D trees and the builder centers its root.
func runA4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A4",
		Title: "BFS-tree root: double-sweep center vs node 0",
		Claim: "(design choice) centering the tree root halves the depth and thereby every δD bound",
		Columns: []string{"instance", "root", "depth", "congestion", "dilation",
			"quality", "dilation bound (b+1)(2D+1)"},
	}
	type inst struct {
		name string
		g    *graph.Graph
		k    int
	}
	insts := []inst{
		{name: "grid 20x20", g: graph.Grid(20, 20), k: 20},
		{name: "cycle n=240", g: graph.Cycle(240), k: 12},
	}
	if cfg.Quick {
		insts = []inst{{name: "grid 10x10", g: graph.Grid(10, 10), k: 10}}
	}
	// Each candidate root's tree and shortcut are measured then discarded,
	// so one reused tree serves the whole sweep.
	var tr *tree.Rooted
	for _, in := range insts {
		p, err := partition.BFSBlobs(in.g, in.k, newRand(cfg.Seed+51))
		if err != nil {
			return nil, err
		}
		for _, root := range []struct {
			name string
			node int
		}{
			{name: "center", node: shortcut.ChooseRoot(in.g)},
			{name: "node 0", node: 0},
		} {
			tr, err = tree.FromBFSInto(tr, in.g, root.node)
			if err != nil {
				return nil, err
			}
			res, err := shortcut.Build(in.g, p, shortcut.Options{Tree: tr})
			if err != nil {
				return nil, err
			}
			q := shortcut.Measure(res.Shortcut)
			t.AddRow(in.name, root.name, res.TreeDepth, q.Congestion, q.Dilation,
				q.Value(), (res.BlockBudget+1)*(2*res.TreeDepth+1))
		}
	}
	return t, nil
}
