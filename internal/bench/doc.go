// Package bench is the experiment harness that regenerates every
// quantitative claim of the paper: one registered experiment per theorem,
// lemma, observation, corollary (E1–E13), and design ablation (A1–A4),
// each emitting a table whose rows are reproduced verbatim in
// EXPERIMENTS.md. cmd/shortcutbench and the repository-level benchmarks
// are thin wrappers around this registry; any violated bound renders as a
// NO cell and fails TestAllExperimentsQuick.
//
// # Role in the DAG
//
// Depends on every algorithmic package (graph, partition, tree, minor,
// shortcut, congest, dist) but nothing depends on it except
// cmd/shortcutbench and the repository benchmarks — it is a leaf. The
// EXPERIMENTS.md preamble documents the exact command that regenerates
// each table.
package bench
