package bench

import (
	"fmt"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

func init() {
	register(Experiment{ID: "E9", Title: "Lemma 1.1 / Lemma 3.3: minor-density estimates", Run: runE9})
	register(Experiment{ID: "E10", Title: "Section 3.1 remark: certifying construction", Run: runE10})
}

// runE9 sandwiches delta(G) between the greedy contraction lower bound and
// the analytic Lemma 3.3 upper bound on every family.
func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Lemmas 1.1 & 3.3 — minor density: greedy witness vs analytic bound",
		Claim: "greedy-found minor density lower-bounds δ(G); Lemma 3.3 upper-bounds it per family",
		Note:  "K_n rows also check Lemma 1.1's normalization δ(K_n) = (n-1)/2 exactly.",
		Columns: []string{"family", "n", "m", "greedy δ ≤", "analytic δ bound",
			"sandwich holds", "witness valid"},
	}
	rng := newRand(cfg.Seed + 9)
	type inst struct {
		name  string
		g     *graph.Graph
		bound float64
		exact bool // analytic bound is the exact value
	}
	gridSide, torusSide, ktreeN := 12, 9, 100
	if cfg.Quick {
		gridSide, torusSide, ktreeN = 7, 6, 40
	}
	insts := []inst{
		{name: fmt.Sprintf("grid %dx%d", gridSide, gridSide), g: graph.Grid(gridSide, gridSide), bound: minor.PlanarDensityBound},
		{name: fmt.Sprintf("torus %dx%d", torusSide, torusSide), g: graph.Torus(torusSide, torusSide), bound: minor.GenusDensityBound(1)},
		{name: "wheel n=60", g: graph.Wheel(60), bound: minor.PlanarDensityBound},
		{name: fmt.Sprintf("2-tree n=%d", ktreeN), g: graph.KTree(ktreeN, 2, rng), bound: minor.TreewidthDensityBound(2)},
		{name: fmt.Sprintf("4-tree n=%d", ktreeN), g: graph.KTree(ktreeN, 4, rng), bound: minor.TreewidthDensityBound(4)},
		{name: "K12", g: graph.Complete(12), bound: minor.CompleteDensity(12), exact: true},
		{name: "K20", g: graph.Complete(20), bound: minor.CompleteDensity(20), exact: true},
	}
	for _, in := range insts {
		w := minor.GreedyDenseMinor(in.g, rng)
		valid := w.Validate(in.g) == nil
		ok := w.Density() <= in.bound+1e-9
		if in.exact {
			ok = ok && w.Density() >= in.bound-1e-9
		}
		t.AddRow(in.name, in.g.NumNodes(), in.g.NumEdges(),
			w.Density(), in.bound, ok, valid)
	}
	return t, nil
}

// runE10 exercises the certifying algorithm of the Section 3.1 remark: on
// instances where a (reduced-constant) level fails, a valid dense bipartite
// minor is produced; on planar graphs, density-3 certificates must never
// appear (soundness).
func runE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Section 3.1 remark — certifying construction: dense-minor witnesses",
		Claim: "when the construction fails at level δ', it can emit a minor of density > δ'; no certificate can exceed δ(G)",
		Note: "reduced constants (c = depth, b = 1) are used to force failures at unit-test scale; with the paper's " +
			"constant 8, failing instances require k > 8·depth parts, which first happens at δ > 20 (≈10⁶ nodes). " +
			"'soundness' rows run extraction above the family's true δ and must find nothing.",
		Columns: []string{"instance", "target δ", "failed parts", "certificate", "density", "valid minor", "verdict"},
	}
	// LB(6,32) is the smallest instance where certificate extraction is
	// reliable (see DESIGN.md); quick mode only reduces sampling attempts.
	lbDelta, lbDiam := 6, 32
	attempts := 400
	if cfg.Quick {
		attempts = 200
	}
	lb, err := graph.LowerBound(lbDelta, lbDiam)
	if err != nil {
		return nil, err
	}
	p, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		return nil, err
	}
	tr, err := tree.FromBFS(lb.G, shortcut.ChooseRoot(lb.G))
	if err != nil {
		return nil, err
	}
	pr, err := shortcut.BuildPartial(lb.G, tr, p, tr.MaxDepth(), 1, nil)
	if err != nil {
		return nil, err
	}
	failed := p.NumParts() - pr.Shortcut.CoveredCount()
	rng := newRand(cfg.Seed + 10)
	for _, thr := range []float64{1.0, 1.5} {
		m, ok := shortcut.ExtractCertificate(lb.G, tr, p, pr, thr, attempts, rng)
		name := fmt.Sprintf("LB(%d,%d)", lbDelta, lbDiam)
		if !ok {
			t.AddRow(name, thr, failed, "none", "-", "-", false)
			continue
		}
		valid := m.Validate(lb.G) == nil
		t.AddRow(name, thr, failed, "found", m.Density(), valid, valid && m.Density() > thr)
	}

	// Soundness: planar graph, threshold at the true density bound.
	side := 9
	if cfg.Quick {
		side = 7
	}
	grid := graph.Grid(side, side)
	gp, err := partition.Singletons(grid)
	if err != nil {
		return nil, err
	}
	gtr, err := tree.FromBFS(grid, 0)
	if err != nil {
		return nil, err
	}
	gpr, err := shortcut.BuildPartial(grid, gtr, gp, 2, 0, nil)
	if err != nil {
		return nil, err
	}
	gFailed := gp.NumParts() - gpr.Shortcut.CoveredCount()
	if m, ok := shortcut.ExtractCertificate(grid, gtr, gp, gpr, minor.PlanarDensityBound, attempts, rng); ok {
		t.AddRow(fmt.Sprintf("grid %dx%d (soundness)", side, side), minor.PlanarDensityBound,
			gFailed, "found", m.Density(), m.Validate(grid) == nil, false)
	} else {
		t.AddRow(fmt.Sprintf("grid %dx%d (soundness)", side, side), minor.PlanarDensityBound,
			gFailed, "none", "-", "-", true)
	}
	return t, nil
}
