package bench

import (
	"fmt"
	"math/rand"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

func init() {
	register(Experiment{ID: "E11", Title: "Section 1.2: beyond minor-closed classes — δ(G) as a parameter", Run: runE11})
	register(Experiment{ID: "E12", Title: "Section 1.2: sub-graph connectivity over shortcuts", Run: runE12})
}

// runE11 exercises the paper's claim that Theorem 1.2 applies to *any*
// graph, parameterized by its minor density — not only minor-closed
// families: on random graphs of growing edge density, the doubling search
// accepts larger δ', and the quality bounds hold at the accepted level.
func runE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Section 1.2 — any graph, parameterized by δ(G): random-graph density sweep",
		Claim: "Theorem 1.2 holds for every graph with δ(G) as the parameter; accepted δ' tracks the true density",
		Note: "greedy δ ≤ is a witness lower bound on δ(G). Theorem 3.1 guarantees acceptance at δ' < 2·δ(G); " +
			"no analytic upper bound on δ(G) exists for random graphs, so the verdicts check the quality bounds " +
			"at the accepted level. δ' stays 1 here because dense random graphs have tiny diameter: with " +
			"k ≤ 8δ'·depth parts no edge can be overcongested (see EXPERIMENTS.md finding 2).",
		Columns: []string{"random G(n,m)", "m/n", "greedy δ ≤", "δ'", "iters",
			"congestion", "≤c·iters", "dilation", "≤(b+1)(2D+1)"},
	}
	n := 220
	ratios := []int{2, 4, 8, 16}
	if cfg.Quick {
		n = 80
		ratios = []int{2, 6}
	}
	for _, r := range ratios {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
		m := r * n
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.RandomConnected(n, m, rng)
		p, err := partition.BFSBlobs(g, isqrt(n), rng)
		if err != nil {
			return nil, err
		}
		res, err := shortcut.Build(g, p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(res.Shortcut)
		congBound := res.CongestionThreshold * res.Iterations
		dilBound := (res.BlockBudget + 1) * (2*res.TreeDepth + 1)
		t.AddRow(fmt.Sprintf("n=%d m=%d", n, m), float64(m)/float64(n),
			greedyDelta(g, cfg.Seed+int64(r)), res.Delta, res.Iterations,
			q.Congestion, q.Congestion <= congBound,
			q.Dilation, q.Dilation <= dilBound)
	}
	return t, nil
}

// runE12 reproduces the sub-graph connectivity application (Section 1.2):
// components of a random subgraph H of the network are identified in
// O~(quality · log n) rounds, even when H-components have huge diameter,
// and the labels always match the centralized reference.
func runE12(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Section 1.2 — sub-graph connectivity via shortcuts",
		Claim: "H-components are identified in O~(Q·log n) rounds over the network's shortcuts, regardless of H's own diameter",
		Note: "H keeps each network edge independently (p = 1/2 for grids/tori; rim-only minus two edges for the " +
			"wheel, whose surviving arc has diameter Θ(n) while the network has diameter 2).",
		Columns: []string{"network", "n", "|E(H)|", "H-components", "phases",
			"rounds total", "labels correct"},
	}
	type inst struct {
		name string
		g    *graph.Graph
		in   []bool
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	half := func(g *graph.Graph) []bool {
		in := make([]bool, g.NumEdges())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		return in
	}
	rimArc := func(g *graph.Graph) []bool {
		in := make([]bool, g.NumEdges())
		skipped := 0
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if e.U == 0 || e.V == 0 {
				continue
			}
			if skipped < 2 {
				skipped++ // cut the rim twice: two long arcs
				continue
			}
			in[id] = true
		}
		return in
	}
	var insts []inst
	if cfg.Quick {
		gq := graph.Grid(8, 8)
		wq := graph.Wheel(48)
		insts = []inst{
			{name: "grid 8x8, p=1/2", g: gq, in: half(gq)},
			{name: "wheel n=48, rim arcs", g: wq, in: rimArc(wq)},
		}
	} else {
		g1 := graph.Grid(16, 16)
		g2 := graph.Torus(12, 12)
		g3 := graph.Wheel(512)
		insts = []inst{
			{name: "grid 16x16, p=1/2", g: g1, in: half(g1)},
			{name: "torus 12x12, p=1/2", g: g2, in: half(g2)},
			{name: "wheel n=512, rim arcs", g: g3, in: rimArc(g3)},
		}
	}
	for _, in := range insts {
		res, err := dist.SubgraphComponents(in.g, in.in, dist.MSTOptions{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		want := dist.ReferenceSubgraphComponents(in.g, in.in)
		edges := 0
		for _, b := range in.in {
			if b {
				edges++
			}
		}
		t.AddRow(in.name, in.g.NumNodes(), edges, res.Components, res.Phases,
			res.Rounds.Total(), dist.SameComponents(res.Label, want))
	}
	return t, nil
}

func init() {
	register(Experiment{ID: "E13", Title: "Applications: bridges / 2-edge-connectivity", Run: runE13})
}

// runE13 validates the distributed bridge finder (the simplest member of
// the 2-edge-connectivity application family around [DG19]) against the
// sequential DFS lowlink reference.
func runE13(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Applications — distributed bridge finding (2-edge-connectivity)",
		Claim: "tree edges with 1-respecting cut value 1 are exactly the bridges; found in O(D) + Õ(Q) rounds",
		Columns: []string{"network", "n", "m", "bridges", "matches DFS reference",
			"rounds total"},
	}
	rng := newRand(cfg.Seed + 13)
	type inst struct {
		name string
		g    *graph.Graph
	}
	insts := []inst{
		{name: "caterpillar 8×4", g: graph.Caterpillar(8, 4)},
		{name: "grid 10x10", g: graph.Grid(10, 10)},
		{name: "2×K6 bridge", g: twoCliquesBridgeE13()},
		{name: "random n=120 m=140", g: graph.RandomConnected(120, 140, rng)},
	}
	if cfg.Quick {
		insts = insts[:2]
	}
	for _, in := range insts {
		res, err := dist.Bridges(in.g, 0)
		if err != nil {
			return nil, err
		}
		want := graph.Bridges(in.g)
		sortedCopy := append([]int(nil), want...)
		sortInts(sortedCopy)
		match := len(res.EdgeIDs) == len(sortedCopy)
		if match {
			for i := range sortedCopy {
				if res.EdgeIDs[i] != sortedCopy[i] {
					match = false
					break
				}
			}
		}
		t.AddRow(in.name, in.g.NumNodes(), in.g.NumEdges(), len(res.EdgeIDs),
			match, res.Rounds.Total())
	}
	return t, nil
}

func twoCliquesBridgeE13() *graph.Graph {
	g := graph.New(12)
	for base := 0; base < 12; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	g.AddEdge(2, 8)
	return g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
