package bench

import (
	"fmt"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

// minorGenusBound is Lemma 3.3's genus bound, kept local for readability.
func minorGenusBound(g int) float64 { return minor.GenusDensityBound(g) }

func init() {
	register(Experiment{ID: "E1", Title: "Theorem 3.1: partial shortcuts exist at c=8δD, b=8δ", Run: runE1})
	register(Experiment{ID: "E2", Title: "Theorem 1.2 via Obs. 2.6/2.7: full shortcuts", Run: runE2})
	register(Experiment{ID: "E4", Title: "Lemma 3.2 / Figure 3.2: Ω(δD) lower bound", Run: runE4})
	register(Experiment{ID: "E5", Title: "Corollaries 1.4 & 3.4: genus and treewidth bounds", Run: runE5})
}

// runE1 checks, per family, that a single partial construction at the
// paper's parameters covers at least half the parts with congestion < c and
// block number <= b+1.
func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 3.1 — tree-restricted 8δD-congestion 8δ-block partial shortcuts",
		Claim: "every graph with minor density δ admits a partial shortcut covering ≥ k/2 parts with congestion < 8δD and ≤ 8δ+1 blocks",
		Columns: []string{"family", "n", "depth", "δ", "k", "c=8δD", "b=8δ",
			"covered", "≥k/2", "congestion", "<c", "blocks", "≤b+1"},
	}
	fams, err := standardFamilies(cfg)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		tr, err := tree.FromBFS(f.g, shortcut.ChooseRoot(f.g))
		if err != nil {
			return nil, err
		}
		depth := tr.MaxDepth()
		c := 8 * f.deltaBound * depth
		b := 8 * f.deltaBound
		pr, err := shortcut.BuildPartial(f.g, tr, f.p, c, b, nil)
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(pr.Shortcut)
		k := f.p.NumParts()
		covered := pr.Shortcut.CoveredCount()
		t.AddRow(f.name, f.g.NumNodes(), depth, f.deltaBound, k, c, b,
			covered, 2*covered >= k, q.Congestion, q.Congestion < c,
			q.MaxBlocks, q.MaxBlocks <= b+1)
	}
	return t, nil
}

// runE2 runs the full builder (doubling search + Observation 2.7 loop) and
// checks the Theorem 1.2 quality shape.
func runE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 1.2 — full shortcuts with congestion O(δD log n), dilation O(δD)",
		Claim: "the Obs. 2.7 loop covers all parts in ≤ ⌈log₂k⌉+2 iterations; congestion ≤ c·iters, dilation ≤ (b+1)(2D+1)",
		Columns: []string{"family", "n", "depth", "δ'", "iters", "≤log₂k+2",
			"congestion", "c·iters", "ok", "dilation", "(b+1)(2D+1)", "ok"},
	}
	fams, err := standardFamilies(cfg)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		res, err := shortcut.Build(f.g, f.p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(res.Shortcut)
		congBound := res.CongestionThreshold * res.Iterations
		dilBound := (res.BlockBudget + 1) * (2*res.TreeDepth + 1)
		iterBound := ceilLog2(f.p.NumParts()) + 2
		t.AddRow(f.name, f.g.NumNodes(), res.TreeDepth, res.Delta,
			res.Iterations, res.Iterations <= iterBound,
			q.Congestion, congBound, q.Congestion <= congBound,
			q.Dilation, dilBound, q.Dilation <= dilBound)
	}
	return t, nil
}

// runE4 reproduces Figure 3.2: on the lower-bound topology, every
// algorithm's measured quality must respect (δ'-3)D'/6, and the theorem
// construction must stay within its own O(δD log) upper bound.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Lemma 3.2 — lower bound Ω(δD) on the Figure 3.2 topology",
		Claim: "every shortcut for the row parts has quality ≥ (δ'-3)D'/6",
		Note: "diameter note: the paper claims diameter ≤ 1.5D+1 for this topology, but its argument bounds " +
			"the middle-node eccentricity; the construction's true diameter is ≈2.5D (measured column). " +
			"This does not affect the lower bound. 'quality' = congestion + dilation.",
		Columns: []string{"δ'", "D'", "n", "k", "diam", "bound (δ'-3)D'/6",
			"theorem quality", "≥bound", "trivial quality", "≥bound", "empty quality", "≥bound"},
	}
	params := [][2]int{{5, 12}, {5, 20}, {6, 24}, {7, 28}}
	if cfg.Quick {
		params = [][2]int{{5, 12}, {6, 16}}
	}
	for _, pp := range params {
		lb, err := graph.LowerBound(pp[0], pp[1])
		if err != nil {
			return nil, err
		}
		p, err := partition.New(lb.G, lb.Rows)
		if err != nil {
			return nil, err
		}
		diam, err := graph.Diameter(lb.G)
		if err != nil {
			return nil, err
		}
		bound := lb.QualityLowerBound

		res, err := shortcut.Build(lb.G, p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		qTheorem := shortcut.Measure(res.Shortcut).Value()

		triv, err := shortcut.Trivial(lb.G, p, nil)
		if err != nil {
			return nil, err
		}
		qTrivial := shortcut.Measure(triv).Value()

		qEmpty := shortcut.Measure(shortcut.NewEmpty(lb.G, p)).Value()

		t.AddRow(pp[0], pp[1], lb.G.NumNodes(), p.NumParts(), diam, bound,
			qTheorem, float64(qTheorem) >= bound,
			qTrivial, float64(qTrivial) >= bound,
			qEmpty, float64(qEmpty) >= bound)
	}
	return t, nil
}

// runE5 instantiates Theorem 3.1 for genus and treewidth families and
// reports quality normalized by the corollary bounds.
func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Corollaries 1.4 & 3.4 — shortcuts for genus-g and treewidth-k graphs",
		Claim: "quality O~(√g·D) for genus g and O~(kD) for treewidth k follow by plugging Lemma 3.3 into Theorem 3.1",
		Note: "norm = quality/(bound·depth): the corollaries assert this stays O~(1) as the family parameter grows; " +
			"the verdict checks it against the explicit constant budget 25·log₂n from Obs. 2.6/2.7.",
		Columns: []string{"family", "param", "δ bound", "n", "depth",
			"quality", "norm q/(bound·D)", "budget 25·log₂n", "within"},
	}
	type fam struct {
		name  string
		param string
		g     *graph.Graph
		bound float64
	}
	var fams []fam
	torusSides := []int{10, 14, 18}
	genusCounts := []int{1, 2, 4, 8}
	genusSide := 8
	ktreeKs := []int{2, 3, 4, 6, 8}
	ktreeN := 240
	if cfg.Quick {
		torusSides = []int{8}
		genusCounts = []int{1, 2}
		genusSide = 5
		ktreeKs = []int{2, 4}
		ktreeN = 60
	}
	for _, s := range torusSides {
		fams = append(fams, fam{
			name:  fmt.Sprintf("torus %dx%d", s, s),
			param: "g=1",
			g:     graph.Torus(s, s),
			bound: 5, // ceil((3+sqrt(33))/2): Lemma 3.3 with g=1
		})
	}
	for _, c := range genusCounts {
		fams = append(fams, fam{
			name:  fmt.Sprintf("torus-chain %d×(%dx%d)", c, genusSide, genusSide),
			param: fmt.Sprintf("g=%d", c),
			g:     graph.TorusChain(c, genusSide),
			bound: minorGenusBound(c),
		})
	}
	rngSeed := cfg.Seed + 5
	for _, k := range ktreeKs {
		fams = append(fams, fam{
			name:  fmt.Sprintf("%d-tree n=%d", k, ktreeN),
			param: fmt.Sprintf("k=%d", k),
			g:     graph.KTree(ktreeN, k, newRand(rngSeed+int64(k))),
			bound: float64(k),
		})
	}
	for _, f := range fams {
		p, err := partition.BFSBlobs(f.g, isqrt(f.g.NumNodes()), newRand(cfg.Seed+int64(len(f.name))))
		if err != nil {
			return nil, err
		}
		res, err := shortcut.Build(f.g, p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(res.Shortcut).Value()
		logn := ceilLog2(f.g.NumNodes())
		// The corollary's hidden constant folds the paper's explicit ones:
		// 8δ(2D+1) dilation + 8δD·log₂k congestion ≤ 25·bound·D·log₂n.
		norm := float64(q) / (f.bound * float64(res.TreeDepth))
		budget := 25 * float64(logn)
		t.AddRow(f.name, f.param, f.bound, f.g.NumNodes(), res.TreeDepth,
			q, norm, budget, norm <= budget)
	}
	return t, nil
}
