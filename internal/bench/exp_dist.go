package bench

import (
	"fmt"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

func init() {
	register(Experiment{ID: "E3", Title: "Theorem 1.5: distributed construction rounds scale as Õ(δD)", Run: runE3})
	register(Experiment{ID: "E6", Title: "Corollary 1.6: distributed MST in Õ(δD) rounds", Run: runE6})
	register(Experiment{ID: "E7", Title: "Corollary 1.7: distributed min-cut, exactness and rounds", Run: runE7})
	register(Experiment{ID: "E8", Title: "Section 2: part-wise aggregation and the wheel example", Run: runE8})
}

// runE3 sweeps the distributed construction along two axes: growing
// diameter at fixed delta (grids) and growing delta at bounded diameter
// (k-trees). The normalized column total/(δ'·depth·log₂n) should stay flat.
func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Theorem 1.5 — distributed construction, rounds vs δ·D",
		Claim: "a shortcut of quality Õ(δD) is computed in Õ(δD) rounds",
		Note: "measured = simulated protocol rounds (BFS + cut waves + block broadcasts); sync = harness phase barriers " +
			"charged at depth+1 each; charged = the [HHW18] Lemma 2.8 block-verification budget b(2D+1)+c per iteration " +
			"plus routing installation (see DESIGN.md §2.2). norm = total/(δ'·depth·log₂n).",
		Columns: []string{"family", "n", "depth", "δ'", "iters",
			"measured", "sync", "charged", "total", "norm"},
	}
	gridSides := []int{8, 12, 16, 24, 32}
	ktreeKs := []int{2, 3, 4, 6}
	ktreeN := 240
	if cfg.Quick {
		gridSides = []int{8, 12}
		ktreeKs = []int{2, 4}
		ktreeN = 80
	}
	addRow := func(name string, g *graph.Graph, p *partition.Partition) error {
		res, err := dist.Construct(g, p, dist.ConstructOptions{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		depth := res.Tree.MaxDepth()
		logn := ceilLog2(g.NumNodes())
		norm := float64(res.Rounds.Total()) / (float64(res.Delta) * float64(depth) * float64(logn))
		t.AddRow(name, g.NumNodes(), depth, res.Delta, res.Iterations,
			res.Rounds.Measured, res.Rounds.Sync, res.Rounds.Charged, res.Rounds.Total(), norm)
		return nil
	}
	for _, s := range gridSides {
		g := graph.Grid(s, s)
		p, err := partition.BFSBlobs(g, s, newRand(cfg.Seed+int64(s)))
		if err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("grid %dx%d", s, s), g, p); err != nil {
			return nil, err
		}
	}
	for _, k := range ktreeKs {
		g := graph.KTree(ktreeN, k, newRand(cfg.Seed+100+int64(k)))
		p, err := partition.BFSBlobs(g, ktreeN/12, newRand(cfg.Seed+200+int64(k)))
		if err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("%d-tree n=%d", k, ktreeN), g, p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// runE6 compares Borůvka-over-shortcuts against the D+sqrt(n) baseline on
// two planar regimes: grids, where D = Θ(√n) and the baseline wins on
// constants, and wheels, where D = 2 and the Õ(δD) shortcuts win by a
// growing factor — the crossover the corollary is about. Weights are
// validated against Kruskal on every row.
func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Corollary 1.6 — distributed MST rounds: Õ(δD) shortcuts vs D+√n baseline",
		Claim: "MST completes in Õ(δD) rounds with theorem shortcuts; the trivial baseline pays Õ(D+√n); shortcuts win exactly where D ≪ √n",
		Note: "both families are planar (δ<3). Grids have D=Θ(√n): both methods are Θ~(√n) and the baseline's " +
			"constants win (ratio < 1). Wheels have D=2: the baseline pays Θ(√n) per Borůvka phase while shortcuts " +
			"pay polylog, so the ratio grows with n and crosses 1 — who wins flips exactly as the corollary " +
			"predicts. 'dist' simulates the Theorem 1.5 construction per phase; 'central' charges it at the " +
			"worst-case Lemma 2.8 budget (paper constants, footnote 3 calls them loose); 'central*' charges the " +
			"measured shortcut quality Õ(Q) that Lemma 2.8 actually delivers.",
		Columns: []string{"family", "n", "D", "rounds dist", "rounds central", "rounds central*", "rounds trivial",
			"trivial/central*", "weight=Kruskal"},
	}
	type inst struct {
		name    string
		g       *graph.Graph
		runDist bool
	}
	var insts []inst
	gridSides := []int{8, 12, 16, 20}
	wheelSizes := []int{256, 1024, 4096, 8192}
	distLimit := 16
	if cfg.Quick {
		gridSides = []int{6, 8}
		wheelSizes = []int{64, 256}
		distLimit = 8
	}
	for _, s := range gridSides {
		insts = append(insts, inst{name: fmt.Sprintf("grid %dx%d", s, s), g: graph.Grid(s, s), runDist: s <= distLimit})
	}
	for _, n := range wheelSizes {
		insts = append(insts, inst{name: fmt.Sprintf("wheel n=%d", n), g: graph.Wheel(n), runDist: n <= 300})
	}
	for i, in := range insts {
		g := in.g
		graph.RandomizeWeights(g, newRand(cfg.Seed+int64(i)))
		_, kw := graph.Kruskal(g)
		diam, err := graph.Diameter(g)
		if err != nil {
			return nil, err
		}
		match := true
		roundsOf := func(kind dist.ProviderKind) (int, error) {
			res, err := dist.MST(g, dist.MSTOptions{Provider: kind, Seed: cfg.Seed + int64(i)})
			if err != nil {
				return 0, err
			}
			if diff := res.Weight - kw; diff > 1e-9 || diff < -1e-9 {
				match = false
			}
			return res.Rounds.Total(), nil
		}
		distCell := "-"
		if in.runDist {
			r, err := roundsOf(dist.ProviderDistributed)
			if err != nil {
				return nil, err
			}
			distCell = fmt.Sprintf("%d", r)
		}
		centralRounds, err := roundsOf(dist.ProviderCentral)
		if err != nil {
			return nil, err
		}
		adaptiveRounds, err := roundsOf(dist.ProviderCentralAdaptive)
		if err != nil {
			return nil, err
		}
		trivialRounds, err := roundsOf(dist.ProviderTrivial)
		if err != nil {
			return nil, err
		}
		ratio := float64(trivialRounds) / float64(maxInt(adaptiveRounds, 1))
		t.AddRow(in.name, g.NumNodes(), diam, distCell, centralRounds, adaptiveRounds, trivialRounds, ratio, match)
	}
	return t, nil
}

// runE7 validates the tree-packing min-cut against Stoer-Wagner on families
// with known small cuts.
func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Corollary 1.7 — distributed min-cut via tree packing",
		Claim: "exact min cut in Õ(δ^{O(1)}·D) rounds on bounded-density families",
		Note: "R = 2⌈log₂n⌉+4 random spanning trees, each a full shortcut-based MST run; " +
			"per-tree 1-respecting evaluation charged per DESIGN.md §2.5.",
		Columns: []string{"family", "n", "m", "Stoer-Wagner", "tree-packing", "exact",
			"trees", "rounds total"},
	}
	type inst struct {
		name string
		g    *graph.Graph
	}
	insts := []inst{
		{name: "cycle n=32", g: graph.Cycle(32)},
		{name: "grid 7x7", g: graph.Grid(7, 7)},
		{name: "torus 5x5", g: graph.Torus(5, 5)},
		{name: "2×K6 bridge", g: twoCliquesBridge()},
	}
	if cfg.Quick {
		insts = insts[:2]
	}
	for _, in := range insts {
		sw, err := graph.StoerWagner(in.g)
		if err != nil {
			return nil, err
		}
		res, err := dist.MinCut(in.g, dist.MinCutOptions{
			Seed: cfg.Seed + 17,
			MST:  dist.MSTOptions{Provider: dist.ProviderCentral},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(in.name, in.g.NumNodes(), in.g.NumEdges(), sw, res.Value,
			res.Value == int64(sw), res.Trees, res.Rounds.Total())
	}
	return t, nil
}

func twoCliquesBridge() *graph.Graph {
	g := graph.New(12)
	for base := 0; base < 12; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	g.AddEdge(2, 8)
	return g
}

// runE8 reproduces the paper's Section 2 wheel example: part-wise
// aggregation over the rim with and without shortcuts, against the
// O(congestion + dilation·log n) schedule bound.
func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Section 2 — part-wise aggregation; wheel example (D=2, part diameter Θ(n))",
		Claim: "with a shortcut PA takes O(c + d·log n) rounds; without, Θ(part diameter)",
		Columns: []string{"wheel n", "rim diameter", "PA rounds (shortcut)", "PA rounds (none)",
			"speedup", "c+d·log₂n budget", "within"},
	}
	sizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sizes = []int{48, 96}
	}
	for _, n := range sizes {
		g := graph.Wheel(n)
		p, err := partition.WheelRim(g)
		if err != nil {
			return nil, err
		}
		res, err := shortcut.Build(g, p, shortcut.Options{})
		if err != nil {
			return nil, err
		}
		q := shortcut.Measure(res.Shortcut)
		routing, err := dist.NewPARouting(res.Shortcut)
		if err != nil {
			return nil, err
		}
		values := make([]dist.Payload, g.NumNodes())
		for v := range values {
			values[v] = dist.Payload{1, 0, 0}
		}
		pa, err := dist.PartwiseAggregate(g, routing, dist.OpSum, values, cfg.Seed, true, 64*n+4096)
		if err != nil {
			return nil, err
		}
		empty, err := dist.NewPARouting(shortcut.NewEmpty(g, p))
		if err != nil {
			return nil, err
		}
		paEmpty, err := dist.PartwiseAggregate(g, empty, dist.OpSum, values, cfg.Seed, true, 64*n+4096)
		if err != nil {
			return nil, err
		}
		rimDiam := (n - 1) / 2
		budget := q.Congestion + q.Dilation*ceilLog2(n)
		// Convergecast+broadcast traverses the part tree twice.
		budget = 2*budget + 4
		speedup := float64(paEmpty.Rounds.Measured) / float64(maxInt(pa.Rounds.Measured, 1))
		t.AddRow(n, rimDiam, pa.Rounds.Measured, paEmpty.Rounds.Measured,
			speedup, budget, pa.Rounds.Measured <= budget)
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
