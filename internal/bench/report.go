package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// BenchRecord is one machine-readable benchmark data point: the measured
// shortcut quality and construction cost for one workload family. A file
// of these per PR tracks the performance trajectory across the repo's
// history.
type BenchRecord struct {
	Family       string `json:"family"`
	Nodes        int    `json:"n"`
	EdgeCount    int    `json:"m"`
	Parts        int    `json:"parts"`
	Delta        int    `json:"delta"`
	Congestion   int    `json:"congestion"`
	Dilation     int    `json:"dilation"`
	BuildNsPerOp int64  `json:"build_ns_per_op"`
	// BuildAllocsPerOp and BuildBytesPerOp are heap-allocation costs of one
	// construction, measured from runtime.MemStats deltas over the timing
	// iterations; they track the Builder's allocation discipline across PRs.
	BuildAllocsPerOp int64 `json:"build_allocs_per_op"`
	BuildBytesPerOp  int64 `json:"build_bytes_per_op"`
}

// Report is the BENCH_<timestamp>.json payload.
type Report struct {
	Timestamp string        `json:"timestamp"`
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	Records   []BenchRecord `json:"records"`
	// ObsOverhead is the measured cost of build-stage collection
	// (Options.CollectStages, what the daemon's tracing turns on for every
	// cold build) against the identical uninstrumented build.
	ObsOverhead *ObsOverhead `json:"obs_overhead,omitempty"`
}

// ObsOverheadMaxPct is the acceptance bound on stage-collection overhead:
// a cold build with CollectStages must cost at most ~2% more than the
// same build without it (the extra 0.5 is measurement headroom — best-of
// interleaved runs still carry sub-percent scheduler noise). shortcutbench
// enforces the bound in full (non-quick) mode; quick-mode instances are
// too small to time a 2% effect meaningfully.
const ObsOverheadMaxPct = 2.5

// ObsOverhead compares cold-build cost with and without stage collection
// on the Builder acceptance family.
type ObsOverhead struct {
	Family        string `json:"family"`
	PlainNsPerOp  int64  `json:"plain_ns_per_op"`
	StagedNsPerOp int64  `json:"staged_ns_per_op"`
	// OverheadPct = 100 * (staged - plain) / plain; negative values (noise)
	// are reported as measured.
	OverheadPct float64 `json:"overhead_pct"`
}

// measureObsOverhead times interleaved plain/staged cold builds (best-of,
// sequential Builder) on grid:64x64 — the Builder's allocation-budget
// acceptance family. Interleaving pairs the two variants under the same
// scheduler and thermal conditions; best-of damps one-sided outliers.
func measureObsOverhead(cfg Config) (*ObsOverhead, error) {
	side := 64
	if cfg.Quick {
		side = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.Grid(side, side)
	p, err := partition.BFSBlobs(g, side, rng)
	if err != nil {
		return nil, err
	}
	const iters = 5
	bestPlain, bestStaged := int64(-1), int64(-1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := shortcut.Build(g, p, shortcut.Options{Parallelism: 1}); err != nil {
			return nil, err
		}
		plain := time.Since(start).Nanoseconds()
		start = time.Now()
		if _, err := shortcut.Build(g, p, shortcut.Options{Parallelism: 1, CollectStages: true}); err != nil {
			return nil, err
		}
		staged := time.Since(start).Nanoseconds()
		if bestPlain < 0 || plain < bestPlain {
			bestPlain = plain
		}
		if bestStaged < 0 || staged < bestStaged {
			bestStaged = staged
		}
	}
	return &ObsOverhead{
		Family:        fmt.Sprintf("grid:%dx%d", side, side),
		PlainNsPerOp:  bestPlain,
		StagedNsPerOp: bestStaged,
		OverheadPct:   100 * float64(bestStaged-bestPlain) / float64(bestPlain),
	}, nil
}

// buildTimingIters builds each family this many times and records the
// fastest run, damping scheduler noise without burning CI minutes.
const buildTimingIters = 3

// perfFamilies builds the large construction-benchmark workloads tracked in
// the JSON report alongside the standard experiment families. They match
// the BenchmarkBuild sub-benchmarks (grid:64x64 is the acceptance family
// for the Builder's allocation budget), so `go test -bench BenchmarkBuild
// -benchmem` and `shortcutbench -json` measure the same instances.
func perfFamilies(cfg Config) ([]family, error) {
	gridSide, torusSide, ktreeN := 64, 32, 600
	if cfg.Quick {
		gridSide, torusSide, ktreeN = 16, 12, 120
	}
	var fams []family

	// Each family gets a fresh seed-derived rng, exactly like the
	// BenchmarkBuild sub-benchmarks (which hard-code seed 1), so at the
	// default -seed 1 the instances really are the same regardless of
	// which families run or in what order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	grid := graph.Grid(gridSide, gridSide)
	gp, err := partition.BFSBlobs(grid, gridSide, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("grid:%dx%d", gridSide, gridSide), g: grid, p: gp, deltaBound: 3})

	rng = rand.New(rand.NewSource(cfg.Seed))
	torus := graph.Torus(torusSide, torusSide)
	tp, err := partition.BFSBlobs(torus, torusSide, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("torus:%dx%d", torusSide, torusSide), g: torus, p: tp, deltaBound: 5})

	rng = rand.New(rand.NewSource(cfg.Seed))
	kt := graph.KTree(ktreeN, 4, rng)
	kp, err := partition.BFSBlobs(kt, ktreeN/12, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("ktree:%d,4", ktreeN), g: kt, p: kp, deltaBound: 4})
	return fams, nil
}

// JSONReport times the Theorem 3.1 construction over the standard
// benchmark families plus the large perf families and packages quality,
// build cost, and allocation cost as a Report.
func JSONReport(cfg Config, now time.Time) (*Report, error) {
	fams, err := standardFamilies(cfg)
	if err != nil {
		return nil, err
	}
	perf, err := perfFamilies(cfg)
	if err != nil {
		return nil, err
	}
	fams = append(fams, perf...)
	rep := &Report{
		Timestamp: now.UTC().Format("20060102T150405Z"),
		Quick:     cfg.Quick,
		Seed:      cfg.Seed,
	}
	for _, f := range fams {
		var res *shortcut.Result
		best := int64(-1)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < buildTimingIters; i++ {
			start := time.Now()
			// Sequential on purpose: the speculative search's abandoned
			// levels would make the allocation numbers depend on core
			// count and scheduling, and the accepted shortcut is
			// identical either way. The parallel path's gain is tracked
			// by BenchmarkBuild instead.
			r, err := shortcut.Build(f.g, f.p, shortcut.Options{Parallelism: 1})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, err
			}
			if best < 0 || ns < best {
				best, res = ns, r
			}
		}
		runtime.ReadMemStats(&after)
		q := shortcut.Measure(res.Shortcut)
		rep.Records = append(rep.Records, BenchRecord{
			Family:           f.name,
			Nodes:            f.g.NumNodes(),
			EdgeCount:        f.g.NumEdges(),
			Parts:            f.p.NumParts(),
			Delta:            res.Delta,
			Congestion:       q.Congestion,
			Dilation:         q.Dilation,
			BuildNsPerOp:     best,
			BuildAllocsPerOp: int64(after.Mallocs-before.Mallocs) / buildTimingIters,
			BuildBytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / buildTimingIters,
		})
	}
	if rep.ObsOverhead, err = measureObsOverhead(cfg); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// DefaultReportPath names the report file for its timestamp:
// BENCH_<timestamp>.json in the current directory.
func (r *Report) DefaultReportPath() string {
	return "BENCH_" + r.Timestamp + ".json"
}
