package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// BenchRecord is one machine-readable benchmark data point: the measured
// shortcut quality and construction cost for one workload family. A file
// of these per PR tracks the performance trajectory across the repo's
// history.
type BenchRecord struct {
	Family       string `json:"family"`
	Nodes        int    `json:"n"`
	EdgeCount    int    `json:"m"`
	Parts        int    `json:"parts"`
	Delta        int    `json:"delta"`
	Congestion   int    `json:"congestion"`
	Dilation     int    `json:"dilation"`
	BuildNsPerOp int64  `json:"build_ns_per_op"`
	// BuildAllocsPerOp and BuildBytesPerOp are heap-allocation costs of one
	// construction, measured from runtime.MemStats deltas over the timing
	// iterations; they track the Builder's allocation discipline across PRs.
	BuildAllocsPerOp int64 `json:"build_allocs_per_op"`
	BuildBytesPerOp  int64 `json:"build_bytes_per_op"`
}

// Report is the BENCH_<timestamp>.json payload.
type Report struct {
	Timestamp string        `json:"timestamp"`
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	Records   []BenchRecord `json:"records"`
}

// buildTimingIters builds each family this many times and records the
// fastest run, damping scheduler noise without burning CI minutes.
const buildTimingIters = 3

// perfFamilies builds the large construction-benchmark workloads tracked in
// the JSON report alongside the standard experiment families. They match
// the BenchmarkBuild sub-benchmarks (grid:64x64 is the acceptance family
// for the Builder's allocation budget), so `go test -bench BenchmarkBuild
// -benchmem` and `shortcutbench -json` measure the same instances.
func perfFamilies(cfg Config) ([]family, error) {
	gridSide, torusSide, ktreeN := 64, 32, 600
	if cfg.Quick {
		gridSide, torusSide, ktreeN = 16, 12, 120
	}
	var fams []family

	// Each family gets a fresh seed-derived rng, exactly like the
	// BenchmarkBuild sub-benchmarks (which hard-code seed 1), so at the
	// default -seed 1 the instances really are the same regardless of
	// which families run or in what order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	grid := graph.Grid(gridSide, gridSide)
	gp, err := partition.BFSBlobs(grid, gridSide, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("grid:%dx%d", gridSide, gridSide), g: grid, p: gp, deltaBound: 3})

	rng = rand.New(rand.NewSource(cfg.Seed))
	torus := graph.Torus(torusSide, torusSide)
	tp, err := partition.BFSBlobs(torus, torusSide, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("torus:%dx%d", torusSide, torusSide), g: torus, p: tp, deltaBound: 5})

	rng = rand.New(rand.NewSource(cfg.Seed))
	kt := graph.KTree(ktreeN, 4, rng)
	kp, err := partition.BFSBlobs(kt, ktreeN/12, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("ktree:%d,4", ktreeN), g: kt, p: kp, deltaBound: 4})
	return fams, nil
}

// JSONReport times the Theorem 3.1 construction over the standard
// benchmark families plus the large perf families and packages quality,
// build cost, and allocation cost as a Report.
func JSONReport(cfg Config, now time.Time) (*Report, error) {
	fams, err := standardFamilies(cfg)
	if err != nil {
		return nil, err
	}
	perf, err := perfFamilies(cfg)
	if err != nil {
		return nil, err
	}
	fams = append(fams, perf...)
	rep := &Report{
		Timestamp: now.UTC().Format("20060102T150405Z"),
		Quick:     cfg.Quick,
		Seed:      cfg.Seed,
	}
	for _, f := range fams {
		var res *shortcut.Result
		best := int64(-1)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < buildTimingIters; i++ {
			start := time.Now()
			// Sequential on purpose: the speculative search's abandoned
			// levels would make the allocation numbers depend on core
			// count and scheduling, and the accepted shortcut is
			// identical either way. The parallel path's gain is tracked
			// by BenchmarkBuild instead.
			r, err := shortcut.Build(f.g, f.p, shortcut.Options{Parallelism: 1})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, err
			}
			if best < 0 || ns < best {
				best, res = ns, r
			}
		}
		runtime.ReadMemStats(&after)
		q := shortcut.Measure(res.Shortcut)
		rep.Records = append(rep.Records, BenchRecord{
			Family:           f.name,
			Nodes:            f.g.NumNodes(),
			EdgeCount:        f.g.NumEdges(),
			Parts:            f.p.NumParts(),
			Delta:            res.Delta,
			Congestion:       q.Congestion,
			Dilation:         q.Dilation,
			BuildNsPerOp:     best,
			BuildAllocsPerOp: int64(after.Mallocs-before.Mallocs) / buildTimingIters,
			BuildBytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / buildTimingIters,
		})
	}
	return rep, nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// DefaultReportPath names the report file for its timestamp:
// BENCH_<timestamp>.json in the current directory.
func (r *Report) DefaultReportPath() string {
	return "BENCH_" + r.Timestamp + ".json"
}
