package bench

import (
	"encoding/json"
	"os"
	"time"

	"locshort/internal/shortcut"
)

// BenchRecord is one machine-readable benchmark data point: the measured
// shortcut quality and construction cost for one workload family. A file
// of these per PR tracks the performance trajectory across the repo's
// history.
type BenchRecord struct {
	Family       string `json:"family"`
	Nodes        int    `json:"n"`
	EdgeCount    int    `json:"m"`
	Parts        int    `json:"parts"`
	Delta        int    `json:"delta"`
	Congestion   int    `json:"congestion"`
	Dilation     int    `json:"dilation"`
	BuildNsPerOp int64  `json:"build_ns_per_op"`
}

// Report is the BENCH_<timestamp>.json payload.
type Report struct {
	Timestamp string        `json:"timestamp"`
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	Records   []BenchRecord `json:"records"`
}

// buildTimingIters builds each family this many times and records the
// fastest run, damping scheduler noise without burning CI minutes.
const buildTimingIters = 3

// JSONReport times the Theorem 3.1 construction over the standard
// benchmark families and packages quality plus build cost as a Report.
func JSONReport(cfg Config, now time.Time) (*Report, error) {
	fams, err := standardFamilies(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Timestamp: now.UTC().Format("20060102T150405Z"),
		Quick:     cfg.Quick,
		Seed:      cfg.Seed,
	}
	for _, f := range fams {
		var res *shortcut.Result
		best := int64(-1)
		for i := 0; i < buildTimingIters; i++ {
			start := time.Now()
			r, err := shortcut.Build(f.g, f.p, shortcut.Options{})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, err
			}
			if best < 0 || ns < best {
				best, res = ns, r
			}
		}
		q := shortcut.Measure(res.Shortcut)
		rep.Records = append(rep.Records, BenchRecord{
			Family:       f.name,
			Nodes:        f.g.NumNodes(),
			EdgeCount:    f.g.NumEdges(),
			Parts:        f.p.NumParts(),
			Delta:        res.Delta,
			Congestion:   q.Congestion,
			Dilation:     q.Dilation,
			BuildNsPerOp: best,
		})
	}
	return rep, nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// DefaultReportPath names the report file for its timestamp:
// BENCH_<timestamp>.json in the current directory.
func (r *Report) DefaultReportPath() string {
	return "BENCH_" + r.Timestamp + ".json"
}
