package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "A1", "A2", "A3", "A4"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	// Ordering: E* ascending, then A*.
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("E99"); ok {
		t.Error("ByID returned a phantom experiment")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "none",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow(true, false)
	s := tab.String()
	for _, want := range []string{"### T — demo", "| a ", "long-column", "2.50", "yes", "NO"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if len(tab.Violations()) != 1 {
		t.Errorf("Violations() = %d rows, want 1", len(tab.Violations()))
	}
}

// TestAllExperimentsQuick runs every registered experiment in quick mode and
// asserts that no claimed bound is violated: this is the repository's
// master "the paper's claims hold" test.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s error = %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tab.Violations() {
				t.Errorf("%s bound violated: %v", e.ID, row)
			}
		})
	}
}
