package bench

import (
	"fmt"
	"math/rand"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
)

// family is a named workload: a graph, a partition, and the analytic minor
// density bound used to instantiate the paper's parameters.
type family struct {
	name string
	g    *graph.Graph
	p    *partition.Partition
	// deltaBound is the smallest integer analytic upper bound on delta(G)
	// (Lemma 3.3 and friends).
	deltaBound int
}

// standardFamilies builds the benchmark families shared by E1/E2/E5:
// a planar grid, a genus-1 torus, k-trees of growing treewidth, a wheel,
// and the Lemma 3.2 lower-bound topology. Partition granularity is about
// sqrt(n) parts via BFS blobs (rows for the lower-bound instance, rim for
// the wheel).
func standardFamilies(cfg Config) ([]family, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gridSide, torusSide, ktreeN, wheelN := 24, 16, 300, 200
	lbDelta, lbDiam := 6, 24
	if cfg.Quick {
		gridSide, torusSide, ktreeN, wheelN = 10, 8, 80, 60
		lbDelta, lbDiam = 5, 12
	}
	var fams []family

	grid := graph.Grid(gridSide, gridSide)
	gp, err := partition.BFSBlobs(grid, gridSide, rng)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("grid %dx%d", gridSide, gridSide), g: grid, p: gp, deltaBound: 3})

	torus := graph.Torus(torusSide, torusSide)
	tp, err := partition.BFSBlobs(torus, torusSide, rng)
	if err != nil {
		return nil, err
	}
	// Genus 1: delta <= (3+sqrt(33))/2 < 4.38 (Lemma 3.3).
	fams = append(fams, family{name: fmt.Sprintf("torus %dx%d", torusSide, torusSide), g: torus, p: tp, deltaBound: 5})

	for _, k := range []int{2, 4} {
		kt := graph.KTree(ktreeN, k, rng)
		kp, err := partition.BFSBlobs(kt, ktreeN/12, rng)
		if err != nil {
			return nil, err
		}
		fams = append(fams, family{name: fmt.Sprintf("%d-tree n=%d", k, ktreeN), g: kt, p: kp, deltaBound: k})
	}

	wheel := graph.Wheel(wheelN)
	wp, err := partition.WheelRim(wheel)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{name: fmt.Sprintf("wheel n=%d", wheelN), g: wheel, p: wp, deltaBound: 3})

	lb, err := graph.LowerBound(lbDelta, lbDiam)
	if err != nil {
		return nil, err
	}
	lp, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		return nil, err
	}
	fams = append(fams, family{
		name:       fmt.Sprintf("LB(%d,%d) rows", lbDelta, lbDiam),
		g:          lb.G,
		p:          lp,
		deltaBound: lbDelta,
	})
	return fams, nil
}

// greedyDelta returns the greedy dense-minor lower bound on delta(G).
func greedyDelta(g *graph.Graph, seed int64) float64 {
	m := minor.GreedyDenseMinor(g, rand.New(rand.NewSource(seed)))
	return m.Density()
}
