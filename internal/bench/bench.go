package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks instance sizes for use inside unit tests and
	// benchmarks; full-size runs feed EXPERIMENTS.md.
	Quick bool
	// Seed drives all randomness; tables in EXPERIMENTS.md use Seed 1.
	Seed int64
}

// Table is an experiment's tabular result.
type Table struct {
	// ID is the experiment identifier (E1..E10, A1..A3).
	ID string
	// Title names the experiment; Claim restates the paper's claim being
	// checked; Note records methodology caveats.
	Title string
	Claim string
	Note  string
	// Columns and Rows hold the payload.
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "NO"
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	return s
}

// Violations returns the rows that contain a failed bound check (a "NO"
// cell), used by tests to assert that every claim holds.
func (t *Table) Violations() [][]string {
	var bad [][]string
	for _, row := range t.Rows {
		for _, cell := range row {
			if cell == "NO" {
				bad = append(bad, row)
				break
			}
		}
	}
	return bad
}

// String renders the table as GitHub-flavored markdown.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	}
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", width[i]+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// Experiment is a registered, runnable reproduction of one paper claim.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment ordered by ID (E* before A*).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].ID[0], out[j].ID[0]
		if pi != pj {
			return pi == 'E' // experiments before ablations
		}
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
