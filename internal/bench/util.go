package bench

import (
	"math"
	"math/rand"

	"locshort/internal/shortcut"
)

func ceilLog2(x int) int { return shortcut.CeilLog2(x) }

func isqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 1 {
		s = 1
	}
	return s
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
