package bench

import (
	"math"
	"math/bits"
	"math/rand"
)

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

func isqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 1 {
		s = 1
	}
	return s
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
