// Package wire defines the binary HTTP protocol locshortd speaks next to
// its JSON API. The insight it packages: the store's canonical payload
// encodings (version byte + the exact bytes the content fingerprints are
// computed over) already are a wire format — self-describing, self-
// verifying, and byte-identical on every node. The binary protocol
// therefore never invents a second encoding; it moves the store payloads
// verbatim and adds only the two small envelopes the payloads cannot
// carry themselves: this request body (which names a graph, a partition
// spec, and options — inputs, not content) and a handful of response
// headers for the metadata the JSON responses put in their envelope.
//
// Negotiation is plain HTTP: a request body in this format is announced
// with `Content-Type: application/x-locshort`, a response in it is asked
// for with `Accept: application/x-locshort`. Everything else — routes,
// status codes, error envelopes (errors are always JSON) — is shared with
// the JSON protocol, and the two are byte-equivalent where they overlap:
// the same payload bytes, the same fingerprints.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12) — codec output must be
// byte-deterministic — and its codec functions carry //locshort:hotpath,
// arming the per-call allocation rules; cmd/locshortlint enforces both
// in CI.
package wire

import (
	"encoding/binary"
	"fmt"
	"strings"

	"locshort/internal/service"
)

// ContentType is the media type of every binary request and response body.
const ContentType = "application/x-locshort"

// Response headers carrying the metadata a binary body omits. A binary
// shortcut response is the canonical shortcut record payload; key, graph,
// latency class, and build cost ride in these headers. A binary graph
// ingest acknowledges with the graph headers and an empty body.
const (
	// HeaderKey is the shortcut key (16 hex digits).
	HeaderKey = "X-Locshort-Key"
	// HeaderGraph is the graph fingerprint (16 hex digits).
	HeaderGraph = "X-Locshort-Graph"
	// HeaderSource is the latency class that served a shortcut response:
	// "cache", "store", "peer", or "built" (see the JSON field of the same
	// name), with a "forward:" prefix when another node executed it.
	HeaderSource = "X-Locshort-Source"
	// HeaderServedBy names the cluster node that executed the request.
	HeaderServedBy = "X-Locshort-Served-By"
	// HeaderBuildNs is the build cost in nanoseconds.
	HeaderBuildNs = "X-Locshort-Build-Ns"
	// HeaderNodes and HeaderEdges acknowledge a graph ingest's size.
	HeaderNodes = "X-Locshort-Nodes"
	HeaderEdges = "X-Locshort-Edges"
)

// IsBinary reports whether a Content-Type or Accept header value names the
// binary protocol. Parameters after ';' are ignored; the binary protocol
// has none, but a client that appends charset noise should still be
// understood.
//
//locshort:hotpath
func IsBinary(v string) bool {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.TrimSpace(v) == ContentType
}

// shortcutRequestVersion versions the binary shortcut request body.
const shortcutRequestVersion = 1

// ShortcutRequest is the binary body of POST /v1/shortcuts. It carries the
// spec-form request only: a graph fingerprint, a partition spec in the
// internal/cli language, a seed, and the canonical options text. Requests
// needing an explicit part list or async submission use the JSON body —
// those shapes are rare and cold; this one is the warm path.
//
// Layout: version byte, big-endian uint64 graph fingerprint, uvarint
// partition-spec length + bytes, varint seed, uvarint options length +
// bytes. No trailing bytes allowed.
type ShortcutRequest struct {
	Graph     service.Fingerprint
	Partition string
	Seed      int64
	Options   string
}

// maxRequestString bounds the spec and options strings read from a request
// body before allocation, far above any real spec.
const maxRequestString = 1 << 16

// AppendShortcutRequest renders r in binary form, appending to b.
//
//locshort:hotpath
func AppendShortcutRequest(b []byte, r ShortcutRequest) []byte {
	b = append(b, shortcutRequestVersion)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Graph))
	b = binary.AppendUvarint(b, uint64(len(r.Partition)))
	b = append(b, r.Partition...)
	b = binary.AppendVarint(b, r.Seed)
	b = binary.AppendUvarint(b, uint64(len(r.Options)))
	b = append(b, r.Options...)
	return b
}

// DecodeShortcutRequest parses a binary shortcut request body. The decoded
// strings are copies; the caller may recycle b.
//
//locshort:hotpath
func DecodeShortcutRequest(b []byte) (ShortcutRequest, error) {
	var r ShortcutRequest
	if len(b) < 1+8 || b[0] != shortcutRequestVersion {
		return r, fmt.Errorf("wire: shortcut request: bad version or truncated") //locshort:alloc-ok reject path
	}
	r.Graph = service.Fingerprint(binary.BigEndian.Uint64(b[1:]))
	b = b[9:]
	var ok bool
	if r.Partition, b, ok = readLenString(b); !ok {
		return r, fmt.Errorf("wire: shortcut request: truncated partition spec") //locshort:alloc-ok reject path
	}
	seed, used := binary.Varint(b)
	if used <= 0 {
		return r, fmt.Errorf("wire: shortcut request: truncated seed") //locshort:alloc-ok reject path
	}
	b = b[used:]
	r.Seed = seed
	if r.Options, b, ok = readLenString(b); !ok {
		return r, fmt.Errorf("wire: shortcut request: truncated options") //locshort:alloc-ok reject path
	}
	if len(b) != 0 {
		return r, fmt.Errorf("wire: shortcut request: %d trailing bytes", len(b)) //locshort:alloc-ok reject path
	}
	return r, nil
}

// readLenString decodes one uvarint-length-prefixed string field,
// returning the string (a copy — the caller may recycle b), the remaining
// bytes, and whether the field was well-formed. A named function rather
// than a closure inside DecodeShortcutRequest: the closure captured b by
// reference and so allocated on every decode, on the warm serving path.
//
//locshort:hotpath
func readLenString(b []byte) (string, []byte, bool) {
	n, used := binary.Uvarint(b)
	if used <= 0 || n > maxRequestString || uint64(len(b)-used) < n {
		return "", b, false
	}
	return string(b[used : used+int(n)]), b[used+int(n):], true
}
