package wire

import (
	"strings"
	"testing"

	"locshort/internal/service"
)

func TestShortcutRequestRoundTrip(t *testing.T) {
	cases := []ShortcutRequest{
		{},
		{Graph: 0xdeadbeefcafef00d, Partition: "blobs:8", Seed: 42, Options: "delta=3"},
		{Graph: 1, Partition: "rows:16x16", Seed: -7},
		{Graph: service.Fingerprint(^uint64(0)), Partition: strings.Repeat("x", 1000), Seed: 1<<62 - 1, Options: strings.Repeat("o", 1000)},
	}
	for i, want := range cases {
		b := AppendShortcutRequest(nil, want)
		got, err := DecodeShortcutRequest(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != want {
			t.Errorf("case %d: round trip changed the request:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestShortcutRequestDecodeErrors(t *testing.T) {
	valid := AppendShortcutRequest(nil, ShortcutRequest{
		Graph: 5, Partition: "blobs:4", Seed: 9, Options: "delta=2",
	})
	// Every strict prefix must fail: the layout has no optional suffix.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeShortcutRequest(valid[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(valid))
		}
	}
	bad := append([]byte{}, valid...)
	bad[0] = 2
	if _, err := DecodeShortcutRequest(bad); err == nil {
		t.Error("future version byte accepted")
	}
	if _, err := DecodeShortcutRequest(append(append([]byte{}, valid...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A declared string length far beyond the buffer must be rejected
	// before allocation (maxRequestString).
	huge := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeShortcutRequest(huge); err == nil {
		t.Error("absurd string length accepted")
	}
}

func TestIsBinary(t *testing.T) {
	for v, want := range map[string]bool{
		ContentType:                      true,
		" application/x-locshort ":       true,
		"application/x-locshort; q=0.9":  true,
		"application/json":               false,
		"":                               false,
		"application/x-locshort-variant": false,
	} {
		if got := IsBinary(v); got != want {
			t.Errorf("IsBinary(%q) = %v, want %v", v, got, want)
		}
	}
}

func FuzzDecodeShortcutRequest(f *testing.F) {
	f.Add(AppendShortcutRequest(nil, ShortcutRequest{Graph: 3, Partition: "blobs:4", Seed: 1}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeShortcutRequest(b)
		if err != nil {
			return
		}
		// The request envelope is never hashed, so padded varints making
		// two byte forms of one request are fine — but whatever decoded
		// must survive a re-encode round trip unchanged.
		r2, err := DecodeShortcutRequest(AppendShortcutRequest(nil, r))
		if err != nil {
			t.Fatalf("re-encode of accepted request does not decode: %v", err)
		}
		if r2 != r {
			t.Fatalf("re-encode round trip changed the request: %+v vs %+v", r2, r)
		}
	})
}
