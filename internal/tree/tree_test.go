package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"locshort/internal/graph"
)

func mustBFS(t *testing.T, g *graph.Graph, root int) *Rooted {
	t.Helper()
	tr, err := FromBFS(g, root)
	if err != nil {
		t.Fatalf("FromBFS error = %v", err)
	}
	return tr
}

func TestFromBFSPath(t *testing.T) {
	g := graph.Path(5)
	tr := mustBFS(t, g, 0)
	if tr.Root != 0 {
		t.Errorf("Root = %d, want 0", tr.Root)
	}
	if tr.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4", tr.MaxDepth())
	}
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != v-1 {
			t.Errorf("Parent[%d] = %d, want %d", v, tr.Parent[v], v-1)
		}
	}
}

func TestFromBFSDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	if _, err := FromBFS(g, 0); err != graph.ErrDisconnected {
		t.Errorf("FromBFS error = %v, want ErrDisconnected", err)
	}
}

func TestChildrenConsistent(t *testing.T) {
	g := graph.Grid(4, 4)
	tr := mustBFS(t, g, 0)
	children := tr.Children()
	count := 0
	for p, cs := range children {
		for _, c := range cs {
			count++
			if tr.Parent[c] != p {
				t.Errorf("child %d of %d has Parent %d", c, p, tr.Parent[c])
			}
			if tr.Depth[c] != tr.Depth[p]+1 {
				t.Errorf("child %d depth %d, parent depth %d", c, tr.Depth[c], tr.Depth[p])
			}
		}
	}
	if count != g.NumNodes()-1 {
		t.Errorf("children count = %d, want %d", count, g.NumNodes()-1)
	}
}

func TestOrderIsTopDown(t *testing.T) {
	g := graph.Wheel(12)
	tr := mustBFS(t, g, 3)
	seen := make(map[int]bool)
	for _, v := range tr.Order {
		if p := tr.Parent[v]; p != -1 && !seen[p] {
			t.Errorf("node %d appears before its parent %d", v, p)
		}
		seen[v] = true
	}
	if len(tr.Order) != g.NumNodes() {
		t.Errorf("Order covers %d nodes, want %d", len(tr.Order), g.NumNodes())
	}
}

func TestFromParents(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//    |
	//    3
	parent := []int{-1, 0, 0, 1}
	pe := []int{-1, 10, 11, 12}
	tr, err := FromParents(0, parent, pe)
	if err != nil {
		t.Fatalf("FromParents error = %v", err)
	}
	wantDepth := []int{0, 1, 1, 2}
	for v, d := range wantDepth {
		if tr.Depth[v] != d {
			t.Errorf("Depth[%d] = %d, want %d", v, tr.Depth[v], d)
		}
	}
}

func TestFromParentsRejectsCycle(t *testing.T) {
	parent := []int{-1, 2, 3, 1}
	pe := []int{-1, 0, 1, 2}
	if _, err := FromParents(0, parent, pe); err == nil {
		t.Error("FromParents accepted a cyclic parent array")
	}
}

func TestFromParentsRejectsBadRoot(t *testing.T) {
	if _, err := FromParents(5, []int{-1, 0}, []int{-1, 0}); err == nil {
		t.Error("FromParents accepted out-of-range root")
	}
	if _, err := FromParents(0, []int{1, -1}, []int{0, -1}); err == nil {
		t.Error("FromParents accepted root with a parent")
	}
}

func TestEdgeSet(t *testing.T) {
	g := graph.Cycle(6)
	tr := mustBFS(t, g, 0)
	s := tr.EdgeSet()
	if len(s) != 5 {
		t.Errorf("EdgeSet size = %d, want 5", len(s))
	}
}

func TestIsAncestorAndLCA(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := mustBFS(t, g, 0)
	for v := 0; v < g.NumNodes(); v++ {
		if !tr.IsAncestor(tr.Root, v) {
			t.Errorf("root is not an ancestor of %d", v)
		}
		if !tr.IsAncestor(v, v) {
			t.Errorf("node %d is not its own ancestor", v)
		}
		if l := tr.LCA(v, v); l != v {
			t.Errorf("LCA(%d,%d) = %d, want %d", v, v, l, v)
		}
	}
	// LCA must be a common ancestor of maximum depth.
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			l := tr.LCA(u, v)
			if !tr.IsAncestor(l, u) || !tr.IsAncestor(l, v) {
				t.Fatalf("LCA(%d,%d) = %d is not a common ancestor", u, v, l)
			}
		}
	}
}

func TestEulerIntervalsMatchIsAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(40, 60, rng)
	tr := mustBFS(t, g, 7)
	iv := tr.EulerIntervals()
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			if got, want := iv.Ancestor(u, v), tr.IsAncestor(u, v); got != want {
				t.Fatalf("Ancestor(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestSubtreeSum(t *testing.T) {
	g := graph.Path(4) // chain rooted at 0
	tr := mustBFS(t, g, 0)
	vals := []int64{1, 2, 3, 4}
	got := tr.SubtreeSum(vals)
	want := []int64{10, 9, 7, 4}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("SubtreeSum[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPathToRoot(t *testing.T) {
	g := graph.Path(5)
	tr := mustBFS(t, g, 0)
	p := tr.PathToRoot(4)
	want := []int{4, 3, 2, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("PathToRoot length = %d, want %d", len(p), len(want))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("PathToRoot[%d] = %d, want %d", i, p[i], want[i])
		}
	}
}

// Property: on random connected graphs, BFS-tree depths equal graph
// distances from the root, and SubtreeSum of all-ones counts subtree sizes
// which sum to n along any root path sequence.
func TestRootedInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%50
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(n)
		if m > maxM {
			m = maxM
		}
		g := graph.RandomConnected(n, m, rng)
		root := rng.Intn(n)
		tr, err := FromBFS(g, root)
		if err != nil {
			return false
		}
		dist := graph.BFS(g, root).Dist
		for v := 0; v < n; v++ {
			if tr.Depth[v] != dist[v] {
				return false
			}
		}
		ones := make([]int64, n)
		for i := range ones {
			ones[i] = 1
		}
		sizes := tr.SubtreeSum(ones)
		if sizes[root] != int64(n) {
			return false
		}
		for v := 0; v < n; v++ {
			if sizes[v] < 1 || sizes[v] > int64(n) {
				return false
			}
			if p := tr.Parent[v]; p >= 0 && sizes[p] <= sizes[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// FromBFSInto must produce the same tree as FromBFS while reusing the
// receiver's slices, and must reset the memoized child lists.
func TestFromBFSIntoMatchesFromBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var tr *Rooted
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		g := graph.RandomConnected(n, n-1+rng.Intn(n), rng)
		root := rng.Intn(n)
		want, err := FromBFS(g, root)
		if err != nil {
			t.Fatal(err)
		}
		tr, err = FromBFSInto(tr, g, root)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Root != want.Root ||
			!reflect.DeepEqual(tr.Parent, want.Parent) ||
			!reflect.DeepEqual(tr.ParentEdge, want.ParentEdge) ||
			!reflect.DeepEqual(tr.Depth, want.Depth) ||
			!reflect.DeepEqual(tr.Order, want.Order) {
			t.Fatalf("trial %d: reused tree differs from fresh tree", trial)
		}
		if !reflect.DeepEqual(tr.Children(), want.Children()) {
			t.Fatalf("trial %d: child lists differ after reuse", trial)
		}
	}
}

func TestFromBFSIntoDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := FromBFSInto(nil, g, 0); err == nil {
		t.Error("FromBFSInto accepted a disconnected graph")
	}
}
