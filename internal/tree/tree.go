package tree

import (
	"fmt"

	"locshort/internal/graph"
)

// Rooted is a rooted spanning tree (or forest fragment) of a graph, stored
// as parent pointers. Node IDs are those of the underlying graph.
type Rooted struct {
	Root int
	// Parent[v] is the parent node of v, or -1 for the root and for nodes
	// outside the tree.
	Parent []int
	// ParentEdge[v] is the graph edge ID connecting v to Parent[v], or -1.
	ParentEdge []int
	// Depth[v] is the hop distance from the root, or -1 for nodes outside
	// the tree.
	Depth []int
	// Order lists tree nodes in nondecreasing depth (root first). Reversing
	// it yields a valid bottom-up (children before parents) order.
	Order []int

	children [][]int
}

// FromBFS roots a BFS tree of g at root. It returns an error if g is not
// connected, since the paper's constructions assume spanning trees.
func FromBFS(g *graph.Graph, root int) (*Rooted, error) {
	r := graph.BFS(g, root)
	if len(r.Order) != g.NumNodes() {
		return nil, graph.ErrDisconnected
	}
	t := &Rooted{
		Root:       root,
		Parent:     r.Parent,
		ParentEdge: r.ParentEdge,
		Depth:      r.Dist,
		Order:      r.Order,
	}
	return t, nil
}

// FromBFSInto is FromBFS reusing t's slices — the slice-reuse constructor
// for loops that root many trees and discard each after use (root-choice
// sweeps, per-candidate measurements). Rebuilding invalidates every
// previously returned view of t, including shortcuts restricted to it, so
// those must already be discarded. A nil t allocates fresh.
//
// On error the receiver's contents are unspecified (the BFS has already
// overwritten its backing arrays): do not traverse it, only pass it to a
// future FromBFSInto call.
func FromBFSInto(t *Rooted, g *graph.Graph, root int) (*Rooted, error) {
	if t == nil {
		t = &Rooted{}
	}
	// Invalidate the derived state first, so a tree left half-written by
	// the error path below is at least not self-inconsistent with a stale
	// memo of the previous tree.
	t.children = nil
	t.Root = root
	r := graph.BFSResult{Dist: t.Depth, Parent: t.Parent, ParentEdge: t.ParentEdge, Order: t.Order}
	graph.MultiBFSInto(&r, g, []int{root})
	t.Parent = r.Parent
	t.ParentEdge = r.ParentEdge
	t.Depth = r.Dist
	t.Order = r.Order
	if len(r.Order) != g.NumNodes() {
		return nil, graph.ErrDisconnected
	}
	return t, nil
}

// FromParents builds a Rooted from explicit parent and parent-edge arrays.
// Used by the distributed algorithms to materialize the tree a protocol
// computed. It validates acyclicity and depth consistency.
func FromParents(root int, parent, parentEdge []int) (*Rooted, error) {
	n := len(parent)
	if root < 0 || root >= n || parent[root] != -1 {
		return nil, fmt.Errorf("tree: invalid root %d", root)
	}
	t := &Rooted{
		Root:       root,
		Parent:     parent,
		ParentEdge: parentEdge,
		Depth:      make([]int, n),
	}
	for v := range t.Depth {
		t.Depth[v] = -1
	}
	t.Depth[root] = 0
	for v := 0; v < n; v++ {
		if t.Depth[v] >= 0 {
			continue
		}
		// Walk up to a node of known depth, then unwind.
		path := []int{}
		u := v
		for t.Depth[u] < 0 {
			path = append(path, u)
			u = parent[u]
			if u < 0 || u >= n {
				return nil, fmt.Errorf("tree: node %d escapes the tree", v)
			}
			if len(path) > n {
				return nil, fmt.Errorf("tree: cycle through node %d", v)
			}
		}
		d := t.Depth[u]
		for i := len(path) - 1; i >= 0; i-- {
			d++
			t.Depth[path[i]] = d
		}
	}
	// Build a nondecreasing-depth order by counting sort on depth.
	maxDepth := 0
	for _, d := range t.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	buckets := make([][]int, maxDepth+1)
	for v, d := range t.Depth {
		buckets[d] = append(buckets[d], v)
	}
	t.Order = make([]int, 0, n)
	for _, b := range buckets {
		t.Order = append(t.Order, b...)
	}
	return t, nil
}

// NumNodes returns the number of nodes of the underlying graph.
func (t *Rooted) NumNodes() int { return len(t.Parent) }

// MaxDepth returns the depth of the deepest tree node.
func (t *Rooted) MaxDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Children returns the child lists of every node, computing them on first
// use. The returned slices are owned by the tree.
func (t *Rooted) Children() [][]int {
	if t.children == nil {
		t.children = make([][]int, len(t.Parent))
		for v, p := range t.Parent {
			if p >= 0 {
				t.children[p] = append(t.children[p], v)
			}
		}
	}
	return t.children
}

// EdgeSet returns the set of graph edge IDs used by the tree.
func (t *Rooted) EdgeSet() map[int]bool {
	s := make(map[int]bool, len(t.Parent))
	for v, e := range t.ParentEdge {
		if t.Parent[v] >= 0 && e >= 0 {
			s[e] = true
		}
	}
	return s
}

// IsAncestor reports whether a is an ancestor of v (every node is its own
// ancestor), by walking parent pointers; use Intervals for bulk queries.
func (t *Rooted) IsAncestor(a, v int) bool {
	for v != -1 {
		if v == a {
			return true
		}
		if t.Depth[v] <= t.Depth[a] {
			return false
		}
		v = t.Parent[v]
	}
	return false
}

// PathToRoot returns the node sequence v, parent(v), ..., root.
func (t *Rooted) PathToRoot(v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = t.Parent[v]
	}
	return path
}

// Intervals holds Euler-tour interval labels: u is an ancestor of v iff
// In[u] <= In[v] && Out[v] <= Out[u].
type Intervals struct {
	In, Out []int
}

// EulerIntervals computes interval labels with an iterative DFS. Children
// are visited in Children() order, so labels are deterministic.
func (t *Rooted) EulerIntervals() *Intervals {
	n := len(t.Parent)
	iv := &Intervals{In: make([]int, n), Out: make([]int, n)}
	children := t.Children()
	timer := 0
	type frame struct{ v, childIdx int }
	stack := []frame{{v: t.Root}}
	iv.In[t.Root] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.childIdx < len(children[f.v]) {
			c := children[f.v][f.childIdx]
			f.childIdx++
			iv.In[c] = timer
			timer++
			stack = append(stack, frame{v: c})
			continue
		}
		iv.Out[f.v] = timer
		timer++
		stack = stack[:len(stack)-1]
	}
	return iv
}

// Ancestor reports whether u is an ancestor of v (inclusive) under the
// interval labels.
func (iv *Intervals) Ancestor(u, v int) bool {
	return iv.In[u] <= iv.In[v] && iv.Out[v] <= iv.Out[u]
}

// LCA returns the lowest common ancestor of u and v by walking parents.
// O(depth); used for ground-truth checks and protocol setup, not in
// round-counted code.
func (t *Rooted) LCA(u, v int) int {
	for t.Depth[u] > t.Depth[v] {
		u = t.Parent[u]
	}
	for t.Depth[v] > t.Depth[u] {
		v = t.Parent[v]
	}
	for u != v {
		u = t.Parent[u]
		v = t.Parent[v]
	}
	return u
}

// SubtreeSum aggregates values bottom-up: out[v] = value[v] + sum of out[c]
// over children c of v.
func (t *Rooted) SubtreeSum(value []int64) []int64 {
	out := make([]int64, len(value))
	copy(out, value)
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		if p := t.Parent[v]; p >= 0 {
			out[p] += out[v]
		}
	}
	return out
}
