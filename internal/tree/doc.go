// Package tree provides rooted-tree machinery for tree-restricted shortcuts
// (Definition 2.3 of the paper): parent/depth arrays derived from BFS trees,
// bottom-up and top-down traversal orders, subtree aggregation, and
// Euler-interval ancestor labels used by the distributed min-cut algorithm
// (the LCA telescope of Corollary 1.7's 1-respecting cut evaluation).
//
// # Role in the DAG
//
// Depends only on internal/graph. internal/shortcut restricts Theorem 3.1
// shortcuts to a Rooted tree; internal/dist materializes protocol-computed
// trees through FromParents and aggregates over them; internal/store
// persists a shortcut's restriction tree as parent-edge IDs and rebuilds it
// with FromParents on load.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package tree
