package service

import (
	"strings"

	"locshort/internal/obs"
	"locshort/internal/shortcut"
)

// engineMetrics holds the engine's observed histograms. Counters are NOT
// duplicated here: the engine's existing atomic counters stay the single
// source of truth, exported as func-backed families read at scrape time, so
// the hot path records each event exactly once. Histogram pointers are
// resolved at engine construction, so recording is a few atomic adds with
// no registry lookups — warm cache hits stay allocation-free.
type engineMetrics struct {
	buildSeconds     *obs.Histogram // shortcut construction wall time
	loadSeconds      *obs.Histogram // durable-store shortcut load wall time
	persistSeconds   *obs.Histogram // detached store persist wall time
	measureSeconds   *obs.Histogram // first Quality() measurement per entry
	jobSeconds       *obs.Histogram // worker-pool job execution time
	peerFetchSeconds *obs.Histogram // successful cluster peer fetch wall time

	// stageSeconds aggregates Builder stage timings by stage name; the
	// per-delta' level stages collapse into one "level" series to keep
	// cardinality fixed.
	stageSeconds map[string]*obs.Histogram
}

// builderStageNames are the fixed-cardinality stage series; doubling-search
// levels (level(d=N)) aggregate under "level".
var builderStageNames = []string{"choose_root", "bfs_tree", "sweep", "assemble", "level"}

func newEngineMetrics(r *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{
		buildSeconds: r.Histogram("locshort_engine_build_seconds",
			"Wall time of shortcut constructions (cache+store misses).", nil, nil),
		loadSeconds: r.Histogram("locshort_engine_store_load_seconds",
			"Wall time of shortcut loads served from the durable store.", nil, nil),
		persistSeconds: r.Histogram("locshort_engine_persist_seconds",
			"Wall time of detached shortcut persists to the durable store.", nil, nil),
		measureSeconds: r.Histogram("locshort_engine_measure_seconds",
			"Wall time of first-time quality measurement per cached shortcut.", nil, nil),
		jobSeconds: r.Histogram("locshort_engine_job_seconds",
			"Execution time of worker-pool jobs (excludes queue wait).", nil, nil),
		peerFetchSeconds: r.Histogram("locshort_engine_peer_fetch_seconds",
			"Wall time of shortcut loads served by fetching a peer node's record.", nil, nil),
		stageSeconds: make(map[string]*obs.Histogram, len(builderStageNames)),
	}
	for _, name := range builderStageNames {
		m.stageSeconds[name] = r.Histogram("locshort_builder_stage_seconds",
			"Wall time of Builder construction stages (doubling-search levels aggregate under stage=\"level\").",
			nil, obs.Labels{"stage": name})
	}

	c := &e.counters
	counter := func(name, help string, labels obs.Labels, load func() uint64) {
		r.CounterFunc(name, help, labels, func() float64 { return float64(load()) })
	}
	counter("locshort_engine_cache_hits_total", "Cache lookups served by a resident entry or singleflight join.", nil, c.hits.Load)
	counter("locshort_engine_cache_misses_total", "Cache lookups that started a construction.", nil, c.misses.Load)
	counter("locshort_engine_cache_evictions_total", "Cached shortcuts evicted by LRU capacity.", nil, c.evictions.Load)
	counter("locshort_engine_builds_total", "Completed shortcut constructions.", nil, c.builds.Load)
	counter("locshort_engine_build_errors_total", "Failed shortcut constructions.", nil, c.buildErrs.Load)
	counter("locshort_engine_jobs_total", "Worker-pool jobs by outcome.", obs.Labels{"outcome": "done"}, c.jobsDone.Load)
	counter("locshort_engine_jobs_total", "Worker-pool jobs by outcome.", obs.Labels{"outcome": "failed"}, c.jobsFailed.Load)
	counter("locshort_engine_jobs_total", "Worker-pool jobs by outcome.", obs.Labels{"outcome": "canceled"}, c.jobsCanceled.Load)
	counter("locshort_engine_store_reads_total", "Durable-store shortcut lookups by outcome.", obs.Labels{"outcome": "hit"}, c.storeHits.Load)
	counter("locshort_engine_store_reads_total", "Durable-store shortcut lookups by outcome.", obs.Labels{"outcome": "miss"}, c.storeMisses.Load)
	counter("locshort_engine_peer_reads_total", "Cluster peer shortcut fetches by outcome.", obs.Labels{"outcome": "hit"}, c.peerHits.Load)
	counter("locshort_engine_peer_reads_total", "Cluster peer shortcut fetches by outcome.", obs.Labels{"outcome": "miss"}, c.peerMisses.Load)
	counter("locshort_engine_peer_reads_total", "Cluster peer shortcut fetches by outcome.", obs.Labels{"outcome": "error"}, c.peerErrs.Load)
	counter("locshort_engine_store_writes_total", "Persisted shortcut builds.", nil, c.storeWrites.Load)
	counter("locshort_engine_store_errors_total", "Failed durable-store reads and writes (best-effort persistence; alert here).", nil, c.storeErrs.Load)

	r.GaugeFunc("locshort_engine_queue_depth", "Accepted-but-unstarted worker-pool jobs.", nil,
		func() float64 { return float64(c.queueDepth.Load()) })
	r.GaugeFunc("locshort_engine_jobs_running", "Worker-pool jobs currently executing.", nil,
		func() float64 { return float64(c.running.Load()) })
	r.GaugeFunc("locshort_engine_cache_entries", "Built shortcuts resident in the cache.", nil,
		func() float64 { return float64(e.cache.len()) })
	r.GaugeFunc("locshort_engine_graphs", "Distinct graphs registered.", nil, func() float64 {
		e.mu.RLock()
		n := len(e.graphs)
		e.mu.RUnlock()
		return float64(n)
	})
	return m
}

// observeStages records a completed construction's stage breakdown into the
// fixed-cardinality stage histograms. Cold path only.
func (m *engineMetrics) observeStages(stages []shortcut.Stage) {
	if m == nil {
		return
	}
	for _, st := range stages {
		name := st.Name
		if strings.HasPrefix(name, "level(") {
			name = "level"
		}
		if h, ok := m.stageSeconds[name]; ok {
			h.Observe(st.Dur)
		}
	}
}
