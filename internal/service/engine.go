// Package service is the concurrent shortcut-serving layer: a
// content-addressed cache of built shortcuts in front of the centralized
// construction, plus a bounded worker pool that executes build and query
// jobs (MST, MinCut, part-wise aggregation, quality measurement) against
// cached shortcuts.
//
// The paper's economics motivate the design: a shortcut is built once per
// (graph, partition) and then amortized across many part-wise aggregation
// rounds. The service makes that amortization explicit across *requests*:
// graphs are registered by content fingerprint, shortcuts are addressed by
// a key covering (graph, partition, build options), concurrent requests for
// the same key collapse into exactly one construction (singleflight), and
// completed constructions stay resident in a sharded LRU until evicted
// under capacity pressure.
//
// cmd/locshortd exposes the engine over HTTP; cmd/loadgen drives it. See
// DESIGN.md, "Service layer", for the fingerprinting scheme and the job
// lifecycle.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// Config tunes an Engine. The zero value selects sensible defaults.
type Config struct {
	// Workers is the size of the job worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs
	// (default 256); submission blocks once the queue is full.
	QueueDepth int
	// CacheCapacity bounds the number of resident built shortcuts
	// (default 64, split across shards).
	CacheCapacity int
	// CacheShards is rounded up to a power of two (default 16).
	CacheShards int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	return c
}

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("service: engine closed")

// ErrUnknownGraph is returned when a request references a fingerprint that
// was never registered with this engine.
var ErrUnknownGraph = errors.New("service: unknown graph fingerprint")

// ErrUnknownShortcut is returned when a job references a shortcut key that
// is not resident in the cache.
var ErrUnknownShortcut = errors.New("service: unknown shortcut key")

// Cached is a built shortcut resident in the engine's cache, together with
// lazily materialized derived state: measured quality and installed
// part-wise aggregation routing. Both are computed at most once per cache
// residency and shared by every subsequent request.
type Cached struct {
	// Key is the shortcut's content address; GraphFP the graph's.
	Key     Fingerprint
	GraphFP Fingerprint
	// G and Parts are the inputs the shortcut was built from (G is the
	// engine's representative graph for GraphFP).
	G     *graph.Graph
	Parts *partition.Partition
	// Result is the shortcut.Build outcome.
	Result *shortcut.Result
	// BuildTime is the wall-clock cost of the construction that populated
	// this entry — what a cache hit saves.
	BuildTime time.Duration

	qualityOnce sync.Once
	quality     shortcut.Quality
	routingOnce sync.Once
	routing     *dist.PARouting
	routingErr  error
}

// Quality measures the shortcut, memoized for the cache residency.
func (c *Cached) Quality() shortcut.Quality {
	c.qualityOnce.Do(func() { c.quality = shortcut.Measure(c.Result.Shortcut) })
	return c.quality
}

// Routing installs (once) and returns the part-wise aggregation routing.
func (c *Cached) Routing() (*dist.PARouting, error) {
	c.routingOnce.Do(func() { c.routing, c.routingErr = dist.NewPARouting(c.Result.Shortcut) })
	return c.routing, c.routingErr
}

// Engine is the concurrent shortcut-serving engine. All exported methods
// are safe for concurrent use; query methods block until a worker has
// executed the job, the context is canceled, or the engine closes.
type Engine struct {
	cfg   Config
	cache *cache
	jobs  chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	graphs map[Fingerprint]*graph.Graph

	// builders pools shortcut.Builders across cold builds: a Builder owns
	// the flat scratch of the Theorem 3.1 construction (part-set tables,
	// epoch-stamped slices, per-level states of the speculative doubling
	// search), so concurrent cold builds stop re-allocating it per
	// request. Builders are not safe for concurrent use; the pool hands
	// each build an exclusive one. Note the CPU bound: with the default
	// speculative search each cold build may run up to GOMAXPROCS level
	// goroutines, so a burst can occupy Workers x GOMAXPROCS goroutines
	// (measurably faster end to end under loadgen, since losing levels
	// abandon at their next iteration); deployments that need strict
	// Workers-bounded CPU set BuildRequest.Options.Parallelism = 1 — the
	// built shortcut is identical either way.
	builders sync.Pool

	counters counters
}

// New starts an engine with cfg's worker pool and cache.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		quit:   make(chan struct{}),
		graphs: make(map[Fingerprint]*graph.Graph),
	}
	e.builders.New = func() any { return shortcut.NewBuilder() }
	e.cache = newCache(cfg.CacheShards, cfg.CacheCapacity, &e.counters)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the worker pool. In-flight jobs finish; queued and future
// submissions fail with ErrClosed. Close is idempotent per engine lifetime
// and must not be called twice.
func (e *Engine) Close() {
	close(e.quit)
	e.wg.Wait()
}

// Stats returns an atomic snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.counters.snapshot()
	s.CachedEntries = e.cache.len()
	e.mu.RLock()
	s.Graphs = len(e.graphs)
	e.mu.RUnlock()
	return s
}

// AddGraph validates and registers g under its content fingerprint and
// returns the fingerprint. The first graph registered for a fingerprint
// becomes the representative all jobs run against; re-registering the same
// content is a cheap no-op that returns the same fingerprint. Registered
// graphs are pinned for the engine's lifetime (only built shortcuts are
// LRU-bounded); deployments with unbounded distinct-graph traffic should
// recycle engines or front them with an ingest quota.
func (e *Engine) AddGraph(g *graph.Graph) (Fingerprint, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	fp := FingerprintGraph(g)
	e.mu.Lock()
	if _, ok := e.graphs[fp]; !ok {
		e.graphs[fp] = g
	}
	e.mu.Unlock()
	return fp, nil
}

// Graph returns the representative graph for fp.
func (e *Engine) Graph(fp Fingerprint) (*graph.Graph, bool) {
	e.mu.RLock()
	g, ok := e.graphs[fp]
	e.mu.RUnlock()
	return g, ok
}

// Shortcut returns the resident cached shortcut for key without building.
func (e *Engine) Shortcut(key Fingerprint) (*Cached, bool) {
	return e.cache.peek(key)
}

// job is one unit of worker-pool work. run executes with the submitter's
// context; done is closed when the job has finished (or been skipped
// because its context was already canceled at pickup).
type job struct {
	ctx  context.Context
	run  func(context.Context)
	done chan struct{}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case j := <-e.jobs:
			e.counters.queueDepth.Add(-1)
			if j.ctx.Err() != nil {
				e.counters.jobsCanceled.Add(1)
				close(j.done)
				continue
			}
			e.counters.running.Add(1)
			start := time.Now()
			j.run(j.ctx)
			e.counters.jobNs.Add(time.Since(start).Nanoseconds())
			e.counters.running.Add(-1)
			close(j.done)
		}
	}
}

// submit runs fn on the worker pool and waits for it, honoring ctx while
// queued or running and failing fast once the engine closes. A context
// canceled mid-run abandons the wait; the worker still finishes fn.
func submit[T any](e *Engine, ctx context.Context, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	var res T
	var err error
	canceled := errors.New("skipped")
	err = canceled // overwritten unless the job is skipped at pickup
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.run = func(ctx context.Context) { res, err = fn(ctx) }
	e.counters.queueDepth.Add(1)
	select {
	case e.jobs <- j:
	case <-ctx.Done():
		e.counters.queueDepth.Add(-1)
		return zero, ctx.Err()
	case <-e.quit:
		e.counters.queueDepth.Add(-1)
		return zero, ErrClosed
	}
	select {
	case <-j.done:
		if err == canceled {
			return zero, ctx.Err()
		}
		if err != nil {
			e.counters.jobsFailed.Add(1)
			return zero, err
		}
		e.counters.jobsDone.Add(1)
		return res, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-e.quit:
		return zero, ErrClosed
	}
}

// BuildRequest asks for a shortcut on a registered graph.
type BuildRequest struct {
	// Graph is the fingerprint returned by AddGraph.
	Graph Fingerprint
	// Parts is the partition to cover (validated against the
	// representative graph by partition construction).
	Parts *partition.Partition
	// Options configures shortcut.Build. Tree, Certify, and Rng must be
	// unset: the service owns tree choice and never certifies.
	Options shortcut.Options
}

// Build returns the cached shortcut for the request, constructing it at
// most once per cache residency regardless of how many concurrent callers
// ask (singleflight). The construction itself runs on the worker pool.
// hit reports whether the shortcut was already built when the request
// arrived (the fast path a cache hit buys); singleflight joiners that
// waited for an in-flight build report hit=false.
func (e *Engine) Build(ctx context.Context, req BuildRequest) (c *Cached, hit bool, err error) {
	if req.Options.Tree != nil || req.Options.Certify || req.Options.Rng != nil {
		return nil, false, fmt.Errorf("service: BuildRequest options must not set Tree, Certify, or Rng")
	}
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, false, ErrUnknownGraph
	}
	if req.Parts == nil {
		return nil, false, fmt.Errorf("service: BuildRequest needs a partition")
	}
	if len(req.Parts.PartOf) != g.NumNodes() {
		return nil, false, fmt.Errorf("service: partition covers %d nodes, graph has %d",
			len(req.Parts.PartOf), g.NumNodes())
	}
	key := ShortcutKey(req.Graph, req.Parts, req.Options)
	return e.cache.getOrBuild(ctx, key, func() (*Cached, error) {
		// The build job deliberately detaches from the triggering caller's
		// cancellation: every waiter (including the first) abandons
		// individually via getOrBuild, while the construction itself runs
		// to completion and warms the cache.
		return submit(e, context.WithoutCancel(ctx), func(context.Context) (*Cached, error) {
			bld := e.builders.Get().(*shortcut.Builder)
			defer e.builders.Put(bld)
			start := time.Now()
			res, err := bld.Build(g, req.Parts, req.Options)
			if err != nil {
				e.counters.buildErrs.Add(1)
				return nil, err
			}
			d := time.Since(start)
			e.counters.builds.Add(1)
			e.counters.buildNs.Add(d.Nanoseconds())
			return &Cached{
				Key:       key,
				GraphFP:   req.Graph,
				G:         g,
				Parts:     req.Parts,
				Result:    res,
				BuildTime: d,
			}, nil
		})
	})
}

// MSTRequest runs the Corollary 1.6 distributed MST on a registered graph.
type MSTRequest struct {
	Graph   Fingerprint
	Options dist.MSTOptions
}

// MST executes the request on the worker pool.
func (e *Engine) MST(ctx context.Context, req MSTRequest) (*dist.MSTResult, error) {
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, ErrUnknownGraph
	}
	return submit(e, ctx, func(context.Context) (*dist.MSTResult, error) {
		return dist.MST(g, req.Options)
	})
}

// MinCutRequest runs the Corollary 1.7 distributed minimum cut.
type MinCutRequest struct {
	Graph   Fingerprint
	Options dist.MinCutOptions
}

// MinCut executes the request on the worker pool.
func (e *Engine) MinCut(ctx context.Context, req MinCutRequest) (*dist.MinCutResult, error) {
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, ErrUnknownGraph
	}
	return submit(e, ctx, func(context.Context) (*dist.MinCutResult, error) {
		return dist.MinCut(g, req.Options)
	})
}

// AggregateRequest runs one part-wise aggregation round over a cached
// shortcut's installed routing.
type AggregateRequest struct {
	// Shortcut is a key previously returned by Build.
	Shortcut Fingerprint
	Op       dist.Op
	// Values holds one payload per node; nil aggregates the constant 1
	// per part member (so OpSum counts part sizes).
	Values []dist.Payload
	// Seed drives the randomized contention schedule.
	Seed int64
}

// Aggregate executes the request on the worker pool against the cached
// shortcut — the amortization the cache exists for: one build, many rounds.
func (e *Engine) Aggregate(ctx context.Context, req AggregateRequest) (*dist.PAResult, error) {
	c, ok := e.Shortcut(req.Shortcut)
	if !ok {
		return nil, ErrUnknownShortcut
	}
	return submit(e, ctx, func(context.Context) (*dist.PAResult, error) {
		r, err := c.Routing()
		if err != nil {
			return nil, err
		}
		values := req.Values
		if values == nil {
			// Constant 1 per node: only part members are read by the
			// schedule, so OpSum yields part sizes.
			values = make([]dist.Payload, c.G.NumNodes())
			for v := range values {
				values[v] = dist.Payload{1, 1, 1}
			}
		}
		if len(values) != c.G.NumNodes() {
			return nil, fmt.Errorf("service: %d values for %d nodes", len(values), c.G.NumNodes())
		}
		maxRounds := 64*c.G.NumNodes() + 4096
		return dist.PartwiseAggregate(c.G, r, req.Op, values, req.Seed, true, maxRounds)
	})
}

// Measure returns the memoized quality of a cached shortcut, computing it
// on the worker pool on first request.
func (e *Engine) Measure(ctx context.Context, key Fingerprint) (shortcut.Quality, error) {
	c, ok := e.Shortcut(key)
	if !ok {
		return shortcut.Quality{}, ErrUnknownShortcut
	}
	return e.MeasureCached(ctx, c)
}

// MeasureCached is Measure on an already-held cache entry. Unlike Measure
// it needs no key lookup, so build-then-measure sequences (the locshortd
// /v1/shortcuts handler) stay immune to the entry being evicted between
// the two steps under capacity pressure.
func (e *Engine) MeasureCached(ctx context.Context, c *Cached) (shortcut.Quality, error) {
	return submit(e, ctx, func(context.Context) (shortcut.Quality, error) {
		return c.Quality(), nil
	})
}
