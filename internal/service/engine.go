package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/obs"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// Config tunes an Engine. The zero value selects sensible defaults.
type Config struct {
	// Workers is the size of the job worker pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs
	// (default 256); submission blocks once the queue is full.
	QueueDepth int
	// CacheCapacity bounds the number of resident built shortcuts
	// (default 64, split across shards).
	CacheCapacity int
	// CacheShards is rounded up to a power of two (default 16).
	CacheShards int
	// Store, when non-nil, makes builds durable: graphs persist on
	// registration, built shortcuts persist after construction (detached,
	// off the serving path), cache misses consult the store before
	// rebuilding, and WarmStart re-registers every persisted graph on
	// boot. A nil Store keeps the engine fully in-memory.
	Store Store
	// Peers, when non-nil, extends the miss chain with a cluster peer-fetch
	// step: local cache → local store → peer store → cold build, all behind
	// the singleflight, so a restart stampede or a cross-node miss costs at
	// most one peer round-trip per key. internal/cluster provides the
	// implementation; a nil Peers keeps the engine single-node.
	Peers PeerFetcher

	// The Async* knobs configure the internal/jobs manager layered on
	// this engine (locshortd builds one from them; see jobs.Config for the
	// semantics and defaults). The engine itself schedules only
	// synchronous jobs and never reads these — they live here so one
	// Config describes the whole serving stack, mirroring how Stats
	// carries the manager's gauges.

	// AsyncQueueDepth bounds accepted-but-unstarted async jobs
	// (default 1024); submissions past it are rejected with 429, unlike
	// the engine's own QueueDepth, which blocks.
	AsyncQueueDepth int
	// AsyncWorkers is the async dispatcher concurrency (default 4): how
	// many async jobs occupy engine workers at once.
	AsyncWorkers int
	// AsyncRetries is how many times a failed async job is re-run before
	// it is recorded failed (default 0).
	AsyncRetries int
	// AsyncRetention bounds terminal async job records kept in memory
	// (default 4096); older results are served from the durable store.
	AsyncRetention int

	// Obs, when non-nil, is the metrics registry the engine registers its
	// families into: func-backed counters/gauges over the existing atomic
	// Stats counters (read at scrape time, so the hot path never
	// dual-writes) plus build/load/persist/measure/job latency histograms
	// and the aggregated Builder stage histograms. Warm cache hits record
	// through pre-resolved histogram pointers and stay allocation-free.
	Obs *obs.Registry
	// Tracer, when non-nil, retains a stage trace per shortcut
	// construction: store check, every doubling-search level, the accepted
	// level's sweep/assemble split, and the first quality measurement. The
	// trace is assembled on the cold path only (Options.CollectStages is
	// forced on for instrumented builds) and published when the entry is
	// first measured.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	return c
}

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("service: engine closed")

// ErrUnknownGraph is returned when a request references a fingerprint that
// was never registered with this engine.
var ErrUnknownGraph = errors.New("service: unknown graph fingerprint")

// ErrUnknownShortcut is returned when a job references a shortcut key that
// is not resident in the cache.
var ErrUnknownShortcut = errors.New("service: unknown shortcut key")

// Cached is a built shortcut resident in the engine's cache, together with
// lazily materialized derived state: measured quality and installed
// part-wise aggregation routing. Both are computed at most once per cache
// residency and shared by every subsequent request.
type Cached struct {
	// Key is the shortcut's content address; GraphFP the graph's.
	Key     Fingerprint
	GraphFP Fingerprint
	// G and Parts are the inputs the shortcut was built from (G is the
	// engine's representative graph for GraphFP).
	G     *graph.Graph
	Parts *partition.Partition
	// Result is the shortcut.Build outcome.
	Result *shortcut.Result
	// BuildTime is the wall-clock cost of the construction that populated
	// this entry — what a cache hit saves. For Source == SourceStore it is
	// the recorded cost of the original construction, not of the load.
	BuildTime time.Duration
	// Source records whether this entry was built or loaded from the
	// durable store.
	Source BuildSource

	qualityOnce sync.Once
	qualityDone atomic.Bool
	quality     shortcut.Quality
	routingOnce sync.Once
	routing     *dist.PARouting
	routingErr  error

	// trace is the construction's pending stage trace (nil when tracing is
	// off); the first Quality call appends the "measure" span, publishes to
	// tracer, and clears it. qualityOnce guarantees a single publisher.
	trace      *obs.TraceBuilder
	tracer     *obs.Tracer
	engMetrics *engineMetrics
}

// Quality measures the shortcut, memoized for the cache residency. The
// first call completes and publishes the entry's construction trace, so a
// trace's total duration spans build start through first measurement.
func (c *Cached) Quality() shortcut.Quality {
	c.qualityOnce.Do(func() {
		start := time.Now()
		c.quality = shortcut.Measure(c.Result.Shortcut)
		d := time.Since(start)
		if m := c.engMetrics; m != nil {
			m.measureSeconds.Observe(d)
		}
		if c.trace != nil {
			c.trace.Add("measure", c.trace.Elapsed()-d, d)
			c.tracer.Publish(c.trace.Finish())
			c.trace = nil
		}
		c.qualityDone.Store(true)
	})
	return c.quality
}

// QualityIfReady returns the memoized quality without blocking or
// scheduling anything: ok is false until some earlier call has measured
// the entry. The serving path uses it to skip the worker-pool round trip
// on warm hits — once measured, the quality is one atomic load away. The
// quality field is written before the qualityDone store inside the same
// Once, so an observer of true observes the value.
func (c *Cached) QualityIfReady() (shortcut.Quality, bool) {
	if !c.qualityDone.Load() {
		return shortcut.Quality{}, false
	}
	return c.quality, true
}

// Routing installs (once) and returns the part-wise aggregation routing.
func (c *Cached) Routing() (*dist.PARouting, error) {
	c.routingOnce.Do(func() { c.routing, c.routingErr = dist.NewPARouting(c.Result.Shortcut) })
	return c.routing, c.routingErr
}

// Engine is the concurrent shortcut-serving engine. All exported methods
// are safe for concurrent use; query methods block until a worker has
// executed the job, the context is canceled, or the engine closes.
type Engine struct {
	cfg   Config
	cache *cache
	jobs  chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	graphs map[Fingerprint]*graph.Graph

	// builders pools shortcut.Builders across cold builds: a Builder owns
	// the flat scratch of the Theorem 3.1 construction (part-set tables,
	// epoch-stamped slices, per-level states of the speculative doubling
	// search), so concurrent cold builds stop re-allocating it per
	// request. Builders are not safe for concurrent use; the pool hands
	// each build an exclusive one. Note the CPU bound: with the default
	// speculative search each cold build may run up to GOMAXPROCS level
	// goroutines, so a burst can occupy Workers x GOMAXPROCS goroutines
	// (measurably faster end to end under loadgen, since losing levels
	// abandon at their next iteration); deployments that need strict
	// Workers-bounded CPU set BuildRequest.Options.Parallelism = 1 — the
	// built shortcut is identical either way.
	builders sync.Pool

	// persists tracks detached store writes so Close can drain them: a
	// build's durability must not be lost to a racing shutdown.
	persists sync.WaitGroup

	counters counters
	// metrics is nil unless Config.Obs was set; every record site
	// nil-checks it, so the uninstrumented engine pays one branch.
	metrics *engineMetrics
}

// New starts an engine with cfg's worker pool and cache.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		quit:   make(chan struct{}),
		graphs: make(map[Fingerprint]*graph.Graph),
	}
	e.builders.New = func() any { return shortcut.NewBuilder() }
	e.cache = newCache(cfg.CacheShards, cfg.CacheCapacity, &e.counters)
	if cfg.Obs != nil {
		e.metrics = newEngineMetrics(cfg.Obs, e)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the worker pool and drains detached store writes. In-flight
// jobs finish; queued and future submissions fail with ErrClosed. Close is
// idempotent per engine lifetime and must not be called twice. When a Store
// is configured, every build that completed before Close returns is durably
// persisted (or counted in Stats.StoreErrors).
func (e *Engine) Close() {
	close(e.quit)
	e.wg.Wait()
	e.persists.Wait()
}

// Stats returns an atomic snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.counters.snapshot()
	s.CachedEntries = e.cache.len()
	e.mu.RLock()
	s.Graphs = len(e.graphs)
	e.mu.RUnlock()
	return s
}

// AddGraph validates and registers g under its content fingerprint and
// returns the fingerprint. The first graph registered for a fingerprint
// becomes the representative all jobs run against; re-registering the same
// content is a cheap no-op that returns the same fingerprint. Registered
// graphs are pinned for the engine's lifetime (only built shortcuts are
// LRU-bounded); deployments with unbounded distinct-graph traffic should
// recycle engines or front them with an ingest quota.
func (e *Engine) AddGraph(g *graph.Graph) (Fingerprint, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	fp := FingerprintGraph(g)
	e.mu.Lock()
	_, known := e.graphs[fp]
	if !known {
		e.graphs[fp] = g
	}
	e.mu.Unlock()
	// Persist newly registered content synchronously: ingest is rare and
	// cheap relative to builds, and answering only after the record is on
	// disk means a fingerprint handed to a client survives a restart.
	// Persistence failures are surfaced in Stats.StoreErrors, not to the
	// caller — the in-memory registration above already succeeded.
	if st := e.cfg.Store; st != nil && !known {
		if err := st.PutGraph(fp, g); err != nil {
			e.counters.storeErrs.Add(1)
		}
	}
	return fp, nil
}

// AddGraphDecoded registers a graph that arrived in canonical binary form,
// skipping the validation and fingerprinting AddGraph pays: g must be the
// decode of payload and fp the fingerprint of its body, which is exactly
// what store.DecodeGraphPayload establishes (structural validation plus
// the content-hash check). The canonical payload is persisted verbatim
// when the store supports it (GraphPayloadStore), so binary ingest never
// re-encodes what it just decoded; other stores fall back to PutGraph.
// Registration semantics match AddGraph: first registration wins, known
// content is a cheap no-op, persistence failures surface in
// Stats.StoreErrors rather than to the caller.
func (e *Engine) AddGraphDecoded(fp Fingerprint, g *graph.Graph, payload []byte) {
	e.mu.Lock()
	_, known := e.graphs[fp]
	if !known {
		e.graphs[fp] = g
	}
	e.mu.Unlock()
	if st := e.cfg.Store; st != nil && !known {
		var err error
		if ps, ok := st.(GraphPayloadStore); ok {
			err = ps.PutGraphPayload(fp, payload)
		} else {
			err = st.PutGraph(fp, g)
		}
		if err != nil {
			e.counters.storeErrs.Add(1)
		}
	}
}

// WarmStart re-registers every graph persisted in the configured store and
// returns how many were loaded. Shortcuts are deliberately not preloaded:
// the store-first miss path of Build serves them lazily, so boot cost is
// proportional to the graph catalog, not to the shortcut history, and the
// LRU fills with what traffic actually asks for. Call once, before serving.
func (e *Engine) WarmStart() (int, error) {
	st := e.cfg.Store
	if st == nil {
		return 0, nil
	}
	loaded := 0
	err := st.EachGraph(func(fp Fingerprint, g *graph.Graph) error {
		e.mu.Lock()
		if _, ok := e.graphs[fp]; !ok {
			e.graphs[fp] = g
			loaded++
		}
		e.mu.Unlock()
		return nil
	})
	return loaded, err
}

// GraphInfo describes one registered graph for listings.
type GraphInfo struct {
	Fingerprint Fingerprint
	Nodes       int
	Edges       int
}

// Graphs lists the registered graphs sorted by fingerprint.
func (e *Engine) Graphs() []GraphInfo {
	e.mu.RLock()
	out := make([]GraphInfo, 0, len(e.graphs))
	for fp, g := range e.graphs {
		out = append(out, GraphInfo{Fingerprint: fp, Nodes: g.NumNodes(), Edges: g.NumEdges()})
	}
	e.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// RemoveGraph evicts a graph everywhere: the registration, every resident
// cached shortcut built on it, and (when a Store is configured) the durable
// records. It returns the number of cached shortcuts evicted, or
// ErrUnknownGraph if fp was never registered. A build in flight for the
// graph when RemoveGraph is called may still complete and briefly re-enter
// the cache; it can no longer be requested again (the registration is gone)
// and ages out of the LRU like any cold entry.
func (e *Engine) RemoveGraph(fp Fingerprint) (int, error) {
	e.mu.Lock()
	_, ok := e.graphs[fp]
	delete(e.graphs, fp)
	e.mu.Unlock()
	if !ok {
		return 0, ErrUnknownGraph
	}
	evicted := e.cache.removeGraph(fp)
	if st := e.cfg.Store; st != nil {
		if err := st.DeleteGraph(fp); err != nil {
			e.counters.storeErrs.Add(1)
			return evicted, err
		}
	}
	return evicted, nil
}

// Graph returns the representative graph for fp.
func (e *Engine) Graph(fp Fingerprint) (*graph.Graph, bool) {
	e.mu.RLock()
	g, ok := e.graphs[fp]
	e.mu.RUnlock()
	return g, ok
}

// Shortcut returns the resident cached shortcut for key without building.
func (e *Engine) Shortcut(key Fingerprint) (*Cached, bool) {
	return e.cache.peek(key)
}

// job is one unit of worker-pool work. run executes with the submitter's
// context; done is closed when the job has finished (or been skipped
// because its context was already canceled at pickup).
type job struct {
	ctx  context.Context
	run  func(context.Context)
	done chan struct{}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case j := <-e.jobs:
			e.counters.queueDepth.Add(-1)
			if j.ctx.Err() != nil {
				e.counters.jobsCanceled.Add(1)
				close(j.done)
				continue
			}
			e.counters.running.Add(1)
			start := time.Now()
			j.run(j.ctx)
			d := time.Since(start)
			e.counters.jobNs.Add(d.Nanoseconds())
			if e.metrics != nil {
				e.metrics.jobSeconds.Observe(d)
			}
			e.counters.running.Add(-1)
			close(j.done)
		}
	}
}

// submit runs fn on the worker pool and waits for it, honoring ctx while
// queued or running and failing fast once the engine closes. A context
// canceled mid-run abandons the wait; the worker still finishes fn.
func submit[T any](e *Engine, ctx context.Context, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	var res T
	var err error
	canceled := errors.New("skipped")
	err = canceled // overwritten unless the job is skipped at pickup
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.run = func(ctx context.Context) { res, err = fn(ctx) }
	e.counters.queueDepth.Add(1)
	select {
	case e.jobs <- j:
	case <-ctx.Done():
		e.counters.queueDepth.Add(-1)
		return zero, ctx.Err()
	case <-e.quit:
		e.counters.queueDepth.Add(-1)
		return zero, ErrClosed
	}
	select {
	case <-j.done:
		if err == canceled {
			return zero, ctx.Err()
		}
		if err != nil {
			e.counters.jobsFailed.Add(1)
			return zero, err
		}
		e.counters.jobsDone.Add(1)
		return res, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-e.quit:
		return zero, ErrClosed
	}
}

// BuildRequest asks for a shortcut on a registered graph.
type BuildRequest struct {
	// Graph is the fingerprint returned by AddGraph.
	Graph Fingerprint
	// Parts is the partition to cover (validated against the
	// representative graph by partition construction).
	Parts *partition.Partition
	// Options configures shortcut.Build. Tree, Certify, and Rng must be
	// unset: the service owns tree choice and never certifies.
	Options shortcut.Options
}

// Build returns the cached shortcut for the request, constructing it at
// most once per cache residency regardless of how many concurrent callers
// ask (singleflight). The construction itself runs on the worker pool.
// hit reports whether the shortcut was already built when the request
// arrived (the fast path a cache hit buys); singleflight joiners that
// waited for an in-flight build report hit=false.
func (e *Engine) Build(ctx context.Context, req BuildRequest) (c *Cached, hit bool, err error) {
	if req.Options.Tree != nil || req.Options.Certify || req.Options.Rng != nil {
		return nil, false, fmt.Errorf("service: BuildRequest options must not set Tree, Certify, or Rng")
	}
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, false, ErrUnknownGraph
	}
	if req.Parts == nil {
		return nil, false, fmt.Errorf("service: BuildRequest needs a partition")
	}
	if len(req.Parts.PartOf) != g.NumNodes() {
		return nil, false, fmt.Errorf("service: partition covers %d nodes, graph has %d",
			len(req.Parts.PartOf), g.NumNodes())
	}
	key := ShortcutKey(req.Graph, req.Parts, req.Options)
	return e.cache.getOrBuild(ctx, key, func() (*Cached, error) {
		// The build job deliberately detaches from the triggering caller's
		// cancellation: every waiter (including the first) abandons
		// individually via getOrBuild, while the construction itself runs
		// to completion and warms the cache.
		return submit(e, context.WithoutCancel(ctx), func(jctx context.Context) (*Cached, error) {
			// The trace (when tracing is on) is assembled here, behind the
			// singleflight, so every construction yields exactly one trace
			// no matter how many callers joined the build. It is published
			// on the entry's first quality measurement (locshortd measures
			// immediately after building), which contributes the final
			// "measure" span.
			var tb *obs.TraceBuilder
			if e.cfg.Tracer != nil {
				tb = obs.StartTrace("build")
				tb.SetFingerprint(key.String())
			}
			// Store-first: a persisted build from a previous process (or
			// one evicted from the LRU) is reloaded instead of rebuilt.
			// This sits behind the singleflight, so a restart stampede on
			// one key costs one store read, not N rebuilds. A failed load
			// falls through to a fresh construction.
			if st := e.cfg.Store; st != nil {
				loadStart := time.Now()
				res, bt, ok, err := st.GetShortcut(key, g, req.Parts)
				loadDur := time.Since(loadStart)
				if tb != nil {
					tb.Add("store_check", 0, loadDur)
				}
				switch {
				case err != nil:
					e.counters.storeErrs.Add(1)
				case ok:
					e.counters.storeHits.Add(1)
					if e.metrics != nil {
						e.metrics.loadSeconds.Observe(loadDur)
					}
					return &Cached{
						Key:        key,
						GraphFP:    req.Graph,
						G:          g,
						Parts:      req.Parts,
						Result:     res,
						BuildTime:  bt,
						Source:     SourceStore,
						trace:      tb,
						tracer:     e.cfg.Tracer,
						engMetrics: e.metrics,
					}, nil
				default:
					e.counters.storeMisses.Add(1)
				}
			}
			// Peer-fetch: after the local store misses, ask the key's
			// replica peers before paying a cold construction. Behind the
			// singleflight like the store check, so a cross-node miss
			// stampede costs one peer round-trip. The fetcher re-verifies
			// every payload against its fingerprints and imports the record
			// into the local store itself — no detached persist here. A
			// fetch error (unreachable peers, failed verification) falls
			// through to a fresh construction: the cluster degrades to
			// building locally, never to failing the request.
			if pf := e.cfg.Peers; pf != nil {
				// jctx, not ctx: the build job is detached from the
				// triggering caller, and so is its peer fetch — the
				// fetcher applies its own per-peer timeouts.
				fetchStart := time.Now()
				res, bt, ok, err := pf.FetchShortcut(jctx, key, g, req.Parts)
				fetchDur := time.Since(fetchStart)
				if tb != nil {
					tb.Add("peer_fetch", tb.Elapsed()-fetchDur, fetchDur)
				}
				switch {
				case err != nil:
					e.counters.peerErrs.Add(1)
				case ok:
					e.counters.peerHits.Add(1)
					if e.metrics != nil {
						e.metrics.peerFetchSeconds.Observe(fetchDur)
					}
					return &Cached{
						Key:        key,
						GraphFP:    req.Graph,
						G:          g,
						Parts:      req.Parts,
						Result:     res,
						BuildTime:  bt,
						Source:     SourcePeer,
						trace:      tb,
						tracer:     e.cfg.Tracer,
						engMetrics: e.metrics,
					}, nil
				default:
					e.counters.peerMisses.Add(1)
				}
			}
			bld := e.builders.Get().(*shortcut.Builder)
			defer e.builders.Put(bld)
			buildOpts := req.Options
			if tb != nil {
				// Timing-only: CollectStages never changes the shortcut and
				// is excluded from content addressing, so the key computed
				// from req.Options above still matches.
				buildOpts.CollectStages = true
			}
			start := time.Now()
			res, err := bld.Build(g, req.Parts, buildOpts)
			if err != nil {
				e.counters.buildErrs.Add(1)
				return nil, err
			}
			d := time.Since(start)
			e.counters.builds.Add(1)
			e.counters.buildNs.Add(d.Nanoseconds())
			if e.metrics != nil {
				e.metrics.buildSeconds.Observe(d)
				e.metrics.observeStages(res.Stages)
			}
			if tb != nil {
				// Stage offsets are relative to the Build call; shift them
				// onto the trace clock.
				off := tb.Elapsed() - d
				for _, st := range res.Stages {
					tb.Add(st.Name, off+st.Start, st.Dur)
				}
			}
			c := &Cached{
				Key:        key,
				GraphFP:    req.Graph,
				G:          g,
				Parts:      req.Parts,
				Result:     res,
				BuildTime:  d,
				Source:     SourceBuilt,
				trace:      tb,
				tracer:     e.cfg.Tracer,
				engMetrics: e.metrics,
			}
			if st := e.cfg.Store; st != nil {
				// Persist detached, like the build itself: the caller's
				// response is not delayed by the fsync, the write happens
				// exactly once per construction (we are behind the
				// singleflight), and Close drains the WaitGroup so a
				// clean shutdown never loses a completed build.
				e.persists.Add(1)
				go func() {
					defer e.persists.Done()
					pStart := time.Now()
					if err := st.PutShortcut(key, req.Graph, req.Parts, req.Options, res, d); err != nil {
						e.counters.storeErrs.Add(1)
					} else {
						e.counters.storeWrites.Add(1)
						if e.metrics != nil {
							e.metrics.persistSeconds.Observe(time.Since(pStart))
						}
					}
				}()
			}
			return c, nil
		})
	})
}

// MSTRequest runs the Corollary 1.6 distributed MST on a registered graph.
type MSTRequest struct {
	Graph   Fingerprint
	Options dist.MSTOptions
}

// MST executes the request on the worker pool.
func (e *Engine) MST(ctx context.Context, req MSTRequest) (*dist.MSTResult, error) {
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, ErrUnknownGraph
	}
	return submit(e, ctx, func(context.Context) (*dist.MSTResult, error) {
		return dist.MST(g, req.Options)
	})
}

// MinCutRequest runs the Corollary 1.7 distributed minimum cut.
type MinCutRequest struct {
	Graph   Fingerprint
	Options dist.MinCutOptions
}

// MinCut executes the request on the worker pool.
func (e *Engine) MinCut(ctx context.Context, req MinCutRequest) (*dist.MinCutResult, error) {
	g, ok := e.Graph(req.Graph)
	if !ok {
		return nil, ErrUnknownGraph
	}
	return submit(e, ctx, func(context.Context) (*dist.MinCutResult, error) {
		return dist.MinCut(g, req.Options)
	})
}

// AggregateRequest runs one part-wise aggregation round over a cached
// shortcut's installed routing.
type AggregateRequest struct {
	// Shortcut is a key previously returned by Build.
	Shortcut Fingerprint
	Op       dist.Op
	// Values holds one payload per node; nil aggregates the constant 1
	// per part member (so OpSum counts part sizes).
	Values []dist.Payload
	// Seed drives the randomized contention schedule.
	Seed int64
}

// Aggregate executes the request on the worker pool against the cached
// shortcut — the amortization the cache exists for: one build, many rounds.
func (e *Engine) Aggregate(ctx context.Context, req AggregateRequest) (*dist.PAResult, error) {
	c, ok := e.Shortcut(req.Shortcut)
	if !ok {
		return nil, ErrUnknownShortcut
	}
	return submit(e, ctx, func(context.Context) (*dist.PAResult, error) {
		r, err := c.Routing()
		if err != nil {
			return nil, err
		}
		values := req.Values
		if values == nil {
			// Constant 1 per node: only part members are read by the
			// schedule, so OpSum yields part sizes.
			values = make([]dist.Payload, c.G.NumNodes())
			for v := range values {
				values[v] = dist.Payload{1, 1, 1}
			}
		}
		if len(values) != c.G.NumNodes() {
			return nil, fmt.Errorf("service: %d values for %d nodes", len(values), c.G.NumNodes())
		}
		maxRounds := 64*c.G.NumNodes() + 4096
		return dist.PartwiseAggregate(c.G, r, req.Op, values, req.Seed, true, maxRounds)
	})
}

// Measure returns the memoized quality of a cached shortcut, computing it
// on the worker pool on first request.
func (e *Engine) Measure(ctx context.Context, key Fingerprint) (shortcut.Quality, error) {
	c, ok := e.Shortcut(key)
	if !ok {
		return shortcut.Quality{}, ErrUnknownShortcut
	}
	return e.MeasureCached(ctx, c)
}

// MeasureCached is Measure on an already-held cache entry. Unlike Measure
// it needs no key lookup, so build-then-measure sequences (the locshortd
// /v1/shortcuts handler) stay immune to the entry being evicted between
// the two steps under capacity pressure.
func (e *Engine) MeasureCached(ctx context.Context, c *Cached) (shortcut.Quality, error) {
	return submit(e, ctx, func(context.Context) (shortcut.Quality, error) {
		return c.Quality(), nil
	})
}
