package service

import (
	"context"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// Store is the durable snapshot store the engine optionally persists to and
// warm-starts from (Config.Store). internal/store provides the on-disk
// implementation; the interface lives here so the dependency points
// downward (store imports service for the fingerprint scheme, never the
// other way around).
//
// The contract mirrors the engine's content addressing exactly: graphs are
// keyed by FingerprintGraph, built shortcuts by ShortcutKey over
// (graph, partition, options). All methods must be safe for concurrent use;
// the engine calls PutShortcut from detached goroutines and GetShortcut
// from worker-pool jobs.
//
// This interface is one face of the full storage contract store.Backend;
// the semantics every implementation must honor are documented there and
// enforced by the internal/store/storetest conformance suite.
type Store interface {
	// PutGraph persists g under fp (a FingerprintGraph of g). Re-putting
	// known content must be a cheap no-op.
	PutGraph(fp Fingerprint, g *graph.Graph) error

	// EachGraph calls fn for every live graph record. A non-nil error from
	// fn aborts the iteration and is returned. Used by Engine.WarmStart.
	EachGraph(fn func(fp Fingerprint, g *graph.Graph) error) error

	// PutShortcut persists a built shortcut under its key, together with
	// the partition it covers, the options that produced it, and the
	// wall-clock build cost (what a future warm start saves).
	PutShortcut(key, graphFP Fingerprint, parts *partition.Partition,
		opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) error

	// GetShortcut loads the shortcut stored under key, reconstructed
	// against g (the engine's representative graph for the record's graph
	// fingerprint) and parts (the requested partition; same key implies
	// the same canonical partition). ok is false when no record exists;
	// a record that exists but fails validation returns an error.
	GetShortcut(key Fingerprint, g *graph.Graph, parts *partition.Partition) (
		res *shortcut.Result, buildTime time.Duration, ok bool, err error)

	// DeleteGraph durably removes the graph record for fp and every
	// shortcut record built on it. Deleting an absent graph is a no-op.
	DeleteGraph(fp Fingerprint) error
}

// GraphPayloadStore is the optional store capability the binary ingest
// path exploits: persisting an already-encoded canonical graph payload
// verbatim, skipping the re-encode PutGraph would pay. It is deliberately
// not part of Store — existing implementations and test stubs keep
// compiling, and Engine.AddGraphDecoded falls back to PutGraph when the
// assertion fails. *store.Store implements it.
type GraphPayloadStore interface {
	// PutGraphPayload persists a canonical graph payload under fp. The
	// implementation must verify the payload hashes to fp before writing;
	// known content must be a cheap no-op.
	PutGraphPayload(fp Fingerprint, payload []byte) error
}

// PeerFetcher is the cluster-mode extension of the miss chain
// (Config.Peers): after the local cache and local store both miss, the
// engine asks the fetcher for the record before paying a cold construction.
// internal/cluster implements it by asking the key's replica nodes over the
// peer API and re-verifying every fetched payload against its fingerprints;
// the interface lives here so the dependency points downward (cluster
// imports service, never the other way around).
type PeerFetcher interface {
	// FetchShortcut returns the shortcut stored under key on some peer,
	// reconstructed against g (the engine's representative) and parts (the
	// requested partition), plus the original construction's cost. ok is
	// false when no reachable peer holds the record; a fetched record that
	// fails verification returns an error. The implementation owns
	// durability: a successfully fetched record is already imported into
	// the local store when FetchShortcut returns, so the engine must not
	// persist it again.
	FetchShortcut(ctx context.Context, key Fingerprint, g *graph.Graph, parts *partition.Partition) (
		res *shortcut.Result, buildTime time.Duration, ok bool, err error)
}

// BuildSource records how a Cached entry materialized: by running the
// construction, by loading a persisted build from the durable store, or by
// fetching a peer node's persisted build. Together with Engine.Build's hit
// flag this classifies every response into the latency classes the load
// generator reports: cache (resident), store (warm start), peer (cluster
// fetch), built (cold construction).
type BuildSource uint8

const (
	// SourceBuilt marks an entry produced by running shortcut.Build.
	SourceBuilt BuildSource = iota
	// SourceStore marks an entry loaded from the durable store without
	// rebuilding.
	SourceStore
	// SourcePeer marks an entry fetched from a peer node's store without
	// rebuilding (cluster mode only).
	SourcePeer
)

// String returns the wire form used in the locshortd shortcut response.
func (s BuildSource) String() string {
	switch s {
	case SourceStore:
		return "store"
	case SourcePeer:
		return "peer"
	}
	return "built"
}
