package service

import (
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// Store is the durable snapshot store the engine optionally persists to and
// warm-starts from (Config.Store). internal/store provides the on-disk
// implementation; the interface lives here so the dependency points
// downward (store imports service for the fingerprint scheme, never the
// other way around).
//
// The contract mirrors the engine's content addressing exactly: graphs are
// keyed by FingerprintGraph, built shortcuts by ShortcutKey over
// (graph, partition, options). All methods must be safe for concurrent use;
// the engine calls PutShortcut from detached goroutines and GetShortcut
// from worker-pool jobs.
type Store interface {
	// PutGraph persists g under fp (a FingerprintGraph of g). Re-putting
	// known content must be a cheap no-op.
	PutGraph(fp Fingerprint, g *graph.Graph) error

	// EachGraph calls fn for every live graph record. A non-nil error from
	// fn aborts the iteration and is returned. Used by Engine.WarmStart.
	EachGraph(fn func(fp Fingerprint, g *graph.Graph) error) error

	// PutShortcut persists a built shortcut under its key, together with
	// the partition it covers, the options that produced it, and the
	// wall-clock build cost (what a future warm start saves).
	PutShortcut(key, graphFP Fingerprint, parts *partition.Partition,
		opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) error

	// GetShortcut loads the shortcut stored under key, reconstructed
	// against g (the engine's representative graph for the record's graph
	// fingerprint) and parts (the requested partition; same key implies
	// the same canonical partition). ok is false when no record exists;
	// a record that exists but fails validation returns an error.
	GetShortcut(key Fingerprint, g *graph.Graph, parts *partition.Partition) (
		res *shortcut.Result, buildTime time.Duration, ok bool, err error)

	// DeleteGraph durably removes the graph record for fp and every
	// shortcut record built on it. Deleting an absent graph is a no-op.
	DeleteGraph(fp Fingerprint) error
}

// BuildSource records how a Cached entry materialized: by running the
// construction, or by loading a persisted build from the durable store.
// Together with Engine.Build's hit flag this classifies every response into
// the three latency classes the load generator reports: cache (resident),
// store (warm start), built (cold construction).
type BuildSource uint8

const (
	// SourceBuilt marks an entry produced by running shortcut.Build.
	SourceBuilt BuildSource = iota
	// SourceStore marks an entry loaded from the durable store without
	// rebuilding.
	SourceStore
)

// String returns the wire form used in the locshortd shortcut response.
func (s BuildSource) String() string {
	if s == SourceStore {
		return "store"
	}
	return "built"
}
