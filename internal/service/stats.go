package service

import "sync/atomic"

// counters is the engine's hot-path instrumentation: every field is atomic
// so job and cache paths never synchronize just to count.
type counters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	builds    atomic.Uint64
	buildErrs atomic.Uint64
	evictions atomic.Uint64
	buildNs   atomic.Int64

	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsCanceled atomic.Uint64
	jobNs        atomic.Int64
	queueDepth   atomic.Int64
	running      atomic.Int64

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeWrites atomic.Uint64
	storeErrs   atomic.Uint64

	peerHits   atomic.Uint64
	peerMisses atomic.Uint64
	peerErrs   atomic.Uint64
}

// Stats is an atomic snapshot of the engine's counters, safe to read while
// the engine is serving traffic. Rates and averages are derived, not
// stored, so the snapshot is internally consistent enough for monitoring
// (individual counters are read independently, not under one lock).
type Stats struct {
	// Cache counters. Hits counts completed-entry lookups and singleflight
	// joins; Misses counts lookups that started a build.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CachedEntries  int    `json:"cached_entries"`

	// Build counters: completed shortcut constructions and their total
	// latency (singleflight means Builds can be far below CacheMisses+Hits).
	Builds        uint64 `json:"builds"`
	BuildErrors   uint64 `json:"build_errors"`
	BuildTotalNs  int64  `json:"build_total_ns"`
	AvgBuildNanos int64  `json:"avg_build_ns"`

	// Job counters for the worker pool.
	JobsDone     uint64 `json:"jobs_done"`
	JobsFailed   uint64 `json:"jobs_failed"`
	JobsCanceled uint64 `json:"jobs_canceled"`
	JobTotalNs   int64  `json:"job_total_ns"`
	QueueDepth   int64  `json:"queue_depth"`
	RunningJobs  int64  `json:"running_jobs"`

	// Durable-store counters, all zero when no Store is configured.
	// StoreHits counts cache misses served from the store without a
	// rebuild (the warm-start path); StoreMisses counts misses that went
	// on to build; StoreWrites counts persisted builds; StoreErrors counts
	// failed store reads and writes (persistence is best-effort — alert on
	// this counter).
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	StoreWrites uint64 `json:"store_writes"`
	StoreErrors uint64 `json:"store_errors"`

	// Cluster peer-fetch counters, all zero unless Config.Peers is set.
	// PeerHits counts store misses served by fetching a peer's record
	// (re-verified locally); PeerMisses counts fetches no reachable peer
	// could serve (the request went on to build); PeerErrors counts failed
	// fetches — unreachable replicas or records that failed verification.
	PeerHits   uint64 `json:"peer_hits"`
	PeerMisses uint64 `json:"peer_misses"`
	PeerErrors uint64 `json:"peer_errors"`

	// Graphs is the number of distinct graphs registered.
	Graphs int `json:"graphs"`

	// Cluster router/sync gauges, filled in by the layer that owns the
	// internal/cluster instance (the locshortd stats handler), like the
	// Async* fields below; the engine leaves them zero. Forwards counts
	// requests this node routed to a key's owner; ForwardErrors counts
	// forwards that failed over to local serving (owner down). SyncPulls
	// counts records the anti-entropy loop imported from peers across
	// SyncRounds rounds; PeersReachable is the last round's live peer
	// count.
	Forwards       uint64 `json:"forwards"`
	ForwardErrors  uint64 `json:"forward_errors"`
	SyncPulls      uint64 `json:"sync_pulls"`
	SyncRounds     uint64 `json:"sync_rounds"`
	SyncErrors     uint64 `json:"sync_errors"`
	PeersReachable int64  `json:"peers_reachable"`

	// Async job-manager gauges, filled in by the layer that owns the
	// internal/jobs manager (the locshortd stats handler) — the engine
	// itself runs no async jobs, so Engine.Stats leaves them zero.
	// AsyncQueued and AsyncRunning are gauges over every known job
	// (including records recovered from the durable store); a drained
	// queue is AsyncQueued == AsyncRunning == 0. AsyncSubmitted,
	// AsyncRetries, and AsyncPersistErrors count events in the current
	// process lifetime; alert on AsyncPersistErrors like StoreErrors.
	AsyncSubmitted     uint64 `json:"async_submitted"`
	AsyncQueued        int64  `json:"async_queued"`
	AsyncRunning       int64  `json:"async_running"`
	AsyncDone          uint64 `json:"async_done"`
	AsyncFailed        uint64 `json:"async_failed"`
	AsyncCanceled      uint64 `json:"async_canceled"`
	AsyncRetries       uint64 `json:"async_retries"`
	AsyncPersistErrors uint64 `json:"async_persist_errors"`
	AsyncRecoverSkip   uint64 `json:"async_recover_skipped"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		CacheHits:      c.hits.Load(),
		CacheMisses:    c.misses.Load(),
		CacheEvictions: c.evictions.Load(),
		Builds:         c.builds.Load(),
		BuildErrors:    c.buildErrs.Load(),
		BuildTotalNs:   c.buildNs.Load(),
		JobsDone:       c.jobsDone.Load(),
		JobsFailed:     c.jobsFailed.Load(),
		JobsCanceled:   c.jobsCanceled.Load(),
		JobTotalNs:     c.jobNs.Load(),
		QueueDepth:     c.queueDepth.Load(),
		RunningJobs:    c.running.Load(),
		StoreHits:      c.storeHits.Load(),
		StoreMisses:    c.storeMisses.Load(),
		StoreWrites:    c.storeWrites.Load(),
		StoreErrors:    c.storeErrs.Load(),
		PeerHits:       c.peerHits.Load(),
		PeerMisses:     c.peerMisses.Load(),
		PeerErrors:     c.peerErrs.Load(),
	}
	if s.Builds > 0 {
		s.AvgBuildNanos = s.BuildTotalNs / int64(s.Builds)
	}
	return s
}
