package service

import "sync/atomic"

// counters is the engine's hot-path instrumentation: every field is atomic
// so job and cache paths never synchronize just to count.
type counters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	builds    atomic.Uint64
	buildErrs atomic.Uint64
	evictions atomic.Uint64
	buildNs   atomic.Int64

	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsCanceled atomic.Uint64
	jobNs        atomic.Int64
	queueDepth   atomic.Int64
	running      atomic.Int64

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeWrites atomic.Uint64
	storeErrs   atomic.Uint64
}

// Stats is an atomic snapshot of the engine's counters, safe to read while
// the engine is serving traffic. Rates and averages are derived, not
// stored, so the snapshot is internally consistent enough for monitoring
// (individual counters are read independently, not under one lock).
type Stats struct {
	// Cache counters. Hits counts completed-entry lookups and singleflight
	// joins; Misses counts lookups that started a build.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CachedEntries  int    `json:"cached_entries"`

	// Build counters: completed shortcut constructions and their total
	// latency (singleflight means Builds can be far below CacheMisses+Hits).
	Builds        uint64 `json:"builds"`
	BuildErrors   uint64 `json:"build_errors"`
	BuildTotalNs  int64  `json:"build_total_ns"`
	AvgBuildNanos int64  `json:"avg_build_ns"`

	// Job counters for the worker pool.
	JobsDone     uint64 `json:"jobs_done"`
	JobsFailed   uint64 `json:"jobs_failed"`
	JobsCanceled uint64 `json:"jobs_canceled"`
	JobTotalNs   int64  `json:"job_total_ns"`
	QueueDepth   int64  `json:"queue_depth"`
	RunningJobs  int64  `json:"running_jobs"`

	// Durable-store counters, all zero when no Store is configured.
	// StoreHits counts cache misses served from the store without a
	// rebuild (the warm-start path); StoreMisses counts misses that went
	// on to build; StoreWrites counts persisted builds; StoreErrors counts
	// failed store reads and writes (persistence is best-effort — alert on
	// this counter).
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	StoreWrites uint64 `json:"store_writes"`
	StoreErrors uint64 `json:"store_errors"`

	// Graphs is the number of distinct graphs registered.
	Graphs int `json:"graphs"`

	// Async job-manager gauges, filled in by the layer that owns the
	// internal/jobs manager (the locshortd stats handler) — the engine
	// itself runs no async jobs, so Engine.Stats leaves them zero.
	// AsyncQueued and AsyncRunning are gauges over every known job
	// (including records recovered from the durable store); a drained
	// queue is AsyncQueued == AsyncRunning == 0. AsyncSubmitted,
	// AsyncRetries, and AsyncPersistErrors count events in the current
	// process lifetime; alert on AsyncPersistErrors like StoreErrors.
	AsyncSubmitted     uint64 `json:"async_submitted"`
	AsyncQueued        int64  `json:"async_queued"`
	AsyncRunning       int64  `json:"async_running"`
	AsyncDone          uint64 `json:"async_done"`
	AsyncFailed        uint64 `json:"async_failed"`
	AsyncCanceled      uint64 `json:"async_canceled"`
	AsyncRetries       uint64 `json:"async_retries"`
	AsyncPersistErrors uint64 `json:"async_persist_errors"`
	AsyncRecoverSkip   uint64 `json:"async_recover_skipped"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		CacheHits:      c.hits.Load(),
		CacheMisses:    c.misses.Load(),
		CacheEvictions: c.evictions.Load(),
		Builds:         c.builds.Load(),
		BuildErrors:    c.buildErrs.Load(),
		BuildTotalNs:   c.buildNs.Load(),
		JobsDone:       c.jobsDone.Load(),
		JobsFailed:     c.jobsFailed.Load(),
		JobsCanceled:   c.jobsCanceled.Load(),
		JobTotalNs:     c.jobNs.Load(),
		QueueDepth:     c.queueDepth.Load(),
		RunningJobs:    c.running.Load(),
		StoreHits:      c.storeHits.Load(),
		StoreMisses:    c.storeMisses.Load(),
		StoreWrites:    c.storeWrites.Load(),
		StoreErrors:    c.storeErrs.Load(),
	}
	if s.Builds > 0 {
		s.AvgBuildNanos = s.BuildTotalNs / int64(s.Builds)
	}
	return s
}
