package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

func testGraph(t *testing.T) (*graph.Graph, *partition.Partition) {
	t.Helper()
	g := graph.Grid(8, 8)
	p, err := partition.BFSBlobs(g, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

func TestFingerprintGraphCanonical(t *testing.T) {
	// Same structure, different edge insertion order and orientation.
	a := graph.New(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	b := graph.New(4)
	b.AddEdge(3, 2)
	b.AddEdge(1, 0)
	b.AddEdge(2, 1)
	if FingerprintGraph(a) != FingerprintGraph(b) {
		t.Error("edge order/orientation changed the fingerprint")
	}
	// A weight change must change it.
	c := graph.New(4)
	c.AddEdge(0, 1)
	c.AddWeightedEdge(1, 2, 2)
	c.AddEdge(2, 3)
	if FingerprintGraph(a) == FingerprintGraph(c) {
		t.Error("weight change did not change the fingerprint")
	}
	// A node-count change must change it.
	d := graph.New(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	if FingerprintGraph(a) == FingerprintGraph(d) {
		t.Error("node count change did not change the fingerprint")
	}
}

func TestFingerprintPartitionCanonical(t *testing.T) {
	g := graph.Path(6)
	p1, err := partition.New(g, [][]int{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := partition.New(g, [][]int{{5, 4, 3}, {2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintPartition(p1) != FingerprintPartition(p2) {
		t.Error("part order/node order changed the partition fingerprint")
	}
	p3, err := partition.New(g, [][]int{{0, 1}, {2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintPartition(p1) == FingerprintPartition(p3) {
		t.Error("different assignment produced the same fingerprint")
	}
}

func TestShortcutKeyCoversOptions(t *testing.T) {
	g := graph.Grid(4, 4)
	p, err := partition.BFSBlobs(g, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintGraph(g)
	base := ShortcutKey(fp, p, shortcut.Options{})
	if ShortcutKey(fp, p, shortcut.Options{}) != base {
		t.Error("shortcut key is not stable")
	}
	if ShortcutKey(fp, p, shortcut.Options{Delta: 4}) == base {
		t.Error("options change did not change the shortcut key")
	}
}

func TestFingerprintWireForm(t *testing.T) {
	fp := Fingerprint(0x0123456789abcdef)
	got, err := ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Errorf("round trip %v != %v", got, fp)
	}
	for _, bad := range []string{"", "123", "zzzzzzzzzzzzzzzz", "0123456789abcdef0"} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) succeeded, want error", bad)
		}
	}
}

// TestCacheSingleflight hammers one key from many goroutines and asserts
// exactly one build ran.
func TestCacheSingleflight(t *testing.T) {
	var metrics counters
	c := newCache(4, 8, &metrics)
	var builds atomic.Int64
	const waiters = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.getOrBuild(context.Background(), 42, func() (*Cached, error) {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond)
				return &Cached{Key: 42}, nil
			})
			if err != nil || v == nil || v.Key != 42 {
				t.Errorf("getOrBuild = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want exactly 1", n)
	}
	if h, m := metrics.hits.Load(), metrics.misses.Load(); m != 1 || h != waiters-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", h, m, waiters-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	var metrics counters
	c := newCache(1, 4, &metrics)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, err := c.getOrBuild(context.Background(), 7, func() (*Cached, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 3 {
		t.Errorf("failed build cached: %d calls, want 3", calls)
	}
	if c.len() != 0 {
		t.Errorf("cache holds %d entries after failed builds", c.len())
	}
}

// TestCacheEviction fills the cache far past capacity under concurrency
// and checks the residency bound and eviction accounting.
func TestCacheEviction(t *testing.T) {
	var metrics counters
	const shards, capacity = 2, 4
	c := newCache(shards, capacity, &metrics)
	const keys = 64
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k Fingerprint) {
			defer wg.Done()
			_, _, err := c.getOrBuild(context.Background(), k, func() (*Cached, error) {
				return &Cached{Key: k}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(Fingerprint(k))
	}
	wg.Wait()
	if n := c.len(); n > capacity {
		t.Errorf("resident entries = %d, want <= %d", n, capacity)
	}
	if ev := metrics.evictions.Load(); ev < keys-capacity {
		t.Errorf("evictions = %d, want >= %d", ev, keys-capacity)
	}
	// LRU: the most recently inserted keys of each shard survive; an
	// evicted key rebuilds.
	rebuilt := false
	c.getOrBuild(context.Background(), 0, func() (*Cached, error) {
		rebuilt = true
		return &Cached{}, nil
	})
	c.getOrBuild(context.Background(), 1, func() (*Cached, error) {
		rebuilt = true
		return &Cached{}, nil
	})
	if !rebuilt {
		t.Error("no early key was evicted out of 64 inserts into capacity 4")
	}
}

// TestCacheCancelMidBuild cancels a waiter while the build is in flight:
// the waiter returns promptly with ctx.Err(), the build completes anyway,
// and the next lookup is a hit.
func TestCacheCancelMidBuild(t *testing.T) {
	var metrics counters
	c := newCache(1, 4, &metrics)
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.getOrBuild(ctx, 9, func() (*Cached, error) {
			<-release
			return &Cached{Key: 9}, nil
		})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the build start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	close(release)
	v, _, err := c.getOrBuild(context.Background(), 9, func() (*Cached, error) {
		t.Error("abandoned build did not populate the cache")
		return nil, nil
	})
	if err != nil || v.Key != 9 {
		t.Fatalf("post-cancel lookup = %v, %v", v, err)
	}
}

// TestEngineSingleflight is the end-to-end variant: concurrent Build calls
// for one (graph, partition, options) trigger exactly one construction.
func TestEngineSingleflight(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4})
	g, p := testGraph(t)
	fp, err := e.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var wg sync.WaitGroup
	keys := make([]Fingerprint, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
			if err != nil {
				t.Error(err)
				return
			}
			keys[i] = c.Key
		}(i)
	}
	wg.Wait()
	s := e.Stats()
	if s.Builds != 1 {
		t.Errorf("Builds = %d, want exactly 1", s.Builds)
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Errorf("divergent shortcut keys: %v vs %v", k, keys[0])
		}
	}
	if s.CacheHits != callers-1 || s.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", s.CacheHits, s.CacheMisses, callers-1)
	}
}

func TestEngineJobsAgainstReferences(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	g, p := testGraph(t)
	graph.RandomizeWeights(g, rand.New(rand.NewSource(3)))
	fp, err := e.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c, _, err := e.Build(ctx, BuildRequest{Graph: fp, Parts: p})
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Measure(ctx, c.Key)
	if err != nil {
		t.Fatal(err)
	}
	if q.CoveredParts != p.NumParts() {
		t.Errorf("covered %d of %d parts", q.CoveredParts, p.NumParts())
	}

	mst, err := e.MST(ctx, MSTRequest{Graph: fp})
	if err != nil {
		t.Fatal(err)
	}
	_, want := graph.Kruskal(g)
	if math.Abs(mst.Weight-want) > 1e-9 {
		t.Errorf("MST weight %v, want %v", mst.Weight, want)
	}

	// MinCut uses unit capacities; check it on an unweighted graph.
	unit := graph.Grid(8, 8)
	ufp, err := e.AddGraph(unit)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := e.MinCut(ctx, MinCutRequest{Graph: ufp, Options: dist.MinCutOptions{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.StoerWagner(unit)
	if err != nil {
		t.Fatal(err)
	}
	if float64(mc.Value) != ref {
		t.Errorf("MinCut = %d, want %v", mc.Value, ref)
	}

	agg, err := e.Aggregate(ctx, AggregateRequest{Shortcut: c.Key, Op: dist.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range p.Parts {
		if got := agg.PartResult[i][0]; got != int64(len(part)) {
			t.Errorf("part %d aggregate = %d, want size %d", i, got, len(part))
		}
	}
}

func TestEngineUnknownReferences(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	_, p := testGraph(t)
	ctx := context.Background()
	if _, _, err := e.Build(ctx, BuildRequest{Graph: 1, Parts: p}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("Build unknown graph: %v", err)
	}
	if _, err := e.MST(ctx, MSTRequest{Graph: 1}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("MST unknown graph: %v", err)
	}
	if _, err := e.Aggregate(ctx, AggregateRequest{Shortcut: 1}); !errors.Is(err, ErrUnknownShortcut) {
		t.Errorf("Aggregate unknown shortcut: %v", err)
	}
	if _, err := e.Measure(ctx, 1); !errors.Is(err, ErrUnknownShortcut) {
		t.Errorf("Measure unknown shortcut: %v", err)
	}
}

func TestEngineQueuedJobCancellation(t *testing.T) {
	// One worker, occupied by a slow job: a second job canceled while
	// queued must return ctx.Err() without running.
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8})
	block := make(chan struct{})
	go submit(e, context.Background(), func(context.Context) (int, error) {
		<-block
		return 0, nil
	})
	time.Sleep(10 * time.Millisecond) // let the slow job occupy the worker
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := submit(e, ctx, func(context.Context) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(block)
	if ran {
		t.Error("canceled queued job still ran")
	}
}

func TestEngineCloseRejects(t *testing.T) {
	e := New(Config{Workers: 1})
	e.Close()
	_, err := submit(e, context.Background(), func(context.Context) (int, error) { return 1, nil })
	if !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close = %v, want ErrClosed", err)
	}
}

func TestEngineAddGraphDeduplicates(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	a := graph.Grid(4, 4)
	b := graph.Grid(4, 4)
	fa, err := e.AddGraph(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := e.AddGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("same content, different fingerprints: %v vs %v", fa, fb)
	}
	got, ok := e.Graph(fa)
	if !ok || got != a {
		t.Error("representative graph is not the first registered instance")
	}
	if s := e.Stats(); s.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1", s.Graphs)
	}
}

// MeasureCached must keep working on a held entry after eviction, while
// key-addressed Measure correctly reports the entry gone — the
// build-then-measure sequence of the locshortd /v1/shortcuts handler.
func TestMeasureCachedSurvivesEviction(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, CacheCapacity: 1, CacheShards: 1})
	g, p := testGraph(t)
	fp, err := e.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	held, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
	if err != nil {
		t.Fatal(err)
	}
	// A second distinct shortcut on a capacity-1 shard evicts the first.
	p2, err := partition.BFSBlobs(g, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Shortcut(held.Key); ok {
		t.Fatal("first entry still resident; eviction did not happen")
	}
	if _, err := e.Measure(context.Background(), held.Key); !errors.Is(err, ErrUnknownShortcut) {
		t.Errorf("Measure on evicted key = %v, want ErrUnknownShortcut", err)
	}
	q, err := e.MeasureCached(context.Background(), held)
	if err != nil {
		t.Fatalf("MeasureCached on held evicted entry: %v", err)
	}
	if q.CoveredParts != p.NumParts() {
		t.Errorf("quality covers %d parts, want %d", q.CoveredParts, p.NumParts())
	}
}

// stubStore is an in-memory service.Store for engine-integration tests,
// independent of the real internal/store implementation (which has its own
// suite plus an httptest e2e in cmd/locshortd).
type stubStore struct {
	mu        sync.Mutex
	graphs    map[Fingerprint]*graph.Graph
	shortcuts map[Fingerprint]*shortcut.Result
	times     map[Fingerprint]time.Duration
	puts      int
	gets      int
	failPuts  bool
}

func newStubStore() *stubStore {
	return &stubStore{
		graphs:    make(map[Fingerprint]*graph.Graph),
		shortcuts: make(map[Fingerprint]*shortcut.Result),
		times:     make(map[Fingerprint]time.Duration),
	}
}

func (s *stubStore) PutGraph(fp Fingerprint, g *graph.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graphs[fp] = g
	return nil
}

func (s *stubStore) EachGraph(fn func(Fingerprint, *graph.Graph) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for fp, g := range s.graphs {
		if err := fn(fp, g); err != nil {
			return err
		}
	}
	return nil
}

func (s *stubStore) PutShortcut(key, graphFP Fingerprint, parts *partition.Partition,
	opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failPuts {
		return errors.New("stub: put failed")
	}
	s.shortcuts[key] = res
	s.times[key] = buildTime
	return nil
}

func (s *stubStore) GetShortcut(key Fingerprint, g *graph.Graph, parts *partition.Partition) (
	*shortcut.Result, time.Duration, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	res, ok := s.shortcuts[key]
	if !ok {
		return nil, 0, false, nil
	}
	return res, s.times[key], true, nil
}

func (s *stubStore) DeleteGraph(fp Fingerprint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.graphs, fp)
	return nil
}

// TestEngineStorePersistAndWarmStart drives the full durability cycle
// through the engine against the stub: persist on build, warm-start a
// second engine, serve the key store-first without rebuilding.
func TestEngineStorePersistAndWarmStart(t *testing.T) {
	st := newStubStore()
	g, p := testGraph(t)

	e1 := New(Config{Workers: 2, Store: st})
	fp, err := e1.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := e1.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Source != SourceBuilt {
		t.Errorf("first build source = %v, want SourceBuilt", c1.Source)
	}
	e1.Close() // drains the detached persist
	if st.puts != 1 {
		t.Fatalf("store saw %d shortcut puts, want 1", st.puts)
	}
	s1 := e1.Stats()
	if s1.StoreWrites != 1 || s1.StoreMisses != 1 || s1.StoreHits != 0 {
		t.Errorf("first engine store stats = writes %d misses %d hits %d, want 1/1/0",
			s1.StoreWrites, s1.StoreMisses, s1.StoreHits)
	}

	e2 := newTestEngine(t, Config{Workers: 2, Store: st})
	n, err := e2.WarmStart()
	if err != nil || n != 1 {
		t.Fatalf("WarmStart = (%d, %v), want (1, nil)", n, err)
	}
	if infos := e2.Graphs(); len(infos) != 1 || infos[0].Fingerprint != fp {
		t.Fatalf("Graphs() after warm start = %+v", infos)
	}
	c2, hit, err := e2.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
	if err != nil {
		t.Fatal(err)
	}
	if hit || c2.Source != SourceStore {
		t.Errorf("post-restart build hit=%v source=%v, want miss served from store", hit, c2.Source)
	}
	if c2.BuildTime != c1.BuildTime {
		t.Errorf("store hit BuildTime %v, want original %v", c2.BuildTime, c1.BuildTime)
	}
	s2 := e2.Stats()
	if s2.Builds != 0 || s2.StoreHits != 1 {
		t.Errorf("post-restart stats: builds %d store hits %d, want 0 and 1", s2.Builds, s2.StoreHits)
	}
	// Now resident: the next request is a cache hit, no store read.
	gets := st.gets
	if _, hit, _ := e2.Build(context.Background(), BuildRequest{Graph: fp, Parts: p}); !hit {
		t.Error("second post-restart request not a cache hit")
	}
	if st.gets != gets {
		t.Error("cache hit consulted the store")
	}
}

// TestEngineRemoveGraph asserts RemoveGraph evicts the registration, the
// cached shortcuts, and the store records, and 404s afterwards.
func TestEngineRemoveGraph(t *testing.T) {
	st := newStubStore()
	e := newTestEngine(t, Config{Workers: 2, Store: st})
	g, p := testGraph(t)
	fp, _ := e.AddGraph(g)
	if _, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p}); err != nil {
		t.Fatal(err)
	}
	evicted, err := e.RemoveGraph(fp)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Errorf("evicted %d cached shortcuts, want 1", evicted)
	}
	if _, ok := e.Graph(fp); ok {
		t.Error("graph still registered after RemoveGraph")
	}
	if len(e.Graphs()) != 0 {
		t.Error("Graphs() not empty after RemoveGraph")
	}
	st.mu.Lock()
	_, inStore := st.graphs[fp]
	st.mu.Unlock()
	if inStore {
		t.Error("store still holds the graph after RemoveGraph")
	}
	if _, err := e.RemoveGraph(fp); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("second RemoveGraph = %v, want ErrUnknownGraph", err)
	}
	if _, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("build after removal = %v, want ErrUnknownGraph", err)
	}
	if e.Stats().CachedEntries != 0 {
		t.Error("cache not empty after RemoveGraph")
	}
}

// TestEngineStoreWriteFailureCounted asserts persistence failures are
// observable in Stats but never fail the build.
func TestEngineStoreWriteFailureCounted(t *testing.T) {
	st := newStubStore()
	st.failPuts = true
	e := New(Config{Workers: 2, Store: st})
	g, p := testGraph(t)
	fp, _ := e.AddGraph(g)
	if _, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p}); err != nil {
		t.Fatalf("build failed on store write error: %v", err)
	}
	e.Close()
	if s := e.Stats(); s.StoreErrors != 1 || s.StoreWrites != 0 {
		t.Errorf("store stats = errors %d writes %d, want 1 and 0", s.StoreErrors, s.StoreWrites)
	}
}

// stubPeerFetcher is an in-memory service.PeerFetcher: a canned response
// plus a call counter, independent of internal/cluster (which has its own
// suite plus the cmd/locshortd multi-node e2e).
type stubPeerFetcher struct {
	mu    sync.Mutex
	calls int
	res   *shortcut.Result
	bt    time.Duration
	ok    bool
	err   error
}

func (f *stubPeerFetcher) FetchShortcut(ctx context.Context, key Fingerprint,
	g *graph.Graph, parts *partition.Partition) (*shortcut.Result, time.Duration, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return f.res, f.bt, f.ok, f.err
}

// TestEnginePeerFetchHit: a peer hit serves the entry with Source "peer",
// skips the construction entirely, and is NOT re-persisted by the engine
// (the fetcher contract says the implementation already imported it).
func TestEnginePeerFetchHit(t *testing.T) {
	g, p := testGraph(t)
	res, err := shortcut.Build(g, p, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := newStubStore()
	pf := &stubPeerFetcher{res: res, bt: 77 * time.Millisecond, ok: true}
	e := newTestEngine(t, Config{Workers: 2, Store: st, Peers: pf})
	fp, err := e.AddGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	c, hit, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported a cache hit")
	}
	if c.Source != SourcePeer || c.Source.String() != "peer" {
		t.Fatalf("source = %v (%q), want SourcePeer", c.Source, c.Source.String())
	}
	if c.BuildTime != 77*time.Millisecond {
		t.Fatalf("peer build time not preserved: %v", c.BuildTime)
	}
	s := e.Stats()
	if s.Builds != 0 {
		t.Fatalf("builds = %d, want 0 (peer hit must not construct)", s.Builds)
	}
	if s.PeerHits != 1 || s.PeerMisses != 0 || s.PeerErrors != 0 {
		t.Fatalf("peer counters = %d/%d/%d, want 1/0/0", s.PeerHits, s.PeerMisses, s.PeerErrors)
	}
	st.mu.Lock()
	puts := st.puts
	st.mu.Unlock()
	if puts != 0 {
		t.Fatalf("engine persisted a peer-fetched entry (%d puts); the fetcher owns durability", puts)
	}
	// Second request: resident cache hit, the fetcher is not consulted again.
	if _, hit, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p}); err != nil || !hit {
		t.Fatalf("second request: hit=%v err=%v", hit, err)
	}
	pf.mu.Lock()
	calls := pf.calls
	pf.mu.Unlock()
	if calls != 1 {
		t.Fatalf("fetcher consulted %d times, want 1", calls)
	}
}

// TestEnginePeerFetchMissAndError: a clean miss falls through to the
// construction and counts PeerMisses; a fetch error also falls through but
// counts PeerErrors — the request must never fail because peers did.
func TestEnginePeerFetchMissAndError(t *testing.T) {
	for _, tc := range []struct {
		name string
		pf   *stubPeerFetcher
	}{
		{"miss", &stubPeerFetcher{ok: false}},
		{"error", &stubPeerFetcher{err: errors.New("stub: peers unreachable")}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, p := testGraph(t)
			e := newTestEngine(t, Config{Workers: 2, Peers: tc.pf})
			fp, err := e.AddGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := e.Build(context.Background(), BuildRequest{Graph: fp, Parts: p})
			if err != nil {
				t.Fatalf("build must survive a peer %s: %v", tc.name, err)
			}
			if c.Source != SourceBuilt {
				t.Fatalf("source = %v, want SourceBuilt", c.Source)
			}
			s := e.Stats()
			if s.Builds != 1 {
				t.Fatalf("builds = %d, want 1", s.Builds)
			}
			if tc.name == "miss" && (s.PeerMisses != 1 || s.PeerErrors != 0) {
				t.Fatalf("peer counters = misses %d errors %d, want 1/0", s.PeerMisses, s.PeerErrors)
			}
			if tc.name == "error" && (s.PeerErrors != 1 || s.PeerMisses != 0) {
				t.Fatalf("peer counters = misses %d errors %d, want 0/1", s.PeerMisses, s.PeerErrors)
			}
		})
	}
}
