package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// Fingerprint is a stable 64-bit content address: FNV-1a over a canonical
// byte encoding of the addressed object. Graphs, partitions, and build
// options each contribute a canonical encoding; a shortcut's fingerprint
// covers all three, so it identifies the inputs that determine the built
// shortcut.
//
// 64 bits of a non-cryptographic hash make accidental collisions
// negligible at realistic catalog sizes (birthday bound ~2^32) but offer
// no adversarial collision resistance: a client that can forge a
// colliding graph gets answers computed on the first-registered
// representative. Deployments serving untrusted tenants should isolate
// them per engine.
type Fingerprint uint64

// String renders the fingerprint as 16 lowercase hex digits, the wire form
// used by the locshortd API.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// ParseFingerprint parses the 16-hex-digit wire form.
func ParseFingerprint(s string) (Fingerprint, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("service: fingerprint %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("service: fingerprint %q: %w", s, err)
	}
	return Fingerprint(v), nil
}

func hashBytes(b []byte) Fingerprint {
	h := fnv.New64a()
	h.Write(b)
	return Fingerprint(h.Sum64())
}

// FingerprintBytes hashes an already-canonical byte encoding. It exists for
// layers that persist the canonical encodings themselves (internal/store)
// and need to re-derive the content address from the stored bytes without
// first decoding them into an object.
func FingerprintBytes(b []byte) Fingerprint { return hashBytes(b) }

// FingerprintGraph fingerprints a graph over its canonical encoding
// (graph.AppendCanonical): node count plus the sorted multiset of
// normalized weighted edges.
func FingerprintGraph(g *graph.Graph) Fingerprint {
	return hashBytes(g.AppendCanonical(nil))
}

// AppendPartitionCanonical appends the canonical binary encoding of a
// partition to b: node count, part count, then the per-node part assignment
// with part labels canonicalized by first appearance over nodes 0..n-1, so
// the encoding is invariant under part reordering and node-order
// permutations within a part. It is the partition counterpart of
// graph.AppendCanonical and doubles as the on-disk partition payload of
// internal/store.
func AppendPartitionCanonical(b []byte, p *partition.Partition) []byte {
	relabel := make(map[int]uint64, p.NumParts())
	b = binary.BigEndian.AppendUint64(b, uint64(len(p.PartOf)))
	b = binary.BigEndian.AppendUint64(b, uint64(p.NumParts()))
	for _, part := range p.PartOf {
		if part < 0 {
			b = binary.BigEndian.AppendUint64(b, ^uint64(0))
			continue
		}
		l, ok := relabel[part]
		if !ok {
			l = uint64(len(relabel))
			relabel[part] = l
		}
		b = binary.BigEndian.AppendUint64(b, l)
	}
	return b
}

// partitionCanonical returns p's canonical encoding through the memo a
// published partition carries: the relabeling pass runs once per
// partition, not once per request. Treat the result as read-only.
func partitionCanonical(p *partition.Partition) []byte {
	return p.CanonMemo(func() []byte { return AppendPartitionCanonical(nil, p) })
}

// FingerprintPartition fingerprints a partition's canonical part
// assignment.
func FingerprintPartition(p *partition.Partition) Fingerprint {
	return hashBytes(partitionCanonical(p))
}

// appendOptionsCanonical encodes the shortcut.Options fields that determine
// the built shortcut: Delta, MaxDelta, CongestionFactor, BlockFactor, and
// MaxIterations. The service never builds with Certify or a caller-supplied
// Tree, so those fields do not participate in content addressing.
func appendOptionsCanonical(b []byte, o shortcut.Options) []byte {
	for _, v := range [...]int{o.Delta, o.MaxDelta, o.CongestionFactor, o.BlockFactor, o.MaxIterations} {
		b = binary.BigEndian.AppendUint64(b, uint64(int64(v)))
	}
	return b
}

// ShortcutKey is the content address of a built shortcut: a hash over the
// graph fingerprint, the canonical partition assignment, and the canonical
// build options. Up to hash collisions (see Fingerprint), two requests
// share a key exactly when Build would produce the same shortcut for both.
func ShortcutKey(g Fingerprint, p *partition.Partition, o shortcut.Options) Fingerprint {
	canon := partitionCanonical(p)
	b := make([]byte, 0, 8+len(canon)+5*8)
	b = binary.BigEndian.AppendUint64(b, uint64(g))
	b = append(b, canon...)
	b = appendOptionsCanonical(b, o)
	return hashBytes(b)
}
