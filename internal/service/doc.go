// Package service is the concurrent shortcut-serving layer: a
// content-addressed cache of built shortcuts in front of the centralized
// construction, plus a bounded worker pool that executes build and query
// jobs (MST, MinCut, part-wise aggregation, quality measurement) against
// cached shortcuts, optionally backed by a durable snapshot store.
//
// The paper's economics motivate the design: a shortcut is built once per
// (graph, partition) and then amortized across many part-wise aggregation
// rounds (Definition 2.1, Section 2). The service makes that amortization
// explicit across *requests*: graphs are registered by content fingerprint,
// shortcuts are addressed by a key covering (graph, partition, build
// options), concurrent requests for the same key collapse into exactly one
// construction (singleflight), and completed constructions stay resident in
// a sharded LRU until evicted under capacity pressure. With a Store
// configured the amortization additionally spans *process lifetimes*:
// completed builds persist and cache misses are served store-first, so a
// restart costs a store read per shortcut instead of a rebuild.
//
// # Role in the DAG
//
// Depends on internal/graph, internal/partition, internal/shortcut, and
// internal/dist. It defines the canonical content-addressing scheme
// (Fingerprint, ShortcutKey, AppendPartitionCanonical) that internal/store
// keys its records by; the Store interface lives here and internal/store
// implements it, keeping the dependency pointed downward. cmd/locshortd
// exposes the engine over HTTP; cmd/loadgen drives it. See DESIGN.md §4
// ("Service layer") and §6 ("Persistence and warm-start").
package service
