package service

import (
	"container/list"
	"context"
	"sync"
)

// cache is a sharded, singleflight, in-memory LRU keyed by Fingerprint.
//
// Each shard guards a map plus an LRU list with one mutex; a fingerprint's
// shard is its low bits, which FNV-1a mixes well.
// Lookups of a completed entry touch the LRU and return immediately.
// Lookups of an in-flight entry wait for the single builder (or the
// caller's context, whichever finishes first). Lookups of a missing entry
// install an in-flight marker and start exactly one builder goroutine —
// the singleflight guarantee — which the caller can abandon on context
// cancellation without aborting the build: the result still lands in the
// cache for everyone who asks next.
//
// Failed builds are not cached; eviction only considers completed entries,
// so an in-flight build can never be evicted out from under its waiters.
type cache struct {
	shards  []*cacheShard
	mask    uint64
	perCap  int
	metrics *counters
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[Fingerprint]*cacheEntry
	lru *list.List // front = most recently used; completed entries only
}

type cacheEntry struct {
	key   Fingerprint
	ready chan struct{} // closed once val/err are set
	val   *Cached
	err   error
	elem  *list.Element // non-nil once completed and resident
}

// newCache sizes the shard array to a power of two and splits the total
// capacity evenly; capacity is a completed-entry budget per shard.
func newCache(shards, capacity int, metrics *counters) *cache {
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	perCap := (capacity + pow - 1) / pow
	if perCap < 1 {
		perCap = 1
	}
	c := &cache{shards: make([]*cacheShard, pow), mask: uint64(pow - 1), perCap: perCap, metrics: metrics}
	for i := range c.shards {
		c.shards[i] = &cacheShard{m: make(map[Fingerprint]*cacheEntry), lru: list.New()}
	}
	return c
}

//locshort:hotpath
func (c *cache) shard(key Fingerprint) *cacheShard { return c.shards[uint64(key)&c.mask] }

// getOrBuild returns the cached value for key, waiting on an in-flight
// build or starting one via build. ctx cancels the wait, never the build.
// hit reports whether the entry was already complete at lookup — the
// latency-relevant distinction: singleflight joiners wait out most of a
// build, so they report hit=false even though they count as cache hits.
//
//locshort:hotpath
func (c *cache) getOrBuild(ctx context.Context, key Fingerprint, build func() (*Cached, error)) (v *Cached, hit bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		select {
		case <-e.ready: // completed: hit
			if e.elem != nil {
				s.lru.MoveToFront(e.elem)
			}
			s.mu.Unlock()
			c.metrics.hits.Add(1)
			return e.val, true, e.err
		default: // in flight: join the single flight
			s.mu.Unlock()
			c.metrics.hits.Add(1)
			select {
			case <-e.ready:
				return e.val, false, e.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	s.m[key] = e
	s.mu.Unlock()
	c.metrics.misses.Add(1)

	//locshort:alloc-ok miss path: the build this goroutine runs dwarfs the closure
	go func() {
		val, err := build()
		s.mu.Lock()
		e.val, e.err = val, err
		if err != nil {
			delete(s.m, key) // failed builds are not cached
		} else {
			e.elem = s.lru.PushFront(e)
			for s.lru.Len() > c.perCap {
				old := s.lru.Back()
				s.lru.Remove(old)
				delete(s.m, old.Value.(*cacheEntry).key)
				c.metrics.evictions.Add(1)
			}
		}
		s.mu.Unlock()
		close(e.ready)
	}()

	select {
	case <-e.ready:
		return e.val, false, e.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// peek returns the completed entry for key without building or waiting.
// It touches the LRU but deliberately does not count toward hits/misses:
// those counters track build-or-get traffic (the hit-rate denominator),
// and peek serves job lookups that never could have built.
//
//locshort:hotpath
func (c *cache) peek(key Fingerprint) (*Cached, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, false // still building
	}
	if e.err != nil {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.val, true
}

// removeGraph drops every resident completed entry whose shortcut was built
// on graph fp and returns how many were removed. In-flight entries are left
// to complete (their builders hold references the cache cannot revoke);
// since the caller deregisters the graph first, no new builds for fp can
// start, so a raced-in entry is unreachable and ages out of the LRU.
func (c *cache) removeGraph(fp Fingerprint) int {
	removed := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for key, e := range s.m {
			select {
			case <-e.ready:
			default:
				continue // in flight
			}
			if e.err == nil && e.val.GraphFP == fp {
				s.lru.Remove(e.elem)
				delete(s.m, key)
				removed++
			}
		}
		s.mu.Unlock()
	}
	return removed
}

// len returns the number of resident completed entries across all shards.
func (c *cache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
