package graph

// BFSResult holds the outcome of a breadth-first search.
type BFSResult struct {
	// Dist[v] is the hop distance from the source set, or -1 if unreachable.
	Dist []int
	// Parent[v] is the BFS-tree parent of v, or -1 for sources/unreachable.
	Parent []int
	// ParentEdge[v] is the edge ID connecting v to Parent[v], or -1.
	ParentEdge []int
	// Order lists reached nodes in nondecreasing distance.
	Order []int
}

// BFS runs a breadth-first search from src.
func BFS(g *Graph, src int) *BFSResult { return MultiBFS(g, []int{src}) }

// MultiBFS runs a breadth-first search from a set of sources simultaneously.
func MultiBFS(g *Graph, sources []int) *BFSResult {
	return MultiBFSInto(new(BFSResult), g, sources)
}

// MultiBFSInto runs MultiBFS reusing r's slices, growing them as needed,
// and returns r. The traversal iterates the graph's packed CSR view, and
// the visit order (hence the BFS tree) is identical to Neighbors-order
// traversal. Callers that run many searches — eccentricity sweeps, root
// selection, diameter computation — reuse one BFSResult to stay off the
// allocator; the previous search's slices are overwritten, so the result
// must not still be referenced elsewhere.
func MultiBFSInto(r *BFSResult, g *Graph, sources []int) *BFSResult {
	n := g.NumNodes()
	r.Dist = ResizeInts(r.Dist, n)
	r.Parent = ResizeInts(r.Parent, n)
	r.ParentEdge = ResizeInts(r.ParentEdge, n)
	if cap(r.Order) < n {
		r.Order = make([]int, 0, n)
	}
	// The Order slice doubles as the BFS queue: nodes are appended when
	// discovered and scanned in append order, which is exactly the
	// nondecreasing-distance order the field promises.
	queue := r.Order[:0]
	for v := 0; v < n; v++ {
		r.Dist[v] = -1
		r.Parent[v] = -1
		r.ParentEdge[v] = -1
	}
	for _, s := range sources {
		if r.Dist[s] == -1 {
			r.Dist[s] = 0
			queue = append(queue, s)
		}
	}
	csr := g.CSR()
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := r.Dist[v] + 1
		for i, end := csr.Offsets[v], csr.Offsets[v+1]; i < end; i++ {
			to := int(csr.To[i])
			if r.Dist[to] == -1 {
				r.Dist[to] = dv
				r.Parent[to] = v
				r.ParentEdge[to] = int(csr.EdgeID[i])
				queue = append(queue, to)
			}
		}
	}
	r.Order = queue
	return r
}

// ResizeInts returns s resliced to length n, reallocating only when the
// capacity is short — the grow-or-reslice helper shared by the
// slice-reusing constructors across packages (BFSResult reuse here,
// partition rebuilds, etc.). New or grown elements are not zeroed.
func ResizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Eccentricity returns the maximum finite BFS distance from v and the
// farthest node attaining it. Unreachable nodes are ignored; an isolated
// node has eccentricity 0 with itself as the farthest node.
func Eccentricity(g *Graph, v int) (ecc, farthest int) {
	return EccentricityInto(new(BFSResult), g, v)
}

// EccentricityInto is Eccentricity reusing r's slices (see MultiBFSInto).
func EccentricityInto(r *BFSResult, g *Graph, v int) (ecc, farthest int) {
	MultiBFSInto(r, g, []int{v})
	ecc, farthest = 0, v
	for u, d := range r.Dist {
		if d > ecc {
			ecc, farthest = d, u
		}
	}
	return ecc, farthest
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph count as connected.
func Connected(g *Graph) bool {
	if g.NumNodes() <= 1 {
		return true
	}
	return len(BFS(g, 0).Order) == g.NumNodes()
}

// Components returns a component label per node (labels are dense, starting
// at 0) and the number of components.
func Components(g *Graph) (label []int, count int) {
	n := g.NumNodes()
	label = make([]int, n)
	for v := range label {
		label[v] = -1
	}
	for v := 0; v < n; v++ {
		if label[v] != -1 {
			continue
		}
		r := BFS(g, v)
		for _, u := range r.Order {
			label[u] = count
		}
		count++
	}
	return label, count
}

// Diameter returns the exact hop diameter of a connected graph by running a
// BFS from every node. It returns ErrDisconnected for disconnected graphs.
// Cost is O(n*m); intended for the moderate instance sizes used in the
// experiments.
func Diameter(g *Graph) (int, error) {
	if !Connected(g) {
		return 0, ErrDisconnected
	}
	diam := 0
	var scratch BFSResult
	for v := 0; v < g.NumNodes(); v++ {
		if ecc, _ := EccentricityInto(&scratch, g, v); ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// DiameterApprox returns lower and upper bounds on the diameter of a
// connected graph using the double-sweep heuristic: lo is the distance found
// by two BFS sweeps, hi is twice the eccentricity of the second sweep's
// source (a valid upper bound since ecc(v) <= diam <= 2*ecc(v)).
func DiameterApprox(g *Graph) (lo, hi int, err error) {
	if !Connected(g) {
		return 0, 0, ErrDisconnected
	}
	if g.NumNodes() <= 1 {
		return 0, 0, nil
	}
	_, far := Eccentricity(g, 0)
	ecc, _ := Eccentricity(g, far)
	return ecc, 2 * ecc, nil
}

// InducedDiameter returns the exact diameter of the subgraph induced by the
// node set nodes, augmented with the extra edges extra (given as node pairs;
// both endpoints must be members of nodes). It returns -1 if the augmented
// subgraph is disconnected or nodes is empty. This is the measurement used
// for shortcut dilation: the diameter of G[P_i] + H_i.
func InducedDiameter(g *Graph, nodes []int, extra [][2]int) int {
	if len(nodes) == 0 {
		return -1
	}
	idx := make(map[int]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, a := range g.Neighbors(v) {
			j, ok := idx[a.To]
			if ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	for _, e := range extra {
		i, iok := idx[e[0]]
		j, jok := idx[e[1]]
		if !iok || !jok {
			return -1
		}
		if i != j {
			sub.AddEdge(i, j)
		}
	}
	d, err := Diameter(sub)
	if err != nil {
		return -1
	}
	return d
}
