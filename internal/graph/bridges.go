package graph

// Bridges returns the IDs of all bridge edges (edges whose removal
// disconnects their component) using an iterative DFS lowlink computation.
// Parallel edges are handled correctly: only the specific edge used to
// enter a node is skipped when computing its lowlink, so a doubled edge is
// never a bridge. Runs in O(n + m); the sequential reference for the
// distributed bridge finder.
func Bridges(g *Graph) []int {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for v := range disc {
		disc[v] = -1
	}
	var bridges []int
	timer := 0

	type frame struct {
		v, parentEdge, arcIdx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{v: start, parentEdge: -1}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.Neighbors(f.v)
			if f.arcIdx < len(adj) {
				a := adj[f.arcIdx]
				f.arcIdx++
				if a.Edge == f.parentEdge {
					continue
				}
				if disc[a.To] == -1 {
					disc[a.To] = timer
					low[a.To] = timer
					timer++
					stack = append(stack, frame{v: a.To, parentEdge: a.Edge})
					continue
				}
				if disc[a.To] < low[f.v] {
					low[f.v] = disc[a.To]
				}
				continue
			}
			// Post-order: fold into the parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.v] < low[p.v] {
				low[p.v] = low[f.v]
			}
			if low[f.v] > disc[p.v] {
				bridges = append(bridges, f.parentEdge)
			}
		}
	}
	return bridges
}
