package graph

// DSU is a disjoint-set union (union-find) structure with path halving and
// union by size.
type DSU struct {
	parent []int
	size   []int
	sets   int
}

// NewDSU returns a DSU over n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), size: make([]int, n), sets: n}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether they were distinct.
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// SizeOf returns the size of the set containing x.
func (d *DSU) SizeOf(x int) int { return d.size[d.Find(x)] }
