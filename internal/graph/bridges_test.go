package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBridgesKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int // number of bridges
	}{
		{name: "path", g: Path(6), want: 5},
		{name: "cycle", g: Cycle(6), want: 0},
		{name: "star", g: Star(5), want: 4},
		{name: "grid", g: Grid(4, 4), want: 0},
		{name: "wheel", g: Wheel(8), want: 0},
		{name: "caterpillar", g: Caterpillar(3, 2), want: 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := len(Bridges(tt.g)); got != tt.want {
				t.Errorf("bridges = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBridgesTwoCliques(t *testing.T) {
	g := New(8)
	for base := 0; base < 8; base += 4 {
		for u := base; u < base+4; u++ {
			for v := u + 1; v < base+4; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	bridge := g.AddEdge(1, 5)
	got := Bridges(g)
	if len(got) != 1 || got[0] != bridge {
		t.Errorf("bridges = %v, want [%d]", got, bridge)
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	// A doubled edge is never a bridge.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	single := g.AddEdge(1, 2)
	got := Bridges(g)
	if len(got) != 1 || got[0] != single {
		t.Errorf("bridges = %v, want [%d]", got, single)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if got := len(Bridges(g)); got != 3 {
		t.Errorf("bridges = %d, want 3 (per component)", got)
	}
}

// bridgesBrute removes each edge and checks connectivity of its component.
func bridgesBrute(g *Graph) []int {
	label, _ := Components(g)
	var out []int
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		// Rebuild without edge id.
		h := New(g.NumNodes())
		for j := 0; j < g.NumEdges(); j++ {
			if j == id {
				continue
			}
			ej := g.Edge(j)
			h.AddEdge(ej.U, ej.V)
		}
		l2, _ := Components(h)
		// Bridge iff endpoints split into different components.
		if label[e.U] == label[e.V] && l2[e.U] != l2[e.V] {
			out = append(out, id)
		}
	}
	return out
}

// Property: lowlink bridges equal brute-force bridges on random graphs.
func TestBridgesQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%20
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(n)
		if m > maxM {
			m = maxM
		}
		g := RandomConnected(n, m, rng)
		got := Bridges(g)
		want := bridgesBrute(g)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
