package graph

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Edge is an undirected edge between nodes U and V with weight W.
// Generators create edges with weight 1 unless stated otherwise.
type Edge struct {
	U, V int
	W    float64
}

// Arc is one direction of an edge as seen from a node's adjacency list.
type Arc struct {
	To   int // neighbor node
	Edge int // edge ID shared by both directions
}

// Graph is an undirected multigraph with stable edge IDs.
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc
	// csr memoizes the packed adjacency view; see (*Graph).CSR. It is
	// invalidated whenever an edge is added.
	csr atomic.Pointer[CSR]
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeSlice returns the graph's edge list without copying. The returned
// slice is owned by the graph and must not be modified; it stays valid
// until the next AddEdge/AddWeightedEdge. Hot loops should prefer this
// over Edges, which copies on every call.
func (g *Graph) EdgeSlice() []Edge { return g.edges }

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) []Arc { return g.adj[v] }

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// AddEdge adds an undirected unit-weight edge {u, v} and returns its edge ID.
// Self-loops are rejected; parallel edges are permitted.
func (g *Graph) AddEdge(u, v int) int { return g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge adds an undirected edge {u, v} with weight w and returns
// its edge ID.
func (g *Graph) AddWeightedEdge(u, v int, w float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	g.csr.Store(nil) // topology changed: drop the memoized CSR view
	return id
}

// SetWeight updates the weight of edge id.
func (g *Graph) SetWeight(id int, w float64) { g.edges[id].W = w }

// Other returns the endpoint of edge id that is not v.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	if e.V == v {
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", v, id))
}

// HasEdge reports whether some edge connects u and v.
func (g *Graph) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// Reset reinitializes g to an empty graph with n nodes, reusing the edge
// and adjacency backing arrays — the slice-reuse constructor for loops
// that build many short-lived graphs (e.g. per-part augmented subgraphs
// during quality measurement). Any previously memoized CSR view is
// dropped.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g.n = n
	g.edges = g.edges[:0]
	if cap(g.adj) < n {
		g.adj = make([][]Arc, n)
	} else {
		g.adj = g.adj[:n]
		for i := range g.adj {
			g.adj[i] = g.adj[i][:0]
		}
	}
	g.csr.Store(nil)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = make([]Arc, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	return c
}

// ErrDisconnected is returned by operations that require a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// Validate checks internal consistency (adjacency matches the edge list) and
// returns an error describing the first inconsistency found.
func (g *Graph) Validate() error {
	deg := make([]int, g.n)
	for id, e := range g.edges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("graph: edge %d endpoints {%d,%d} out of range", id, e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", id, e.U)
		}
		deg[e.U]++
		deg[e.V]++
	}
	for v := range g.adj {
		if len(g.adj[v]) != deg[v] {
			return fmt.Errorf("graph: node %d adjacency length %d, want %d", v, len(g.adj[v]), deg[v])
		}
		for _, a := range g.adj[v] {
			if a.Edge < 0 || a.Edge >= len(g.edges) {
				return fmt.Errorf("graph: node %d references unknown edge %d", v, a.Edge)
			}
			e := g.edges[a.Edge]
			if (e.U != v || e.V != a.To) && (e.V != v || e.U != a.To) {
				return fmt.Errorf("graph: node %d arc to %d disagrees with edge %d = {%d,%d}",
					v, a.To, a.Edge, e.U, e.V)
			}
		}
	}
	return nil
}
