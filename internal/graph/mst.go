package graph

import "sort"

// Kruskal computes a minimum spanning forest of g and returns the chosen
// edge IDs (in increasing weight order) and their total weight. Ties are
// broken by edge ID, so the result is deterministic; with distinct weights
// the MST is unique and this is the reference result used to validate the
// distributed algorithm.
func Kruskal(g *Graph) (edgeIDs []int, total float64) {
	ids := make([]int, g.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.Edge(ids[a]), g.Edge(ids[b])
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ids[a] < ids[b]
	})
	dsu := NewDSU(g.NumNodes())
	for _, id := range ids {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			edgeIDs = append(edgeIDs, id)
			total += e.W
		}
	}
	return edgeIDs, total
}

// SpanningTree returns the edge IDs of an arbitrary spanning tree (BFS tree
// from node 0). It returns ErrDisconnected if g is not connected.
func SpanningTree(g *Graph) ([]int, error) {
	if g.NumNodes() == 0 {
		return nil, nil
	}
	r := BFS(g, 0)
	if len(r.Order) != g.NumNodes() {
		return nil, ErrDisconnected
	}
	var ids []int
	for v := 0; v < g.NumNodes(); v++ {
		if r.ParentEdge[v] >= 0 {
			ids = append(ids, r.ParentEdge[v])
		}
	}
	return ids, nil
}
