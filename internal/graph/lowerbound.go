package graph

import "fmt"

// LowerBoundGraph is the Lemma 3.2 / Figure 3.2 topology of the paper: the
// instance witnessing that shortcut quality Omega(delta*D) is necessary.
//
// With delta = DeltaPrime-2, K = floor(DiamPrime/(2*delta)) and D = K*delta,
// it consists of one "top" path of length (delta-1)*K and (delta-1)*D+1
// "row" paths of length (delta-1)*D each. Every D-th column hosts a vertical
// path through all rows, and on each such column every D-th row node
// connects to a dedicated top-path node.
//
// The rows are the parts of the hard part-wise aggregation instance: the
// only way to shorten a row is through the short top path, but the top path
// has too few edges to serve all rows with low congestion, forcing every
// shortcut to quality at least (DeltaPrime-3)*DiamPrime/6.
//
// Note on the diameter: the paper states the diameter is at most 1.5D+1, but
// its argument bounds the eccentricity of the middle top-path node, so the
// construction only guarantees diameter <= 3D+2 = Theta(DiamPrime); the
// measured diameter is about 2.5D. This does not affect the lower bound.
type LowerBoundGraph struct {
	G *Graph

	// Requested parameters (delta' and D' in the paper).
	DeltaPrime int
	DiamPrime  int

	// Derived parameters: Delta = DeltaPrime-2, K = floor(DiamPrime/(2*Delta)),
	// D = K*Delta.
	Delta int
	K     int
	D     int

	// TopPath holds the node IDs p_1..p_{(Delta-1)K+1} in path order.
	TopPath []int
	// Rows holds the node IDs of each row path in path order; the rows are
	// the parts of the lower-bound instance.
	Rows [][]int

	// QualityLowerBound is (DeltaPrime-3)*DiamPrime/6: by Lemma 3.2, every
	// (partial) shortcut for the rows has congestion or dilation at least
	// this value.
	QualityLowerBound float64
}

// LowerBound constructs the Lemma 3.2 topology for the given delta' and D'.
// It requires deltaPrime >= 5 and diamPrime >= 4*(deltaPrime-2), which
// guarantees K >= 2 as the proof assumes.
func LowerBound(deltaPrime, diamPrime int) (*LowerBoundGraph, error) {
	if deltaPrime < 5 {
		return nil, fmt.Errorf("graph: lower bound needs deltaPrime >= 5, got %d", deltaPrime)
	}
	delta := deltaPrime - 2
	if diamPrime < 4*delta {
		return nil, fmt.Errorf("graph: lower bound needs diamPrime >= 4*(deltaPrime-2) = %d, got %d",
			4*delta, diamPrime)
	}
	k := diamPrime / (2 * delta)
	bigD := k * delta

	topLen := (delta-1)*k + 1    // number of p-nodes
	rowLen := (delta-1)*bigD + 1 // nodes per row == number of rows
	numRows := rowLen

	lb := &LowerBoundGraph{
		DeltaPrime:        deltaPrime,
		DiamPrime:         diamPrime,
		Delta:             delta,
		K:                 k,
		D:                 bigD,
		QualityLowerBound: float64(deltaPrime-3) * float64(diamPrime) / 6,
	}
	g := New(topLen + numRows*rowLen)
	lb.G = g

	top := func(i int) int { return i - 1 }                              // p_i, i in [1, topLen]
	row := func(i, j int) int { return topLen + (i-1)*rowLen + (j - 1) } // v_{i,j}, 1-based

	lb.TopPath = make([]int, topLen)
	for i := 1; i <= topLen; i++ {
		lb.TopPath[i-1] = top(i)
		if i < topLen {
			g.AddEdge(top(i), top(i+1))
		}
	}
	lb.Rows = make([][]int, numRows)
	for i := 1; i <= numRows; i++ {
		r := make([]int, rowLen)
		for j := 1; j <= rowLen; j++ {
			r[j-1] = row(i, j)
			if j < rowLen {
				g.AddEdge(row(i, j), row(i, j+1))
			}
		}
		lb.Rows[i-1] = r
	}
	// Vertical column paths at every D-th column, and connectors from every
	// D-th row on those columns to the matching top-path node.
	for j := 1; j <= delta; j++ {
		col := (j-1)*bigD + 1
		for i := 1; i < numRows; i++ {
			g.AddEdge(row(i, col), row(i+1, col))
		}
		p := top((j-1)*k + 1)
		for jp := 1; jp <= delta; jp++ {
			g.AddEdge(row((jp-1)*bigD+1, col), p)
		}
	}
	return lb, nil
}

// MinorDensityUpperBound returns the Lemma 3.2 upper bound on the minor
// density of the topology: every minor has density strictly below
// DeltaPrime.
func (lb *LowerBoundGraph) MinorDensityUpperBound() float64 {
	return float64(lb.DeltaPrime)
}
