package graph

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row view of the adjacency structure: all arcs
// packed into two parallel int32 slices with per-node offsets, so traversal
// code (BFS, subtree sweeps, measurement) iterates contiguous memory
// instead of chasing the per-node slice headers of [][]Arc. The arc order
// within a node matches the adjacency-list insertion order, so CSR-driven
// traversals visit neighbors in exactly the order Neighbors would — BFS
// trees and everything derived from them are unchanged.
//
// A CSR is immutable once built. It is built lazily by (*Graph).CSR and
// memoized on the graph; adding an edge invalidates the memo.
type CSR struct {
	// Offsets has length NumNodes+1; node v's arcs occupy the index range
	// [Offsets[v], Offsets[v+1]) of To and EdgeID.
	Offsets []int32
	// To[i] is the neighbor node of arc i.
	To []int32
	// EdgeID[i] is the graph edge ID of arc i.
	EdgeID []int32
}

// Degree returns the number of arcs of v.
func (c *CSR) Degree(v int) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// CSR returns the memoized compressed-sparse-row view of the graph,
// building it on first use (O(n+m)). The returned view is shared and must
// be treated as read-only; it stays valid until the next AddEdge /
// AddWeightedEdge, which invalidates the memo. Like the graph itself, CSR
// must not be raced with concurrent mutation, but concurrent readers of a
// quiescent graph may all call it safely.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	n := g.NumNodes()
	arcs := 2 * len(g.edges)
	if int64(n) >= math.MaxInt32 || int64(arcs) >= math.MaxInt32 {
		panic(fmt.Sprintf("graph: CSR limited to int32 indices (n=%d, arcs=%d)", n, arcs))
	}
	c := &CSR{
		Offsets: make([]int32, n+1),
		To:      make([]int32, arcs),
		EdgeID:  make([]int32, arcs),
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		c.Offsets[v] = off
		for _, a := range g.adj[v] {
			c.To[off] = int32(a.To)
			c.EdgeID[off] = int32(a.Edge)
			off++
		}
	}
	c.Offsets[n] = off
	return c
}
