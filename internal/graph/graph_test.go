package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if got := g.NumNodes(); got != 5 {
		t.Errorf("NumNodes() = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Errorf("NumEdges() = %d, want 0", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1)
	if id != 0 {
		t.Errorf("first edge ID = %d, want 0", id)
	}
	id = g.AddWeightedEdge(1, 2, 2.5)
	if id != 1 {
		t.Errorf("second edge ID = %d, want 1", id)
	}
	if e := g.Edge(1); e.W != 2.5 {
		t.Errorf("Edge(1).W = %v, want 2.5", e.W)
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 1) || g.HasEdge(0, 2) {
		t.Error("HasEdge disagrees with the added edges")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self loop", u: 1, v: 1},
		{name: "negative", u: -1, v: 0},
		{name: "out of range", u: 0, v: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", tt.u, tt.v)
				}
			}()
			New(3).AddEdge(tt.u, tt.v)
		})
	}
}

func TestOther(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 2)
	if got := g.Other(id, 0); got != 2 {
		t.Errorf("Other(id, 0) = %d, want 2", got)
	}
	if got := g.Other(id, 2); got != 0 {
		t.Errorf("Other(id, 2) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint did not panic")
		}
	}()
	g.Other(id, 1)
}

func TestClone(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.NumEdges() == c.NumEdges() {
		t.Error("modifying clone affected original edge count")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original Validate() = %v after clone edit", err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone Validate() = %v", err)
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	r := BFS(g, 0)
	for v := 0; v < 6; v++ {
		if r.Dist[v] != v {
			t.Errorf("Dist[%d] = %d, want %d", v, r.Dist[v], v)
		}
	}
	if r.Parent[0] != -1 {
		t.Errorf("Parent[source] = %d, want -1", r.Parent[0])
	}
	for v := 1; v < 6; v++ {
		if r.Parent[v] != v-1 {
			t.Errorf("Parent[%d] = %d, want %d", v, r.Parent[v], v-1)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	r := BFS(g, 0)
	if r.Dist[2] != -1 || r.Dist[3] != -1 {
		t.Errorf("unreachable distances = %d, %d, want -1, -1", r.Dist[2], r.Dist[3])
	}
	if len(r.Order) != 2 {
		t.Errorf("len(Order) = %d, want 2", len(r.Order))
	}
}

func TestMultiBFS(t *testing.T) {
	g := Path(7)
	r := MultiBFS(g, []int{0, 6})
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for v, d := range want {
		if r.Dist[v] != d {
			t.Errorf("Dist[%d] = %d, want %d", v, r.Dist[v], d)
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	if !Connected(New(0)) || !Connected(New(1)) {
		t.Error("trivial graphs should be connected")
	}
	if !Connected(Cycle(4)) {
		t.Error("cycle should be connected")
	}
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if Connected(g) {
		t.Error("disconnected graph reported connected")
	}
	label, count := Components(g)
	if count != 3 {
		t.Errorf("Components count = %d, want 3", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] {
		t.Errorf("component labels %v inconsistent", label)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "single node", g: New(1), want: 0},
		{name: "path 10", g: Path(10), want: 9},
		{name: "cycle 10", g: Cycle(10), want: 5},
		{name: "complete 6", g: Complete(6), want: 1},
		{name: "grid 4x7", g: Grid(4, 7), want: 9},
		{name: "wheel 10", g: Wheel(10), want: 2},
		{name: "star 8", g: Star(8), want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Diameter(tt.g)
			if err != nil {
				t.Fatalf("Diameter() error = %v", err)
			}
			if got != tt.want {
				t.Errorf("Diameter() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(2)
	if _, err := Diameter(g); err != ErrDisconnected {
		t.Errorf("Diameter() error = %v, want ErrDisconnected", err)
	}
}

func TestDiameterApproxBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		m := n - 1 + rng.Intn(n)
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		g := RandomConnected(n, m, rng)
		exact, err := Diameter(g)
		if err != nil {
			t.Fatalf("Diameter() error = %v", err)
		}
		lo, hi, err := DiameterApprox(g)
		if err != nil {
			t.Fatalf("DiameterApprox() error = %v", err)
		}
		if lo > exact || hi < exact {
			t.Errorf("n=%d m=%d: approx bounds [%d,%d] exclude exact %d", n, m, lo, hi, exact)
		}
	}
}

func TestInducedDiameter(t *testing.T) {
	// Wheel rim without the center: induced diameter of the rim path is
	// large; adding shortcut edges through shared rim chords shrinks it.
	g := Wheel(10)
	rim := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := InducedDiameter(g, rim, nil); got != 4 {
		t.Errorf("rim induced diameter = %d, want 4 (cycle of 9)", got)
	}
	// Nodes {1,3} are non-adjacent on the rim: disconnected without extras.
	if got := InducedDiameter(g, []int{1, 3}, nil); got != -1 {
		t.Errorf("disconnected induced diameter = %d, want -1", got)
	}
	if got := InducedDiameter(g, []int{1, 3}, [][2]int{{1, 3}}); got != 1 {
		t.Errorf("induced diameter with extra edge = %d, want 1", got)
	}
	if got := InducedDiameter(g, nil, nil); got != -1 {
		t.Errorf("empty node set diameter = %d, want -1", got)
	}
	// Extra edge with an endpoint outside the node set is invalid.
	if got := InducedDiameter(g, []int{1, 2}, [][2]int{{1, 5}}); got != -1 {
		t.Errorf("foreign extra edge diameter = %d, want -1", got)
	}
}

func TestDSU(t *testing.T) {
	d := NewDSU(6)
	if d.Sets() != 6 {
		t.Fatalf("Sets() = %d, want 6", d.Sets())
	}
	if !d.Union(0, 1) || !d.Union(2, 3) || !d.Union(0, 3) {
		t.Fatal("fresh unions should report true")
	}
	if d.Union(1, 2) {
		t.Error("redundant union reported true")
	}
	if !d.Same(0, 2) || d.Same(0, 4) {
		t.Error("Same() disagrees with unions")
	}
	if d.Sets() != 3 {
		t.Errorf("Sets() = %d, want 3", d.Sets())
	}
	if d.SizeOf(3) != 4 {
		t.Errorf("SizeOf(3) = %d, want 4", d.SizeOf(3))
	}
}

func TestKruskalPath(t *testing.T) {
	g := Path(5)
	ids, total := Kruskal(g)
	if len(ids) != 4 || total != 4 {
		t.Errorf("Kruskal on path: %d edges weight %v, want 4 edges weight 4", len(ids), total)
	}
}

func TestKruskalKnown(t *testing.T) {
	// Square with diagonal: 0-1 (1), 1-2 (2), 2-3 (1), 3-0 (5), 0-2 (1.5).
	g := New(4)
	g.AddWeightedEdge(0, 1, 1)
	g.AddWeightedEdge(1, 2, 2)
	g.AddWeightedEdge(2, 3, 1)
	g.AddWeightedEdge(3, 0, 5)
	g.AddWeightedEdge(0, 2, 1.5)
	_, total := Kruskal(g)
	if total != 3.5 {
		t.Errorf("Kruskal total = %v, want 3.5", total)
	}
}

func TestKruskalForest(t *testing.T) {
	g := New(4)
	g.AddWeightedEdge(0, 1, 1)
	g.AddWeightedEdge(2, 3, 2)
	ids, total := Kruskal(g)
	if len(ids) != 2 || total != 3 {
		t.Errorf("Kruskal forest: %d edges weight %v, want 2 edges weight 3", len(ids), total)
	}
}

func TestSpanningTree(t *testing.T) {
	g := Grid(5, 5)
	ids, err := SpanningTree(g)
	if err != nil {
		t.Fatalf("SpanningTree() error = %v", err)
	}
	if len(ids) != 24 {
		t.Errorf("spanning tree has %d edges, want 24", len(ids))
	}
	d := NewDSU(25)
	for _, id := range ids {
		e := g.Edge(id)
		if !d.Union(e.U, e.V) {
			t.Errorf("spanning tree edge %d creates a cycle", id)
		}
	}
	if d.Sets() != 1 {
		t.Errorf("spanning tree leaves %d components, want 1", d.Sets())
	}

	dis := New(3)
	if _, err := SpanningTree(dis); err != ErrDisconnected {
		t.Errorf("SpanningTree on disconnected = %v, want ErrDisconnected", err)
	}
}

func TestStoerWagnerKnownCuts(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want float64
	}{
		{name: "path", g: Path(6), want: 1},
		{name: "cycle", g: Cycle(8), want: 2},
		{name: "complete 5", g: Complete(5), want: 4},
		{name: "grid 3x5", g: Grid(3, 5), want: 2},
		{name: "torus 4x4", g: Torus(4, 4), want: 4},
		{name: "wheel 8", g: Wheel(8), want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := StoerWagner(tt.g)
			if err != nil {
				t.Fatalf("StoerWagner() error = %v", err)
			}
			if got != tt.want {
				t.Errorf("StoerWagner() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStoerWagnerWeighted(t *testing.T) {
	// Two triangles joined by a single light edge.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		g.AddWeightedEdge(e[0], e[1], 10)
	}
	g.AddWeightedEdge(2, 3, 0.5)
	got, err := StoerWagner(g)
	if err != nil {
		t.Fatalf("StoerWagner() error = %v", err)
	}
	if got != 0.5 {
		t.Errorf("StoerWagner() = %v, want 0.5", got)
	}
}

func TestStoerWagnerErrors(t *testing.T) {
	if got, err := StoerWagner(New(1)); err != nil || got != 0 {
		t.Errorf("StoerWagner(single) = %v, %v; want 0, nil", got, err)
	}
	g := New(3)
	g.AddEdge(0, 1)
	if _, err := StoerWagner(g); err != ErrDisconnected {
		t.Errorf("StoerWagner(disconnected) error = %v, want ErrDisconnected", err)
	}
}

func TestStoerWagnerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(maxM-(n-1)+1)
		g := RandomConnected(n, m, rng)
		got, err := StoerWagner(g)
		if err != nil {
			t.Fatalf("StoerWagner() error = %v", err)
		}
		best := bruteForceMinCut(g)
		if got != best {
			t.Errorf("n=%d m=%d: StoerWagner = %v, brute force = %v", n, m, got, best)
		}
	}
}

func bruteForceMinCut(g *Graph) float64 {
	n := g.NumNodes()
	best := -1.0
	side := make([]bool, n)
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		for v := 0; v < n; v++ {
			side[v] = mask&(1<<uint(v)) != 0
		}
		if w := CutWeight(g, side); best < 0 || w < best {
			best = w
		}
	}
	return best
}

func TestCutWeight(t *testing.T) {
	g := Cycle(4)
	side := []bool{true, true, false, false}
	if got := CutWeight(g, side); got != 2 {
		t.Errorf("CutWeight = %v, want 2", got)
	}
}

// Property: BFS distances satisfy the edge relaxation inequality
// |dist(u) - dist(v)| <= 1 for every edge {u,v} in a connected graph.
func TestBFSDistancesAreMetricQuick(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%60
		maxM := n * (n - 1) / 2
		m := n - 1 + int(extraRaw)%n
		if m > maxM {
			m = maxM
		}
		g := RandomConnected(n, m, rng)
		r := BFS(g, rng.Intn(n))
		for _, e := range g.Edges() {
			du, dv := r.Dist[e.U], r.Dist[e.V]
			if du < 0 || dv < 0 {
				return false
			}
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RandomConnected produces a connected simple graph with the
// requested node and edge counts.
func TestRandomConnectedQuick(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		maxM := n * (n - 1) / 2
		m := n - 1 + int(extraRaw)%(n+1)
		if m > maxM {
			m = maxM
		}
		g := RandomConnected(n, m, rng)
		if g.NumNodes() != n || g.NumEdges() != m {
			return false
		}
		if !Connected(g) {
			return false
		}
		seen := make(map[[2]int]bool)
		for _, e := range g.Edges() {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				return false
			}
			seen[[2]int{u, v}] = true
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
