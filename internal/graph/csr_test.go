package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(40, 90, rng)
	c := g.CSR()
	if got, want := len(c.Offsets), g.NumNodes()+1; got != want {
		t.Fatalf("len(Offsets) = %d, want %d", got, want)
	}
	if got, want := len(c.To), 2*g.NumEdges(); got != want {
		t.Fatalf("len(To) = %d, want %d", got, want)
	}
	for v := 0; v < g.NumNodes(); v++ {
		adj := g.Neighbors(v)
		if c.Degree(v) != len(adj) {
			t.Fatalf("node %d: CSR degree %d, adjacency %d", v, c.Degree(v), len(adj))
		}
		for i, a := range adj {
			j := int(c.Offsets[v]) + i
			if int(c.To[j]) != a.To || int(c.EdgeID[j]) != a.Edge {
				t.Fatalf("node %d arc %d: CSR (%d,%d), adjacency (%d,%d)",
					v, i, c.To[j], c.EdgeID[j], a.To, a.Edge)
			}
		}
	}
}

func TestCSRMemoizedAndInvalidated(t *testing.T) {
	g := Grid(4, 4)
	c1 := g.CSR()
	if c2 := g.CSR(); c1 != c2 {
		t.Error("CSR not memoized across calls")
	}
	g.AddEdge(0, 15)
	c3 := g.CSR()
	if c3 == c1 {
		t.Error("CSR not invalidated by AddEdge")
	}
	if got, want := len(c3.To), 2*g.NumEdges(); got != want {
		t.Errorf("rebuilt CSR has %d arcs, want %d", got, want)
	}
}

func TestMultiBFSIntoMatchesMultiBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var scratch BFSResult
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		g := RandomConnected(n, n-1+rng.Intn(n), rng)
		src := []int{rng.Intn(n)}
		if trial%3 == 0 {
			src = append(src, rng.Intn(n))
		}
		fresh := MultiBFS(g, src)
		reused := MultiBFSInto(&scratch, g, src)
		if !reflect.DeepEqual(fresh.Dist, reused.Dist) ||
			!reflect.DeepEqual(fresh.Parent, reused.Parent) ||
			!reflect.DeepEqual(fresh.ParentEdge, reused.ParentEdge) ||
			!reflect.DeepEqual(fresh.Order, reused.Order) {
			t.Fatalf("trial %d: reused BFS differs from fresh BFS", trial)
		}
	}
}

func TestEdgeSliceAliasesEdges(t *testing.T) {
	g := Grid(3, 3)
	es := g.EdgeSlice()
	if len(es) != g.NumEdges() {
		t.Fatalf("EdgeSlice length %d, want %d", len(es), g.NumEdges())
	}
	if !reflect.DeepEqual(es, g.Edges()) {
		t.Error("EdgeSlice content differs from Edges copy")
	}
}
