// Package graph provides the undirected-graph substrate used throughout the
// repository: a compact adjacency representation with stable edge IDs,
// breadth-first search, diameter computation, disjoint-set union, Kruskal
// minimum spanning trees, Stoer-Wagner minimum cuts, and generators for every
// graph family evaluated in the paper, including the Lemma 3.2 lower-bound
// topology.
//
// Node IDs are dense integers in [0, NumNodes). Edge IDs are dense integers
// in [0, NumEdges) and are stable across the lifetime of the graph; they are
// the unit of congestion accounting for shortcuts.
//
// # Paper mapping
//
// The package implements no theorem by itself; it is the substrate the
// theorems are stated over. Specific pieces tied to the paper: the
// LowerBound generator realizes the Lemma 3.2 / Figure 3.2 hard instance,
// Kruskal and StoerWagner are the sequential references that validate the
// Corollary 1.6 / 1.7 distributed algorithms, and AppendCanonical defines
// the canonical byte encoding that internal/service fingerprints and
// internal/store persists.
//
// # Role in the DAG
//
// Root of the internal package DAG: every other internal package depends on
// graph and graph depends on nothing. Hot-path machinery (the memoized CSR
// packed-adjacency view, MultiBFSInto and Reset slice-reuse constructors)
// lives here so that the layers above can stay allocation-free; see
// DESIGN.md §5.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package graph
