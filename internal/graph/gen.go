package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n nodes: 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Wheel returns the wheel graph: center node 0 plus a rim cycle on nodes
// 1..n-1, every rim node connected to the center. This is the paper's
// Section 2 example of a diameter-2 graph with a part (the rim) of induced
// diameter Theta(n).
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: wheel needs n >= 4, got %d", n))
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		g.AddEdge(v, next)
	}
	return g
}

// GridIndex converts (row, col) coordinates to the node ID used by Grid and
// Torus with the given number of columns.
func GridIndex(row, col, cols int) int { return row*cols + col }

// Grid returns the rows x cols grid graph (planar, minor density < 3).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := GridIndex(r, c, cols)
			if c+1 < cols {
				g.AddEdge(v, GridIndex(r, c+1, cols))
			}
			if r+1 < rows {
				g.AddEdge(v, GridIndex(r+1, c, cols))
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus grid (genus 1): a grid with wraparound
// edges in both dimensions. Requires rows, cols >= 3 so that wraparound does
// not create parallel edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols))
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := GridIndex(r, c, cols)
			g.AddEdge(v, GridIndex(r, (c+1)%cols, cols))
			g.AddEdge(v, GridIndex((r+1)%rows, c, cols))
		}
	}
	return g
}

// TorusChain returns the connected sum of count tori: count disjoint
// side x side torus grids joined in a path by single bridge edges. Its
// (orientable) genus is at most count — bridges do not raise genus — so it
// is a graph family with genus parameter g = count for the Corollary 1.4
// sweep, with delta(G) = O(sqrt(count)) by Lemma 3.3.
func TorusChain(count, side int) *Graph {
	if count < 1 || side < 3 {
		panic(fmt.Sprintf("graph: torus chain needs count >= 1 and side >= 3, got %d, %d", count, side))
	}
	single := side * side
	g := New(count * single)
	for t := 0; t < count; t++ {
		base := t * single
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				v := base + GridIndex(r, c, side)
				g.AddEdge(v, base+GridIndex(r, (c+1)%side, side))
				g.AddEdge(v, base+GridIndex((r+1)%side, c, side))
			}
		}
		if t > 0 {
			// Bridge from the previous torus's last node to this one's first.
			g.AddEdge(base-1, base)
		}
	}
	return g
}

// KTree returns a random k-tree on n nodes: the maximal graphs of treewidth
// k, so the minor density is at most k (Lemma 3.3). Construction starts from
// K_{k+1}; every further node is attached to all members of a uniformly
// random existing k-clique. Requires n >= k+1.
func KTree(n, k int, rng *rand.Rand) *Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("graph: k-tree needs n >= k+1 >= 2, got n=%d k=%d", n, k))
	}
	g := New(n)
	// Seed clique K_{k+1}.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			g.AddEdge(u, v)
		}
	}
	cliques := [][]int{}
	seed := make([]int, k+1)
	for i := range seed {
		seed[i] = i
	}
	for skip := 0; skip <= k; skip++ {
		c := make([]int, 0, k)
		for i, v := range seed {
			if i != skip {
				c = append(c, v)
			}
		}
		cliques = append(cliques, c)
	}
	for v := k + 1; v < n; v++ {
		base := cliques[rng.Intn(len(cliques))]
		for _, u := range base {
			g.AddEdge(v, u)
		}
		for skip := 0; skip < k; skip++ {
			c := make([]int, 0, k)
			c = append(c, v)
			for i, u := range base {
				if i != skip {
					c = append(c, u)
				}
			}
			cliques = append(cliques, c)
		}
	}
	return g
}

// RandomConnected returns a random connected graph with n nodes and m >= n-1
// edges: a uniform random recursive spanning tree plus m-(n-1) additional
// random non-parallel edges. Panics if m exceeds the simple-graph maximum.
func RandomConnected(n, m int, rng *rand.Rand) *Graph {
	if n < 1 || m < n-1 || m > n*(n-1)/2 {
		panic(fmt.Sprintf("graph: invalid random graph parameters n=%d m=%d", n, m))
	}
	g := New(n)
	have := make(map[[2]int]bool, m)
	addIfNew := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if u == v || have[key] {
			return false
		}
		have[key] = true
		g.AddEdge(u, v)
		return true
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addIfNew(perm[i], perm[rng.Intn(i)])
	}
	for g.NumEdges() < m {
		addIfNew(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// Caterpillar returns a path of length spineLen with legs leaves attached to
// every spine node; a tree family with long induced paths, used as a
// degenerate-partition stress test.
func Caterpillar(spineLen, legs int) *Graph {
	n := spineLen * (legs + 1)
	g := New(n)
	for s := 0; s < spineLen; s++ {
		v := s * (legs + 1)
		if s+1 < spineLen {
			g.AddEdge(v, (s+1)*(legs+1))
		}
		for l := 1; l <= legs; l++ {
			g.AddEdge(v, v+l)
		}
	}
	return g
}

// RandomizeWeights assigns independent uniform weights in (0, 1) to every
// edge. Distinct with probability 1, making the MST unique for testing.
func RandomizeWeights(g *Graph, rng *rand.Rand) {
	for id := range g.edges {
		g.edges[id].W = rng.Float64()
	}
}
