package graph

import (
	"math/rand"
	"testing"
)

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name      string
		g         *Graph
		wantNodes int
		wantEdges int
	}{
		{name: "path 1", g: Path(1), wantNodes: 1, wantEdges: 0},
		{name: "path 5", g: Path(5), wantNodes: 5, wantEdges: 4},
		{name: "cycle 5", g: Cycle(5), wantNodes: 5, wantEdges: 5},
		{name: "complete 5", g: Complete(5), wantNodes: 5, wantEdges: 10},
		{name: "star 5", g: Star(5), wantNodes: 5, wantEdges: 4},
		{name: "wheel 7", g: Wheel(7), wantNodes: 7, wantEdges: 12},
		{name: "grid 3x4", g: Grid(3, 4), wantNodes: 12, wantEdges: 17},
		{name: "torus 3x4", g: Torus(3, 4), wantNodes: 12, wantEdges: 24},
		{name: "ktree 10/2", g: KTree(10, 2, rng), wantNodes: 10, wantEdges: 3 + 7*2},
		{name: "ktree 12/4", g: KTree(12, 4, rng), wantNodes: 12, wantEdges: 10 + 7*4},
		{name: "caterpillar", g: Caterpillar(4, 3), wantNodes: 16, wantEdges: 15},
		{name: "torus chain 1", g: TorusChain(1, 4), wantNodes: 16, wantEdges: 32},
		{name: "torus chain 3", g: TorusChain(3, 4), wantNodes: 48, wantEdges: 98},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.NumNodes(); got != tt.wantNodes {
				t.Errorf("NumNodes() = %d, want %d", got, tt.wantNodes)
			}
			if got := tt.g.NumEdges(); got != tt.wantEdges {
				t.Errorf("NumEdges() = %d, want %d", got, tt.wantEdges)
			}
			if err := tt.g.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
			if !Connected(tt.g) {
				t.Error("generated graph is disconnected")
			}
		})
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	const rows, cols = 3, 7
	seen := make(map[int]bool)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := GridIndex(r, c, cols)
			if id < 0 || id >= rows*cols || seen[id] {
				t.Fatalf("GridIndex(%d,%d) = %d invalid or duplicate", r, c, id)
			}
			seen[id] = true
		}
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("torus Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestKTreeIsKTree(t *testing.T) {
	// Every k-tree on n nodes has exactly C(k+1,2) + (n-k-1)*k edges and
	// every node added after the seed has degree >= k.
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 5} {
		n := 4 * (k + 2)
		g := KTree(n, k, rng)
		wantEdges := k*(k+1)/2 + (n-k-1)*k
		if g.NumEdges() != wantEdges {
			t.Errorf("k=%d: edges = %d, want %d", k, g.NumEdges(), wantEdges)
		}
		for v := k + 1; v < n; v++ {
			if g.Degree(v) < k {
				t.Errorf("k=%d: node %d degree %d < k", k, v, g.Degree(v))
			}
		}
	}
}

func TestKTreeAttachmentsAreCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := KTree(20, 3, rng)
	// In the generation order, node v > k attaches to a set of 3 mutually
	// adjacent earlier nodes. Verify mutual adjacency of each node's earlier
	// neighbors restricted to its first k attachments.
	for v := 4; v < 20; v++ {
		var earlier []int
		for _, a := range g.Neighbors(v) {
			if a.To < v {
				earlier = append(earlier, a.To)
			}
		}
		if len(earlier) < 3 {
			t.Fatalf("node %d has %d earlier neighbors, want >= 3", v, len(earlier))
		}
		// The first three adjacency entries are the attachment clique.
		c := earlier[:3]
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Errorf("node %d attachment {%d,%d} not adjacent", v, c[i], c[j])
				}
			}
		}
	}
}

func TestRandomizeWeights(t *testing.T) {
	g := Grid(4, 4)
	RandomizeWeights(g, rand.New(rand.NewSource(9)))
	seen := make(map[float64]bool)
	for _, e := range g.Edges() {
		if e.W <= 0 || e.W >= 1 {
			t.Errorf("weight %v outside (0,1)", e.W)
		}
		if seen[e.W] {
			t.Errorf("duplicate weight %v", e.W)
		}
		seen[e.W] = true
	}
}

func TestLowerBoundStructure(t *testing.T) {
	lb, err := LowerBound(5, 12)
	if err != nil {
		t.Fatalf("LowerBound(5,12) error = %v", err)
	}
	if lb.Delta != 3 || lb.K != 2 || lb.D != 6 {
		t.Fatalf("derived (delta,k,D) = (%d,%d,%d), want (3,2,6)", lb.Delta, lb.K, lb.D)
	}
	topLen := (lb.Delta-1)*lb.K + 1
	rowLen := (lb.Delta-1)*lb.D + 1
	if len(lb.TopPath) != topLen {
		t.Errorf("top path has %d nodes, want %d", len(lb.TopPath), topLen)
	}
	if len(lb.Rows) != rowLen {
		t.Errorf("%d rows, want %d", len(lb.Rows), rowLen)
	}
	for i, row := range lb.Rows {
		if len(row) != rowLen {
			t.Errorf("row %d has %d nodes, want %d", i, len(row), rowLen)
		}
	}
	if err := lb.G.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
	if !Connected(lb.G) {
		t.Error("lower bound graph is disconnected")
	}
}

func TestLowerBoundDiameterWithinBudget(t *testing.T) {
	// Lemma 3.2 argues every node is within 1.5*D + 1 hops of the middle
	// top-path node; that is an eccentricity bound, so the diameter is at
	// most twice it, 3*D + 2 = Theta(D'). (The paper states "diameter at
	// most 1.5D+1", which the construction does not actually achieve; the
	// measured diameter on the smallest instance is 2.5D. See
	// EXPERIMENTS.md, experiment E4, for the discrepancy note.)
	for _, tt := range []struct{ dp, DP int }{{5, 12}, {5, 16}, {6, 16}, {7, 20}} {
		lb, err := LowerBound(tt.dp, tt.DP)
		if err != nil {
			t.Fatalf("LowerBound(%d,%d) error = %v", tt.dp, tt.DP, err)
		}
		diam, err := Diameter(lb.G)
		if err != nil {
			t.Fatalf("Diameter error = %v", err)
		}
		if diam > 3*lb.D+2 {
			t.Errorf("LowerBound(%d,%d): diameter %d exceeds 3D+2 = %d",
				tt.dp, tt.DP, diam, 3*lb.D+2)
		}
		if diam < lb.D {
			t.Errorf("LowerBound(%d,%d): diameter %d below D = %d, construction too dense",
				tt.dp, tt.DP, diam, lb.D)
		}
		// Middle top-path node eccentricity is the quantity the paper bounds.
		mid := lb.TopPath[len(lb.TopPath)/2]
		ecc, _ := Eccentricity(lb.G, mid)
		if ecc > 3*lb.D/2+1 {
			t.Errorf("LowerBound(%d,%d): middle-node eccentricity %d exceeds 1.5D+1 = %d",
				tt.dp, tt.DP, ecc, 3*lb.D/2+1)
		}
	}
}

func TestLowerBoundRowsAreInducedPaths(t *testing.T) {
	lb, err := LowerBound(5, 12)
	if err != nil {
		t.Fatalf("LowerBound error = %v", err)
	}
	for i, row := range lb.Rows {
		d := InducedDiameter(lb.G, row, nil)
		if d != len(row)-1 {
			t.Errorf("row %d induced diameter = %d, want %d (path)", i, d, len(row)-1)
		}
	}
}

func TestLowerBoundParameterValidation(t *testing.T) {
	if _, err := LowerBound(4, 100); err == nil {
		t.Error("LowerBound(4, 100) succeeded, want error (deltaPrime < 5)")
	}
	if _, err := LowerBound(6, 10); err == nil {
		t.Error("LowerBound(6, 10) succeeded, want error (diamPrime too small)")
	}
}

func TestLowerBoundQualityBoundValue(t *testing.T) {
	lb, err := LowerBound(7, 24)
	if err != nil {
		t.Fatalf("LowerBound error = %v", err)
	}
	if got, want := lb.QualityLowerBound, float64(4*24)/6; got != want {
		t.Errorf("QualityLowerBound = %v, want %v", got, want)
	}
}
