package graph

import (
	"encoding/binary"
	"math"
	"sort"
)

// AppendCanonical appends a canonical binary encoding of the graph to b and
// returns the extended buffer. Two graphs produce identical encodings if and
// only if they have the same node count and the same multiset of weighted
// edges: endpoints are normalized to (min, max) and the edge list is sorted
// by (u, v, w), so neither the orientation nor the insertion order of edges
// affects the encoding. Edge IDs are deliberately not encoded — callers that
// address graphs by content (internal/service) keep the first-seen graph as
// the representative for its fingerprint, and all ID-bearing answers refer
// to that representative.
func (g *Graph) AppendCanonical(b []byte) []byte {
	type cedge struct {
		u, v int
		w    float64
	}
	ce := make([]cedge, len(g.edges))
	for i, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		ce[i] = cedge{u, v, e.W}
	}
	sort.Slice(ce, func(i, j int) bool {
		if ce[i].u != ce[j].u {
			return ce[i].u < ce[j].u
		}
		if ce[i].v != ce[j].v {
			return ce[i].v < ce[j].v
		}
		return ce[i].w < ce[j].w
	})
	b = binary.BigEndian.AppendUint64(b, uint64(g.n))
	b = binary.BigEndian.AppendUint64(b, uint64(len(ce)))
	for _, e := range ce {
		b = binary.BigEndian.AppendUint64(b, uint64(e.u))
		b = binary.BigEndian.AppendUint64(b, uint64(e.v))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(e.w))
	}
	return b
}
