package graph

import "math"

// StoerWagner computes the weight of a global minimum edge cut of a
// connected graph using the Stoer-Wagner algorithm, treating edge weights as
// capacities. For the unit-weight graphs used in the experiments the result
// is the minimum number of edges whose removal disconnects the graph.
// Cost is O(n^3); intended as ground truth on moderate instances.
// It returns ErrDisconnected if g is not connected and 0 for graphs with
// fewer than two nodes.
func StoerWagner(g *Graph) (float64, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, nil
	}
	if !Connected(g) {
		return 0, ErrDisconnected
	}
	// Dense weight matrix of the (contracted) graph.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range g.edges {
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := math.Inf(1)
	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency order over active vertices.
		m := len(active)
		inA := make([]bool, m)
		conn := make([]float64, m) // connectivity to the growing set A
		order := make([]int, 0, m)
		for len(order) < m {
			sel := -1
			for i := 0; i < m; i++ {
				if !inA[i] && (sel == -1 || conn[i] > conn[sel]) {
					sel = i
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for i := 0; i < m; i++ {
				if !inA[i] {
					conn[i] += w[active[sel]][active[i]]
				}
			}
		}
		s, t := active[order[m-2]], active[order[m-1]]
		cutOfPhase := conn[order[m-1]]
		if cutOfPhase < best {
			best = cutOfPhase
		}
		// Contract t into s.
		for i := 0; i < n; i++ {
			w[s][i] += w[t][i]
			w[i][s] += w[i][t]
		}
		w[s][s] = 0
		next := active[:0]
		for _, v := range active {
			if v != t {
				next = append(next, v)
			}
		}
		active = next
	}
	return best, nil
}

// CutWeight returns the total weight of edges crossing the cut defined by
// side (side[v] == true marks one side). It reports 0 if either side is
// empty.
func CutWeight(g *Graph, side []bool) float64 {
	var total float64
	for _, e := range g.edges {
		if side[e.U] != side[e.V] {
			total += e.W
		}
	}
	return total
}
