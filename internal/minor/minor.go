package minor

import (
	"fmt"
	"math"

	"locshort/internal/graph"
)

// Mapping witnesses that a graph H is a minor of a host graph G, in the
// branch-set form used by the paper: every H-node maps to a disjoint
// connected subset of G-nodes, and every H-edge is realized by at least one
// G-edge between the two branch sets.
type Mapping struct {
	// BranchSets[i] lists the G-nodes of H-node i.
	BranchSets [][]int
	// Edges lists the H-edges as pairs of H-node indices (no duplicates, no
	// self-loops, order within a pair irrelevant).
	Edges [][2]int
}

// NumNodes returns |V(H)|.
func (m *Mapping) NumNodes() int { return len(m.BranchSets) }

// NumEdges returns |E(H)|.
func (m *Mapping) NumEdges() int { return len(m.Edges) }

// Density returns |E(H)| / |V(H)|, the quantity delta(G) maximizes.
func (m *Mapping) Density() float64 {
	if len(m.BranchSets) == 0 {
		return 0
	}
	return float64(len(m.Edges)) / float64(len(m.BranchSets))
}

// Validate checks that the mapping witnesses a genuine minor of g:
// branch sets nonempty, disjoint and connected in g; edges distinct,
// non-loop, and realized by a g-edge between their branch sets.
func (m *Mapping) Validate(g *graph.Graph) error {
	ownerOf := make(map[int]int, g.NumNodes())
	for i, bs := range m.BranchSets {
		if len(bs) == 0 {
			return fmt.Errorf("minor: branch set %d is empty", i)
		}
		for _, v := range bs {
			if v < 0 || v >= g.NumNodes() {
				return fmt.Errorf("minor: branch set %d contains out-of-range node %d", i, v)
			}
			if prev, dup := ownerOf[v]; dup {
				return fmt.Errorf("minor: node %d in branch sets %d and %d", v, prev, i)
			}
			ownerOf[v] = i
		}
	}
	for i, bs := range m.BranchSets {
		if !connectedIn(g, bs, ownerOf, i) {
			return fmt.Errorf("minor: branch set %d is not connected in G", i)
		}
	}
	seen := make(map[[2]int]bool, len(m.Edges))
	for _, e := range m.Edges {
		a, b := e[0], e[1]
		if a == b {
			return fmt.Errorf("minor: self-loop at minor node %d", a)
		}
		if a < 0 || b < 0 || a >= len(m.BranchSets) || b >= len(m.BranchSets) {
			return fmt.Errorf("minor: edge {%d,%d} references unknown minor node", a, b)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return fmt.Errorf("minor: duplicate edge {%d,%d}", a, b)
		}
		seen[[2]int{a, b}] = true
		if !branchSetsAdjacent(g, m.BranchSets[a], ownerOf, b) {
			return fmt.Errorf("minor: edge {%d,%d} not realized by any G-edge", a, b)
		}
	}
	return nil
}

func connectedIn(g *graph.Graph, bs []int, ownerOf map[int]int, owner int) bool {
	seen := map[int]bool{bs[0]: true}
	queue := []int{bs[0]}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range g.Neighbors(v) {
			if o, ok := ownerOf[a.To]; ok && o == owner && !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	return len(seen) == len(bs)
}

func branchSetsAdjacent(g *graph.Graph, from []int, ownerOf map[int]int, to int) bool {
	for _, v := range from {
		for _, a := range g.Neighbors(v) {
			if o, ok := ownerOf[a.To]; ok && o == to {
				return true
			}
		}
	}
	return false
}

// Identity returns the trivial mapping of g onto itself (every node its own
// branch set), whose density is |E|/|V|.
func Identity(g *graph.Graph) *Mapping {
	m := &Mapping{BranchSets: make([][]int, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		m.BranchSets[v] = []int{v}
	}
	for _, e := range g.EdgeSlice() {
		m.Edges = append(m.Edges, [2]int{e.U, e.V})
	}
	return m
}

// PlanarDensityBound is the Euler-formula density bound for planar graphs
// (and hence all their minors): fewer than 3 edges per node.
const PlanarDensityBound = 3.0

// GenusDensityBound returns the Lemma 3.3 bound on delta(G) for graphs of
// (orientable, non-orientable, or Euler) genus at most g: a genus-g graph on
// s nodes has at most 3s - 6 + 6g edges, so a density-d minor satisfies
// d <= 3 + 6g/d, i.e. d <= (3 + sqrt(9 + 24g)) / 2 = O(sqrt(g)).
func GenusDensityBound(g int) float64 {
	if g < 0 {
		panic(fmt.Sprintf("minor: negative genus %d", g))
	}
	return (3 + math.Sqrt(9+24*float64(g))) / 2
}

// TreewidthDensityBound returns the Lemma 3.3 bound on delta(G) for graphs
// of treewidth (or pathwidth) at most k: such graphs and all their minors
// have fewer than k*n edges, so delta(G) <= k.
func TreewidthDensityBound(k int) float64 { return float64(k) }

// CompleteDensity returns delta(K_n) = (n-1)/2: the densest minor of a
// complete graph is the graph itself.
func CompleteDensity(n int) float64 { return float64(n-1) / 2 }
