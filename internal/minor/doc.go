// Package minor implements graph-minor machinery: branch-set mappings with
// validation, minor density |E'|/|V'| (the central parameter δ(G) of the
// paper, Lemma 1.1), a greedy contraction heuristic that lower-bounds δ(G),
// and the analytic per-family density bounds of Lemma 3.3 (planar by Euler,
// genus-g, treewidth-k).
//
// # Role in the DAG
//
// Depends only on internal/graph. internal/shortcut consumes it for the
// certifying construction of the Section 3.1 remark (a failed δ' level
// yields a dense bipartite minor witness, ExtractCertificate); the E9/E10
// experiments in internal/bench compare greedy witnesses against the
// analytic bounds; cmd/minorfind is its standalone driver.
package minor
