// Package minor implements graph-minor machinery: branch-set mappings with
// validation, minor density |E'|/|V'| (the central parameter δ(G) of the
// paper, Lemma 1.1), a greedy contraction heuristic that lower-bounds δ(G),
// and the analytic per-family density bounds of Lemma 3.3 (planar by Euler,
// genus-g, treewidth-k).
//
// # Role in the DAG
//
// Depends only on internal/graph. internal/shortcut consumes it for the
// certifying construction of the Section 3.1 remark (a failed δ' level
// yields a dense bipartite minor witness, ExtractCertificate); the E9/E10
// experiments in internal/bench compare greedy witnesses against the
// analytic bounds; cmd/minorfind is its standalone driver.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package minor
