package minor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"locshort/internal/graph"
)

func TestIdentityMapping(t *testing.T) {
	g := graph.Cycle(5)
	m := Identity(g)
	if err := m.Validate(g); err != nil {
		t.Fatalf("Validate(identity) = %v", err)
	}
	if m.NumNodes() != 5 || m.NumEdges() != 5 {
		t.Errorf("identity shape = (%d,%d), want (5,5)", m.NumNodes(), m.NumEdges())
	}
	if m.Density() != 1 {
		t.Errorf("Density = %v, want 1", m.Density())
	}
}

func TestDensityEmpty(t *testing.T) {
	var m Mapping
	if m.Density() != 0 {
		t.Errorf("empty mapping density = %v, want 0", m.Density())
	}
}

func TestValidateRejects(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	tests := []struct {
		name string
		m    Mapping
	}{
		{name: "empty branch set", m: Mapping{BranchSets: [][]int{{0}, {}}}},
		{name: "overlapping branch sets", m: Mapping{BranchSets: [][]int{{0, 1}, {1, 2}}}},
		{name: "disconnected branch set", m: Mapping{BranchSets: [][]int{{0, 2}}}},
		{name: "out of range node", m: Mapping{BranchSets: [][]int{{9}}}},
		{
			name: "unrealized edge",
			m:    Mapping{BranchSets: [][]int{{0}, {3}}, Edges: [][2]int{{0, 1}}},
		},
		{
			name: "self loop edge",
			m:    Mapping{BranchSets: [][]int{{0}}, Edges: [][2]int{{0, 0}}},
		},
		{
			name: "duplicate edge",
			m:    Mapping{BranchSets: [][]int{{0}, {1}}, Edges: [][2]int{{0, 1}, {1, 0}}},
		},
		{
			name: "edge to unknown minor node",
			m:    Mapping{BranchSets: [][]int{{0}}, Edges: [][2]int{{0, 4}}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(g); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestValidateAcceptsContraction(t *testing.T) {
	// Contract the 6-cycle into a triangle.
	g := graph.Cycle(6)
	m := Mapping{
		BranchSets: [][]int{{0, 1}, {2, 3}, {4, 5}},
		Edges:      [][2]int{{0, 1}, {1, 2}, {2, 0}},
	}
	if err := m.Validate(g); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
	if m.Density() != 1 {
		t.Errorf("Density = %v, want 1", m.Density())
	}
}

func TestGreedyDenseMinorOnComplete(t *testing.T) {
	// delta(K_n) = (n-1)/2 and the identity is the densest minor; greedy
	// must find exactly that (contractions only lose edges in K_n).
	g := graph.Complete(8)
	m := GreedyDenseMinor(g, rand.New(rand.NewSource(1)))
	if err := m.Validate(g); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if got, want := m.Density(), CompleteDensity(8); got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestGreedyDenseMinorRespectsPlanarBound(t *testing.T) {
	// Planar graphs have delta(G) < 3; the greedy witness can never exceed
	// an upper bound on delta.
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "grid", g: graph.Grid(7, 7)},
		{name: "wheel", g: graph.Wheel(20)},
		{name: "cycle", g: graph.Cycle(15)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := GreedyDenseMinor(tt.g, rand.New(rand.NewSource(2)))
			if err := m.Validate(tt.g); err != nil {
				t.Fatalf("Validate = %v", err)
			}
			if m.Density() >= PlanarDensityBound {
				t.Errorf("greedy density %v >= planar bound 3", m.Density())
			}
		})
	}
}

func TestGreedyDenseMinorFindsDenseCore(t *testing.T) {
	// A K_6 attached to a long path: the dense core must be found, so the
	// witness density must be at least delta(K_6) = 2.5 even though the
	// whole graph's edge density is much lower.
	g := graph.New(26)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	for v := 5; v+1 < 26; v++ {
		g.AddEdge(v, v+1)
	}
	m := GreedyDenseMinor(g, rand.New(rand.NewSource(3)))
	if err := m.Validate(g); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if m.Density() < 2.5 {
		t.Errorf("greedy density %v < 2.5 (missed the K_6 core)", m.Density())
	}
}

func TestGreedyDenseMinorKTreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{2, 3, 4} {
		g := graph.KTree(30, k, rng)
		m := GreedyDenseMinor(g, rng)
		if err := m.Validate(g); err != nil {
			t.Fatalf("k=%d: Validate = %v", k, err)
		}
		if m.Density() > TreewidthDensityBound(k) {
			t.Errorf("k=%d: greedy density %v exceeds treewidth bound %d", k, m.Density(), k)
		}
		// The k-tree contains K_{k+1}, so density >= k/2 is achievable.
		if m.Density() < float64(k)/2 {
			t.Errorf("k=%d: greedy density %v < k/2 (missed the seed clique)", k, m.Density())
		}
	}
}

func TestGreedyDenseMinorTrivialGraphs(t *testing.T) {
	if m := GreedyDenseMinor(graph.New(0), rand.New(rand.NewSource(1))); m.NumNodes() != 0 {
		t.Errorf("empty graph minor has %d nodes", m.NumNodes())
	}
	m := GreedyDenseMinor(graph.New(3), rand.New(rand.NewSource(1)))
	if m.NumEdges() != 0 {
		t.Errorf("edgeless graph minor has %d edges", m.NumEdges())
	}
}

func TestGenusDensityBound(t *testing.T) {
	if got := GenusDensityBound(0); got != 3 {
		t.Errorf("GenusDensityBound(0) = %v, want 3 (planar)", got)
	}
	// Monotone and Theta(sqrt(g)).
	prev := 0.0
	for g := 0; g <= 64; g += 8 {
		b := GenusDensityBound(g)
		if b <= prev {
			t.Errorf("GenusDensityBound not increasing at g=%d", g)
		}
		prev = b
	}
	if b := GenusDensityBound(100); b > 3+math.Sqrt(24*100) {
		t.Errorf("GenusDensityBound(100) = %v too large", b)
	}
}

func TestGenusDensityBoundSatisfiesFixedPoint(t *testing.T) {
	// The bound d solves d = 3 + 6g/d.
	for _, g := range []int{1, 2, 5, 10} {
		d := GenusDensityBound(g)
		if diff := d - (3 + 6*float64(g)/d); math.Abs(diff) > 1e-9 {
			t.Errorf("g=%d: fixed point residual %v", g, diff)
		}
	}
}

func TestTorusDensityWithinGenusBound(t *testing.T) {
	g := graph.Torus(6, 6)
	m := GreedyDenseMinor(g, rand.New(rand.NewSource(5)))
	if err := m.Validate(g); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if bound := GenusDensityBound(1); m.Density() > bound {
		t.Errorf("torus greedy density %v exceeds genus-1 bound %v", m.Density(), bound)
	}
}

// Property: the greedy witness on random connected graphs is always a valid
// minor, and its density is at least the graph's own density m/n (the
// identity minor is a candidate).
func TestGreedyDenseMinorQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%25
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(n)
		if m > maxM {
			m = maxM
		}
		g := graph.RandomConnected(n, m, rng)
		w := GreedyDenseMinor(g, rng)
		if err := w.Validate(g); err != nil {
			return false
		}
		return w.Density() >= float64(m)/float64(n)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
