package minor

import (
	"math/rand"
	"sort"

	"locshort/internal/graph"
)

// GreedyDenseMinor searches for a dense minor of g by repeated edge
// contraction and returns the densest minor encountered as a validated-shape
// mapping. Contracting supernodes u, v with c common neighbors turns an
// (n, m) minor into an (n-1, m-1-c) minor, so at every step it contracts the
// adjacent pair with the fewest common neighbors, shrinking the node count
// while preserving as many edges as possible. Ties are broken uniformly at
// random with rng.
//
// The result is a *lower bound* witness for delta(G): computing delta(G)
// exactly is NP-hard, and Lemma 3.3's analytic bounds provide the matching
// upper bounds in the experiments.
func GreedyDenseMinor(g *graph.Graph, rng *rand.Rand) *Mapping {
	n := g.NumNodes()
	if n == 0 {
		return &Mapping{}
	}
	// Supernode state: adjacency sets over alive supernodes and member lists.
	adj := make([]map[int]bool, n)
	members := make([][]int, n)
	alive := make([]bool, n)
	aliveCount := n
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
		members[v] = []int{v}
		alive[v] = true
	}
	edgeCount := 0
	for _, e := range g.EdgeSlice() {
		if !adj[e.U][e.V] {
			adj[e.U][e.V] = true
			adj[e.V][e.U] = true
			edgeCount++
		}
	}

	best := snapshot(adj, members, alive, aliveCount)
	bestDensity := best.Density()

	for aliveCount > 1 && edgeCount > 0 {
		u, v := pickContraction(adj, alive, rng)
		if u < 0 {
			break
		}
		// Contract v into u.
		//locshort:nondeterministic-ok set-semantics merge: the final adj/edgeCount state is identical for every iteration order
		for w := range adj[v] {
			delete(adj[w], v)
			if w != u && !adj[u][w] {
				adj[u][w] = true
				adj[w][u] = true
			} else {
				edgeCount-- // parallel edge (or the contracted edge itself) vanishes
			}
		}
		members[u] = append(members[u], members[v]...)
		adj[v] = nil
		members[v] = nil
		alive[v] = false
		aliveCount--

		if d := float64(edgeCount) / float64(aliveCount); d > bestDensity {
			best = snapshot(adj, members, alive, aliveCount)
			bestDensity = d
		}
	}
	return best
}

// pickContraction returns the adjacent supernode pair with the fewest
// common neighbors, breaking ties uniformly at random. Returns (-1, -1) if
// no edge remains. Pairs are enumerated in sorted order: the reservoir
// tie-break consumes rng draws per tie, so enumeration order must be
// deterministic for a fixed seed to reproduce the run.
func pickContraction(adj []map[int]bool, alive []bool, rng *rand.Rand) (int, int) {
	bestU, bestV, bestCommon, tieCount := -1, -1, -1, 0
	for u := range adj {
		if !alive[u] {
			continue
		}
		nbrs := make([]int, 0, len(adj[u]))
		//locshort:nondeterministic-ok keys are collected and sorted before any order-sensitive use
		for v := range adj[u] {
			if v > u {
				nbrs = append(nbrs, v)
			}
		}
		sort.Ints(nbrs)
		for _, v := range nbrs {
			common := 0
			small, large := adj[u], adj[v]
			if len(large) < len(small) {
				small, large = large, small
			}
			//locshort:nondeterministic-ok pure counting fold, order-insensitive
			for w := range small {
				if large[w] {
					common++
				}
			}
			switch {
			case bestCommon == -1 || common < bestCommon:
				bestU, bestV, bestCommon, tieCount = u, v, common, 1
			case common == bestCommon:
				tieCount++
				if rng.Intn(tieCount) == 0 {
					bestU, bestV = u, v
				}
			}
		}
	}
	return bestU, bestV
}

func snapshot(adj []map[int]bool, members [][]int, alive []bool, aliveCount int) *Mapping {
	index := make(map[int]int, aliveCount)
	m := &Mapping{BranchSets: make([][]int, 0, aliveCount)}
	for v, ok := range alive {
		if !ok {
			continue
		}
		index[v] = len(m.BranchSets)
		bs := make([]int, len(members[v]))
		copy(bs, members[v])
		m.BranchSets = append(m.BranchSets, bs)
	}
	for u, ok := range alive {
		if !ok {
			continue
		}
		// Deterministic edge order for reproducibility.
		nbrs := make([]int, 0, len(adj[u]))
		//locshort:nondeterministic-ok keys are collected and sorted before any order-sensitive use
		for v := range adj[u] {
			if v > u {
				nbrs = append(nbrs, v)
			}
		}
		sort.Ints(nbrs)
		for _, v := range nbrs {
			m.Edges = append(m.Edges, [2]int{index[u], index[v]})
		}
	}
	return m
}
