package shortcut

import (
	"fmt"
	"sort"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// This file preserves the pre-Builder, map-based construction path
// verbatim. It is the executable specification the flat Builder is tested
// against: BuildReference must produce the same accepted delta', the same
// covered parts, and the same canonical H edge sets as Builder.Build on
// every input (see builder_test.go), and its allocation profile is the
// baseline the Builder's allocation budget is measured against. It is not
// used by any production code path.

// buildPartialReference is the original map-based BuildPartial.
func buildPartialReference(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b int, active []bool) (*Partial, error) {
	if c < 1 {
		return nil, fmt.Errorf("shortcut: congestion threshold %d < 1", c)
	}
	if b < 0 {
		return nil, fmt.Errorf("shortcut: negative block budget %d", b)
	}
	if t.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("shortcut: tree has %d nodes, graph has %d", t.NumNodes(), g.NumNodes())
	}
	n := g.NumNodes()
	k := p.NumParts()
	isActive := func(i int) bool { return active == nil || active[i] }

	// Bottom-up sweep: S[v] maps part -> representative node; see the
	// package documentation of the Builder for the semantics.
	S := make([]map[int]int, n)
	cutAbove := make([]bool, n)
	pr := &Partial{IE: make(map[int][]PartRep), DegB: make([]int, k)}

	for idx := len(t.Order) - 1; idx >= 0; idx-- {
		v := t.Order[idx]
		sv := S[v]
		if sv == nil {
			sv = make(map[int]int, 1)
		}
		if pi := p.PartOf[v]; pi >= 0 && isActive(pi) {
			sv[pi] = v
		}
		parent := t.Parent[v]
		if parent < 0 {
			S[v] = sv
			continue
		}
		if len(sv) >= c {
			cutAbove[v] = true
			e := t.ParentEdge[v]
			pr.Overcongested = append(pr.Overcongested, e)
			reps := make([]PartRep, 0, len(sv))
			//locshort:nondeterministic-ok reps are sorted by part below; DegB increments are order-insensitive
			for part, rep := range sv {
				reps = append(reps, PartRep{Part: part, Rep: rep})
				pr.DegB[part]++
			}
			sort.Slice(reps, func(i, j int) bool { return reps[i].Part < reps[j].Part })
			pr.IE[e] = reps
			S[v] = nil
			continue
		}
		sp := S[parent]
		if sp == nil {
			S[parent] = sv
		} else {
			if len(sp) < len(sv) {
				sp, sv = sv, sp
				S[parent] = sp
			}
			//locshort:nondeterministic-ok per-key merge: distinct parts never interact, and each part resolves by a strict depth comparison
			for part, rep := range sv {
				if cur, ok := sp[part]; !ok || t.Depth[rep] < t.Depth[cur] {
					sp[part] = rep
				}
			}
		}
		S[v] = nil
	}
	sort.Ints(pr.Overcongested)

	pr.Shortcut = assembleFromCutsReference(g, t, p, cutAbove, active, b)
	return pr, nil
}

// assembleFromCutsReference is the original map-based AssembleFromCuts.
func assembleFromCutsReference(g *graph.Graph, t *tree.Rooted, p *partition.Partition, cutAbove []bool, active []bool, b int) *Shortcut {
	n := g.NumNodes()
	k := p.NumParts()
	isActive := func(i int) bool { return active == nil || active[i] }

	compRoot := make([]int, n)
	for _, v := range t.Order {
		if t.Parent[v] == -1 || cutAbove[v] {
			compRoot[v] = v
		} else {
			compRoot[v] = compRoot[t.Parent[v]]
		}
	}
	degB := make([]int, k)
	touched := make(map[[2]int]bool)
	for v := 0; v < n; v++ {
		i := p.PartOf[v]
		if i < 0 || !isActive(i) {
			continue
		}
		r := compRoot[v]
		if !cutAbove[r] {
			continue
		}
		key := [2]int{i, r}
		if !touched[key] {
			touched[key] = true
			degB[i]++
		}
	}

	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	stamp := make([]int, n)
	for v := range stamp {
		stamp[v] = -1
	}
	for i := 0; i < k; i++ {
		if !isActive(i) || degB[i] > b {
			continue
		}
		s.Covered[i] = true
		h := []int{}
		for _, u := range p.Parts[i] {
			for u != -1 && !cutAbove[u] && t.Parent[u] != -1 && stamp[u] != i {
				stamp[u] = i
				h = append(h, t.ParentEdge[u])
				u = t.Parent[u]
			}
		}
		sort.Ints(h)
		s.H[i] = h
	}
	return s
}

// runLevelReference is the original Observation 2.7 loop over the map path.
func runLevelReference(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b, maxIter int) (*Shortcut, int, *Partial, bool, error) {
	k := p.NumParts()
	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	remaining := k
	var last *Partial
	for iter := 1; iter <= maxIter; iter++ {
		pr, err := buildPartialReference(g, t, p, c, b, active)
		if err != nil {
			return nil, 0, nil, false, err
		}
		last = pr
		progress := 0
		for i := 0; i < k; i++ {
			if active[i] && pr.Shortcut.Covered[i] {
				s.Covered[i] = true
				s.H[i] = pr.Shortcut.H[i]
				active[i] = false
				progress++
			}
		}
		remaining -= progress
		if remaining == 0 {
			return s, iter, last, true, nil
		}
		if progress == 0 {
			return s, iter, last, false, nil
		}
	}
	return s, maxIter, last, false, nil
}

// BuildReference is the original sequential Build: the strictly sequential
// doubling search over the map-based level loop.
func BuildReference(g *graph.Graph, p *partition.Partition, opts Options) (*Result, error) {
	if p.NumParts() == 0 {
		return nil, fmt.Errorf("shortcut: no parts")
	}
	if opts.Certify && opts.Rng == nil {
		return nil, fmt.Errorf("shortcut: Certify requires Options.Rng")
	}
	t := opts.Tree
	if t == nil {
		var err error
		t, err = tree.FromBFS(g, ChooseRoot(g))
		if err != nil {
			return nil, fmt.Errorf("shortcut: build tree: %w", err)
		}
	}
	depth := t.MaxDepth()
	if depth < 1 {
		depth = 1
	}
	cf := opts.CongestionFactor
	if cf == 0 {
		cf = 8
	}
	bf := opts.BlockFactor
	if bf == 0 {
		bf = 8
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = CeilLog2(p.NumParts()) + 2
	}
	maxDelta := opts.MaxDelta
	if maxDelta == 0 {
		maxDelta = g.NumNodes()
	}
	certAttempts := opts.CertAttempts
	if certAttempts == 0 {
		certAttempts = 8 * depth
	}

	res := &Result{TreeDepth: depth}
	start := opts.Delta
	fixed := start != 0
	if !fixed {
		start = 1
	}
	for delta := start; ; delta *= 2 {
		if !fixed && delta > maxDelta {
			return nil, fmt.Errorf("shortcut: doubling search exhausted at delta' = %d (max %d)", delta, maxDelta)
		}
		c := cf * delta * depth
		b := bf * delta
		s, iters, lastPartial, ok, err := runLevelReference(g, t, p, c, b, maxIter)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Shortcut = s
			res.Delta = delta
			res.CongestionThreshold = c
			res.BlockBudget = b
			res.Iterations = iters
			return res, nil
		}
		if opts.Certify && lastPartial != nil {
			if m, found := ExtractCertificate(g, t, p, lastPartial, float64(delta), certAttempts, opts.Rng); found {
				res.Certificates = append(res.Certificates, m)
				res.FailedDeltas = append(res.FailedDeltas, delta)
			}
		}
		if fixed {
			return res, fmt.Errorf("shortcut: delta' = %d: %w", opts.Delta, ErrDeltaTooSmall)
		}
	}
}
