package shortcut

import (
	"fmt"
	"sort"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Shortcut is a collection of subgraphs H_1..H_k, one per part, stored as
// edge-ID sets. A nil Tree indicates a non-tree-restricted shortcut (only
// the baselines produce those).
type Shortcut struct {
	G     *graph.Graph
	Parts *partition.Partition
	// Tree is the rooted tree the shortcut is restricted to, or nil.
	Tree *tree.Rooted
	// H[i] lists the edge IDs of H_i, without duplicates.
	H [][]int
	// Covered[i] reports whether part i was given a shortcut. Uncovered
	// parts (possible only for partial shortcuts) have H[i] == nil.
	Covered []bool
}

// NewEmpty returns the empty shortcut (H_i = ∅ for every part): every part
// is covered, dilation equals the worst induced part diameter.
func NewEmpty(g *graph.Graph, p *partition.Partition) *Shortcut {
	s := &Shortcut{
		G:       g,
		Parts:   p,
		H:       make([][]int, p.NumParts()),
		Covered: make([]bool, p.NumParts()),
	}
	for i := range s.Covered {
		s.Covered[i] = true
		s.H[i] = []int{}
	}
	return s
}

// CoveredCount returns the number of covered parts.
func (s *Shortcut) CoveredCount() int {
	n := 0
	for _, c := range s.Covered {
		if c {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: edge IDs in range and, for
// tree-restricted shortcuts, contained in the tree.
func (s *Shortcut) Validate() error {
	if len(s.H) != s.Parts.NumParts() || len(s.Covered) != s.Parts.NumParts() {
		return fmt.Errorf("shortcut: %d H-sets and %d coverage flags for %d parts",
			len(s.H), len(s.Covered), s.Parts.NumParts())
	}
	var treeEdges map[int]bool
	if s.Tree != nil {
		treeEdges = s.Tree.EdgeSet()
	}
	for i, h := range s.H {
		seen := make(map[int]bool, len(h))
		for _, id := range h {
			if id < 0 || id >= s.G.NumEdges() {
				return fmt.Errorf("shortcut: part %d uses out-of-range edge %d", i, id)
			}
			if seen[id] {
				return fmt.Errorf("shortcut: part %d lists edge %d twice", i, id)
			}
			seen[id] = true
			if treeEdges != nil && !treeEdges[id] {
				return fmt.Errorf("shortcut: part %d uses non-tree edge %d in a tree-restricted shortcut", i, id)
			}
		}
	}
	return nil
}

// Quality summarizes the measured quality of a shortcut.
type Quality struct {
	// Congestion is the maximum, over edges, of the number of parts whose
	// H_i contains the edge (property II of Definition 2.2).
	Congestion int
	// Dilation is the maximum, over covered parts, of the diameter of
	// G[P_i]+H_i (property I). When DilationExact is false, Dilation is the
	// double-sweep upper bound (at most twice the true value).
	Dilation      int
	DilationExact bool
	// MaxBlocks is the maximum, over covered parts, of the number of
	// connected components of (P_i ∪ V(H_i), H_i) (Definition 2.3).
	MaxBlocks int
	// CoveredParts is the number of parts given a shortcut.
	CoveredParts int
}

// Value returns the shortcut quality Q = congestion + dilation.
func (q Quality) Value() int { return q.Congestion + q.Dilation }

// exactDiameterNodeLimit bounds the augmented-subgraph size for which
// Measure computes exact diameters; larger subgraphs use the double-sweep
// upper bound.
const exactDiameterNodeLimit = 1500

// Measure computes the quality of a shortcut. Dilation of very large
// augmented subgraphs is upper-bounded by double sweep rather than computed
// exactly; DilationExact reports which was used.
//
// The augmented graph of part i is exactly the paper's G[P_i] + H_i: the
// edges induced on P_i plus the edges of H_i — G-edges between non-part
// nodes of V(H_i) that are not in H_i do not count.
//
// Measurement runs on flat scratch shared across the parts of one call —
// a dense per-edge load counter and one reusable augmented subgraph — so
// cost scales with subgraph sizes, not with map traffic.
func Measure(s *Shortcut) Quality {
	q := Quality{DilationExact: true, CoveredParts: s.CoveredCount()}
	// Congestion, over a dense per-edge counter.
	load := make([]int32, s.G.NumEdges())
	for i, h := range s.H {
		if !s.Covered[i] {
			continue
		}
		for _, id := range h {
			load[id]++
			if int(load[id]) > q.Congestion {
				q.Congestion = int(load[id])
			}
		}
	}
	// Dilation and blocks per covered part.
	var m measurer
	for i := range s.H {
		if !s.Covered[i] {
			continue
		}
		sub, nodes := m.buildAugmented(s, i)
		var d int
		if len(nodes) <= exactDiameterNodeLimit {
			var err error
			d, err = graph.Diameter(sub)
			if err != nil {
				d = -1
			}
		} else {
			_, hi, err := graph.DiameterApprox(sub)
			if err != nil {
				hi = -1
			}
			d = hi
			q.DilationExact = false
		}
		if d < 0 {
			// Augmented subgraph disconnected: dilation is unbounded;
			// record a sentinel larger than any graph distance.
			d = s.G.NumNodes() + 1
		}
		if d > q.Dilation {
			q.Dilation = d
		}
		if b := m.blocks(s, i, nodes); b > q.MaxBlocks {
			q.MaxBlocks = b
		}
	}
	return q
}

// PartDilation returns the diameter of G[P_i]+H_i for a single part (exact,
// regardless of size), or -1 if the augmented subgraph is disconnected.
func PartDilation(s *Shortcut, i int) int {
	var m measurer
	sub, _ := m.buildAugmented(s, i)
	d, err := graph.Diameter(sub)
	if err != nil {
		return -1
	}
	return d
}

// measurer is the per-call scratch of Measure: a global-node-to-local-index
// table (cleared by walking the previous node list, so clearing is O(sub)),
// the node list itself, and a reusable subgraph.
type measurer struct {
	idx   []int32 // global node -> local index + 1; 0 = absent
	nodes []int
	sub   graph.Graph
}

// buildAugmented constructs G[P_i] + H_i into the measurer's reused
// subgraph, whose node j corresponds to nodes[j] in G. The returned graph
// and node list stay valid until the next buildAugmented call.
func (m *measurer) buildAugmented(s *Shortcut, i int) (*graph.Graph, []int) {
	if cap(m.idx) < s.G.NumNodes() {
		m.idx = make([]int32, s.G.NumNodes())
	}
	idx := m.idx[:s.G.NumNodes()]
	for _, v := range m.nodes {
		idx[v] = 0 // clear the previous part's entries
	}
	nodes := m.nodes[:0]
	collect := func(v int) {
		if idx[v] == 0 {
			idx[v] = 1
			nodes = append(nodes, v)
		}
	}
	for _, v := range s.Parts.Parts[i] {
		collect(v)
	}
	for _, id := range s.H[i] {
		e := s.G.Edge(id)
		collect(e.U)
		collect(e.V)
	}
	sort.Ints(nodes)
	for j, v := range nodes {
		idx[v] = int32(j) + 1
	}
	m.nodes = nodes

	sub := &m.sub
	sub.Reset(len(nodes))
	for _, v := range s.Parts.Parts[i] {
		for _, a := range s.G.Neighbors(v) {
			// a.To in P_i exactly when its part index matches; parts are
			// disjoint, so PartOf replaces the membership set.
			if s.Parts.PartOf[a.To] == i && v < a.To {
				sub.AddEdge(int(idx[v])-1, int(idx[a.To])-1)
			}
		}
	}
	for _, id := range s.H[i] {
		e := s.G.Edge(id)
		sub.AddEdge(int(idx[e.U])-1, int(idx[e.V])-1)
	}
	return sub, nodes
}

// blocks counts the connected components of (P_i ∪ V(H_i), H_i), reusing
// the local indices installed by the preceding buildAugmented call.
func (m *measurer) blocks(s *Shortcut, i int, nodes []int) int {
	d := graph.NewDSU(len(nodes))
	for _, id := range s.H[i] {
		e := s.G.Edge(id)
		d.Union(int(m.idx[e.U])-1, int(m.idx[e.V])-1)
	}
	return d.Sets()
}

// EdgeLoads returns, for every edge with nonzero load, the number of covered
// parts whose H_i contains it.
func EdgeLoads(s *Shortcut) map[int]int {
	load := make(map[int]int)
	for i, h := range s.H {
		if !s.Covered[i] {
			continue
		}
		for _, id := range h {
			load[id]++
		}
	}
	return load
}
