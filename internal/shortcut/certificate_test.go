package shortcut

import (
	"math/rand"
	"testing"

	"locshort/internal/graph"
	"locshort/internal/partition"
)

// lowerBoundSetup builds the Lemma 3.2 instance with its rows as parts.
func lowerBoundSetup(t *testing.T, dp, DP int) (*graph.Graph, *partition.Partition) {
	t.Helper()
	lb, err := graph.LowerBound(dp, DP)
	if err != nil {
		t.Fatalf("LowerBound error = %v", err)
	}
	p, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		t.Fatalf("partition error = %v", err)
	}
	return lb.G, p
}

func TestExtractCertificateOnLowerBound(t *testing.T) {
	// The Lemma 3.2 instance with reduced constants (c = depth, b = 1): the
	// partial construction fails for every row, and a bipartite minor of
	// density > 1 must be extractable. (The paper's exact c = 8*delta*D
	// guarantee only fails at >10^6-node scales; see
	// TestBuildFixedDeltaFailsWhenTooSmall for the scale argument.)
	g, p := lowerBoundSetup(t, 6, 32)
	tr := mustTree(t, g, ChooseRoot(g))
	depth := tr.MaxDepth()
	pr, err := BuildPartial(g, tr, p, depth, 1, nil)
	if err != nil {
		t.Fatalf("BuildPartial error = %v", err)
	}
	if pr.Shortcut.CoveredCount() == p.NumParts() {
		t.Fatal("partial construction unexpectedly covered everything")
	}
	rng := rand.New(rand.NewSource(11))
	m, ok := ExtractCertificate(g, tr, p, pr, 1.0, 400, rng)
	if !ok {
		t.Fatal("no certificate extracted")
	}
	if err := m.Validate(g); err != nil {
		t.Fatalf("certificate is not a valid minor: %v", err)
	}
	if m.Density() <= 1.0 {
		t.Errorf("certificate density = %v, want > 1", m.Density())
	}
}

func TestExtractCertificateViaBuildCertify(t *testing.T) {
	// Fixed delta' = 1 with reduced constants on the Lemma 3.2 instance:
	// Build fails with ErrDeltaTooSmall and the result carries a validated
	// certificate denser than the failed level.
	g, p := lowerBoundSetup(t, 6, 32)
	rng := rand.New(rand.NewSource(5))
	res, err := Build(g, p, Options{
		Delta:            1,
		CongestionFactor: 1,
		BlockFactor:      1,
		MaxIterations:    3,
		Certify:          true,
		CertAttempts:     400,
		Rng:              rng,
	})
	if err == nil {
		t.Fatal("Build succeeded, want ErrDeltaTooSmall")
	}
	if res == nil {
		t.Fatal("Build returned nil result with certificates expected")
	}
	if len(res.Certificates) == 0 {
		t.Fatal("no certificates extracted at the failed level")
	}
	for i, m := range res.Certificates {
		if err := m.Validate(g); err != nil {
			t.Errorf("certificate %d invalid: %v", i, err)
		}
		if m.Density() <= float64(res.FailedDeltas[i]) {
			t.Errorf("certificate %d density %v <= failed delta' %d",
				i, m.Density(), res.FailedDeltas[i])
		}
	}
}

func TestExtractCertificateNoCutEdges(t *testing.T) {
	g := graph.Path(6)
	p, err := partition.New(g, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTree(t, g, 0)
	pr, err := BuildPartial(g, tr, p, 100, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ExtractCertificate(g, tr, p, pr, 1, 10, rand.New(rand.NewSource(1))); ok {
		t.Error("certificate extracted with no overcongested edges")
	}
}

func TestCertificateDensityNeverExceedsTrueDelta(t *testing.T) {
	// Sanity: on planar grids every certificate (if any) must have density
	// < 3; extraction at delta' >= 3 must therefore always fail.
	g := graph.Grid(9, 9)
	p, err := partition.Singletons(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTree(t, g, 0)
	pr, err := BuildPartial(g, tr, p, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if m, ok := ExtractCertificate(g, tr, p, pr, 3.0, 100, rng); ok {
		t.Errorf("extracted a certificate of density %v >= 3 from a planar graph", m.Density())
	}
	// At a low threshold extraction may succeed; if it does, it must be valid.
	if m, ok := ExtractCertificate(g, tr, p, pr, 1.0, 200, rng); ok {
		if err := m.Validate(g); err != nil {
			t.Errorf("certificate invalid: %v", err)
		}
		if m.Density() <= 1.0 {
			t.Errorf("certificate density %v <= threshold 1.0", m.Density())
		}
	}
}

// Property: on arbitrary random inputs — any graph, partition, thresholds —
// certificate extraction never fabricates an invalid witness: whatever it
// returns is a genuine minor of G with density above the threshold.
func TestExtractCertificateSoundnessQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 12 + rng.Intn(50)
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(3*n)
		if m > maxM {
			m = maxM
		}
		g := graph.RandomConnected(n, m, rng)
		k := 2 + rng.Intn(n/2)
		p, err := partition.BFSBlobs(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTree(t, g, rng.Intn(n))
		c := 1 + rng.Intn(5)
		pr, err := BuildPartial(g, tr, p, c, rng.Intn(3), nil)
		if err != nil {
			t.Fatal(err)
		}
		thr := 0.5 + rng.Float64()
		cert, ok := ExtractCertificate(g, tr, p, pr, thr, 50, rng)
		if !ok {
			continue
		}
		if err := cert.Validate(g); err != nil {
			t.Fatalf("trial %d: invalid certificate: %v", trial, err)
		}
		if cert.Density() <= thr {
			t.Fatalf("trial %d: density %v <= threshold %v", trial, cert.Density(), thr)
		}
	}
}
