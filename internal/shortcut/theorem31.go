package shortcut

import (
	"fmt"
	"sort"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Partial is the outcome of one run of the Theorem 3.1 overcongested-edge
// process: a tree-restricted partial shortcut for the parts whose degree in
// the bipartite graph B stayed within the block budget, plus the data needed
// to extract a dense-minor certificate when too many parts failed.
type Partial struct {
	// Shortcut covers the parts with deg_B <= block budget.
	Shortcut *Shortcut
	// Overcongested lists the cut tree edges (the set O), as edge IDs.
	Overcongested []int
	// IE maps every overcongested edge ID to the parts I_e that intersected
	// the T\O subtree below it, paired with a representative node per part
	// (a member of the part reachable from v_e through T\O).
	IE map[int][]PartRep
	// DegB[i] is part i's degree in the bipartite graph B.
	DegB []int
}

// PartRep names a part and its representative node below an overcongested
// edge (the r_{e,P_i} of the paper's proof).
type PartRep struct {
	Part int
	Rep  int
}

// BuildPartial runs the constructive proof of Theorem 3.1 on graph g with
// rooted spanning tree t and the given parts, using congestion threshold c
// (a tree edge is overcongested when >= c parts intersect the subtree
// hanging below it in T\O) and block budget b (parts with more than b
// overcongested edges above them stay uncovered).
//
// With c = 8*delta*D and b = 8*delta, Theorem 3.1 guarantees that at least
// half the parts are covered on any graph with minor density delta and tree
// depth D. active restricts the construction to a subset of parts (nil
// means all); inactive parts neither count toward congestion nor receive
// shortcuts — this is what the Observation 2.7 loop passes on later
// iterations.
func BuildPartial(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b int, active []bool) (*Partial, error) {
	if c < 1 {
		return nil, fmt.Errorf("shortcut: congestion threshold %d < 1", c)
	}
	if b < 0 {
		return nil, fmt.Errorf("shortcut: negative block budget %d", b)
	}
	if t.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("shortcut: tree has %d nodes, graph has %d", t.NumNodes(), g.NumNodes())
	}
	n := g.NumNodes()
	k := p.NumParts()
	isActive := func(i int) bool { return active == nil || active[i] }

	// Bottom-up sweep: S[v] maps part -> representative node, accumulating
	// the parts intersecting the T\O subtree below v. cutAbove[v] marks v's
	// parent edge as overcongested.
	//
	// Representatives are kept at minimal depth: the shallowest part node in
	// the subtree. This matters for certificate extraction — the paper's
	// independence argument (the "potentially present" probability of an
	// edge (e, P_i) is independent of P_i being sampled) requires the tree
	// path from v_e to the representative to contain no other P_i node,
	// which holds exactly for a minimal-depth representative.
	S := make([]map[int]int, n)
	cutAbove := make([]bool, n)
	pr := &Partial{IE: make(map[int][]PartRep), DegB: make([]int, k)}

	for idx := len(t.Order) - 1; idx >= 0; idx-- {
		v := t.Order[idx]
		sv := S[v]
		if sv == nil {
			sv = make(map[int]int, 1)
		}
		if pi := p.PartOf[v]; pi >= 0 && isActive(pi) {
			// v is shallower than every node merged from its children, so
			// it always becomes the representative of its own part.
			sv[pi] = v
		}
		parent := t.Parent[v]
		if parent < 0 {
			S[v] = sv
			continue
		}
		if len(sv) >= c {
			// v's parent edge is overcongested: cut it, record I_e.
			cutAbove[v] = true
			e := t.ParentEdge[v]
			pr.Overcongested = append(pr.Overcongested, e)
			reps := make([]PartRep, 0, len(sv))
			for part, rep := range sv {
				reps = append(reps, PartRep{Part: part, Rep: rep})
				pr.DegB[part]++
			}
			sort.Slice(reps, func(i, j int) bool { return reps[i].Part < reps[j].Part })
			pr.IE[e] = reps
			S[v] = nil
			continue
		}
		// Merge into the parent (small-to-large, keeping the shallower
		// representative on conflicts).
		sp := S[parent]
		if sp == nil {
			S[parent] = sv
		} else {
			if len(sp) < len(sv) {
				sp, sv = sv, sp
				S[parent] = sp
			}
			for part, rep := range sv {
				if cur, ok := sp[part]; !ok || t.Depth[rep] < t.Depth[cur] {
					sp[part] = rep
				}
			}
		}
		S[v] = nil
	}
	sort.Ints(pr.Overcongested)

	// Case (I): cover parts whose bipartite degree is within budget, giving
	// them every ancestor edge in the forest T\O.
	pr.Shortcut = AssembleFromCuts(g, t, p, cutAbove, active, b)
	return pr, nil
}

// AssembleFromCuts performs Case (I) of the Theorem 3.1 proof given the
// overcongested-edge indicator (cutAbove[v] marks v's parent edge as cut):
// every active part touching at most b non-root components of T\O is
// covered with all its ancestor edges in the forest. It is shared by the
// centralized construction and the harvest step of the distributed one.
func AssembleFromCuts(g *graph.Graph, t *tree.Rooted, p *partition.Partition, cutAbove []bool, active []bool, b int) *Shortcut {
	n := g.NumNodes()
	k := p.NumParts()
	isActive := func(i int) bool { return active == nil || active[i] }

	// Component roots of T\O, top-down.
	compRoot := make([]int, n)
	for _, v := range t.Order {
		if t.Parent[v] == -1 || cutAbove[v] {
			compRoot[v] = v
		} else {
			compRoot[v] = compRoot[t.Parent[v]]
		}
	}
	// Bipartite degree: distinct non-root-component roots touched.
	degB := make([]int, k)
	touched := make(map[[2]int]bool)
	for v := 0; v < n; v++ {
		i := p.PartOf[v]
		if i < 0 || !isActive(i) {
			continue
		}
		r := compRoot[v]
		if !cutAbove[r] {
			continue // global root component does not count toward deg_B
		}
		key := [2]int{i, r}
		if !touched[key] {
			touched[key] = true
			degB[i]++
		}
	}

	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	stamp := make([]int, n)
	for v := range stamp {
		stamp[v] = -1
	}
	for i := 0; i < k; i++ {
		if !isActive(i) || degB[i] > b {
			continue
		}
		s.Covered[i] = true
		h := []int{}
		for _, u := range p.Parts[i] {
			for u != -1 && !cutAbove[u] && t.Parent[u] != -1 && stamp[u] != i {
				stamp[u] = i
				h = append(h, t.ParentEdge[u])
				u = t.Parent[u]
			}
		}
		sort.Ints(h)
		s.H[i] = h
	}
	return s
}

// CutAbove reconstructs, for certificate extraction, whether each node's
// parent edge was cut.
func (pr *Partial) cutAboveNodes(t *tree.Rooted) []bool {
	cut := make([]bool, t.NumNodes())
	inO := make(map[int]bool, len(pr.Overcongested))
	for _, e := range pr.Overcongested {
		inO[e] = true
	}
	for v := 0; v < t.NumNodes(); v++ {
		if t.Parent[v] >= 0 && inO[t.ParentEdge[v]] {
			cut[v] = true
		}
	}
	return cut
}
