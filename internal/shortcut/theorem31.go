package shortcut

import (
	"fmt"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Partial is the outcome of one run of the Theorem 3.1 overcongested-edge
// process: a tree-restricted partial shortcut for the parts whose degree in
// the bipartite graph B stayed within the block budget, plus the data needed
// to extract a dense-minor certificate when too many parts failed.
type Partial struct {
	// Shortcut covers the parts with deg_B <= block budget.
	Shortcut *Shortcut
	// Overcongested lists the cut tree edges (the set O), as edge IDs.
	Overcongested []int
	// IE maps every overcongested edge ID to the parts I_e that intersected
	// the T\O subtree below it, paired with a representative node per part
	// (a member of the part reachable from v_e through T\O).
	IE map[int][]PartRep
	// DegB[i] is part i's degree in the bipartite graph B.
	DegB []int
}

// PartRep names a part and its representative node below an overcongested
// edge (the r_{e,P_i} of the paper's proof).
type PartRep struct {
	Part int
	Rep  int
}

// BuildPartial runs the constructive proof of Theorem 3.1 on graph g with
// rooted spanning tree t and the given parts, using congestion threshold c
// (a tree edge is overcongested when >= c parts intersect the subtree
// hanging below it in T\O) and block budget b (parts with more than b
// overcongested edges above them stay uncovered).
//
// With c = 8*delta*D and b = 8*delta, Theorem 3.1 guarantees that at least
// half the parts are covered on any graph with minor density delta and tree
// depth D. active restricts the construction to a subset of parts (nil
// means all); inactive parts neither count toward congestion nor receive
// shortcuts — this is what the Observation 2.7 loop passes on later
// iterations.
//
// The bottom-up sweep accumulates, per node, the set of active parts
// intersecting the T\O subtree below it, merged small-into-large on flat
// pooled tables (see Builder). Representatives are kept at minimal depth:
// the shallowest part node in the subtree. This matters for certificate
// extraction — the paper's independence argument (the "potentially
// present" probability of an edge (e, P_i) is independent of P_i being
// sampled) requires the tree path from v_e to the representative to
// contain no other P_i node, which holds exactly for a minimal-depth
// representative.
func BuildPartial(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b int, active []bool) (*Partial, error) {
	if c < 1 {
		return nil, fmt.Errorf("shortcut: congestion threshold %d < 1", c)
	}
	if b < 0 {
		return nil, fmt.Errorf("shortcut: negative block budget %d", b)
	}
	if t.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("shortcut: tree has %d nodes, graph has %d", t.NumNodes(), g.NumNodes())
	}
	ls := statePool.Get().(*levelState)
	defer statePool.Put(ls)
	ls.prepare(g.NumNodes())

	pr := &Partial{IE: make(map[int][]PartRep), DegB: make([]int, p.NumParts())}
	ls.sweep(t, p, c, active, pr)

	// Case (I): cover parts whose bipartite degree is within budget, giving
	// them every ancestor edge in the forest T\O.
	pr.Shortcut = newEmptyUncovered(g, t, p)
	ls.assemble(g, t, p, active, b, pr.Shortcut, false)
	return pr, nil
}

// AssembleFromCuts performs Case (I) of the Theorem 3.1 proof given the
// overcongested-edge indicator (cutAbove[v] marks v's parent edge as cut):
// every active part touching at most b non-root components of T\O is
// covered with all its ancestor edges in the forest. It is shared by the
// centralized construction and the harvest step of the distributed one.
func AssembleFromCuts(g *graph.Graph, t *tree.Rooted, p *partition.Partition, cutAbove []bool, active []bool, b int) *Shortcut {
	if len(cutAbove) != g.NumNodes() {
		// A short slice would leave stale pooled scratch in the tail and
		// silently corrupt the harvest; fail as loudly as the pre-pool
		// code, which indexed the caller's slice directly.
		panic(fmt.Sprintf("shortcut: cutAbove has %d entries for %d nodes", len(cutAbove), g.NumNodes()))
	}
	ls := statePool.Get().(*levelState)
	defer statePool.Put(ls)
	ls.prepare(g.NumNodes())
	copy(ls.cutAbove, cutAbove)
	s := newEmptyUncovered(g, t, p)
	ls.assemble(g, t, p, active, b, s, false)
	return s
}

// newEmptyUncovered returns a tree-restricted shortcut shell with no part
// covered yet.
func newEmptyUncovered(g *graph.Graph, t *tree.Rooted, p *partition.Partition) *Shortcut {
	k := p.NumParts()
	return &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
}

// CutAbove reconstructs, for certificate extraction, whether each node's
// parent edge was cut.
func (pr *Partial) cutAboveNodes(t *tree.Rooted) []bool {
	cut := make([]bool, t.NumNodes())
	inO := make(map[int]bool, len(pr.Overcongested))
	for _, e := range pr.Overcongested {
		inO[e] = true
	}
	for v := 0; v < t.NumNodes(); v++ {
		if t.Parent[v] >= 0 && inO[t.ParentEdge[v]] {
			cut[v] = true
		}
	}
	return cut
}
