package shortcut

import (
	"math/rand"
	"testing"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

func mustPartition(t *testing.T, g *graph.Graph, parts [][]int) *partition.Partition {
	t.Helper()
	p, err := partition.New(g, parts)
	if err != nil {
		t.Fatalf("partition.New error = %v", err)
	}
	return p
}

func mustTree(t *testing.T, g *graph.Graph, root int) *tree.Rooted {
	t.Helper()
	tr, err := tree.FromBFS(g, root)
	if err != nil {
		t.Fatalf("tree.FromBFS error = %v", err)
	}
	return tr
}

func TestEmptyShortcutMeasure(t *testing.T) {
	g := graph.Path(10)
	p := mustPartition(t, g, [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	s := NewEmpty(g, p)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	q := Measure(s)
	if q.Congestion != 0 {
		t.Errorf("Congestion = %d, want 0", q.Congestion)
	}
	if q.Dilation != 4 {
		t.Errorf("Dilation = %d, want 4 (each part is a 5-path)", q.Dilation)
	}
	if q.MaxBlocks != 5 {
		t.Errorf("MaxBlocks = %d, want 5 (every node its own block)", q.MaxBlocks)
	}
	if q.CoveredParts != 2 {
		t.Errorf("CoveredParts = %d, want 2", q.CoveredParts)
	}
}

func TestMeasureWheelRim(t *testing.T) {
	// The paper's Section 2 example: rim part with induced diameter
	// Theta(n); a shortcut through the center via two spokes collapses it.
	g := graph.Wheel(12)
	p, err := partition.WheelRim(g)
	if err != nil {
		t.Fatalf("WheelRim error = %v", err)
	}
	s := NewEmpty(g, p)
	if q := Measure(s); q.Dilation != 5 {
		t.Errorf("empty-shortcut dilation = %d, want 5 (11-cycle)", q.Dilation)
	}
	// Give the rim every spoke edge: dilation drops to <= 2 hops via center.
	var spokes []int
	for _, a := range g.Neighbors(0) {
		spokes = append(spokes, a.Edge)
	}
	s.H[0] = spokes
	q := Measure(s)
	if q.Dilation != 2 {
		t.Errorf("spoke-shortcut dilation = %d, want 2", q.Dilation)
	}
	if q.Congestion != 1 {
		t.Errorf("Congestion = %d, want 1", q.Congestion)
	}
}

func TestMeasureAugmentedUsesOnlyPartInducedAndHEdges(t *testing.T) {
	// G = path 0-1-2-3-4 plus chord {0,4}. Part {0,4} with H = {edge(0,1)}:
	// the augmented graph has nodes {0,1,4} and edges {0,4} (induced on the
	// part) and {0,1} (H). Node 1 connects only through H; the G-edge {1,2}
	// is outside and must not appear.
	g := graph.Path(5)
	chord := g.AddEdge(0, 4)
	p := mustPartition(t, g, [][]int{{0, 4}})
	s := NewEmpty(g, p)
	s.H[0] = []int{0} // edge {0,1}
	q := Measure(s)
	if q.Dilation != 2 {
		t.Errorf("Dilation = %d, want 2 (4-0-1)", q.Dilation)
	}
	_ = chord
}

func TestValidateRejectsBadShortcut(t *testing.T) {
	g := graph.Cycle(6)
	p := mustPartition(t, g, [][]int{{0, 1, 2}})
	s := NewEmpty(g, p)
	s.H[0] = []int{99}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted out-of-range edge")
	}
	s.H[0] = []int{1, 1}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted duplicate edge")
	}
	// Tree-restricted shortcut using a non-tree edge.
	tr := mustTree(t, g, 0)
	s2 := &Shortcut{G: g, Parts: p, Tree: tr, H: [][]int{nil}, Covered: []bool{true}}
	for id := 0; id < g.NumEdges(); id++ {
		if !tr.EdgeSet()[id] {
			s2.H[0] = []int{id}
			break
		}
	}
	if err := s2.Validate(); err == nil {
		t.Error("Validate accepted non-tree edge in tree-restricted shortcut")
	}
}

func TestBuildPartialRejectsBadParams(t *testing.T) {
	g := graph.Path(4)
	p := mustPartition(t, g, [][]int{{0, 1}})
	tr := mustTree(t, g, 0)
	if _, err := BuildPartial(g, tr, p, 0, 1, nil); err == nil {
		t.Error("BuildPartial accepted c = 0")
	}
	if _, err := BuildPartial(g, tr, p, 1, -1, nil); err == nil {
		t.Error("BuildPartial accepted negative b")
	}
	other := mustTree(t, graph.Path(5), 0)
	if _, err := BuildPartial(g, other, p, 1, 1, nil); err == nil {
		t.Error("BuildPartial accepted mismatched tree")
	}
}

func TestBuildPartialSinglePartGetsRootPath(t *testing.T) {
	// One part on a path graph, generous thresholds: no edge overcongested,
	// the part receives all ancestor edges up to the root, one block.
	g := graph.Path(8)
	p := mustPartition(t, g, [][]int{{6, 7}})
	tr := mustTree(t, g, 0)
	pr, err := BuildPartial(g, tr, p, 10, 10, nil)
	if err != nil {
		t.Fatalf("BuildPartial error = %v", err)
	}
	if len(pr.Overcongested) != 0 {
		t.Errorf("Overcongested = %v, want none", pr.Overcongested)
	}
	if !pr.Shortcut.Covered[0] {
		t.Fatal("part not covered")
	}
	if got := len(pr.Shortcut.H[0]); got != 7 {
		t.Errorf("H_0 has %d edges, want 7 (all path edges)", got)
	}
	q := Measure(pr.Shortcut)
	if q.MaxBlocks != 1 {
		t.Errorf("MaxBlocks = %d, want 1", q.MaxBlocks)
	}
}

func TestBuildPartialOvercongestion(t *testing.T) {
	// Star with center root: every leaf its own part, c = 3. Leaf edges
	// carry exactly one part each (never cut); the paper's process only
	// counts parts below an edge, so no edge is overcongested here.
	g := graph.Star(6)
	parts := [][]int{{1}, {2}, {3}, {4}, {5}}
	p := mustPartition(t, g, parts)
	tr := mustTree(t, g, 0)
	pr, err := BuildPartial(g, tr, p, 3, 8, nil)
	if err != nil {
		t.Fatalf("BuildPartial error = %v", err)
	}
	if len(pr.Overcongested) != 0 {
		t.Errorf("Overcongested = %v, want none (each subtree has 1 part)", pr.Overcongested)
	}
	for i := range parts {
		if !pr.Shortcut.Covered[i] {
			t.Errorf("part %d not covered", i)
		}
	}
}

func TestBuildPartialCutsDeepEdge(t *testing.T) {
	// Caterpillar rooted at one end: spine node s has `legs` leaf parts
	// below it plus the spine continuation. With c small, spine edges near
	// the root must be overcongested.
	g := graph.Caterpillar(6, 4) // spine 6, 4 legs each: 30 nodes
	var parts [][]int
	for v := 0; v < g.NumNodes(); v++ {
		parts = append(parts, []int{v})
	}
	p := mustPartition(t, g, parts)
	tr := mustTree(t, g, 0)
	c := 6
	pr, err := BuildPartial(g, tr, p, c, 100, nil)
	if err != nil {
		t.Fatalf("BuildPartial error = %v", err)
	}
	if len(pr.Overcongested) == 0 {
		t.Fatal("expected overcongested edges on the spine")
	}
	for _, e := range pr.Overcongested {
		if got := len(pr.IE[e]); got < c {
			t.Errorf("overcongested edge %d has |I_e| = %d < c = %d", e, got, c)
		}
	}
	// Kept edges must have load < c among covered parts.
	loads := EdgeLoads(pr.Shortcut)
	for e, load := range loads {
		if load >= c {
			t.Errorf("kept edge %d has load %d >= c = %d", e, load, c)
		}
	}
}

func TestBuildPartialCongestionAndBlocksInvariant(t *testing.T) {
	// Random graphs, random partitions: for every (c, b), the partial
	// shortcut must satisfy congestion < c and blocks <= b+1 for covered
	// parts, and uncovered parts must have DegB > b.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(60)
		m := n - 1 + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.RandomConnected(n, m, rng)
		k := 2 + rng.Intn(n/2)
		p, err := partition.BFSBlobs(g, k, rng)
		if err != nil {
			t.Fatalf("BFSBlobs error = %v", err)
		}
		tr := mustTree(t, g, rng.Intn(n))
		c := 2 + rng.Intn(8)
		b := rng.Intn(6)
		pr, err := BuildPartial(g, tr, p, c, b, nil)
		if err != nil {
			t.Fatalf("BuildPartial error = %v", err)
		}
		if err := pr.Shortcut.Validate(); err != nil {
			t.Fatalf("shortcut invalid: %v", err)
		}
		q := Measure(pr.Shortcut)
		if q.Congestion >= c {
			t.Errorf("trial %d: congestion %d >= c %d", trial, q.Congestion, c)
		}
		if q.CoveredParts > 0 && q.MaxBlocks > b+1 {
			t.Errorf("trial %d: blocks %d > b+1 = %d", trial, q.MaxBlocks, b+1)
		}
		for i, covered := range pr.Shortcut.Covered {
			if !covered && pr.DegB[i] <= b {
				t.Errorf("trial %d: part %d uncovered with DegB %d <= b %d", trial, i, pr.DegB[i], b)
			}
		}
	}
}

func TestBuildPartialTheorem31Coverage(t *testing.T) {
	// Theorem 3.1: with c = 8*delta*D and b = 8*delta, at least half the
	// parts are covered. Grid graphs are planar: delta < 3, so delta = 3 is
	// a safe upper bound.
	rng := rand.New(rand.NewSource(7))
	g := graph.Grid(12, 12)
	tr := mustTree(t, g, 0)
	depth := tr.MaxDepth()
	for _, k := range []int{4, 12, 36} {
		p, err := partition.BFSBlobs(g, k, rng)
		if err != nil {
			t.Fatalf("BFSBlobs error = %v", err)
		}
		pr, err := BuildPartial(g, tr, p, 8*3*depth, 8*3, nil)
		if err != nil {
			t.Fatalf("BuildPartial error = %v", err)
		}
		covered := pr.Shortcut.CoveredCount()
		if covered*2 < k {
			t.Errorf("k=%d: covered %d < k/2 (Theorem 3.1 violated)", k, covered)
		}
	}
}

func TestBuildPartialActiveMask(t *testing.T) {
	g := graph.Path(10)
	p := mustPartition(t, g, [][]int{{0, 1}, {4, 5}, {8, 9}})
	tr := mustTree(t, g, 0)
	active := []bool{true, false, true}
	pr, err := BuildPartial(g, tr, p, 5, 5, active)
	if err != nil {
		t.Fatalf("BuildPartial error = %v", err)
	}
	if pr.Shortcut.Covered[1] {
		t.Error("inactive part was covered")
	}
	if !pr.Shortcut.Covered[0] || !pr.Shortcut.Covered[2] {
		t.Error("active parts not covered")
	}
}

func TestChooseRoot(t *testing.T) {
	// On a path the chosen root must be the middle node, halving tree depth.
	g := graph.Path(21)
	root := ChooseRoot(g)
	if root != 10 {
		t.Errorf("ChooseRoot(path21) = %d, want 10", root)
	}
	tr := mustTree(t, g, root)
	if tr.MaxDepth() != 10 {
		t.Errorf("tree depth = %d, want 10", tr.MaxDepth())
	}
	if got := ChooseRoot(graph.New(0)); got != 0 {
		t.Errorf("ChooseRoot(empty) = %d, want 0", got)
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.in); got != tt.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMeasureApproxPathForLargeParts(t *testing.T) {
	// A trivial-baseline shortcut on a big wheel puts the whole BFS tree in
	// the rim's H, pushing the augmented subgraph past the exact-diameter
	// limit: Measure must fall back to the double-sweep upper bound and say
	// so, and the bound must still dominate the true dilation (2 here).
	g := graph.Wheel(2000)
	p, err := partition.WheelRim(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Trivial(g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Measure(s)
	if q.DilationExact {
		t.Error("DilationExact = true for a 2000-node augmented subgraph")
	}
	exact := PartDilation(s, 0)
	if exact < 0 {
		t.Fatal("augmented rim subgraph disconnected")
	}
	if q.Dilation < exact {
		t.Errorf("approx dilation %d below exact %d", q.Dilation, exact)
	}
	if q.Dilation > 2*exact {
		t.Errorf("approx dilation %d above twice the exact value %d", q.Dilation, exact)
	}
}

func TestMeasureDisconnectedAugmentedSentinel(t *testing.T) {
	// An H-edge island with no connection to its part: G[P]+H is
	// disconnected, and Measure must report the n+1 sentinel dilation
	// (unbounded) rather than a finite value.
	g := graph.Path(5) // edges 0:{0,1} 1:{1,2} 2:{2,3} 3:{3,4}
	p := mustPartition(t, g, [][]int{{0, 1}})
	s := &Shortcut{G: g, Parts: p, H: [][]int{{3}}, Covered: []bool{true}}
	q := Measure(s)
	if q.Dilation != g.NumNodes()+1 {
		t.Errorf("dilation = %d, want sentinel %d", q.Dilation, g.NumNodes()+1)
	}
}

func TestPartDilation(t *testing.T) {
	g := graph.Wheel(10)
	p, err := partition.WheelRim(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewEmpty(g, p)
	if d := PartDilation(s, 0); d != 4 {
		t.Errorf("rim dilation = %d, want 4 (9-cycle)", d)
	}
	if d := PartDilation(s, 1); d != 0 {
		t.Errorf("hub dilation = %d, want 0", d)
	}
}

func TestChooseRootNearRadius(t *testing.T) {
	// The chosen root's BFS depth must be close to the radius, not the
	// diameter — the property every δD bound depends on.
	tests := []struct {
		name     string
		g        *graph.Graph
		maxDepth int
	}{
		{name: "grid 15x15", g: graph.Grid(15, 15), maxDepth: 15},
		{name: "path 31", g: graph.Path(31), maxDepth: 16},
		{name: "wheel 50", g: graph.Wheel(50), maxDepth: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := mustTree(t, tt.g, ChooseRoot(tt.g))
			if tr.MaxDepth() > tt.maxDepth {
				t.Errorf("depth = %d, want <= %d", tr.MaxDepth(), tt.maxDepth)
			}
		})
	}
}
