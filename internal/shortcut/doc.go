// Package shortcut implements the paper's primary contribution:
// low-congestion shortcuts for graphs excluding dense minors.
//
// A shortcut (Definition 2.2) assigns to every part P_i of a partition a
// subgraph H_i of G such that the diameter of G[P_i]+H_i is small (dilation)
// while every edge appears in few H_i (congestion). This package provides
//
//   - the Shortcut type and quality measurement (congestion, dilation,
//     block number),
//   - the constructive proof of Theorem 3.1: tree-restricted
//     8δD-congestion 8δ-block partial shortcuts via the overcongested-edge
//     process,
//   - the Observation 2.7 loop turning partial shortcuts into full ones,
//   - the parameter-free doubling search over δ' of the Section 3.1 remark
//     (Build), sped up by the speculative parallel Builder (DESIGN.md §5),
//   - the certifying variant of the Section 3.1 remark, which extracts a
//     dense bipartite minor whenever the construction fails, and
//   - the folklore D+sqrt(n) baseline shortcut for general graphs (§1.3).
//
// # Role in the DAG
//
// Depends on internal/graph, internal/partition, internal/tree, and
// internal/minor. It is the cost center of the system: internal/dist runs
// the same harvest (AssembleFromCuts) after its simulated cut waves,
// internal/service caches Build results behind a singleflight, and
// internal/store persists them. The pre-Builder construction is preserved
// in reference.go as the executable specification.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package shortcut
