package shortcut

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Options configures Build.
type Options struct {
	// Tree is the rooted spanning tree to restrict the shortcut to. If nil,
	// a BFS tree rooted near the graph center is used (depth <= diameter).
	Tree *tree.Rooted
	// Delta fixes the minor-density parameter delta'. If zero, Build runs
	// the parameter-free doubling search of the Section 3.1 remark: the
	// first power of two at which the Observation 2.7 loop completes is
	// accepted, and Theorem 3.1 guarantees acceptance at delta' < 2*delta(G).
	Delta int
	// MaxDelta caps the doubling search (default: number of nodes).
	MaxDelta int
	// CongestionFactor and BlockFactor scale the per-iteration congestion
	// threshold c = CongestionFactor*delta'*D and block budget
	// b = BlockFactor*delta'. Both default to the paper's constant 8.
	CongestionFactor int
	BlockFactor      int
	// MaxIterations caps the Observation 2.7 loop (default ceil(log2 k)+2).
	MaxIterations int
	// Certify requests dense-minor certificate extraction whenever a
	// delta' level fails; extracted certificates are returned in the result.
	Certify bool
	// CertAttempts bounds sampling attempts per failed level (default 8D).
	CertAttempts int
	// Rng drives certificate sampling; required only when Certify is set.
	Rng *rand.Rand
}

// Result reports the outcome of Build.
type Result struct {
	Shortcut *Shortcut
	// Delta is the accepted delta' of the doubling search (or Options.Delta).
	Delta int
	// Congestion threshold and block budget used per iteration.
	CongestionThreshold int
	BlockBudget         int
	// Iterations is the number of Observation 2.7 iterations of the
	// accepted level.
	Iterations int
	// TreeDepth is the depth of the tree used.
	TreeDepth int
	// Certificates holds dense-minor witnesses extracted at failed levels
	// (only when Options.Certify is set); Certificates[i].Density() exceeds
	// the delta' of the corresponding failed level, recorded in
	// FailedDeltas[i].
	Certificates []*minor.Mapping
	FailedDeltas []int
}

// ErrDeltaTooSmall is returned by Build when a caller-fixed delta' level
// fails to cover every part. The returned Result still carries any extracted
// certificates.
var ErrDeltaTooSmall = errors.New("shortcut: construction failed at the requested delta'")

// Build constructs a full tree-restricted shortcut for every part, following
// Theorem 3.1 plus the Observation 2.7 halving loop, with the parameter-free
// doubling search over delta'. It errors only on structurally invalid input,
// when a fixed Options.Delta level fails (ErrDeltaTooSmall, with a non-nil
// Result carrying certificates), or when MaxDelta is exhausted (impossible
// for MaxDelta >= 2*delta(G) by Theorem 3.1).
func Build(g *graph.Graph, p *partition.Partition, opts Options) (*Result, error) {
	if p.NumParts() == 0 {
		return nil, fmt.Errorf("shortcut: no parts")
	}
	if opts.Certify && opts.Rng == nil {
		return nil, fmt.Errorf("shortcut: Certify requires Options.Rng")
	}
	t := opts.Tree
	if t == nil {
		var err error
		t, err = tree.FromBFS(g, ChooseRoot(g))
		if err != nil {
			return nil, fmt.Errorf("shortcut: build tree: %w", err)
		}
	}
	depth := t.MaxDepth()
	if depth < 1 {
		depth = 1
	}
	cf := opts.CongestionFactor
	if cf == 0 {
		cf = 8
	}
	bf := opts.BlockFactor
	if bf == 0 {
		bf = 8
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = CeilLog2(p.NumParts()) + 2
	}
	maxDelta := opts.MaxDelta
	if maxDelta == 0 {
		maxDelta = g.NumNodes()
	}
	certAttempts := opts.CertAttempts
	if certAttempts == 0 {
		certAttempts = 8 * depth
	}

	res := &Result{TreeDepth: depth}
	start := opts.Delta
	fixed := start != 0
	if !fixed {
		start = 1
	}
	for delta := start; ; delta *= 2 {
		if !fixed && delta > maxDelta {
			return nil, fmt.Errorf("shortcut: doubling search exhausted at delta' = %d (max %d)", delta, maxDelta)
		}
		c := cf * delta * depth
		b := bf * delta
		s, iters, lastPartial, ok, err := runLevel(g, t, p, c, b, maxIter)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Shortcut = s
			res.Delta = delta
			res.CongestionThreshold = c
			res.BlockBudget = b
			res.Iterations = iters
			return res, nil
		}
		if opts.Certify && lastPartial != nil {
			if m, found := ExtractCertificate(g, t, p, lastPartial, float64(delta), certAttempts, opts.Rng); found {
				res.Certificates = append(res.Certificates, m)
				res.FailedDeltas = append(res.FailedDeltas, delta)
			}
		}
		if fixed {
			return res, fmt.Errorf("shortcut: delta' = %d: %w", opts.Delta, ErrDeltaTooSmall)
		}
	}
}

// runLevel runs the Observation 2.7 loop at a fixed (c, b) level. It returns
// the accumulated shortcut, the iteration count, the last partial result
// (for certificate extraction on failure), and whether every part was
// covered.
func runLevel(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b, maxIter int) (*Shortcut, int, *Partial, bool, error) {
	k := p.NumParts()
	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	remaining := k
	var last *Partial
	for iter := 1; iter <= maxIter; iter++ {
		pr, err := BuildPartial(g, t, p, c, b, active)
		if err != nil {
			return nil, 0, nil, false, err
		}
		last = pr
		progress := 0
		for i := 0; i < k; i++ {
			if active[i] && pr.Shortcut.Covered[i] {
				s.Covered[i] = true
				s.H[i] = pr.Shortcut.H[i]
				active[i] = false
				progress++
			}
		}
		remaining -= progress
		if remaining == 0 {
			return s, iter, last, true, nil
		}
		if progress == 0 {
			return s, iter, last, false, nil
		}
	}
	return s, maxIter, last, false, nil
}

// ChooseRoot picks a BFS root near the graph center: it finds an
// approximately longest shortest path by double sweep and returns the
// minimum-eccentricity node on it. (Taking the path midpoint instead is a
// known trap: the BFS path between two grid corners can run along the
// boundary, whose midpoint is another corner with eccentricity equal to the
// diameter.) Cost is O(D*m) preprocessing; the resulting BFS tree has depth
// close to the radius.
func ChooseRoot(g *graph.Graph) int {
	if g.NumNodes() == 0 {
		return 0
	}
	_, a := graph.Eccentricity(g, 0)
	r := graph.BFS(g, a)
	far, dist := a, 0
	for v, d := range r.Dist {
		if d > dist {
			far, dist = v, d
		}
	}
	best, bestEcc := far, -1
	for v := far; v != -1; v = r.Parent[v] {
		ecc, _ := graph.Eccentricity(g, v)
		if bestEcc == -1 || ecc < bestEcc {
			best, bestEcc = v, ecc
		}
	}
	// Greedy descent on eccentricity: the path argmin can still sit on the
	// boundary (e.g. an edge-middle of a grid); stepping to any neighbor
	// that strictly lowers the eccentricity converges to a near-central
	// node in at most diameter steps. Each step examines at most
	// maxDescentNeighbors neighbors so that high-degree hubs (a wheel
	// center has n-1 neighbors, each check a full BFS) stay cheap.
	const maxDescentNeighbors = 32
	for improved := true; improved; {
		improved = false
		for i, a := range g.Neighbors(best) {
			if i >= maxDescentNeighbors {
				break
			}
			ecc, _ := graph.Eccentricity(g, a.To)
			if ecc < bestEcc {
				best, bestEcc = a.To, ecc
				improved = true
				break
			}
		}
	}
	return best
}

// CeilLog2 returns ⌈log₂x⌉ (0 for x ≤ 1); shared by the iteration and
// sample-size budgets across the shortcut, dist, and bench layers.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
