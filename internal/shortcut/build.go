package shortcut

import (
	"errors"
	"math/bits"
	"math/rand"
	"time"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Options configures Build.
type Options struct {
	// Tree is the rooted spanning tree to restrict the shortcut to. If nil,
	// a BFS tree rooted near the graph center is used (depth <= diameter).
	Tree *tree.Rooted
	// Delta fixes the minor-density parameter delta'. If zero, Build runs
	// the parameter-free doubling search of the Section 3.1 remark: the
	// first power of two at which the Observation 2.7 loop completes is
	// accepted, and Theorem 3.1 guarantees acceptance at delta' < 2*delta(G).
	Delta int
	// MaxDelta caps the doubling search (default: number of nodes).
	MaxDelta int
	// CongestionFactor and BlockFactor scale the per-iteration congestion
	// threshold c = CongestionFactor*delta'*D and block budget
	// b = BlockFactor*delta'. Both default to the paper's constant 8.
	CongestionFactor int
	BlockFactor      int
	// MaxIterations caps the Observation 2.7 loop (default ceil(log2 k)+2).
	MaxIterations int
	// Parallelism caps the number of delta' levels the doubling search
	// races speculatively (default GOMAXPROCS; 1 forces the sequential
	// search). The accepted level and the canonical shortcut are identical
	// at every setting — levels are pure functions of their inputs and the
	// smallest completing level wins — so Parallelism is an execution hint,
	// not part of the result's identity (the service layer excludes it
	// from content addressing). Certify and fixed-Delta builds always run
	// sequentially.
	Parallelism int
	// Certify requests dense-minor certificate extraction whenever a
	// delta' level fails; extracted certificates are returned in the result.
	Certify bool
	// CertAttempts bounds sampling attempts per failed level (default 8D).
	CertAttempts int
	// Rng drives certificate sampling; required only when Certify is set.
	Rng *rand.Rand
	// CollectStages, when set, records a wall-clock stage breakdown — tree
	// construction, every doubling-search level tried, and the accepted
	// level's sweep/assemble split — into Result.Stages and the level
	// sequence into Result.LevelsTried. Timing-only: the constructed
	// shortcut is identical with or without it, so the service layer
	// excludes it from content addressing exactly like Parallelism.
	CollectStages bool
}

// Stage is one timed phase of a Build call: Start is the offset from the
// start of the call, Dur the phase's wall-clock cost. For the speculative
// parallel search, level stages overlap in time; the accepted level's
// cumulative "sweep" and "assemble" stages share its start offset.
type Stage struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Result reports the outcome of Build.
type Result struct {
	Shortcut *Shortcut
	// Delta is the accepted delta' of the doubling search (or Options.Delta).
	Delta int
	// Congestion threshold and block budget used per iteration.
	CongestionThreshold int
	BlockBudget         int
	// Iterations is the number of Observation 2.7 iterations of the
	// accepted level.
	Iterations int
	// TreeDepth is the depth of the tree used.
	TreeDepth int
	// Certificates holds dense-minor witnesses extracted at failed levels
	// (only when Options.Certify is set); Certificates[i].Density() exceeds
	// the delta' of the corresponding failed level, recorded in
	// FailedDeltas[i].
	Certificates []*minor.Mapping
	FailedDeltas []int
	// Stages is the stage-timing breakdown, populated only when
	// Options.CollectStages is set (both fields stay nil otherwise so the
	// uninstrumented cold path allocates exactly as before).
	Stages []Stage
	// LevelsTried lists the delta' levels the doubling search attempted, in
	// order, ending with the accepted level.
	LevelsTried []int
}

// ErrDeltaTooSmall is returned by Build when a caller-fixed delta' level
// fails to cover every part. The returned Result still carries any extracted
// certificates.
var ErrDeltaTooSmall = errors.New("shortcut: construction failed at the requested delta'")

// Build constructs a full tree-restricted shortcut for every part, following
// Theorem 3.1 plus the Observation 2.7 halving loop, with the parameter-free
// doubling search over delta'. It errors only on structurally invalid input,
// when a fixed Options.Delta level fails (ErrDeltaTooSmall, with a non-nil
// Result carrying certificates), or when MaxDelta is exhausted (impossible
// for MaxDelta >= 2*delta(G) by Theorem 3.1).
//
// Build allocates a fresh Builder per call; callers constructing in a loop
// (or serving concurrent requests) should hold their own Builder (or pool
// of Builders) and call its Build method to reuse scratch memory.
func Build(g *graph.Graph, p *partition.Partition, opts Options) (*Result, error) {
	return NewBuilder().Build(g, p, opts)
}

// ChooseRoot picks a BFS root near the graph center: it finds an
// approximately longest shortest path by double sweep and returns the
// minimum-eccentricity node on it. (Taking the path midpoint instead is a
// known trap: the BFS path between two grid corners can run along the
// boundary, whose midpoint is another corner with eccentricity equal to the
// diameter.) Cost is O(D*m) preprocessing; the resulting BFS tree has depth
// close to the radius. All sweeps share one BFS scratch, so the search
// allocates O(n) total regardless of how many candidates it examines.
func ChooseRoot(g *graph.Graph) int {
	if g.NumNodes() == 0 {
		return 0
	}
	var ecc graph.BFSResult // scratch for eccentricity probes
	_, a := graph.EccentricityInto(&ecc, g, 0)
	r := graph.BFS(g, a) // held across the probes below: needs its own result
	far, dist := a, 0
	for v, d := range r.Dist {
		if d > dist {
			far, dist = v, d
		}
	}
	best, bestEcc := far, -1
	for v := far; v != -1; v = r.Parent[v] {
		e, _ := graph.EccentricityInto(&ecc, g, v)
		if bestEcc == -1 || e < bestEcc {
			best, bestEcc = v, e
		}
	}
	// Greedy descent on eccentricity: the path argmin can still sit on the
	// boundary (e.g. an edge-middle of a grid); stepping to any neighbor
	// that strictly lowers the eccentricity converges to a near-central
	// node in at most diameter steps. Each step examines at most
	// maxDescentNeighbors neighbors so that high-degree hubs (a wheel
	// center has n-1 neighbors, each check a full BFS) stay cheap.
	const maxDescentNeighbors = 32
	for improved := true; improved; {
		improved = false
		for i, a := range g.Neighbors(best) {
			if i >= maxDescentNeighbors {
				break
			}
			e, _ := graph.EccentricityInto(&ecc, g, a.To)
			if e < bestEcc {
				best, bestEcc = a.To, e
				improved = true
				break
			}
		}
	}
	return best
}

// CeilLog2 returns ⌈log₂x⌉ (0 for x ≤ 1); shared by the iteration and
// sample-size budgets across the shortcut, dist, and bench layers.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
