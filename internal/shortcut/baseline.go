package shortcut

import (
	"fmt"
	"math"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// Trivial builds the folklore D+sqrt(n) shortcut for general graphs
// described in Section 1.3 of the paper: parts larger than sqrt(n) receive
// the entire BFS tree T as their shortcut (at most sqrt(n) such parts exist,
// bounding congestion by sqrt(n); their dilation is at most 2*depth(T)),
// while smaller parts receive nothing (their induced diameter is below their
// size, at most sqrt(n)). This is the baseline underlying the classical
// O~(D+sqrt(n)) minimum spanning tree algorithms of Kutten and Peleg.
func Trivial(g *graph.Graph, p *partition.Partition, t *tree.Rooted) (*Shortcut, error) {
	if t == nil {
		var err error
		t, err = tree.FromBFS(g, ChooseRoot(g))
		if err != nil {
			return nil, fmt.Errorf("shortcut: build tree: %w", err)
		}
	}
	threshold := int(math.Ceil(math.Sqrt(float64(g.NumNodes()))))
	var treeEdges []int
	for v := 0; v < t.NumNodes(); v++ {
		if t.Parent[v] >= 0 {
			treeEdges = append(treeEdges, t.ParentEdge[v])
		}
	}
	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, p.NumParts()),
		Covered: make([]bool, p.NumParts()),
	}
	for i, part := range p.Parts {
		s.Covered[i] = true
		if len(part) > threshold {
			h := make([]int, len(treeEdges))
			copy(h, treeEdges)
			s.H[i] = h
		} else {
			s.H[i] = []int{}
		}
	}
	return s, nil
}
