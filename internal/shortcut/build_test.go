package shortcut

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"locshort/internal/graph"
	"locshort/internal/partition"
)

func TestBuildCoversEverythingOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name     string
		g        *graph.Graph
		k        int
		deltaMax int // known upper bound on delta(G), for bound checks
	}{
		{name: "grid", g: graph.Grid(10, 10), k: 10, deltaMax: 3},
		{name: "torus", g: graph.Torus(8, 8), k: 8, deltaMax: 5},
		{name: "wheel", g: graph.Wheel(50), k: 5, deltaMax: 3},
		{name: "ktree3", g: graph.KTree(60, 3, rng), k: 10, deltaMax: 3},
		{name: "cycle", g: graph.Cycle(40), k: 6, deltaMax: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := partition.BFSBlobs(tt.g, tt.k, rng)
			if err != nil {
				t.Fatalf("BFSBlobs error = %v", err)
			}
			res, err := Build(tt.g, p, Options{})
			if err != nil {
				t.Fatalf("Build error = %v", err)
			}
			s := res.Shortcut
			if err := s.Validate(); err != nil {
				t.Fatalf("shortcut invalid: %v", err)
			}
			if s.CoveredCount() != tt.k {
				t.Fatalf("covered %d of %d parts", s.CoveredCount(), tt.k)
			}
			// The doubling search accepts at delta' < 2*delta(G) by
			// Theorem 3.1; allow the theoretical slack exactly.
			if res.Delta >= 2*tt.deltaMax {
				t.Errorf("accepted delta' = %d, want < %d", res.Delta, 2*tt.deltaMax)
			}
			q := Measure(s)
			d := res.TreeDepth
			maxIter := CeilLog2(tt.k) + 2
			if q.Congestion > res.CongestionThreshold*maxIter {
				t.Errorf("congestion %d exceeds c*maxIter = %d", q.Congestion, res.CongestionThreshold*maxIter)
			}
			if want := (res.BlockBudget + 1) * (2*d + 1); q.Dilation > want {
				t.Errorf("dilation %d exceeds (b+1)(2D+1) = %d (Observation 2.6)", q.Dilation, want)
			}
			if q.MaxBlocks > res.BlockBudget+1 {
				t.Errorf("blocks %d exceed b+1 = %d", q.MaxBlocks, res.BlockBudget+1)
			}
		})
	}
}

func TestBuildIterationsWithinLog(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Grid(14, 14)
	p, err := partition.BFSBlobs(g, 28, rng)
	if err != nil {
		t.Fatalf("BFSBlobs error = %v", err)
	}
	res, err := Build(g, p, Options{})
	if err != nil {
		t.Fatalf("Build error = %v", err)
	}
	if max := CeilLog2(28) + 2; res.Iterations > max {
		t.Errorf("iterations = %d, want <= %d (Observation 2.7)", res.Iterations, max)
	}
}

func TestBuildFixedDeltaFailsWhenTooSmall(t *testing.T) {
	// The Lemma 3.2 instance with reduced constants: at c = depth and b = 1
	// the rows cannot all be covered, so a fixed delta' must fail with
	// ErrDeltaTooSmall. (With the paper's constant 8, failing instances
	// require k > 8*depth parts, which only exists at delta > 20 scales —
	// about 10^6 nodes; reduced factors exercise the same code path.)
	lb, err := graph.LowerBound(6, 32)
	if err != nil {
		t.Fatalf("LowerBound error = %v", err)
	}
	p, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		t.Fatalf("partition error = %v", err)
	}
	_, err = Build(lb.G, p, Options{Delta: 1, CongestionFactor: 1, BlockFactor: 1, MaxIterations: 3})
	if !errors.Is(err, ErrDeltaTooSmall) {
		t.Fatalf("Build error = %v, want ErrDeltaTooSmall", err)
	}
}

func TestBuildNoParts(t *testing.T) {
	g := graph.Path(4)
	p := &partition.Partition{PartOf: []int{-1, -1, -1, -1}}
	if _, err := Build(g, p, Options{}); err == nil {
		t.Error("Build accepted empty partition")
	}
}

func TestBuildCertifyRequiresRng(t *testing.T) {
	g := graph.Complete(16)
	p, err := partition.Singletons(g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(g, p, Options{Certify: true})
	if err == nil {
		t.Error("Build with Certify but no Rng did not error")
	}
}

func TestBuildOnLowerBoundGraph(t *testing.T) {
	// Lemma 3.2 instance: the builder must still terminate with full
	// coverage, and the measured quality must respect the lower bound
	// (delta'-3)*D'/6 — nothing can beat it.
	lb, err := graph.LowerBound(5, 12)
	if err != nil {
		t.Fatalf("LowerBound error = %v", err)
	}
	p, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		t.Fatalf("partition error = %v", err)
	}
	res, err := Build(lb.G, p, Options{})
	if err != nil {
		t.Fatalf("Build error = %v", err)
	}
	q := Measure(res.Shortcut)
	if float64(q.Value()) < lb.QualityLowerBound {
		t.Errorf("measured quality %d beats the Lemma 3.2 lower bound %v — impossible",
			q.Value(), lb.QualityLowerBound)
	}
}

func TestTrivialBaselineQuality(t *testing.T) {
	// The D+sqrt(n) baseline: congestion <= number of big parts <= sqrt(n),
	// dilation <= max(2*depth, sqrt(n)).
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid(12, 12)
	p, err := partition.BFSBlobs(g, 12, rng)
	if err != nil {
		t.Fatalf("BFSBlobs error = %v", err)
	}
	s, err := Trivial(g, p, nil)
	if err != nil {
		t.Fatalf("Trivial error = %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	q := Measure(s)
	if q.Congestion > 12 {
		t.Errorf("congestion %d > sqrt(n) = 12", q.Congestion)
	}
	if q.Dilation > 2*s.Tree.MaxDepth()+12 {
		t.Errorf("dilation %d > 2*depth + sqrt(n)", q.Dilation)
	}
	if q.CoveredParts != 12 {
		t.Errorf("CoveredParts = %d, want 12", q.CoveredParts)
	}
}

func TestBuildRespectsProvidedTree(t *testing.T) {
	g := graph.Grid(6, 6)
	tr := mustTree(t, g, 35)
	rng := rand.New(rand.NewSource(4))
	p, err := partition.BFSBlobs(g, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, p, Options{Tree: tr})
	if err != nil {
		t.Fatalf("Build error = %v", err)
	}
	if res.Shortcut.Tree != tr {
		t.Error("Build ignored the provided tree")
	}
	if res.TreeDepth != tr.MaxDepth() {
		t.Errorf("TreeDepth = %d, want %d", res.TreeDepth, tr.MaxDepth())
	}
}

// Property: Build on random connected graphs with random partitions always
// terminates, covers everything, and satisfies the Theorem 1.2 shape
// congestion <= c*iters, dilation <= (b+1)(2D+1).
func TestBuildInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(nRaw)%40
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(n)
		if m > maxM {
			m = maxM
		}
		g := graph.RandomConnected(n, m, rng)
		k := 1 + int(kRaw)%(n/2)
		p, err := partition.BFSBlobs(g, k, rng)
		if err != nil {
			return false
		}
		res, err := Build(g, p, Options{})
		if err != nil {
			return false
		}
		if res.Shortcut.CoveredCount() != k {
			return false
		}
		if err := res.Shortcut.Validate(); err != nil {
			return false
		}
		q := Measure(res.Shortcut)
		if q.Congestion > res.CongestionThreshold*res.Iterations {
			return false
		}
		return q.Dilation <= (res.BlockBudget+1)*(2*res.TreeDepth+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
