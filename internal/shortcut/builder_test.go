package shortcut

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// testFamilies mirrors the internal/bench workload families (grid, torus,
// k-trees, wheel rim, the Lemma 3.2 lower-bound rows, and a random graph)
// at unit-test sizes.
func testFamilies(t *testing.T) []struct {
	name string
	g    *graph.Graph
	p    *partition.Partition
} {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	mk := func(name string, g *graph.Graph, p *partition.Partition, err error) struct {
		name string
		g    *graph.Graph
		p    *partition.Partition
	} {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return struct {
			name string
			g    *graph.Graph
			p    *partition.Partition
		}{name, g, p}
	}
	var fams []struct {
		name string
		g    *graph.Graph
		p    *partition.Partition
	}
	grid := graph.Grid(14, 14)
	gp, err := partition.BFSBlobs(grid, 14, rng)
	fams = append(fams, mk("grid", grid, gp, err))
	torus := graph.Torus(10, 10)
	tp, err := partition.BFSBlobs(torus, 10, rng)
	fams = append(fams, mk("torus", torus, tp, err))
	kt := graph.KTree(120, 4, rng)
	kp, err := partition.BFSBlobs(kt, 10, rng)
	fams = append(fams, mk("ktree", kt, kp, err))
	wheel := graph.Wheel(80)
	wp, err := partition.WheelRim(wheel)
	fams = append(fams, mk("wheel", wheel, wp, err))
	lb, err := graph.LowerBound(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := partition.New(lb.G, lb.Rows)
	fams = append(fams, mk("lb", lb.G, lp, err))
	rnd := graph.RandomConnected(90, 200, rng)
	rp, err := partition.BFSBlobs(rnd, 12, rng)
	fams = append(fams, mk("random", rnd, rp, err))
	return fams
}

// shortcutFingerprint hashes the canonical content of a shortcut: covered
// flags and sorted H edge-ID sets, plus the accepted parameters.
func shortcutFingerprint(res *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "delta=%d c=%d b=%d iters=%d depth=%d;", res.Delta, res.CongestionThreshold,
		res.BlockBudget, res.Iterations, res.TreeDepth)
	for i, hi := range res.Shortcut.H {
		fmt.Fprintf(h, "part %d covered=%v:", i, res.Shortcut.Covered[i])
		for _, e := range hi {
			fmt.Fprintf(h, " %d", e)
		}
		fmt.Fprint(h, ";")
	}
	return h.Sum64()
}

// TestBuilderMatchesReference asserts byte-identical canonical shortcuts
// (same covered parts, same sorted edge-ID sets, same accepted delta' and
// level parameters) between the flat Builder and the preserved map-based
// reference path, with one Builder reused across all families to exercise
// scratch recycling.
func TestBuilderMatchesReference(t *testing.T) {
	b := NewBuilder()
	for _, f := range testFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			want, err := BuildReference(f.g, f.p, Options{})
			if err != nil {
				t.Fatalf("reference Build: %v", err)
			}
			got, err := b.Build(f.g, f.p, Options{})
			if err != nil {
				t.Fatalf("Builder.Build: %v", err)
			}
			if got.Delta != want.Delta || got.CongestionThreshold != want.CongestionThreshold ||
				got.BlockBudget != want.BlockBudget || got.Iterations != want.Iterations ||
				got.TreeDepth != want.TreeDepth {
				t.Fatalf("parameters differ: got (delta=%d c=%d b=%d iters=%d depth=%d), want (delta=%d c=%d b=%d iters=%d depth=%d)",
					got.Delta, got.CongestionThreshold, got.BlockBudget, got.Iterations, got.TreeDepth,
					want.Delta, want.CongestionThreshold, want.BlockBudget, want.Iterations, want.TreeDepth)
			}
			if !reflect.DeepEqual(got.Shortcut.Covered, want.Shortcut.Covered) {
				t.Fatal("coverage differs from reference")
			}
			if !reflect.DeepEqual(got.Shortcut.H, want.Shortcut.H) {
				t.Fatal("H edge sets differ from reference")
			}
			if err := got.Shortcut.Validate(); err != nil {
				t.Fatalf("Builder shortcut invalid: %v", err)
			}
		})
	}
}

// TestBuildPartialMatchesReference checks the single-sweep primitive: cut
// set, bipartite degrees, I_e part lists, and the Case (I) shortcut must
// match the map path exactly; representatives must sit at the same
// (minimal) depth, though depth ties may resolve to different nodes.
func TestBuildPartialMatchesReference(t *testing.T) {
	for _, f := range testFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			tr, err := tree.FromBFS(f.g, ChooseRoot(f.g))
			if err != nil {
				t.Fatal(err)
			}
			depth := tr.MaxDepth()
			if depth < 1 {
				depth = 1
			}
			for _, cb := range [][2]int{{2, 0}, {depth, 1}, {2 * depth, 4}} {
				c, b := cb[0], cb[1]
				want, err := buildPartialReference(f.g, tr, f.p, c, b, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := BuildPartial(f.g, tr, f.p, c, b, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Overcongested, want.Overcongested) {
					t.Fatalf("c=%d b=%d: overcongested sets differ", c, b)
				}
				if !reflect.DeepEqual(got.DegB, want.DegB) {
					t.Fatalf("c=%d b=%d: DegB differs", c, b)
				}
				if !reflect.DeepEqual(got.Shortcut.Covered, want.Shortcut.Covered) ||
					!reflect.DeepEqual(got.Shortcut.H, want.Shortcut.H) {
					t.Fatalf("c=%d b=%d: Case (I) shortcut differs", c, b)
				}
				if len(got.IE) != len(want.IE) {
					t.Fatalf("c=%d b=%d: IE covers %d edges, want %d", c, b, len(got.IE), len(want.IE))
				}
				for e, wreps := range want.IE {
					greps := got.IE[e]
					if len(greps) != len(wreps) {
						t.Fatalf("edge %d: %d reps, want %d", e, len(greps), len(wreps))
					}
					for i := range wreps {
						if greps[i].Part != wreps[i].Part {
							t.Fatalf("edge %d entry %d: part %d, want %d", e, i, greps[i].Part, wreps[i].Part)
						}
						if tr.Depth[greps[i].Rep] != tr.Depth[wreps[i].Rep] {
							t.Fatalf("edge %d part %d: rep depth %d, want minimal depth %d",
								e, wreps[i].Part, tr.Depth[greps[i].Rep], tr.Depth[wreps[i].Rep])
						}
					}
				}
			}
		})
	}
}

// TestParallelDoublingMatchesSequential pins the speculative search: under
// fixed seeds, every Parallelism setting must accept the same delta' and
// produce the same canonical shortcut fingerprint as the sequential
// search. CI additionally runs this test under -race.
func TestParallelDoublingMatchesSequential(t *testing.T) {
	b := NewBuilder()
	for _, f := range testFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			seq, err := b.Build(f.g, f.p, Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			want := shortcutFingerprint(seq)
			for _, par := range []int{0, 2, runtime.GOMAXPROCS(0) + 3} {
				got, err := b.Build(f.g, f.p, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if got.Delta != seq.Delta {
					t.Fatalf("parallelism %d accepted delta' %d, sequential %d", par, got.Delta, seq.Delta)
				}
				if fp := shortcutFingerprint(got); fp != want {
					t.Fatalf("parallelism %d fingerprint %016x, sequential %016x", par, fp, want)
				}
			}
		})
	}
}

// TestParallelSearchDeeperDoubling forces a multi-level doubling search
// (tight factors make low delta' levels fail) so the speculative waves
// actually race and reject levels before accepting.
func TestParallelSearchDeeperDoubling(t *testing.T) {
	lb, err := graph.LowerBound(6, 24)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(lb.G, lb.Rows)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CongestionFactor: 1, BlockFactor: 1}
	seqOpts := opts
	seqOpts.Parallelism = 1
	seq, err := NewBuilder().Build(lb.G, p, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Delta < 2 {
		t.Fatalf("test instance accepted at delta'=%d; need a deeper doubling search", seq.Delta)
	}
	par, err := NewBuilder().Build(lb.G, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if shortcutFingerprint(par) != shortcutFingerprint(seq) {
		t.Fatalf("parallel accepted delta'=%d with different canonical shortcut than sequential delta'=%d",
			par.Delta, seq.Delta)
	}
}

// TestBuilderAllocReduction is the acceptance gate for the flat Builder:
// a reused Builder must allocate at least 2x fewer objects per Build than
// the preserved map-based reference path on a grid workload.
func TestBuilderAllocReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid(32, 32)
	p, err := partition.BFSBlobs(g, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	ref := testing.AllocsPerRun(5, func() {
		if _, err := BuildReference(g, p, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	b := NewBuilder()
	b.Build(g, p, Options{Parallelism: 1}) // warm the scratch
	flat := testing.AllocsPerRun(5, func() {
		if _, err := b.Build(g, p, Options{Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: reference %.0f, builder %.0f (%.1fx)", ref, flat, ref/flat)
	if flat*2 > ref {
		t.Errorf("builder allocates %.0f objects/op, want <= half of reference's %.0f", flat, ref)
	}
}

// TestBuilderResultsSurviveReuse guards the no-aliasing contract: results
// returned by earlier Build calls must stay intact after the builder's
// scratch is reused by later calls on other inputs.
func TestBuilderResultsSurviveReuse(t *testing.T) {
	b := NewBuilder()
	fams := testFamilies(t)
	type snap struct {
		res *Result
		fp  uint64
	}
	var snaps []snap
	for _, f := range fams {
		res, err := b.Build(f.g, f.p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		snaps = append(snaps, snap{res: res, fp: shortcutFingerprint(res)})
	}
	for i, f := range fams {
		if fp := shortcutFingerprint(snaps[i].res); fp != snaps[i].fp {
			t.Errorf("%s: result mutated by later builds on the same Builder", f.name)
		}
		if err := snaps[i].res.Shortcut.Validate(); err != nil {
			t.Errorf("%s: result invalid after reuse: %v", f.name, err)
		}
	}
}

// TestCollectStages asserts that stage collection is timing-only — the
// canonical shortcut is identical with and without it, in both the
// sequential and speculative search — and that the breakdown carries every
// expected stage: tree construction, one level stage per LevelsTried entry,
// and the accepted level's sweep/assemble split.
func TestCollectStages(t *testing.T) {
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, f := range testFamilies(t) {
			plain, err := Build(f.g, f.p, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s par=%d: %v", f.name, par, err)
			}
			staged, err := Build(f.g, f.p, Options{Parallelism: par, CollectStages: true})
			if err != nil {
				t.Fatalf("%s par=%d staged: %v", f.name, par, err)
			}
			if shortcutFingerprint(plain) != shortcutFingerprint(staged) {
				t.Errorf("%s par=%d: CollectStages changed the canonical shortcut", f.name, par)
			}
			if plain.Stages != nil || plain.LevelsTried != nil {
				t.Errorf("%s par=%d: stages recorded without CollectStages", f.name, par)
			}
			if len(staged.LevelsTried) == 0 ||
				staged.LevelsTried[len(staged.LevelsTried)-1] != staged.Delta {
				t.Errorf("%s par=%d: LevelsTried %v does not end at accepted delta %d",
					f.name, par, staged.LevelsTried, staged.Delta)
			}
			names := make(map[string]int)
			for _, st := range staged.Stages {
				names[st.Name]++
				if st.Dur < 0 || st.Start < 0 {
					t.Errorf("%s par=%d: negative timing in stage %+v", f.name, par, st)
				}
			}
			for _, want := range []string{"choose_root", "bfs_tree", "sweep", "assemble"} {
				if names[want] != 1 {
					t.Errorf("%s par=%d: stage %q appears %d times, want 1 (stages %v)",
						f.name, par, want, names[want], staged.Stages)
				}
			}
			for _, dl := range staged.LevelsTried {
				if names[levelStageName(dl)] != 1 {
					t.Errorf("%s par=%d: no stage for tried level %d", f.name, par, dl)
				}
			}
		}
	}
}
