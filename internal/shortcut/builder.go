package shortcut

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// stageClock collects the Result.Stages breakdown of one Build call. A nil
// clock (Options.CollectStages unset) makes every method a no-op, so the
// uninstrumented path pays only nil checks. Methods other than since must
// only be called from the coordinating goroutine; speculative levels read
// the clock through since (start is immutable) and write their own
// levelTimes slots instead.
type stageClock struct {
	start  time.Time
	stages []Stage
}

//locshort:nondeterministic-ok timing-only instrumentation: stage clocks feed traces and metrics, never the construction
func newStageClock() *stageClock { return &stageClock{start: time.Now()} }

//locshort:nondeterministic-ok timing-only instrumentation: stage clocks feed traces and metrics, never the construction
func (sc *stageClock) since() time.Duration {
	if sc == nil {
		return 0
	}
	return time.Since(sc.start)
}

func (sc *stageClock) add(name string, start, dur time.Duration) {
	if sc == nil {
		return
	}
	sc.stages = append(sc.stages, Stage{Name: name, Start: start, Dur: dur})
}

// span times an inline stage: call at the stage start, invoke the returned
// func at its end.
//
//locshort:nondeterministic-ok timing-only instrumentation: stage clocks feed traces and metrics, never the construction
func (sc *stageClock) span(name string) func() {
	if sc == nil {
		return func() {}
	}
	begin := time.Since(sc.start)
	return func() { sc.add(name, begin, time.Since(sc.start)-begin) }
}

// levelTimes is one doubling-search level's timing slot: its start offset
// and total duration, plus the cumulative sweep/assemble split across the
// level's Observation 2.7 iterations. Each speculative level owns its slot;
// the coordinator reads them only after the wave's WaitGroup barrier.
type levelTimes struct {
	start    time.Duration
	total    time.Duration
	sweep    time.Duration
	assemble time.Duration
}

func levelStageName(delta int) string { return fmt.Sprintf("level(d=%d)", delta) }

// Builder is the flat-state construction core behind Build: it owns every
// piece of scratch memory the Theorem 3.1 overcongested-edge process and
// the Observation 2.7 loop need, so repeated constructions — the doubling
// search's levels, the service layer's cold builds, benchmark loops — stop
// paying per-call allocation for per-node maps.
//
// Three ideas replace the map-based bookkeeping of the original path
// (preserved in reference.go and tested equivalent):
//
//   - Part sets are open-addressing (part, representative) tables drawn
//     from a per-builder size-class pool, merged small-into-large along
//     the bottom-up sweep exactly like the original per-node maps.
//   - Component roots, bipartite degrees, and ancestor-walk dedup use
//     dense epoch-stamped slices keyed by node and part ID, cleared by
//     bumping an epoch instead of reallocating.
//   - The doubling search over delta' is speculative: up to
//     Options.Parallelism levels race on independent levelStates, and the
//     smallest level that completes is accepted — the same level, and the
//     same canonical shortcut, the sequential search accepts.
//
// A Builder is NOT safe for concurrent use; it is itself the unit pooled
// by concurrent callers (internal/service keeps a sync.Pool of Builders).
// Everything a Build call returns — the Result, the Shortcut, its H
// slices, the BFS tree — is freshly allocated and never aliased by the
// builder's scratch, so results stay valid across subsequent Build calls
// on the same Builder.
type Builder struct {
	states []*levelState

	// Root-choice memo: ChooseRoot is a multi-BFS sweep and depends only
	// on the graph topology, so repeated builds against the same graph
	// (the service layer's steady state) reuse the previous answer. The
	// edge/node counts guard against mutation between calls.
	lastG    *graph.Graph
	lastN    int
	lastM    int
	lastRoot int
}

// NewBuilder returns an empty Builder; scratch is allocated lazily and
// grows to the largest (graph, partition) seen.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) state(i int) *levelState {
	for len(b.states) <= i {
		b.states = append(b.states, new(levelState))
	}
	return b.states[i]
}

func (b *Builder) chooseRoot(g *graph.Graph) int {
	if g == b.lastG && g.NumNodes() == b.lastN && g.NumEdges() == b.lastM {
		return b.lastRoot
	}
	root := ChooseRoot(g)
	b.lastG, b.lastN, b.lastM, b.lastRoot = g, g.NumNodes(), g.NumEdges(), root
	return root
}

// Build is Builder-backed shortcut construction; see the package-level
// Build for the contract. The accepted delta', covered parts, and
// canonical H edge sets are identical to the sequential map-based path
// for every input and any Parallelism setting.
func (b *Builder) Build(g *graph.Graph, p *partition.Partition, opts Options) (*Result, error) {
	if p.NumParts() == 0 {
		return nil, fmt.Errorf("shortcut: no parts")
	}
	if opts.Certify && opts.Rng == nil {
		return nil, fmt.Errorf("shortcut: Certify requires Options.Rng")
	}
	var sc *stageClock
	if opts.CollectStages {
		sc = newStageClock()
	}
	t := opts.Tree
	if t == nil {
		done := sc.span("choose_root")
		root := b.chooseRoot(g)
		done()
		done = sc.span("bfs_tree")
		var err error
		t, err = tree.FromBFS(g, root)
		done()
		if err != nil {
			return nil, fmt.Errorf("shortcut: build tree: %w", err)
		}
	}
	if t.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("shortcut: tree has %d nodes, graph has %d", t.NumNodes(), g.NumNodes())
	}
	depth := t.MaxDepth()
	if depth < 1 {
		depth = 1
	}
	cf := opts.CongestionFactor
	if cf == 0 {
		cf = 8
	}
	bf := opts.BlockFactor
	if bf == 0 {
		bf = 8
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = CeilLog2(p.NumParts()) + 2
	}
	maxDelta := opts.MaxDelta
	if maxDelta == 0 {
		maxDelta = g.NumNodes()
	}

	res := &Result{TreeDepth: depth}
	fixed := opts.Delta != 0
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// The speculative search needs independent levels: a fixed delta' has
	// only one, and certificate extraction consumes Options.Rng draws in
	// failed-level order, which only the sequential schedule preserves.
	if fixed || opts.Certify || par == 1 {
		return b.buildSequential(g, t, p, res, opts, cf, bf, maxIter, maxDelta, depth, sc)
	}

	for delta := 1; ; {
		// One wave: race the next up-to-par levels of the doubling search.
		var levels []int
		next := delta
		for len(levels) < par && next <= maxDelta {
			levels = append(levels, next)
			next *= 2
		}
		if len(levels) == 0 {
			return nil, fmt.Errorf("shortcut: doubling search exhausted at delta' = %d (max %d)", delta, maxDelta)
		}
		type outcome struct {
			s     *Shortcut
			iters int
			ok    bool
			err   error
		}
		outs := make([]outcome, len(levels))
		var lts []levelTimes
		if sc != nil {
			lts = make([]levelTimes, len(levels))
		}
		// accepted is the lowest wave index that has completed with full
		// coverage; higher levels poll it and abandon their (moot) runs.
		var accepted atomic.Int32
		accepted.Store(int32(len(levels)))
		var wg sync.WaitGroup
		for i, dl := range levels {
			ls := b.state(i)
			wg.Add(1)
			go func(i int, dl int, ls *levelState) {
				defer wg.Done()
				var lt *levelTimes
				if lts != nil {
					lt = &lts[i]
					lt.start = sc.since()
				}
				s, iters, _, ok, err := ls.runLevel(g, t, p, cf*dl*depth, bf*dl, maxIter, false, &accepted, int32(i), lt)
				if lt != nil {
					lt.total = sc.since() - lt.start
				}
				outs[i] = outcome{s: s, iters: iters, ok: ok, err: err}
				if ok {
					for {
						cur := accepted.Load()
						if int32(i) >= cur || accepted.CompareAndSwap(cur, int32(i)) {
							break
						}
					}
				}
			}(i, dl, ls)
		}
		wg.Wait()
		// Scan in level order: the smallest accepted level wins, exactly
		// as in the sequential search. Levels below it ran to completion
		// (they never abandon), so their errors, had the sequential
		// search hit them first, surface here too.
		for i, dl := range levels {
			o := outs[i]
			if o.err != nil {
				return nil, o.err
			}
			if sc != nil {
				res.LevelsTried = append(res.LevelsTried, dl)
				sc.add(levelStageName(dl), lts[i].start, lts[i].total)
				if o.ok {
					sc.add("sweep", lts[i].start, lts[i].sweep)
					sc.add("assemble", lts[i].start, lts[i].assemble)
					res.Stages = sc.stages
				}
			}
			if o.ok {
				res.Shortcut = o.s
				res.Delta = dl
				res.CongestionThreshold = cf * dl * depth
				res.BlockBudget = bf * dl
				res.Iterations = o.iters
				return res, nil
			}
		}
		delta = next
	}
}

// buildSequential runs the classic one-level-at-a-time doubling search on
// the builder's first levelState, including the certifying variant.
func (b *Builder) buildSequential(g *graph.Graph, t *tree.Rooted, p *partition.Partition, res *Result,
	opts Options, cf, bf, maxIter, maxDelta, depth int, sc *stageClock) (*Result, error) {
	certAttempts := opts.CertAttempts
	if certAttempts == 0 {
		certAttempts = 8 * depth
	}
	ls := b.state(0)
	start := opts.Delta
	fixed := start != 0
	if !fixed {
		start = 1
	}
	for delta := start; ; delta *= 2 {
		if !fixed && delta > maxDelta {
			return nil, fmt.Errorf("shortcut: doubling search exhausted at delta' = %d (max %d)", delta, maxDelta)
		}
		c := cf * delta * depth
		bb := bf * delta
		var lt *levelTimes
		if sc != nil {
			lt = &levelTimes{start: sc.since()}
		}
		s, iters, lastPartial, ok, err := ls.runLevel(g, t, p, c, bb, maxIter, opts.Certify, nil, 0, lt)
		if sc != nil {
			lt.total = sc.since() - lt.start
			res.LevelsTried = append(res.LevelsTried, delta)
			sc.add(levelStageName(delta), lt.start, lt.total)
		}
		if err != nil {
			return nil, err
		}
		if ok {
			if sc != nil {
				sc.add("sweep", lt.start, lt.sweep)
				sc.add("assemble", lt.start, lt.assemble)
				res.Stages = sc.stages
			}
			res.Shortcut = s
			res.Delta = delta
			res.CongestionThreshold = c
			res.BlockBudget = bb
			res.Iterations = iters
			return res, nil
		}
		if opts.Certify && lastPartial != nil {
			if m, found := ExtractCertificate(g, t, p, lastPartial, float64(delta), certAttempts, opts.Rng); found {
				res.Certificates = append(res.Certificates, m)
				res.FailedDeltas = append(res.FailedDeltas, delta)
			}
		}
		if fixed {
			return res, fmt.Errorf("shortcut: delta' = %d: %w", opts.Delta, ErrDeltaTooSmall)
		}
	}
}

// levelState is the scratch memory for one run of the Observation 2.7
// level loop: the per-node part sets of the bottom-up sweep, the cut
// indicator, and the epoch-stamped slices of the Case (I) harvest. One
// levelState serves one goroutine; the Builder keeps one per speculative
// level.
type levelState struct {
	sets     setPool
	setOf    []*partSet
	cutAbove []bool
	compRoot []int32
	// stampNode dedups ancestor walks; stampRoot dedups (part, component)
	// pairs when counting bipartite degrees. Both are compared against
	// epoch values handed out by nextEpoch, so "clearing" them is one
	// increment.
	stampNode []int32
	stampRoot []int32
	epoch     int32
	active    []bool
	// hBuf accumulates one part's H edges before they are copied into an
	// exact-size result slice, so growth reallocation is paid once per
	// levelState instead of per part.
	hBuf []int
}

// prepare sizes the scratch for an n-node graph. Stamp slices keep their
// stale contents: epochs only grow, so stale stamps never collide.
func (ls *levelState) prepare(n int) {
	if cap(ls.setOf) < n {
		ls.setOf = make([]*partSet, n)
		ls.cutAbove = make([]bool, n)
		ls.compRoot = make([]int32, n)
		ls.stampNode = make([]int32, n)
		ls.stampRoot = make([]int32, n)
		ls.epoch = 0
		return
	}
	ls.setOf = ls.setOf[:n]
	ls.cutAbove = ls.cutAbove[:n]
	ls.compRoot = ls.compRoot[:n]
	ls.stampNode = ls.stampNode[:n]
	ls.stampRoot = ls.stampRoot[:n]
}

func (ls *levelState) nextEpoch() int32 {
	if ls.epoch == math.MaxInt32 {
		for i := range ls.stampNode {
			ls.stampNode[i] = 0
			ls.stampRoot[i] = 0
		}
		ls.epoch = 0
	}
	ls.epoch++
	return ls.epoch
}

// runLevel runs the Observation 2.7 loop at a fixed (c, b) level. cancel,
// when non-nil, is the speculative search's accepted-level watermark: once
// a lower level accepts, this run abandons (its outcome is moot). lt, when
// non-nil, accumulates the sweep/assemble wall-clock split across
// iterations; timing never changes what is built. The returned Shortcut
// and Partial are freshly allocated; scratch never escapes.
func (ls *levelState) runLevel(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b, maxIter int,
	certify bool, cancel *atomic.Int32, self int32, lt *levelTimes) (*Shortcut, int, *Partial, bool, error) {
	if c < 1 {
		return nil, 0, nil, false, fmt.Errorf("shortcut: congestion threshold %d < 1", c)
	}
	if b < 0 {
		return nil, 0, nil, false, fmt.Errorf("shortcut: negative block budget %d", b)
	}
	k := p.NumParts()
	ls.prepare(g.NumNodes())
	s := &Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	if cap(ls.active) < k {
		ls.active = make([]bool, k)
	}
	active := ls.active[:k]
	for i := range active {
		active[i] = true
	}
	remaining := k
	var last *Partial
	for iter := 1; iter <= maxIter; iter++ {
		if cancel != nil && cancel.Load() < self {
			return nil, 0, nil, false, nil
		}
		var pr *Partial
		if certify {
			pr = &Partial{IE: make(map[int][]PartRep), DegB: make([]int, k)}
			last = pr
		}
		var progress int
		if lt == nil {
			ls.sweep(t, p, c, active, pr)
			progress = ls.assemble(g, t, p, active, b, s, true)
		} else {
			t0 := time.Now() //locshort:nondeterministic-ok timing-only: levelTimes feeds the stage trace, never the construction
			ls.sweep(t, p, c, active, pr)
			t1 := time.Now() //locshort:nondeterministic-ok timing-only: levelTimes feeds the stage trace, never the construction
			progress = ls.assemble(g, t, p, active, b, s, true)
			lt.sweep += t1.Sub(t0)
			lt.assemble += time.Since(t1) //locshort:nondeterministic-ok timing-only: levelTimes feeds the stage trace, never the construction
		}
		remaining -= progress
		if remaining == 0 {
			return s, iter, last, true, nil
		}
		if progress == 0 {
			return s, iter, last, false, nil
		}
	}
	return s, maxIter, last, false, nil
}

// sweep runs the bottom-up overcongested-edge process, leaving the cut
// indicator in ls.cutAbove. When pr is non-nil it additionally records the
// Partial bookkeeping (set O, I_e with minimal-depth representatives, and
// the sweep-side bipartite degrees) for certificate extraction.
//
// Representatives are kept at minimal depth, ties broken toward the
// smaller node ID — a deterministic choice independent of merge order.
// (The map-based reference breaks depth ties by merge history instead;
// both satisfy the paper's minimal-depth requirement, and the canonical
// shortcut does not depend on representative identity.)
//
//locshort:hotpath
func (ls *levelState) sweep(t *tree.Rooted, p *partition.Partition, c int, active []bool, pr *Partial) {
	for i := range ls.cutAbove {
		ls.cutAbove[i] = false
	}
	depth := t.Depth
	order := t.Order
	for idx := len(order) - 1; idx >= 0; idx-- {
		v := order[idx]
		sv := ls.setOf[v]
		if pi := p.PartOf[v]; pi >= 0 && (active == nil || active[pi]) {
			// v is shallower than every node merged from its children, so
			// it always becomes the representative of its own part.
			sv = ls.insert(sv, int32(pi), int32(v), depth)
		}
		parent := t.Parent[v]
		if parent < 0 {
			if sv != nil {
				ls.sets.put(sv)
			}
			ls.setOf[v] = nil
			continue
		}
		if sv != nil && sv.used >= c {
			// v's parent edge is overcongested: cut it, record I_e.
			ls.cutAbove[v] = true
			if pr != nil {
				e := t.ParentEdge[v]
				pr.Overcongested = append(pr.Overcongested, e)
				reps := make([]PartRep, 0, sv.used)
				for j, key := range sv.keys {
					if key != 0 {
						reps = append(reps, PartRep{Part: int(key - 1), Rep: int(sv.reps[j])})
					}
				}
				//locshort:alloc-ok certificate path: pr is non-nil only on the final iteration of a failed level
				sort.Slice(reps, func(a, b int) bool { return reps[a].Part < reps[b].Part })
				for _, rp := range reps {
					pr.DegB[rp.Part]++
				}
				pr.IE[e] = reps
			}
			ls.sets.put(sv)
			ls.setOf[v] = nil
			continue
		}
		if sv != nil {
			// Merge into the parent, small set into large.
			if sp := ls.setOf[parent]; sp == nil {
				ls.setOf[parent] = sv
			} else {
				if sp.used < sv.used {
					sp, sv = sv, sp
				}
				ls.setOf[parent] = ls.mergeInto(sp, sv, depth)
				ls.sets.put(sv)
			}
		}
		ls.setOf[v] = nil
	}
	if pr != nil {
		sort.Ints(pr.Overcongested)
	}
}

// assemble performs Case (I) of the Theorem 3.1 proof over ls.cutAbove:
// every active part touching at most b non-root components of T\O is
// covered with all its ancestor edges in the forest, written into s. When
// deactivate is set, covered parts are removed from active (the harvest
// step of the level loop). Returns the number of parts covered.
//
//locshort:hotpath
func (ls *levelState) assemble(g *graph.Graph, t *tree.Rooted, p *partition.Partition, active []bool, b int,
	s *Shortcut, deactivate bool) int {
	// Component roots of T\O, top-down.
	compRoot := ls.compRoot
	for _, v := range t.Order {
		if t.Parent[v] == -1 || ls.cutAbove[v] {
			compRoot[v] = int32(v)
		} else {
			compRoot[v] = compRoot[t.Parent[v]]
		}
	}
	progress := 0
	for i := 0; i < p.NumParts(); i++ {
		if active != nil && !active[i] {
			continue
		}
		// Bipartite degree: distinct non-root-component roots touched.
		epoch := ls.nextEpoch()
		degB := 0
		for _, v := range p.Parts[i] {
			r := compRoot[v]
			if !ls.cutAbove[r] {
				continue // global root component does not count toward deg_B
			}
			if ls.stampRoot[r] != epoch {
				ls.stampRoot[r] = epoch
				degB++
			}
		}
		if degB > b {
			continue
		}
		s.Covered[i] = true
		progress++
		epoch = ls.nextEpoch()
		hb := ls.hBuf[:0]
		for _, u := range p.Parts[i] {
			for u != -1 && !ls.cutAbove[u] && t.Parent[u] != -1 && ls.stampNode[u] != epoch {
				ls.stampNode[u] = epoch
				hb = append(hb, t.ParentEdge[u])
				u = t.Parent[u]
			}
		}
		ls.hBuf = hb
		sort.Ints(hb)
		h := make([]int, len(hb))
		copy(h, hb)
		s.H[i] = h
		if deactivate {
			active[i] = false
		}
	}
	return progress
}

// minSetClass is the log2 capacity of the smallest pooled part set.
const minSetClass = 3

// partSet is an open-addressing hash table from part ID to its
// minimal-depth representative node: keys hold part+1 (0 marks an empty
// slot), reps the representative. Capacity is a power of two, load is kept
// under 3/4.
type partSet struct {
	keys []int32
	reps []int32
	used int
}

// setPool recycles partSets by log2-capacity size class. Sets are zeroed
// on release so acquisition is O(1).
type setPool struct {
	free [][]*partSet
}

//locshort:hotpath
func (sp *setPool) get(class int) *partSet {
	for len(sp.free) <= class {
		sp.free = append(sp.free, nil)
	}
	if l := sp.free[class]; len(l) > 0 {
		s := l[len(l)-1]
		sp.free[class] = l[:len(l)-1]
		return s
	}
	n := 1 << class
	return &partSet{keys: make([]int32, n), reps: make([]int32, n)}
}

//locshort:hotpath
func (sp *setPool) put(s *partSet) {
	for i := range s.keys {
		s.keys[i] = 0
	}
	s.used = 0
	sp.free[bits.TrailingZeros(uint(len(s.keys)))] = append(sp.free[bits.TrailingZeros(uint(len(s.keys)))], s)
}

// insert adds (part, rep) to s (allocating it if nil), keeping the
// minimal-depth, minimal-ID representative on conflicts, and returns the
// (possibly grown) set.
//
//locshort:hotpath
func (ls *levelState) insert(s *partSet, part, rep int32, depth []int) *partSet {
	if s == nil {
		s = ls.sets.get(minSetClass)
	} else if 4*(s.used+1) > 3*len(s.keys) {
		s = ls.grow(s)
	}
	mask := uint32(len(s.keys) - 1)
	key := part + 1
	h := (uint32(part) * 0x9E3779B1) & mask
	for {
		switch s.keys[h] {
		case 0:
			s.keys[h] = key
			s.reps[h] = rep
			s.used++
			return s
		case key:
			cur := s.reps[h]
			if depth[rep] < depth[cur] || (depth[rep] == depth[cur] && rep < cur) {
				s.reps[h] = rep
			}
			return s
		}
		h = (h + 1) & mask
	}
}

// grow rehashes s into a set of twice the capacity and recycles s.
//
//locshort:hotpath
func (ls *levelState) grow(s *partSet) *partSet {
	bigger := ls.sets.get(bits.TrailingZeros(uint(len(s.keys))) + 1)
	mask := uint32(len(bigger.keys) - 1)
	for j, key := range s.keys {
		if key == 0 {
			continue
		}
		h := (uint32(key-1) * 0x9E3779B1) & mask
		for bigger.keys[h] != 0 {
			h = (h + 1) & mask
		}
		bigger.keys[h] = key
		bigger.reps[h] = s.reps[j]
	}
	bigger.used = s.used
	ls.sets.put(s)
	return bigger
}

// mergeInto inserts every entry of src into dst and returns the (possibly
// grown) dst. Entries combine by the minimal-depth, minimal-ID rule.
//
//locshort:hotpath
func (ls *levelState) mergeInto(dst, src *partSet, depth []int) *partSet {
	for j, key := range src.keys {
		if key != 0 {
			dst = ls.insert(dst, key-1, src.reps[j], depth)
		}
	}
	return dst
}

// statePool serves the stateless package-level entry points (BuildPartial,
// AssembleFromCuts), which borrow a levelState per call; Build goes
// through a Builder instead.
var statePool = sync.Pool{New: func() any { return new(levelState) }}
