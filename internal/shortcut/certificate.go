package shortcut

import (
	"math/rand"

	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/tree"
)

// ExtractCertificate implements Case (II) of the Theorem 3.1 proof (made
// constructive as suggested by the Section 3.1 remark): given the outcome of
// a failed partial construction, it samples a subset P' of parts with
// probability 1/(4D) each and assembles the bipartite minor B_{P'} whose
// nodes are the sampled parts and the cut-edge components, with an edge
// whenever the representative path of (e, P_i) avoids all sampled parts.
//
// It retries up to attempts times and returns the first mapping whose
// density exceeds delta, after pruning isolated minor nodes (pruning only
// increases density and preserves minor validity). The boolean result
// reports success; the mapping is always a valid minor of g when returned.
//
// The paper shows each attempt succeeds with probability Omega(1/D) when at
// least half the parts have bipartite degree >= 8*delta and every cut edge
// has degree >= 8*delta*D, so attempts = Theta(D) suffices with constant
// probability.
func ExtractCertificate(g *graph.Graph, t *tree.Rooted, p *partition.Partition, pr *Partial, delta float64, attempts int, rng *rand.Rand) (*minor.Mapping, bool) {
	if len(pr.Overcongested) == 0 || attempts < 1 {
		return nil, false
	}
	cut := pr.cutAboveNodes(t)
	// v_e for each cut edge: the deeper endpoint.
	cutNodes := make([]int, 0, len(pr.Overcongested))
	nodeOfEdge := make(map[int]int, len(pr.Overcongested))
	for v := 0; v < t.NumNodes(); v++ {
		if cut[v] {
			cutNodes = append(cutNodes, v)
			nodeOfEdge[t.ParentEdge[v]] = v
		}
	}

	for a := 0; a < attempts; a++ {
		m := buildCandidate(g, t, p, pr, cut, cutNodes, nodeOfEdge, rng)
		if m != nil && m.Density() > delta {
			return m, true
		}
	}
	return nil, false
}

// buildCandidate performs one sampling round and returns the pruned
// bipartite minor, or nil if the sample was empty.
func buildCandidate(g *graph.Graph, t *tree.Rooted, p *partition.Partition, pr *Partial, cut []bool, cutNodes []int, nodeOfEdge map[int]int, rng *rand.Rand) *minor.Mapping {
	n := g.NumNodes()
	d := t.MaxDepth()
	if d < 1 {
		d = 1
	}
	prob := 1 / (4 * float64(d))

	sampled := make([]bool, p.NumParts())
	removed := make([]bool, n)
	any := false
	for i := range sampled {
		if pr.DegB[i] > 0 && rng.Float64() < prob {
			sampled[i] = true
			any = true
			for _, v := range p.Parts[i] {
				removed[v] = true
			}
		}
	}
	if !any {
		return nil
	}

	// Components of (T\O) minus removed nodes.
	comp := graph.NewDSU(n)
	for v := 0; v < n; v++ {
		pa := t.Parent[v]
		if pa >= 0 && !cut[v] && !removed[v] && !removed[pa] {
			comp.Union(v, pa)
		}
	}

	// Minor nodes: sampled parts and surviving cut-edge components.
	type key struct {
		isPart bool
		id     int // part index, or DSU root of the component
	}
	index := make(map[key]int)
	var branchSets [][]int
	nodeIdx := func(k key) int {
		if i, ok := index[k]; ok {
			return i
		}
		index[k] = len(branchSets)
		branchSets = append(branchSets, nil)
		return len(branchSets) - 1
	}
	for i, ok := range sampled {
		if ok {
			j := nodeIdx(key{isPart: true, id: i})
			branchSets[j] = append([]int(nil), p.Parts[i]...)
		}
	}
	edgeNodeOf := make(map[int]int, len(cutNodes)) // v_e -> minor node
	for _, v := range cutNodes {
		if removed[v] {
			continue
		}
		edgeNodeOf[v] = nodeIdx(key{isPart: false, id: comp.Find(v)})
	}
	// Fill component branch sets (only components that host an edge-node).
	wanted := make(map[int]int, len(edgeNodeOf))
	//locshort:nondeterministic-ok all v in one component map to the same memoized j, so write order cannot change the result
	for v, j := range edgeNodeOf {
		wanted[comp.Find(v)] = j
	}
	for v := 0; v < n; v++ {
		if removed[v] {
			continue
		}
		if j, ok := wanted[comp.Find(v)]; ok {
			branchSets[j] = append(branchSets[j], v)
		}
	}

	// Minor edges: (e, P_i) is actually present when P_i is sampled and the
	// tree path from the representative's parent up to v_e avoids removed
	// nodes.
	var edges [][2]int
	for _, e := range pr.Overcongested {
		ve := nodeOfEdge[e]
		if removed[ve] {
			continue
		}
		en := edgeNodeOf[ve]
		for _, rp := range pr.IE[e] {
			if !sampled[rp.Part] {
				continue
			}
			if pathAvoids(t, rp.Rep, ve, removed) {
				edges = append(edges, [2]int{en, index[key{isPart: true, id: rp.Part}]})
			}
		}
	}

	m := &minor.Mapping{BranchSets: branchSets, Edges: edges}
	return pruneIsolated(m)
}

// pathAvoids reports whether the tree path from rep (exclusive) up to ve
// (inclusive) contains no removed node.
func pathAvoids(t *tree.Rooted, rep, ve int, removed []bool) bool {
	u := t.Parent[rep]
	for u != -1 && t.Depth[u] >= t.Depth[ve] {
		if removed[u] {
			return false
		}
		if u == ve {
			return true
		}
		u = t.Parent[u]
	}
	return false
}

// pruneIsolated drops minor nodes with no incident minor edge. The result
// is still a minor (a subgraph of one), with density at least as high.
func pruneIsolated(m *minor.Mapping) *minor.Mapping {
	deg := make([]int, len(m.BranchSets))
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	remap := make([]int, len(m.BranchSets))
	out := &minor.Mapping{}
	for i, bs := range m.BranchSets {
		if deg[i] == 0 {
			remap[i] = -1
			continue
		}
		remap[i] = len(out.BranchSets)
		out.BranchSets = append(out.BranchSets, bs)
	}
	for _, e := range m.Edges {
		out.Edges = append(out.Edges, [2]int{remap[e[0]], remap[e[1]]})
	}
	return out
}
