package jobs_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locshort/internal/jobs"
	"locshort/internal/store"
)

// echoExec returns the request as the result.
func echoExec(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
	return req, nil
}

// waitTerminal blocks until the job is terminal (bounded) and returns the
// final record.
func waitTerminal(t *testing.T, m *jobs.Manager, id jobs.ID) jobs.Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rec, ok := m.Wait(ctx, id)
	if !ok {
		t.Fatalf("Wait: job %s unknown", id)
	}
	if !rec.State.Terminal() {
		t.Fatalf("job %s not terminal after wait: %s", id, rec.State)
	}
	return rec
}

func TestSubmitAndComplete(t *testing.T) {
	m := jobs.New(jobs.Config{Workers: 2}, echoExec)
	m.Start()
	defer m.Close()

	rec, err := m.Submit("shortcut", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != jobs.Queued || rec.ID == 0 || rec.CreatedNs == 0 {
		t.Fatalf("submitted record = %+v, want queued with id and created", rec)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != jobs.Done || string(got.Result) != `{"x":1}` || got.Attempts != 1 {
		t.Fatalf("final record = %+v, want done echoing the request in 1 attempt", got)
	}
	if got.StartedNs == 0 || got.FinishedNs < got.StartedNs {
		t.Errorf("timestamps not monotone: %+v", got)
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats = %+v, want 1 submitted, 1 done, queue drained", st)
	}
}

func TestListOrderAndGet(t *testing.T) {
	m := jobs.New(jobs.Config{}, echoExec) // never started: order is deterministic
	defer m.Close()
	var ids []jobs.ID
	for i := 0; i < 5; i++ {
		rec, err := m.Submit("shortcut", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	list := m.List()
	if len(list) != 5 {
		t.Fatalf("List returned %d records, want 5", len(list))
	}
	for i, rec := range list {
		if rec.ID != ids[i] {
			t.Errorf("List[%d] = %s, want %s (creation order)", i, rec.ID, ids[i])
		}
	}
	if _, ok := m.Get(ids[2]); !ok {
		t.Error("Get of a known id failed")
	}
	if _, ok := m.Get(jobs.ID(0xdead)); ok {
		t.Error("Get of an unknown id succeeded")
	}
}

func TestRetryBudget(t *testing.T) {
	var calls atomic.Int64
	flaky := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return json.RawMessage(`"ok"`), nil
	}
	m := jobs.New(jobs.Config{Workers: 1, Retries: 2}, flaky)
	m.Start()
	defer m.Close()
	rec, err := m.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != jobs.Done || got.Attempts != 3 {
		t.Fatalf("with 2 retries: state=%s attempts=%d, want done after 3 attempts", got.State, got.Attempts)
	}
	if m.Stats().Retries != 2 {
		t.Errorf("Retries counter = %d, want 2", m.Stats().Retries)
	}

	// One retry is not enough for an executor that needs three calls.
	calls.Store(0)
	m2 := jobs.New(jobs.Config{Workers: 1, Retries: 1}, flaky)
	m2.Start()
	defer m2.Close()
	rec2, err := m2.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitTerminal(t, m2, rec2.ID)
	if got2.State != jobs.Failed || got2.Attempts != 2 || got2.Error != "transient" {
		t.Fatalf("with 1 retry: %+v, want failed after 2 attempts with the last error", got2)
	}
}

func TestQueueFull(t *testing.T) {
	m := jobs.New(jobs.Config{QueueDepth: 2}, echoExec) // not started: nothing drains
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("shortcut", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit("shortcut", nil); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("third submit into depth-2 queue: err = %v, want ErrQueueFull", err)
	}
}

func TestCancelQueued(t *testing.T) {
	m := jobs.New(jobs.Config{}, echoExec) // not started: job stays queued
	rec, err := m.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(rec.ID)
	if err != nil || got.State != jobs.Canceled {
		t.Fatalf("Cancel queued = (%+v, %v), want canceled", got, err)
	}
	// Starting afterwards must not run the canceled job.
	m.Start()
	defer m.Close()
	time.Sleep(50 * time.Millisecond)
	if got, _ := m.Get(rec.ID); got.State != jobs.Canceled || got.Attempts != 0 {
		t.Fatalf("after start: %+v, want still canceled with 0 attempts", got)
	}
	// Cancel of a terminal job errors with the snapshot.
	if _, err := m.Cancel(rec.ID); !errors.Is(err, jobs.ErrFinished) {
		t.Errorf("second cancel: err = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel(jobs.ID(0xbeef)); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Errorf("cancel unknown: err = %v, want ErrUnknownJob", err)
	}
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	blocking := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m := jobs.New(jobs.Config{Workers: 1}, blocking)
	m.Start()
	defer m.Close()
	rec, err := m.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, rec.ID)
	if got.State != jobs.Canceled || !got.CancelRequested {
		t.Fatalf("after cancel of running job: %+v, want canceled", got)
	}
}

func TestDurableLifecycleAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: one job runs to completion; three more are accepted but
	// never dispatched (the manager is not started for them — submission
	// durability must not depend on dispatch).
	release := make(chan struct{})
	var execCount atomic.Int64
	gated := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		execCount.Add(1)
		select {
		case <-release:
			return json.RawMessage(`"built"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m1 := jobs.New(jobs.Config{Workers: 1, Store: st}, gated)
	doneRec, err := m1.Submit("shortcut", json.RawMessage(`{"n":0}`))
	if err != nil {
		t.Fatal(err)
	}
	var queued []jobs.ID
	for i := 1; i <= 3; i++ {
		rec, err := m1.Submit("shortcut", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, rec.ID)
	}
	m1.Start()
	close(release)
	if got := waitTerminal(t, m1, doneRec.ID); got.State != jobs.Done {
		t.Fatalf("first job = %+v, want done", got)
	}
	// Wait until the remaining jobs drain too (they were all released).
	for _, id := range queued {
		waitTerminal(t, m1, id)
	}
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reopen. Everything completed in phase 1, so recovery must
	// re-enqueue nothing, keep all results fetchable, and not re-execute.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	before := execCount.Load()
	m2 := jobs.New(jobs.Config{Workers: 1, Store: st2}, gated)
	requeued, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 0 {
		t.Fatalf("Recover re-enqueued %d jobs, want 0 (all done)", requeued)
	}
	m2.Start()
	defer m2.Close()
	got, ok := m2.Get(doneRec.ID)
	if !ok || got.State != jobs.Done || string(got.Result) != `"built"` {
		t.Fatalf("recovered done record = (%+v, %v), want durable done result", got, ok)
	}
	time.Sleep(50 * time.Millisecond)
	if execCount.Load() != before {
		t.Errorf("recovery re-executed completed jobs: %d → %d calls", before, execCount.Load())
	}
	if problems := st2.Verify(); len(problems) != 0 {
		t.Errorf("store verify with job records: %v", problems)
	}
}

func TestRecoveryReenqueuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a running job is interrupted by Close; two more never
	// dispatch. All three must come back queued.
	started := make(chan struct{}, 1)
	hang := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m1 := jobs.New(jobs.Config{Workers: 1, Store: st}, hang)
	m1.Start()
	var ids []jobs.ID
	for i := 0; i < 3; i++ {
		rec, err := m1.Submit("shortcut", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	<-started // one job is mid-run
	m1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recover and drain with a working executor.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := jobs.New(jobs.Config{Workers: 2, Store: st2}, echoExec)
	requeued, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 3 {
		t.Fatalf("Recover re-enqueued %d jobs, want all 3", requeued)
	}
	m2.Start()
	defer m2.Close()
	for i, id := range ids {
		got := waitTerminal(t, m2, id)
		if got.State != jobs.Done || string(got.Result) != fmt.Sprintf(`{"n":%d}`, i) {
			t.Fatalf("recovered job %d = %+v, want done with original request echoed", i, got)
		}
		if got.Attempts != 1 {
			t.Errorf("recovered job %d attempts = %d, want 1 (interrupted run uncharged)", i, got.Attempts)
		}
	}
}

func TestRecoveryFinalizesPendingCancel(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	hang := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		// Simulate an executor that swallows cancellation slowly: the
		// manager shuts down before it finalizes.
		return nil, ctx.Err()
	}
	m1 := jobs.New(jobs.Config{Workers: 1, Store: st}, hang)
	m1.Start()
	rec, err := m1.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Request the cancel, then close immediately: the durable record now
	// carries cancel_requested while running or canceled, depending on
	// who wins — both must end canceled after recovery.
	if _, err := m1.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	st.Close()

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := jobs.New(jobs.Config{Workers: 1, Store: st2}, echoExec)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	m2.Start()
	defer m2.Close()
	got, ok := m2.Get(rec.ID)
	if !ok || got.State != jobs.Canceled {
		t.Fatalf("recovered canceled job = (%+v, %v), want canceled", got, ok)
	}
}

func TestWaitLongPollTimeout(t *testing.T) {
	m := jobs.New(jobs.Config{}, echoExec) // not started: job never finishes
	defer m.Close()
	rec, err := m.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	got, ok := m.Wait(ctx, rec.ID)
	if !ok || got.State != jobs.Queued {
		t.Fatalf("Wait timeout snapshot = (%+v, %v), want the queued record", got, ok)
	}
}

func TestSubmitAfterCloseAndConcurrency(t *testing.T) {
	m := jobs.New(jobs.Config{Workers: 4}, echoExec)
	m.Start()

	// Hammer the manager from many goroutines: submits, waits, cancels,
	// stats. Run under -race in CI.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec, err := m.Submit("shortcut", json.RawMessage(`{}`))
				if err != nil {
					t.Error(err)
					return
				}
				if w%2 == 0 {
					m.Cancel(rec.ID)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				m.Wait(ctx, rec.ID)
				cancel()
				m.Stats()
			}
		}(w)
	}
	wg.Wait()
	m.Close()
	if _, err := m.Submit("shortcut", nil); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
	st := m.Stats()
	if st.Submitted != 200 || st.Done+st.Canceled != 200 {
		t.Errorf("stats after drain = %+v, want 200 submitted all done or canceled", st)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := jobs.Record{
		ID:        jobs.ID(0xabcdef12345678),
		Kind:      "mst",
		Request:   json.RawMessage(`{"kind":"mst"}`),
		State:     jobs.Failed,
		Attempts:  3,
		Error:     "boom",
		CreatedNs: 100, StartedNs: 200, FinishedNs: 300,
	}
	b, err := jobs.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jobs.DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.State != rec.State || got.Error != rec.Error ||
		got.Attempts != rec.Attempts || string(got.Request) != string(rec.Request) {
		t.Fatalf("round trip = %+v, want %+v", got, rec)
	}
	if _, err := jobs.DecodeRecord(nil); err == nil {
		t.Error("decode of empty payload succeeded")
	}
	if _, err := jobs.DecodeRecord([]byte{99}); err == nil {
		t.Error("decode of unknown version succeeded")
	}
	id, err := jobs.ParseID(rec.ID.String())
	if err != nil || id != rec.ID {
		t.Errorf("ParseID(%s) = (%v, %v)", rec.ID, id, err)
	}
	if _, err := jobs.ParseID("xyz"); err == nil {
		t.Error("ParseID of garbage succeeded")
	}
	for _, s := range []jobs.State{jobs.Queued, jobs.Running, jobs.Done, jobs.Failed, jobs.Canceled} {
		got, err := jobs.ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%s) = (%v, %v)", s, got, err)
		}
	}
}

func TestRetentionEvictsToStoreFallback(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := jobs.New(jobs.Config{Workers: 1, Retention: 2, Store: st}, echoExec)
	m.Start()
	defer m.Close()

	var ids []jobs.ID
	for i := 0; i < 5; i++ {
		rec, err := m.Submit("shortcut", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, rec.ID)
		ids = append(ids, rec.ID)
	}
	if n := len(m.List()); n > 2 {
		t.Fatalf("List holds %d records with Retention=2, want <= 2", n)
	}
	// Cumulative counters are not decremented by eviction.
	if st := m.Stats(); st.Done != 5 {
		t.Fatalf("Stats.Done = %d after eviction, want 5", st.Done)
	}
	// Every ID — including evicted ones — still resolves, via the store.
	for i, id := range ids {
		rec, ok := m.Get(id)
		if !ok || rec.State != jobs.Done || string(rec.Result) != fmt.Sprintf(`{"n":%d}`, i) {
			t.Fatalf("Get(%s) after eviction = (%+v, %v), want durable done record", id, rec, ok)
		}
		if rec2, ok := m.Wait(context.Background(), id); !ok || rec2.State != jobs.Done {
			t.Fatalf("Wait(%s) after eviction = (%+v, %v)", id, rec2, ok)
		}
	}
	// Canceling an evicted (terminal) job reports ErrFinished, not 404.
	if _, err := m.Cancel(ids[0]); !errors.Is(err, jobs.ErrFinished) {
		t.Errorf("Cancel of evicted terminal job: err = %v, want ErrFinished", err)
	}
}

func TestRecoverSkipsUndecodableRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// One good queued record, one CRC-valid garbage payload, one record
	// whose embedded ID disagrees with its key.
	good, err := jobs.EncodeRecord(jobs.Record{ID: 5, Kind: "shortcut", State: jobs.Queued, CreatedNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	liar, err := jobs.EncodeRecord(jobs.Record{ID: 8, Kind: "shortcut", State: jobs.Queued, CreatedNs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(5, good); err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(6, []byte{0xff, 'x'}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(7, liar); err != nil {
		t.Fatal(err)
	}
	m := jobs.New(jobs.Config{Workers: 1, Store: st}, echoExec)
	requeued, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover with corrupt records errored: %v (must skip, not brick the boot)", err)
	}
	if requeued != 1 {
		t.Fatalf("Recover re-enqueued %d, want only the good record", requeued)
	}
	if st := m.Stats(); st.RecoverSkipped != 2 {
		t.Fatalf("RecoverSkipped = %d, want 2", st.RecoverSkipped)
	}
	m.Start()
	defer m.Close()
	if got := waitTerminal(t, m, jobs.ID(5)); got.State != jobs.Done {
		t.Fatalf("good record after recovery = %+v, want done", got)
	}
}

func TestCloseDoesNotRequeueGenuineFailure(t *testing.T) {
	// An executor that fails on its own (without consuming the context)
	// while Close is racing in must record failed, not queued: only
	// context-interrupted runs are re-enqueued.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	proceed := make(chan struct{})
	failing := func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		close(started)
		<-proceed // hold until Close has set closing
		return nil, errors.New("genuine failure")
	}
	m := jobs.New(jobs.Config{Workers: 1, Store: st}, failing)
	m.Start()
	rec, err := m.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	go func() {
		// Close cancels the job's context, but the executor returns its
		// own error regardless; release it once Close is underway.
		time.Sleep(20 * time.Millisecond)
		close(proceed)
	}()
	m.Close()
	st.Close()

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := jobs.New(jobs.Config{Workers: 1, Store: st2}, echoExec)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, ok := m2.Get(rec.ID)
	if !ok {
		t.Fatal("job record lost")
	}
	// Close canceled the context before the executor returned, so this
	// run counts as interrupted → queued is the correct durable outcome
	// here; the distinction under test is that a failure *without* a
	// context interruption stays failed, covered below.
	if got.State != jobs.Queued && got.State != jobs.Failed {
		t.Fatalf("post-close state = %s, want queued (interrupted) or failed", got.State)
	}

	// The direct case: executor fails while closing is true but its
	// context was never canceled (job not yet running at Close... instead
	// simulate by failing fast before Close): a plain failure records
	// failed even if a shutdown follows immediately.
	m3 := jobs.New(jobs.Config{Workers: 1}, func(ctx context.Context, kind string, req json.RawMessage) (json.RawMessage, error) {
		return nil, errors.New("boom")
	})
	m3.Start()
	rec3, err := m3.Submit("shortcut", nil)
	if err != nil {
		t.Fatal(err)
	}
	got3 := waitTerminal(t, m3, rec3.ID)
	m3.Close()
	if got3.State != jobs.Failed || got3.Error != "boom" {
		t.Fatalf("plain failure = %+v, want failed/boom", got3)
	}
}
