package jobs

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// ID identifies one async job. It renders as 16 lowercase hex digits like a
// service fingerprint, but it is drawn at random at submission rather than
// content-derived: two submissions of the identical request are two distinct
// jobs (the underlying shortcut build still collapses in the engine's
// singleflight cache — jobs are units of requested work, not of content).
type ID uint64

// String renders the ID in the 16-hex-digit wire form used by the
// locshortd API (`/v1/jobs/{id}`).
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit wire form.
func ParseID(s string) (ID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("jobs: id %q: want 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("jobs: id %q: %w", s, err)
	}
	return ID(v), nil
}

// MarshalJSON renders the ID as its hex string so durable records and API
// responses agree on one form.
func (id ID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex-string form.
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// State is one step of the job lifecycle:
//
//	queued → running → done
//	                 → failed     (after Config.Retries re-runs)
//	                 → canceled   (DELETE /v1/jobs/{id})
//
// A running job interrupted by shutdown or crash transitions back to
// queued (durably), which is how Recover re-enqueues in-flight work on
// warm start.
type State uint8

const (
	// Queued: accepted (and persisted, when a Store is configured) but not
	// yet picked up by a dispatcher.
	Queued State = iota
	// Running: a dispatcher is executing the job.
	Running
	// Done: the executor returned a result; Record.Result holds it.
	Done
	// Failed: the executor errored on every allowed attempt; Record.Error
	// holds the last error.
	Failed
	// Canceled: canceled before completion.
	Canceled
)

var stateNames = [...]string{"queued", "running", "done", "failed", "canceled"}

// String returns the lowercase wire form ("queued", "running", ...).
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ParseState parses the wire form.
func ParseState(s string) (State, error) {
	for i, n := range stateNames {
		if n == s {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("jobs: unknown state %q", s)
}

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// MarshalJSON renders the state as its wire string.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the wire string.
func (s *State) UnmarshalJSON(b []byte) error {
	var n string
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	v, err := ParseState(n)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Record is the full durable state of one async job. Every state
// transition rewrites the whole record under the job ID (newest wins on
// replay, exactly like the store's content records), so a record read back
// from disk is always internally consistent.
type Record struct {
	ID   ID     `json:"id"`
	Kind string `json:"kind"`
	// Request is the original JSON request body, re-executed verbatim on
	// retry and on post-restart re-enqueue.
	Request json.RawMessage `json:"request,omitempty"`
	State   State           `json:"state"`
	// Attempts counts started executions. Interrupted runs (shutdown,
	// crash) are not charged against the retry budget.
	Attempts int `json:"attempts,omitempty"`
	// CancelRequested is set by Cancel on a running job; the dispatcher
	// (or, after a crash, Recover) finalizes the cancellation.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Result is the executor's JSON result, set exactly when State is Done.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the last execution error (set when Failed; kept for
	// visibility across retries while still queued).
	Error string `json:"error,omitempty"`
	// CreatedNs/StartedNs/FinishedNs are wall-clock Unix nanoseconds;
	// StartedNs is zeroed when an interrupted job goes back to queued.
	CreatedNs  int64 `json:"created_ns"`
	StartedNs  int64 `json:"started_ns,omitempty"`
	FinishedNs int64 `json:"finished_ns,omitempty"`
}

// recordVersion prefixes every durable payload so the format can evolve;
// decoders reject unknown versions instead of misreading them.
const recordVersion = 1

// EncodeRecord renders the durable store payload: one version byte
// followed by the record JSON. Unlike graph/partition payloads the bytes
// are not content-addressed (the key is the random job ID and the record
// mutates), so the frame CRC is the integrity check, not the key.
func EncodeRecord(r Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode record %s: %w", r.ID, err)
	}
	return append([]byte{recordVersion}, b...), nil
}

// DecodeRecord parses a durable payload produced by EncodeRecord.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < 1 {
		return r, fmt.Errorf("jobs: empty record payload")
	}
	if b[0] != recordVersion {
		return r, fmt.Errorf("jobs: record payload version %d, want %d", b[0], recordVersion)
	}
	if err := json.Unmarshal(b[1:], &r); err != nil {
		return r, fmt.Errorf("jobs: decode record: %w", err)
	}
	return r, nil
}
