package jobs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locshort/internal/obs"
)

// Executor runs one job. kind and request are exactly what Submit was
// given; the returned JSON becomes Record.Result. The executor must honor
// ctx: it is canceled by Cancel and by Close (shutdown), and an execution
// that returns after ctx fires during shutdown is re-enqueued, not failed.
// Executors run concurrently from up to Config.Workers dispatchers.
type Executor func(ctx context.Context, kind string, request json.RawMessage) (json.RawMessage, error)

// Store is the durable job-record store (implemented by internal/store;
// the interface is defined here with opaque payloads so this package
// depends only on the standard library). All methods must be safe for
// concurrent use.
type Store interface {
	// PutJob durably writes (or supersedes) the record payload under the
	// job ID.
	PutJob(id uint64, payload []byte) error
	// GetJob returns the live record payload for id, if any.
	GetJob(id uint64) ([]byte, bool, error)
	// EachJob calls fn for every live job record. A non-nil error from fn
	// aborts the iteration and is returned.
	EachJob(fn func(id uint64, payload []byte) error) error
}

// Config tunes a Manager. The zero value selects sensible defaults.
type Config struct {
	// QueueDepth bounds accepted-but-unstarted jobs (default 1024); Submit
	// fails with ErrQueueFull beyond it. Retries and recovered jobs are
	// already accepted and bypass the bound.
	QueueDepth int
	// Workers is the dispatcher concurrency (default 4): how many async
	// jobs execute at once. Executions land on the service engine's worker
	// pool, so this bounds in-flight async work, not CPU.
	Workers int
	// Retries is how many times a failed job is re-run before it is
	// recorded failed (default 0: one attempt total).
	Retries int
	// Retention bounds the terminal (done/failed/canceled) records kept in
	// memory (default 4096); beyond it the oldest terminal records are
	// evicted, and — when a Store is configured — Get transparently falls
	// back to the durable record, so results stay fetchable. Queued and
	// running jobs are never evicted.
	Retention int
	// Store, when non-nil, makes jobs durable: a submission is persisted
	// before it is acknowledged, every state transition is persisted, and
	// Recover re-enqueues interrupted work after a restart. A nil Store
	// keeps the manager fully in-memory.
	Store Store
	// Obs, when non-nil, registers the manager's metric families:
	// func-backed counters/gauges over the existing Stats fields (read at
	// scrape time) plus execution, queue-wait, and persist latency
	// histograms.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Retention <= 0 {
		c.Retention = 4096
	}
	return c
}

// Stats is a snapshot of the manager's job population and counters.
// Queued and Running are live gauges; Done, Failed, and Canceled are
// cumulative over everything this manager has observed (including
// records loaded by Recover — in-memory eviction does not decrement
// them). Submitted, Retries, PersistErrors, and RecoverSkipped count
// events in this process's lifetime.
type Stats struct {
	Submitted     uint64 `json:"submitted"`
	Queued        int64  `json:"queued"`
	Running       int64  `json:"running"`
	Done          uint64 `json:"done"`
	Failed        uint64 `json:"failed"`
	Canceled      uint64 `json:"canceled"`
	Retries       uint64 `json:"retries"`
	PersistErrors uint64 `json:"persist_errors"`
	// RecoverSkipped counts durable records Recover could not decode and
	// left on disk untouched (visible to locshortctl, never re-run).
	RecoverSkipped uint64 `json:"recover_skipped"`
}

// Errors returned by Submit, Cancel, and lookup paths. The HTTP layer maps
// them to statuses (429, 503, 404, 409).
var (
	ErrQueueFull  = errors.New("jobs: queue full")
	ErrClosed     = errors.New("jobs: manager closed")
	ErrUnknownJob = errors.New("jobs: unknown job id")
	ErrFinished   = errors.New("jobs: job already finished")
)

// managed is one job plus its runtime-only state.
type managed struct {
	rec    Record
	done   chan struct{}      // closed exactly when rec.State turns terminal
	cancel context.CancelFunc // non-nil while running

	// seq stamps each persisted version (guarded by Manager.mu); written
	// is the highest version on disk (guarded by Manager.persistMu). The
	// pair lets transitions encode under mu but fsync outside it without
	// ever letting a stale version supersede a newer one.
	seq     uint64
	written uint64
}

// persistReq is one captured record version awaiting its durable write.
type persistReq struct {
	j   *managed
	rec Record
	seq uint64
}

// Manager is the asynchronous job manager: a bounded queue of durable job
// records drained by a fixed set of dispatcher goroutines through an
// Executor. Lifecycle: New → (Recover) → Start → ... → Close, mirroring
// the engine's New/WarmStart pattern. Submit works before Start (jobs
// accumulate; locshortd submits only after Start, but tests and drain
// tooling rely on it). All exported methods are safe for concurrent use.
type Manager struct {
	cfg  Config
	exec Executor

	// mu guards the in-memory job state below; cond signals dispatchers
	// when pending grows (and broadcasts on Close). Durable writes happen
	// OUTSIDE mu (see flush): a transition encodes its snapshot under mu
	// and fsyncs under persistMu only, so submissions, lookups, and stats
	// never convoy behind disk flushes. The one exception is Submit,
	// whose persist is part of its contract (no 202 without a durable
	// record) and is ordered before the job becomes visible at all.
	mu      sync.Mutex
	cond    *sync.Cond
	recs    map[ID]*managed
	order   []ID // creation order, for List; compacted as evictions accrue
	pending []ID // queued job IDs awaiting a dispatcher
	// terminals is the eviction FIFO: terminal job IDs oldest-first.
	terminals []ID
	evicted   int // order entries no longer in recs, for compaction
	closing   bool
	started   bool

	queuedN  int64
	runningN int64

	submitted  uint64
	doneN      uint64
	failedN    uint64
	canceledN  uint64
	retries    uint64
	recSkipped uint64

	// persistMu serializes durable writes; persistErrs is atomic so the
	// flush path never touches mu.
	persistMu   sync.Mutex
	persistErrs atomic.Uint64

	quit chan struct{} // closed by Close; unblocks Wait
	wg   sync.WaitGroup

	// metrics is nil unless Config.Obs was set.
	metrics *managerMetrics
}

// managerMetrics holds the manager's observed histograms; counters and
// gauges are func-backed over Stats and never dual-written.
type managerMetrics struct {
	execSeconds    *obs.Histogram // executor run time per attempt
	queueWait      *obs.Histogram // submission (or re-queue) to dispatch
	persistSeconds *obs.Histogram // durable record write latency
}

func newManagerMetrics(r *obs.Registry, m *Manager) *managerMetrics {
	mm := &managerMetrics{
		execSeconds: r.Histogram("locshort_jobs_exec_seconds",
			"Executor run time per async job attempt.", nil, nil),
		queueWait: r.Histogram("locshort_jobs_queue_wait_seconds",
			"Time async jobs spent queued before a dispatcher picked them up.", nil, nil),
		persistSeconds: r.Histogram("locshort_jobs_persist_seconds",
			"Durable job-record write latency (includes fsync).", nil, nil),
	}
	stat := func(load func(Stats) float64) func() float64 {
		return func() float64 { return load(m.Stats()) }
	}
	r.CounterFunc("locshort_jobs_submitted_total", "Async jobs accepted this process lifetime.", nil,
		stat(func(s Stats) float64 { return float64(s.Submitted) }))
	r.CounterFunc("locshort_jobs_finished_total", "Async jobs finished, by outcome.", obs.Labels{"outcome": "done"},
		stat(func(s Stats) float64 { return float64(s.Done) }))
	r.CounterFunc("locshort_jobs_finished_total", "Async jobs finished, by outcome.", obs.Labels{"outcome": "failed"},
		stat(func(s Stats) float64 { return float64(s.Failed) }))
	r.CounterFunc("locshort_jobs_finished_total", "Async jobs finished, by outcome.", obs.Labels{"outcome": "canceled"},
		stat(func(s Stats) float64 { return float64(s.Canceled) }))
	r.CounterFunc("locshort_jobs_retries_total", "Failed async job attempts that were re-queued.", nil,
		stat(func(s Stats) float64 { return float64(s.Retries) }))
	r.CounterFunc("locshort_jobs_persist_errors_total", "Failed durable job-record writes (best-effort; alert here).", nil,
		stat(func(s Stats) float64 { return float64(s.PersistErrors) }))
	r.CounterFunc("locshort_jobs_recover_skipped_total", "Durable job records Recover could not decode.", nil,
		stat(func(s Stats) float64 { return float64(s.RecoverSkipped) }))
	r.GaugeFunc("locshort_jobs_queued", "Async jobs accepted but not yet dispatched.", nil,
		stat(func(s Stats) float64 { return float64(s.Queued) }))
	r.GaugeFunc("locshort_jobs_running", "Async jobs currently executing.", nil,
		stat(func(s Stats) float64 { return float64(s.Running) }))
	return mm
}

// New creates a manager; no dispatcher runs until Start.
func New(cfg Config, exec Executor) *Manager {
	if exec == nil {
		panic("jobs: nil Executor")
	}
	m := &Manager{
		cfg:  cfg.withDefaults(),
		exec: exec,
		recs: make(map[ID]*managed),
		quit: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if m.cfg.Obs != nil {
		m.metrics = newManagerMetrics(m.cfg.Obs, m)
	}
	return m
}

// Recover loads the durable job records into the manager and re-enqueues
// interrupted work: queued records (accepted but never run, or put back by
// a clean shutdown) and running records (a crash mid-run) both go back to
// the queue; a non-terminal record with a pending cancellation is
// finalized canceled instead. Terminal records load read-only (newest
// first up to Config.Retention) so results stay fetchable across
// restarts. A record that fails to decode is skipped and counted in
// Stats.RecoverSkipped — one bad record must not make the daemon
// unbootable. Returns how many jobs were re-enqueued. Call once, after
// the executor's own state is warm (engine WarmStart) and before Start.
func (m *Manager) Recover() (int, error) {
	if m.cfg.Store == nil {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return 0, errors.New("jobs: Recover must run before Start")
	}
	var loaded []*managed
	err := m.cfg.Store.EachJob(func(id uint64, payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil || rec.ID != ID(id) {
			// Undecodable or mislabeled: leave it on disk (locshortctl can
			// inspect the raw frame; gc carries it), never run it.
			m.recSkipped++
			return nil
		}
		if _, dup := m.recs[rec.ID]; dup {
			return nil
		}
		loaded = append(loaded, &managed{rec: rec, done: make(chan struct{})})
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Re-enqueue in submission order so recovered work drains fairly.
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].rec.CreatedNs < loaded[j].rec.CreatedNs })
	requeued := 0
	for _, j := range loaded {
		if !j.rec.State.Terminal() {
			switch {
			case j.rec.CancelRequested:
				j.rec.State = Canceled
				j.rec.FinishedNs = time.Now().UnixNano()
				m.persistNowLocked(j)
			default:
				// A crash-interrupted run is not charged against the retry
				// budget. Already-queued records re-enqueue as they are —
				// re-persisting an identical record would grow the store
				// by one superseded version per restart.
				if j.rec.State == Running {
					if j.rec.Attempts > 0 {
						j.rec.Attempts--
					}
					j.rec.State = Queued
					j.rec.StartedNs = 0
					m.persistNowLocked(j)
				}
				m.pending = append(m.pending, j.rec.ID)
				m.queuedN++
				requeued++
			}
		}
		if j.rec.State.Terminal() {
			close(j.done)
			m.countTerminalLocked(j.rec.State)
			m.terminals = append(m.terminals, j.rec.ID)
		}
		m.recs[j.rec.ID] = j
		m.order = append(m.order, j.rec.ID)
	}
	m.evictLocked()
	return requeued, nil
}

// Start launches the dispatcher pool. Call exactly once.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.closing {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.wg.Add(m.cfg.Workers)
	for i := 0; i < m.cfg.Workers; i++ {
		go m.dispatcher()
	}
}

// Close stops accepting and dispatching. Running executions are canceled
// through their contexts; a run interrupted this way goes durably back to
// queued so Recover re-runs it after the next start — a clean shutdown
// loses no accepted job. Close is idempotent and returns once every
// dispatcher has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closing = true
	close(m.quit)
	for _, j := range m.recs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Submit accepts a job and returns its queued record. When a Store is
// configured the queued record is durable before Submit returns — the
// acceptance (HTTP 202) promises the job survives a crash.
func (m *Manager) Submit(kind string, request json.RawMessage) (Record, error) {
	if kind == "" {
		return Record{}, errors.New("jobs: empty job kind")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return Record{}, ErrClosed
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		return Record{}, ErrQueueFull
	}
	id, err := m.newIDLocked()
	if err != nil {
		return Record{}, err
	}
	j := &managed{
		rec: Record{
			ID:        id,
			Kind:      kind,
			Request:   request,
			State:     Queued,
			CreatedNs: time.Now().UnixNano(),
		},
		done: make(chan struct{}),
	}
	if m.cfg.Store != nil {
		// Unlike later transitions this write is not best-effort: if the
		// queued record cannot be made durable, the job is not accepted.
		// The job is not yet visible to any other goroutine, so writing
		// under mu costs only the submitter's own latency.
		payload, err := EncodeRecord(j.rec)
		if err == nil {
			err = m.cfg.Store.PutJob(uint64(id), payload)
		}
		if err != nil {
			return Record{}, fmt.Errorf("jobs: persist submission: %w", err)
		}
		j.seq, j.written = 1, 1
	}
	m.recs[id] = j
	m.order = append(m.order, id)
	m.pending = append(m.pending, id)
	m.submitted++
	m.queuedN++
	m.cond.Signal()
	return j.rec, nil
}

// newIDLocked draws a fresh random nonzero ID. Caller holds mu.
func (m *Manager) newIDLocked() (ID, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("jobs: id generation: %w", err)
		}
		id := ID(binary.BigEndian.Uint64(b[:]))
		if id == 0 {
			continue
		}
		if _, taken := m.recs[id]; !taken {
			return id, nil
		}
	}
}

// Get returns a snapshot of the job's record. Terminal records evicted
// from memory under Config.Retention are served from the durable store.
func (m *Manager) Get(id ID) (Record, bool) {
	m.mu.Lock()
	j, ok := m.recs[id]
	var rec Record
	if ok {
		rec = j.rec
	}
	m.mu.Unlock()
	if ok {
		return rec, true
	}
	if st := m.cfg.Store; st != nil {
		payload, ok, err := st.GetJob(uint64(id))
		if err == nil && ok {
			if rec, err := DecodeRecord(payload); err == nil && rec.ID == id {
				return rec, true
			}
		}
	}
	return Record{}, false
}

// Wait blocks until the job reaches a terminal state, ctx is done, or the
// manager closes, and returns the latest snapshot either way (the caller
// distinguishes by Record.State). ok is false for an unknown ID.
func (m *Manager) Wait(ctx context.Context, id ID) (Record, bool) {
	m.mu.Lock()
	j, ok := m.recs[id]
	m.mu.Unlock()
	if !ok {
		// Evicted terminal records (or an unknown ID) resolve through Get.
		return m.Get(id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	case <-m.quit:
	}
	return m.Get(id)
}

// List returns snapshots of every in-memory job in creation order
// (recovered records first, by their original submission time). Terminal
// records past Config.Retention have been evicted and appear only in the
// durable store (locshortctl jobs ls).
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, id := range m.order {
		if j, ok := m.recs[id]; ok {
			out = append(out, j.rec)
		}
	}
	return out
}

// Cancel cancels a job: a queued job finalizes immediately; a running job
// gets its context canceled and finalizes when the executor returns
// (best-effort — an execution that completes despite the cancellation is
// recorded done). Returns the post-cancel snapshot; ErrUnknownJob for an
// unknown ID, ErrFinished (with the snapshot) if the job was already
// terminal.
func (m *Manager) Cancel(id ID) (Record, error) {
	var pp persistReq
	m.mu.Lock()
	j, ok := m.recs[id]
	if !ok {
		m.mu.Unlock()
		if rec, found := m.Get(id); found {
			return rec, ErrFinished // evicted records are terminal by construction
		}
		return Record{}, ErrUnknownJob
	}
	var rec Record
	var err error
	switch j.rec.State {
	case Queued:
		j.rec.CancelRequested = true
		j.rec.State = Canceled
		j.rec.FinishedNs = time.Now().UnixNano()
		m.queuedN--
		m.countTerminalLocked(Canceled)
		m.terminals = append(m.terminals, id)
		pp = m.snapshotLocked(j)
		close(j.done)
		m.evictLocked()
	case Running:
		if !j.rec.CancelRequested {
			j.rec.CancelRequested = true
			// Persisted so a crash before the dispatcher finalizes still
			// cancels (Recover sees the flag) instead of re-running.
			pp = m.snapshotLocked(j)
			if j.cancel != nil {
				j.cancel()
			}
		}
	default:
		err = ErrFinished
	}
	rec = j.rec
	m.mu.Unlock()
	m.flush(pp)
	return rec, err
}

// Stats snapshots the job gauges and counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Submitted:      m.submitted,
		Queued:         m.queuedN,
		Running:        m.runningN,
		Done:           m.doneN,
		Failed:         m.failedN,
		Canceled:       m.canceledN,
		Retries:        m.retries,
		PersistErrors:  m.persistErrs.Load(),
		RecoverSkipped: m.recSkipped,
	}
}

func (m *Manager) countTerminalLocked(s State) {
	switch s {
	case Done:
		m.doneN++
	case Failed:
		m.failedN++
	case Canceled:
		m.canceledN++
	}
}

// evictLocked drops the oldest terminal records past Config.Retention and
// compacts order once evictions dominate it. Caller holds mu.
func (m *Manager) evictLocked() {
	for len(m.terminals) > m.cfg.Retention {
		id := m.terminals[0]
		m.terminals = m.terminals[1:]
		if _, ok := m.recs[id]; ok {
			delete(m.recs, id)
			m.evicted++
		}
	}
	if m.evicted*2 > len(m.order) {
		kept := m.order[:0]
		for _, id := range m.order {
			if _, ok := m.recs[id]; ok {
				kept = append(kept, id)
			}
		}
		m.order = kept
		m.evicted = 0
	}
}

// snapshotLocked stamps and captures the job's current record for a
// durable write performed outside mu. Caller holds mu.
func (m *Manager) snapshotLocked(j *managed) persistReq {
	if m.cfg.Store == nil {
		return persistReq{}
	}
	j.seq++
	return persistReq{j: j, rec: j.rec, seq: j.seq}
}

// flush performs the durable write for a snapshot, outside mu. persistMu
// serializes writers and the seq guard drops a version that a newer
// write already superseded, so records on disk never go backwards.
// Best-effort: failures are counted, not surfaced — the in-memory
// transition already happened, exactly like the engine's detached store
// writes.
func (m *Manager) flush(p persistReq) {
	if p.j == nil {
		return
	}
	payload, err := EncodeRecord(p.rec)
	if err != nil {
		m.persistErrs.Add(1)
		return
	}
	m.persistMu.Lock()
	defer m.persistMu.Unlock()
	if p.seq <= p.j.written {
		return
	}
	start := time.Now()
	if err := m.cfg.Store.PutJob(uint64(p.rec.ID), payload); err != nil {
		m.persistErrs.Add(1)
		return
	}
	if m.metrics != nil {
		m.metrics.persistSeconds.Observe(time.Since(start))
	}
	p.j.written = p.seq
}

// persistNowLocked writes synchronously under mu — only for Recover's
// single-threaded boot path, where there is nothing to convoy.
func (m *Manager) persistNowLocked(j *managed) {
	m.flush(m.snapshotLocked(j))
}

// dispatcher is one worker: pop a queued job, execute it, finalize.
func (m *Manager) dispatcher() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closing {
			m.cond.Wait()
		}
		if m.closing {
			m.mu.Unlock()
			return
		}
		id := m.pending[0]
		m.pending = m.pending[1:]
		j := m.recs[id]
		if j == nil || j.rec.State != Queued {
			// Canceled while pending; Cancel already finalized it.
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.rec.State = Running
		j.rec.Attempts++
		j.rec.StartedNs = time.Now().UnixNano()
		if m.metrics != nil && j.rec.Attempts == 1 {
			// First attempt only: a retry's CreatedNs is the original
			// submission, which would charge the failed run to queue wait.
			m.metrics.queueWait.Observe(time.Duration(j.rec.StartedNs - j.rec.CreatedNs))
		}
		m.queuedN--
		m.runningN++
		pp := m.snapshotLocked(j)
		kind, request := j.rec.Kind, j.rec.Request
		m.mu.Unlock()
		m.flush(pp)

		execStart := time.Now()
		result, err := m.exec(ctx, kind, request)
		if m.metrics != nil {
			m.metrics.execSeconds.Observe(time.Since(execStart))
		}
		// Read before cancel(): whether the run was interrupted through
		// its context (Close or Cancel), as opposed to failing on its own
		// while a shutdown happened to be in progress.
		interrupted := ctx.Err() != nil
		cancel()

		m.mu.Lock()
		j.cancel = nil
		m.runningN--
		terminal := true
		switch {
		case err == nil:
			j.rec.State = Done
			j.rec.Result = result
			j.rec.Error = ""
			m.countTerminalLocked(Done)
		case m.closing && interrupted && !j.rec.CancelRequested:
			// Shutdown interrupted the run: durably back to queued so
			// Recover re-enqueues it after the next start. Not charged as
			// an attempt, not terminal (done stays open; waiters are
			// released via m.quit).
			j.rec.State = Queued
			j.rec.StartedNs = 0
			j.rec.Attempts--
			m.queuedN++
			terminal = false
		case j.rec.CancelRequested:
			j.rec.State = Canceled
			j.rec.Error = ""
			m.countTerminalLocked(Canceled)
		case j.rec.Attempts <= m.cfg.Retries:
			m.retries++
			j.rec.State = Queued
			j.rec.StartedNs = 0
			j.rec.Error = err.Error()
			m.queuedN++
			m.pending = append(m.pending, id)
			m.cond.Signal()
			terminal = false
		default:
			j.rec.State = Failed
			j.rec.Error = err.Error()
			m.countTerminalLocked(Failed)
		}
		if terminal {
			j.rec.FinishedNs = time.Now().UnixNano()
			m.terminals = append(m.terminals, id)
		}
		pp = m.snapshotLocked(j)
		if terminal {
			close(j.done)
			m.evictLocked()
		}
		m.mu.Unlock()
		m.flush(pp)
	}
}
