// Package jobs is the asynchronous job manager layered on the serving
// engine: a bounded queue of durable job records drained through an
// Executor by a fixed dispatcher pool, with the lifecycle
//
//	queued → running → done | failed | canceled
//
// persisted transition-by-transition so accepted work survives the
// process that accepted it.
//
// # Role in the DAG
//
// The package sits above internal/service and internal/store but imports
// neither: the Executor callback carries opaque JSON requests and results
// (cmd/locshortd supplies one that decodes API request bodies and calls
// the engine), and the Store interface persists opaque payloads keyed by
// job ID (internal/store implements it with its 'J' record kind, in the
// same append-only segments as graphs and shortcuts). This keeps the
// dependency arrows pointing downward — store imports service for the
// fingerprint scheme and jobs for record decoding; jobs imports only the
// standard library — and makes the manager testable with a stub executor.
//
// # Why async serving exists
//
// Every expensive request class in the system — a cold Theorem 3.1
// shortcut build, a tree-packing MinCut, an MST over a large family —
// otherwise holds an HTTP connection open for its full duration, so slow
// builds head-of-line-block closed-loop clients and a client timeout
// loses the work entirely. Submitting with "async": true (or through
// POST /v1/batch) decouples acceptance from execution: the caller gets a
// job ID in milliseconds, the dispatcher drains the work through the
// engine's worker pool (builds still collapse in the singleflight cache
// and persist to the content-addressed store), and the result is fetched
// — long-poll or poll — via GET /v1/jobs/{id}.
//
// # Durability contract
//
// Submit persists the queued record before acknowledging (a 202 promises
// the job survives a crash); every later transition is persisted
// best-effort (Stats.PersistErrors counts failures). Close cancels
// running executions and durably returns them to queued; Recover — called
// on warm start, after the engine's own WarmStart — re-enqueues every
// queued or running record (finalizing those with a pending cancel) and
// loads terminal records read-only so results remain fetchable across
// restarts. Re-execution is safe because the underlying builds are
// content-addressed: a re-run of an interrupted build typically completes
// from the shortcut store without rebuilding.
//
// The package is inside the checked-error scope policed by the
// internal/analysis lint suite (DESIGN.md §12): Close/Sync/Flush/Encode
// error results may not be silently discarded — check them or make the
// discard explicit with `_ =`. cmd/locshortlint enforces this in CI.
package jobs
