package congest

import (
	"errors"
	"testing"

	"locshort/internal/graph"
)

// floodProc floods a token from node 0 and records the round it was first
// reached; every node halts one round after it has seen the token. It is a
// minimal BFS protocol: reachedAt should equal the BFS distance + 1.
type floodProc struct {
	id        int
	seen      bool
	reachedAt int
	relayed   bool
}

func (p *floodProc) Step(ctx *Context) {
	if !p.seen {
		if p.id == 0 && ctx.Round == 0 {
			p.seen = true
			p.reachedAt = 0
		}
		for range ctx.In {
			if !p.seen {
				p.seen = true
				p.reachedAt = ctx.Round
			}
		}
	}
	if p.seen && !p.relayed {
		ctx.Broadcast(Msg{Kind: 1})
		p.relayed = true
		return
	}
	if p.seen && p.relayed {
		ctx.Halt()
	}
}

func TestFloodMatchesBFS(t *testing.T) {
	g := graph.Grid(6, 6)
	procs := make([]Proc, g.NumNodes())
	fps := make([]*floodProc, g.NumNodes())
	for v := range procs {
		fps[v] = &floodProc{id: v}
		procs[v] = fps[v]
	}
	net, err := NewNetwork(g, procs)
	if err != nil {
		t.Fatalf("NewNetwork error = %v", err)
	}
	stats, err := net.Run(1000)
	if err != nil {
		t.Fatalf("Run error = %v", err)
	}
	dist := graph.BFS(g, 0).Dist
	for v, fp := range fps {
		if !fp.seen {
			t.Fatalf("node %d never reached", v)
		}
		want := dist[v]
		if v != 0 {
			want = dist[v] // token sent in round d-1 arrives in round d
		}
		if fp.reachedAt != want {
			t.Errorf("node %d reached at round %d, want %d", v, fp.reachedAt, want)
		}
	}
	if stats.Rounds > 2*(dist[len(dist)-1])+4 {
		t.Errorf("flood took %d rounds for diameter %d", stats.Rounds, dist[len(dist)-1])
	}
}

// counterProc counts rounds then halts.
type counterProc struct{ left int }

func (p *counterProc) Step(ctx *Context) {
	p.left--
	if p.left <= 0 {
		ctx.Halt()
	}
}

func TestRunHaltsAndCountsRounds(t *testing.T) {
	g := graph.Path(3)
	procs := []Proc{&counterProc{left: 5}, &counterProc{left: 2}, &counterProc{left: 7}}
	net, err := NewNetwork(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(100)
	if err != nil {
		t.Fatalf("Run error = %v", err)
	}
	if stats.Rounds != 7 {
		t.Errorf("Rounds = %d, want 7 (max halt time)", stats.Rounds)
	}
	if !net.Halted(0) || !net.Halted(1) || !net.Halted(2) {
		t.Error("not all nodes halted")
	}
}

func TestRunRoundLimit(t *testing.T) {
	g := graph.Path(2)
	net, err := NewNetwork(g, []Proc{&counterProc{left: 50}, &counterProc{left: 50}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.Run(10)
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("Run error = %v, want ErrRoundLimit", err)
	}
}

func TestNewNetworkSizeMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewNetwork(g, []Proc{&counterProc{}}); err == nil {
		t.Error("NewNetwork accepted proc/node mismatch")
	}
}

// pingProc sends to a fixed neighbor each round and records what it gets.
type pingProc struct {
	sendEdge int
	got      []Msg
	rounds   int
}

func (p *pingProc) Step(ctx *Context) {
	for _, in := range ctx.In {
		p.got = append(p.got, in.Msg)
	}
	if p.rounds == 0 {
		ctx.Halt()
		return
	}
	p.rounds--
	if p.sendEdge >= 0 {
		ctx.Send(p.sendEdge, Msg{Kind: 2, A: int64(ctx.Node), B: int64(ctx.Round)})
	}
}

func TestMessageDeliveryNextRound(t *testing.T) {
	g := graph.Path(2)
	a := &pingProc{sendEdge: 0, rounds: 1}
	b := &pingProc{sendEdge: -1, rounds: 2}
	net, err := NewNetwork(g, []Proc{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(10); err != nil {
		t.Fatalf("Run error = %v", err)
	}
	if len(b.got) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(b.got))
	}
	if b.got[0].A != 0 || b.got[0].B != 0 {
		t.Errorf("got message %+v, want sender 0 round 0", b.got[0])
	}
}

func TestStatsCountMessages(t *testing.T) {
	g := graph.Path(2)
	a := &pingProc{sendEdge: 0, rounds: 3}
	b := &pingProc{sendEdge: 0, rounds: 3}
	net, err := NewNetwork(g, []Proc{a, b})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 6 {
		t.Errorf("Messages = %d, want 6", stats.Messages)
	}
	if stats.EdgeMessages[0] != 6 {
		t.Errorf("EdgeMessages[0] = %d, want 6", stats.EdgeMessages[0])
	}
	if stats.MaxEdgeMessages() != 6 {
		t.Errorf("MaxEdgeMessages = %d, want 6", stats.MaxEdgeMessages())
	}
}

// doubleSender violates the one-message-per-edge rule.
type doubleSender struct{}

func (p *doubleSender) Step(ctx *Context) {
	ctx.Send(0, Msg{})
	ctx.Send(0, Msg{})
}

func TestSendTwicePanics(t *testing.T) {
	g := graph.Path(2)
	net, err := NewNetwork(g, []Proc{&doubleSender{}, &counterProc{left: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("double send did not panic")
		}
	}()
	_, _ = net.Run(2)
}

// foreignSender sends on an edge it is not incident to.
type foreignSender struct{}

func (p *foreignSender) Step(ctx *Context) { ctx.Send(1, Msg{}) }

func TestSendForeignEdgePanics(t *testing.T) {
	g := graph.Path(3) // edges 0:{0,1}, 1:{1,2}
	net, err := NewNetwork(g, []Proc{&foreignSender{}, &counterProc{left: 1}, &counterProc{left: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("foreign-edge send did not panic")
		}
	}()
	_, _ = net.Run(2)
}

// echoProc replies to every incoming message on the same edge; used to test
// inbox ordering determinism.
type echoProc struct {
	id  int
	log []int
}

func (p *echoProc) Step(ctx *Context) {
	for _, in := range ctx.In {
		p.log = append(p.log, in.From)
	}
	if ctx.Round == 0 && p.id != 2 {
		ctx.SendTo(2, Msg{A: int64(p.id)})
	}
	if ctx.Round >= 1 {
		ctx.Halt()
	}
}

func TestInboxSortedBySender(t *testing.T) {
	g := graph.Star(5) // center 0... use node 2 as receiver instead
	// Build: nodes 0,1,3,4 all adjacent to 2.
	g = graph.New(5)
	for _, v := range []int{0, 1, 3, 4} {
		g.AddEdge(v, 2)
	}
	procs := make([]Proc, 5)
	eps := make([]*echoProc, 5)
	for v := range procs {
		eps[v] = &echoProc{id: v}
		procs[v] = eps[v]
	}
	net, err := NewNetwork(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(eps[2].log) != len(want) {
		t.Fatalf("receiver log = %v, want %v", eps[2].log, want)
	}
	for i := range want {
		if eps[2].log[i] != want[i] {
			t.Fatalf("receiver log = %v, want %v", eps[2].log, want)
		}
	}
}

func TestBroadcastUsesAllEdges(t *testing.T) {
	g := graph.Star(4)
	center := ProcFunc(func(ctx *Context) {
		if ctx.Round == 0 {
			ctx.Broadcast(Msg{Kind: 9})
		} else {
			ctx.Halt()
		}
	})
	leafGot := make([]int, 4)
	mkLeaf := func(v int) Proc {
		return ProcFunc(func(ctx *Context) {
			for _, in := range ctx.In {
				if in.Msg.Kind == 9 {
					leafGot[v]++
				}
			}
			if ctx.Round >= 1 {
				ctx.Halt()
			}
		})
	}
	net, err := NewNetwork(g, []Proc{center, mkLeaf(1), mkLeaf(2), mkLeaf(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if leafGot[v] != 1 {
			t.Errorf("leaf %d got %d broadcasts, want 1", v, leafGot[v])
		}
	}
}

func TestHaltedNodesDropMessages(t *testing.T) {
	g := graph.Path(2)
	sender := ProcFunc(func(ctx *Context) {
		if ctx.Round < 3 {
			ctx.Send(0, Msg{})
		} else {
			ctx.Halt()
		}
	})
	receiver := ProcFunc(func(ctx *Context) { ctx.Halt() })
	net, err := NewNetwork(g, []Proc{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 3 {
		t.Errorf("Messages = %d, want 3", stats.Messages)
	}
}

// deterministicProc emits a node-and-round-dependent value to all neighbors
// and folds incoming values into a running checksum.
type deterministicProc struct {
	id    int
	sum   int64
	limit int
}

func (p *deterministicProc) Step(ctx *Context) {
	for _, in := range ctx.In {
		p.sum = p.sum*31 + in.Msg.A + int64(in.From)
	}
	if ctx.Round >= p.limit {
		ctx.Halt()
		return
	}
	ctx.Broadcast(Msg{A: int64(p.id)*1000 + int64(ctx.Round)})
}

// TestParallelExecutionDeterministic checks that the goroutine worker pool
// (engaged for n >= 64) yields exactly the same results as repeated runs:
// inbox ordering is sorted, so node programs see identical inputs.
func TestParallelExecutionDeterministic(t *testing.T) {
	run := func() []int64 {
		g := graph.Torus(10, 10) // 100 nodes -> parallel path
		procs := make([]Proc, g.NumNodes())
		states := make([]*deterministicProc, g.NumNodes())
		for v := range procs {
			states[v] = &deterministicProc{id: v, limit: 12}
			procs[v] = states[v]
		}
		net, err := NewNetwork(g, procs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(64); err != nil {
			t.Fatal(err)
		}
		sums := make([]int64, len(states))
		for v, st := range states {
			sums[v] = st.sum
		}
		return sums
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d checksum differs across runs: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestRunForExactRounds(t *testing.T) {
	g := graph.Path(2)
	count := 0
	p := ProcFunc(func(ctx *Context) { count++ })
	net, err := NewNetwork(g, []Proc{p, ProcFunc(func(ctx *Context) {})})
	if err != nil {
		t.Fatal(err)
	}
	stats := net.RunFor(7)
	if stats.Rounds != 7 {
		t.Errorf("Rounds = %d, want 7", stats.Rounds)
	}
	if count != 7 {
		t.Errorf("Step called %d times, want 7", count)
	}
	// RunFor continues from the current round counter.
	net.RunFor(3)
	if net.Stats().Rounds != 10 {
		t.Errorf("Rounds = %d after second RunFor, want 10", net.Stats().Rounds)
	}
}

func TestRunUntilQuietGrace(t *testing.T) {
	// A proc that is silent for 3 rounds, then sends one message, then is
	// silent forever: grace 1 stops early, grace 5 sees the late message.
	g := graph.Path(2)
	mk := func() []Proc {
		return []Proc{
			ProcFunc(func(ctx *Context) {
				if ctx.Round == 3 {
					ctx.Send(0, Msg{A: 9})
				}
			}),
			ProcFunc(func(ctx *Context) {}),
		}
	}
	net, err := NewNetwork(g, mk())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunUntilQuiet(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 {
		t.Errorf("grace 1 saw %d messages, want 0 (stopped before round 3)", stats.Messages)
	}

	net, err = NewNetwork(g, mk())
	if err != nil {
		t.Fatal(err)
	}
	stats, err = net.RunUntilQuiet(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 {
		t.Errorf("grace 5 saw %d messages, want 1", stats.Messages)
	}
	if stats.ActiveRounds != 4 {
		t.Errorf("ActiveRounds = %d, want 4 (message sent in round 3)", stats.ActiveRounds)
	}
}

func TestSendToNoUnusedEdgePanics(t *testing.T) {
	g := graph.Path(2)
	p := ProcFunc(func(ctx *Context) {
		ctx.SendTo(1, Msg{})
		ctx.SendTo(1, Msg{}) // second send on the only edge
	})
	net, err := NewNetwork(g, []Proc{p, ProcFunc(func(ctx *Context) {})})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SendTo with no unused edge did not panic")
		}
	}()
	_, _ = net.Run(2)
}
