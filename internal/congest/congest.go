package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"locshort/internal/graph"
)

// Msg is a CONGEST message: a kind tag plus four machine words, i.e.
// O(log n) bits for any polynomial-size network.
type Msg struct {
	Kind       uint8
	A, B, C, D int64
}

// Incoming is a message delivered to a node, annotated with its origin.
type Incoming struct {
	From int // sender node ID
	Edge int // graph edge ID it traveled on
	Msg  Msg
}

// Proc is a node program. Step is called once per round until the node
// halts. Implementations must interact with the network only through the
// Context.
type Proc interface {
	Step(ctx *Context)
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(ctx *Context)

// Step calls f.
func (f ProcFunc) Step(ctx *Context) { f(ctx) }

// Context is a node's view of the network during one round.
type Context struct {
	// Node is the executing node's ID.
	Node int
	// Round is the current round number, starting at 0.
	Round int
	// In holds the messages sent to this node in the previous round,
	// sorted by sender ID (ties broken by edge ID).
	In []Incoming

	net    *Network
	out    []sendReq
	used   map[int]bool // edge IDs used for sending this round
	halted bool
}

type sendReq struct {
	edge int
	to   int
	msg  Msg
}

// Degree returns the number of incident edges of the executing node.
func (c *Context) Degree() int { return c.net.g.Degree(c.Node) }

// Neighbors returns the executing node's adjacency list. The slice is owned
// by the network and must not be modified.
func (c *Context) Neighbors() []graph.Arc { return c.net.g.Neighbors(c.Node) }

// EdgeWeight returns the weight of an incident edge.
func (c *Context) EdgeWeight(edge int) float64 { return c.net.g.Edge(edge).W }

// NumNodes returns n. CONGEST algorithms conventionally know n (or a
// polynomial upper bound); it determines the message-size budget.
func (c *Context) NumNodes() int { return c.net.g.NumNodes() }

// Send transmits m to a neighbor over the given incident edge. It panics if
// the edge is not incident to the node or was already used this round —
// both are protocol bugs, not runtime conditions.
func (c *Context) Send(edge int, m Msg) {
	e := c.net.g.Edge(edge)
	var to int
	switch c.Node {
	case e.U:
		to = e.V
	case e.V:
		to = e.U
	default:
		panic(fmt.Sprintf("congest: node %d sending on non-incident edge %d", c.Node, edge))
	}
	if c.used == nil {
		c.used = make(map[int]bool, 4)
	}
	if c.used[edge] {
		panic(fmt.Sprintf("congest: node %d sent twice on edge %d in round %d (CONGEST allows one message per edge per direction per round)",
			c.Node, edge, c.Round))
	}
	c.used[edge] = true
	c.out = append(c.out, sendReq{edge: edge, to: to, msg: m})
}

// SendTo transmits m to the given neighbor node, picking the first unused
// incident edge to it. It panics if no unused edge to the neighbor exists.
func (c *Context) SendTo(neighbor int, m Msg) {
	for _, a := range c.net.g.Neighbors(c.Node) {
		if a.To == neighbor && (c.used == nil || !c.used[a.Edge]) {
			c.Send(a.Edge, m)
			return
		}
	}
	panic(fmt.Sprintf("congest: node %d has no unused edge to %d", c.Node, neighbor))
}

// Broadcast sends m over every incident edge not yet used this round.
func (c *Context) Broadcast(m Msg) {
	for _, a := range c.net.g.Neighbors(c.Node) {
		if c.used == nil || !c.used[a.Edge] {
			c.Send(a.Edge, m)
		}
	}
}

// Halt marks the node as finished; Step will not be called again. Messages
// already sent this round are still delivered; later messages addressed to
// a halted node are counted but not processed.
func (c *Context) Halt() { c.halted = true }

// Stats aggregates the cost measures the paper's theorems bound.
type Stats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// ActiveRounds is one past the last round in which any message was
	// sent: the protocol's effective round complexity under quiescence
	// ("implicit termination") accounting.
	ActiveRounds int
	// Messages is the total number of messages sent.
	Messages int64
	// EdgeMessages counts messages per edge ID (both directions), the
	// quantity behind congestion accounting.
	EdgeMessages []int64
}

// MaxEdgeMessages returns the maximum per-edge message count.
func (s *Stats) MaxEdgeMessages() int64 {
	var max int64
	for _, v := range s.EdgeMessages {
		if v > max {
			max = v
		}
	}
	return max
}

// Network is a CONGEST network instance binding a graph to node programs.
type Network struct {
	g       *graph.Graph
	procs   []Proc
	inboxes [][]Incoming
	halted  []bool
	stats   Stats
	workers int
}

// ErrRoundLimit is returned by Run when the round limit is reached before
// every node halts.
var ErrRoundLimit = errors.New("congest: round limit reached before all nodes halted")

// NewNetwork creates a network over g with one Proc per node.
func NewNetwork(g *graph.Graph, procs []Proc) (*Network, error) {
	if len(procs) != g.NumNodes() {
		return nil, fmt.Errorf("congest: %d procs for %d nodes", len(procs), g.NumNodes())
	}
	return &Network{
		g:       g,
		procs:   procs,
		inboxes: make([][]Incoming, g.NumNodes()),
		halted:  make([]bool, g.NumNodes()),
		stats:   Stats{EdgeMessages: make([]int64, g.NumEdges())},
		workers: runtime.GOMAXPROCS(0),
	}, nil
}

// Run executes rounds until every node has halted or maxRounds is reached,
// returning the accumulated statistics (also on error).
func (n *Network) Run(maxRounds int) (*Stats, error) {
	for round := n.stats.Rounds; ; round++ {
		if n.allHalted() {
			return &n.stats, nil
		}
		if round >= maxRounds {
			return &n.stats, fmt.Errorf("%w (limit %d)", ErrRoundLimit, maxRounds)
		}
		n.step(round)
		n.stats.Rounds = round + 1
	}
}

// RunFor executes exactly rounds additional rounds regardless of halting —
// used for protocols with a fixed deterministic schedule.
func (n *Network) RunFor(rounds int) *Stats {
	end := n.stats.Rounds + rounds
	for round := n.stats.Rounds; round < end; round++ {
		n.step(round)
		n.stats.Rounds = round + 1
	}
	return &n.stats
}

// RunUntilQuiet executes rounds until `grace` consecutive rounds pass with
// no message sent (or every node halts), up to maxRounds. Message-driven
// protocols that never restart after falling silent terminate exactly at
// quiescence; Stats.ActiveRounds is their round complexity. grace > 1
// accommodates protocols with bounded silent gaps in their schedules.
func (n *Network) RunUntilQuiet(maxRounds, grace int) (*Stats, error) {
	if grace < 1 {
		grace = 1
	}
	quiet := 0
	for round := n.stats.Rounds; ; round++ {
		if n.allHalted() || quiet >= grace {
			return &n.stats, nil
		}
		if round >= maxRounds {
			return &n.stats, fmt.Errorf("%w (limit %d)", ErrRoundLimit, maxRounds)
		}
		before := n.stats.Messages
		n.step(round)
		n.stats.Rounds = round + 1
		if n.stats.Messages == before {
			quiet++
		} else {
			quiet = 0
			n.stats.ActiveRounds = round + 1
		}
	}
}

func (n *Network) allHalted() bool {
	for _, h := range n.halted {
		if !h {
			return false
		}
	}
	return true
}

// step runs one synchronous round: all Steps execute against the previous
// round's inboxes, then the new messages are delivered.
func (n *Network) step(round int) {
	numNodes := n.g.NumNodes()
	ctxs := make([]*Context, numNodes)

	run := func(v int) {
		if n.halted[v] {
			return
		}
		ctx := &Context{Node: v, Round: round, In: n.inboxes[v], net: n}
		n.procs[v].Step(ctx)
		ctxs[v] = ctx
	}
	if n.workers > 1 && numNodes >= 64 {
		var wg sync.WaitGroup
		chunk := (numNodes + n.workers - 1) / n.workers
		for w := 0; w < n.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > numNodes {
				hi = numNodes
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					run(v)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for v := 0; v < numNodes; v++ {
			run(v)
		}
	}

	// Deliver: clear inboxes, then append sends in sender order.
	for v := range n.inboxes {
		n.inboxes[v] = nil
	}
	for v := 0; v < numNodes; v++ {
		ctx := ctxs[v]
		if ctx == nil {
			continue
		}
		if ctx.halted {
			n.halted[v] = true
		}
		for _, s := range ctx.out {
			n.stats.Messages++
			n.stats.EdgeMessages[s.edge]++
			n.inboxes[s.to] = append(n.inboxes[s.to], Incoming{From: v, Edge: s.edge, Msg: s.msg})
		}
	}
	for v := range n.inboxes {
		in := n.inboxes[v]
		sort.Slice(in, func(i, j int) bool {
			if in[i].From != in[j].From {
				return in[i].From < in[j].From
			}
			return in[i].Edge < in[j].Edge
		})
	}
}

// Stats returns the statistics accumulated so far.
func (n *Network) Stats() *Stats { return &n.stats }

// Halted reports whether node v has halted.
func (n *Network) Halted(v int) bool { return n.halted[v] }
