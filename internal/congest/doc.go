// Package congest simulates the synchronous CONGEST model of distributed
// computing (Section 1.1 of the paper): an n-node network where, in every
// round, each node may send one O(log n)-bit message to each of its
// neighbors. Messages sent in round r are delivered at the start of round
// r+1.
//
// The simulator enforces the model exactly: one message per edge per
// direction per round, fixed-size payloads, and no access to global state —
// a node sees only its own ID, its incident edges, and incoming messages.
// Round execution is parallelized across nodes with a goroutine worker pool;
// delivery order is deterministic (sorted by sender), so protocols that are
// deterministic per node are deterministic end to end.
//
// # Role in the DAG
//
// Depends only on internal/graph. internal/dist runs every distributed
// protocol — BFS waves, the Theorem 1.5 cut waves, part-wise aggregation
// schedules — on this simulator, and its measured round counts are the
// "Measured" column of the DESIGN.md round-accounting discipline.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package congest
