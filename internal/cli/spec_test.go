package cli

import (
	"testing"
)

func TestParseGraphShapes(t *testing.T) {
	tests := []struct {
		spec      string
		wantNodes int
		wantRows  bool
	}{
		{spec: "grid:4x5", wantNodes: 20},
		{spec: "torus:3x4", wantNodes: 12},
		{spec: "wheel:10", wantNodes: 10},
		{spec: "cycle:9", wantNodes: 9},
		{spec: "path:6", wantNodes: 6},
		{spec: "complete:5", wantNodes: 5},
		{spec: "ktree:12,3", wantNodes: 12},
		{spec: "random:15,20", wantNodes: 15},
		{spec: "lb:5,12", wantNodes: 174, wantRows: true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			g, rows, err := ParseGraph(tt.spec, 1)
			if err != nil {
				t.Fatalf("ParseGraph(%q) error = %v", tt.spec, err)
			}
			if g.NumNodes() != tt.wantNodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), tt.wantNodes)
			}
			if (rows != nil) != tt.wantRows {
				t.Errorf("rows present = %v, want %v", rows != nil, tt.wantRows)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate = %v", err)
			}
		})
	}
}

func TestParseGraphErrors(t *testing.T) {
	specs := []string{
		"",
		"unknown:5",
		"grid:4",       // missing dimension
		"grid:4xfive",  // non-numeric
		"wheel:",       // empty size
		"wheel:banana", // non-numeric
		"ktree:12",     // missing k
		"lb:3,100",     // deltaPrime too small for LowerBound
	}
	for _, spec := range specs {
		if _, _, err := ParseGraph(spec, 1); err == nil {
			t.Errorf("ParseGraph(%q) succeeded, want error", spec)
		}
	}
}

func TestParseGraphDeterministicSeed(t *testing.T) {
	a, _, err := ParseGraph("random:20,40", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ParseGraph("random:20,40", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for id := 0; id < a.NumEdges(); id++ {
		ea, eb := a.Edge(id), b.Edge(id)
		if ea.U != eb.U || ea.V != eb.V {
			t.Fatalf("edge %d differs between runs with the same seed", id)
		}
	}
}
