package cli

import (
	"testing"

	"locshort/internal/graph"
	"locshort/internal/shortcut"
)

func TestParseGraphShapes(t *testing.T) {
	tests := []struct {
		spec      string
		wantNodes int
		wantRows  bool
	}{
		{spec: "grid:4x5", wantNodes: 20},
		{spec: "torus:3x4", wantNodes: 12},
		{spec: "wheel:10", wantNodes: 10},
		{spec: "cycle:9", wantNodes: 9},
		{spec: "path:6", wantNodes: 6},
		{spec: "complete:5", wantNodes: 5},
		{spec: "ktree:12,3", wantNodes: 12},
		{spec: "random:15,20", wantNodes: 15},
		{spec: "lb:5,12", wantNodes: 174, wantRows: true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			g, rows, err := ParseGraph(tt.spec, 1)
			if err != nil {
				t.Fatalf("ParseGraph(%q) error = %v", tt.spec, err)
			}
			if g.NumNodes() != tt.wantNodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), tt.wantNodes)
			}
			if (rows != nil) != tt.wantRows {
				t.Errorf("rows present = %v, want %v", rows != nil, tt.wantRows)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate = %v", err)
			}
		})
	}
}

func TestParseGraphErrors(t *testing.T) {
	specs := []string{
		"",
		"unknown:5",
		"grid:4",       // missing dimension
		"grid:4xfive",  // non-numeric
		"wheel:",       // empty size
		"wheel:banana", // non-numeric
		"ktree:12",     // missing k
		"lb:3,100",     // deltaPrime too small for LowerBound
	}
	for _, spec := range specs {
		if _, _, err := ParseGraph(spec, 1); err == nil {
			t.Errorf("ParseGraph(%q) succeeded, want error", spec)
		}
	}
}

func TestParseGraphDeterministicSeed(t *testing.T) {
	a, _, err := ParseGraph("random:20,40", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ParseGraph("random:20,40", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for id := 0; id < a.NumEdges(); id++ {
		ea, eb := a.Edge(id), b.Edge(id)
		if ea.U != eb.U || ea.V != eb.V {
			t.Fatalf("edge %d differs between runs with the same seed", id)
		}
	}
}

func TestParsePartitionShapes(t *testing.T) {
	tests := []struct {
		graph     string
		spec      string
		wantParts int
	}{
		{graph: "grid:6x6", spec: "blobs:6", wantParts: 6},
		{graph: "grid:4x5", spec: "rows:4x5", wantParts: 4},
		{graph: "wheel:12", spec: "rim", wantParts: 2},
		{graph: "path:7", spec: "singletons", wantParts: 7},
	}
	for _, tt := range tests {
		t.Run(tt.graph+"/"+tt.spec, func(t *testing.T) {
			g, _, err := ParseGraph(tt.graph, 1)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ParsePartition(g, tt.spec, 1)
			if err != nil {
				t.Fatalf("ParsePartition(%q) error = %v", tt.spec, err)
			}
			if p.NumParts() != tt.wantParts {
				t.Errorf("parts = %d, want %d", p.NumParts(), tt.wantParts)
			}
		})
	}
}

func TestParsePartitionErrors(t *testing.T) {
	g := graph.Grid(4, 4)
	for _, spec := range []string{
		"",
		"unknown:3",
		"blobs:",   // empty size
		"blobs:0",  // out of range
		"blobs:17", // more parts than nodes
		"rows:4",   // missing dimension
		"rows:5x5", // does not match 16 nodes
	} {
		if _, err := ParsePartition(g, spec, 1); err == nil {
			t.Errorf("ParsePartition(%q) succeeded, want error", spec)
		}
	}
	// Removing a star's center leaves isolated leaves: the rim part is
	// disconnected and must be rejected.
	star := graph.Star(5)
	if _, err := ParsePartition(star, "rim", 1); err == nil {
		t.Error(`ParsePartition("rim") on a star succeeded, want error (disconnected rim)`)
	}
}

func TestBuildOptionsRoundTrip(t *testing.T) {
	cases := []shortcut.Options{
		{},
		{Delta: 4},
		{Delta: 8, MaxDelta: 64, CongestionFactor: 8, BlockFactor: 8, MaxIterations: 12},
		{CongestionFactor: 16},
	}
	for _, o := range cases {
		s := FormatBuildOptions(o)
		got, err := ParseBuildOptions(s)
		if err != nil {
			t.Fatalf("ParseBuildOptions(%q) error = %v", s, err)
		}
		if got != o {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, o)
		}
		// Formatting is canonical: a second round trip is a fixed point.
		if s2 := FormatBuildOptions(got); s2 != s {
			t.Errorf("format not canonical: %q then %q", s, s2)
		}
	}
}

func TestParseBuildOptionsForms(t *testing.T) {
	// Empty string is the zero options (paper defaults).
	o, err := ParseBuildOptions("")
	if err != nil || o != (shortcut.Options{}) {
		t.Errorf("empty spec = %+v, %v", o, err)
	}
	// Any key order and subsets are fine.
	o, err = ParseBuildOptions("bf=2, delta=3")
	if err != nil || o.BlockFactor != 2 || o.Delta != 3 {
		t.Errorf("subset spec = %+v, %v", o, err)
	}
	for _, bad := range []string{
		"delta",           // not key=value
		"delta=x",         // non-numeric
		"delta=-1",        // negative
		"zeta=1",          // unknown key
		"delta=1,delta=2", // duplicate
	} {
		if _, err := ParseBuildOptions(bad); err == nil {
			t.Errorf("ParseBuildOptions(%q) succeeded, want error", bad)
		}
	}
}
