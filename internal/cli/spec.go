// Package cli holds helpers shared by the command-line tools: parsing
// graph-family specs like "grid:16x16" or "ktree:200,4" into graphs.
package cli

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"locshort/internal/graph"
)

// ParseGraph builds a graph from a family spec. Supported kinds:
//
//	grid:RxC  torus:RxC  wheel:N  cycle:N  path:N  complete:N
//	ktree:N,K  random:N,M  lb:DELTA,DIAM
//
// For lb it also returns the row parts; rows is nil otherwise.
func ParseGraph(spec string, seed int64) (g *graph.Graph, rows [][]int, err error) {
	kind, arg, _ := strings.Cut(spec, ":")
	dims := func(sep string) (int, int, error) {
		a, b, ok := strings.Cut(arg, sep)
		if !ok {
			return 0, 0, fmt.Errorf("cli: spec %q needs %q-separated sizes", spec, sep)
		}
		x, err := strconv.Atoi(a)
		if err != nil {
			return 0, 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		y, err := strconv.Atoi(b)
		if err != nil {
			return 0, 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		return x, y, nil
	}
	one := func() (int, error) {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		return n, nil
	}
	switch kind {
	case "grid":
		r, c, err := dims("x")
		if err != nil {
			return nil, nil, err
		}
		return graph.Grid(r, c), nil, nil
	case "torus":
		r, c, err := dims("x")
		if err != nil {
			return nil, nil, err
		}
		return graph.Torus(r, c), nil, nil
	case "wheel":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Wheel(n), nil, nil
	case "cycle":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Cycle(n), nil, nil
	case "path":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Path(n), nil, nil
	case "complete":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Complete(n), nil, nil
	case "ktree":
		n, k, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		return graph.KTree(n, k, rand.New(rand.NewSource(seed))), nil, nil
	case "random":
		n, m, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		return graph.RandomConnected(n, m, rand.New(rand.NewSource(seed))), nil, nil
	case "lb":
		d, dd, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		lb, err := graph.LowerBound(d, dd)
		if err != nil {
			return nil, nil, err
		}
		return lb.G, lb.Rows, nil
	default:
		return nil, nil, fmt.Errorf("cli: unknown graph kind %q", kind)
	}
}
