package cli

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// ParseGraph builds a graph from a family spec. Supported kinds:
//
//	grid:RxC  torus:RxC  wheel:N  cycle:N  path:N  complete:N
//	ktree:N,K  random:N,M  lb:DELTA,DIAM
//
// For lb it also returns the row parts; rows is nil otherwise.
func ParseGraph(spec string, seed int64) (g *graph.Graph, rows [][]int, err error) {
	kind, arg, _ := strings.Cut(spec, ":")
	dims := func(sep string) (int, int, error) {
		a, b, ok := strings.Cut(arg, sep)
		if !ok {
			return 0, 0, fmt.Errorf("cli: spec %q needs %q-separated sizes", spec, sep)
		}
		x, err := strconv.Atoi(a)
		if err != nil {
			return 0, 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		y, err := strconv.Atoi(b)
		if err != nil {
			return 0, 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		return x, y, nil
	}
	one := func() (int, error) {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("cli: spec %q: %w", spec, err)
		}
		return n, nil
	}
	switch kind {
	case "grid":
		r, c, err := dims("x")
		if err != nil {
			return nil, nil, err
		}
		return graph.Grid(r, c), nil, nil
	case "torus":
		r, c, err := dims("x")
		if err != nil {
			return nil, nil, err
		}
		return graph.Torus(r, c), nil, nil
	case "wheel":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Wheel(n), nil, nil
	case "cycle":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Cycle(n), nil, nil
	case "path":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Path(n), nil, nil
	case "complete":
		n, err := one()
		if err != nil {
			return nil, nil, err
		}
		return graph.Complete(n), nil, nil
	case "ktree":
		n, k, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		return graph.KTree(n, k, rand.New(rand.NewSource(seed))), nil, nil
	case "random":
		n, m, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		return graph.RandomConnected(n, m, rand.New(rand.NewSource(seed))), nil, nil
	case "lb":
		d, dd, err := dims(",")
		if err != nil {
			return nil, nil, err
		}
		lb, err := graph.LowerBound(d, dd)
		if err != nil {
			return nil, nil, err
		}
		return lb.G, lb.Rows, nil
	default:
		return nil, nil, fmt.Errorf("cli: unknown graph kind %q", kind)
	}
}

// ParsePartition builds a partition of g from a spec. Supported kinds:
//
//	blobs:K      K connected BFS-Voronoi parts from random seeds
//	rows:RxC     the row paths of a Grid(R, C) graph
//	rim          the wheel rim + center partition (Wheel graphs)
//	singletons   every node its own part
//
// seed drives the randomness of blobs; the other kinds are deterministic.
func ParsePartition(g *graph.Graph, spec string, seed int64) (*partition.Partition, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "blobs":
		k, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("cli: partition spec %q: %w", spec, err)
		}
		return partition.BFSBlobs(g, k, rand.New(rand.NewSource(seed)))
	case "rows":
		a, b, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("cli: partition spec %q needs RxC", spec)
		}
		r, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("cli: partition spec %q: %w", spec, err)
		}
		c, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("cli: partition spec %q: %w", spec, err)
		}
		return partition.GridRows(g, r, c)
	case "rim":
		return partition.WheelRim(g)
	case "singletons":
		return partition.Singletons(g)
	default:
		return nil, fmt.Errorf("cli: unknown partition kind %q", kind)
	}
}

// buildOptionKeys lists, in canonical order, the textual keys of the
// shortcut.Options fields the service layer exchanges; accessor pairs keep
// Format and Parse in lockstep.
var buildOptionKeys = []string{"delta", "maxdelta", "cf", "bf", "iters"}

func buildOptionField(o *shortcut.Options, key string) *int {
	switch key {
	case "delta":
		return &o.Delta
	case "maxdelta":
		return &o.MaxDelta
	case "cf":
		return &o.CongestionFactor
	case "bf":
		return &o.BlockFactor
	case "iters":
		return &o.MaxIterations
	}
	return nil
}

// FormatBuildOptions renders the service-relevant fields of opts in the
// canonical spec form "delta=0,maxdelta=0,cf=0,bf=0,iters=0" — every key
// present, fixed order — so equal options always format identically.
// Tree, Certify, and Rng have no textual form (the service rejects them).
func FormatBuildOptions(o shortcut.Options) string {
	parts := make([]string, len(buildOptionKeys))
	for i, k := range buildOptionKeys {
		parts[i] = fmt.Sprintf("%s=%d", k, *buildOptionField(&o, k))
	}
	return strings.Join(parts, ",")
}

// ParseBuildOptions parses the FormatBuildOptions form. Keys may appear in
// any order and any subset (missing keys stay zero, i.e. paper defaults);
// duplicate or unknown keys are errors. The empty string is the zero
// Options.
func ParseBuildOptions(s string) (shortcut.Options, error) {
	var o shortcut.Options
	if s == "" {
		return o, nil
	}
	seen := make(map[string]bool)
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return o, fmt.Errorf("cli: build options %q: entry %q is not key=value", s, kv)
		}
		f := buildOptionField(&o, k)
		if f == nil {
			return o, fmt.Errorf("cli: build options %q: unknown key %q (known: %s)",
				s, k, strings.Join(buildOptionKeys, ", "))
		}
		if seen[k] {
			return o, fmt.Errorf("cli: build options %q: duplicate key %q", s, k)
		}
		seen[k] = true
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("cli: build options %q: %w", s, err)
		}
		if n < 0 {
			return o, fmt.Errorf("cli: build options %q: %s must be non-negative", s, k)
		}
		*f = n
	}
	return o, nil
}
