// Package cli holds the textual spec languages shared by the command-line
// tools and the daemon: graph-family specs like "grid:16x16" or
// "ktree:200,4" (ParseGraph), partition specs like "blobs:32"
// (ParsePartition), and the canonical key=value form of shortcut build
// options exchanged by locshortd and loadgen (FormatBuildOptions /
// ParseBuildOptions, kept in lockstep so equal options always format
// identically — a requirement of the service layer's content addressing).
//
// # Role in the DAG
//
// Depends on internal/graph, internal/partition, and internal/shortcut.
// Consumed by cmd/locshortd (request parsing), cmd/loadgen, cmd/congestsim,
// cmd/minorfind, and the internal/store tests; it exists so every surface
// speaks the same spec language as the documentation.
package cli
