package dist

import (
	"math"

	"locshort/internal/shortcut"
)

// Rounds itemizes the round complexity of a distributed computation.
type Rounds struct {
	// Measured is the number of rounds executed on the simulator.
	Measured int
	// Sync is the number of rounds charged for phase barriers.
	Sync int
	// Charged is the number of rounds charged analytically for centrally
	// executed steps.
	Charged int
}

// Total returns Measured + Sync + Charged.
func (r Rounds) Total() int { return r.Measured + r.Sync + r.Charged }

// add accumulates another breakdown into r.
func (r *Rounds) add(o Rounds) {
	r.Measured += o.Measured
	r.Sync += o.Sync
	r.Charged += o.Charged
}

// Payload is a part-wise aggregation value: three machine words, so a
// payload plus a part identifier fits one O(log n)-bit CONGEST message.
type Payload [3]int64

// Op is a commutative, associative aggregation operator on Payloads.
type Op uint8

const (
	// OpSum adds payloads componentwise.
	OpSum Op = iota
	// OpMin takes the lexicographic minimum of the payload triples, so
	// (key, id, aux) tuples aggregate to the minimum-key entry.
	OpMin
	// OpMax takes the lexicographic maximum.
	OpMax
)

// identity returns the neutral element of op: Steiner nodes of a routing
// tree contribute it so only real part members affect the aggregate.
func (op Op) identity() Payload {
	switch op {
	case OpMin:
		return Payload{math.MaxInt64, math.MaxInt64, math.MaxInt64}
	case OpMax:
		return Payload{math.MinInt64, math.MinInt64, math.MinInt64}
	default:
		return Payload{}
	}
}

// combine merges two payloads under op.
func (op Op) combine(a, b Payload) Payload {
	switch op {
	case OpMin:
		if lexLess(b, a) {
			return b
		}
		return a
	case OpMax:
		if lexLess(a, b) {
			return b
		}
		return a
	default:
		return Payload{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
	}
}

func lexLess(a, b Payload) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Variant selects the overcongestion-detection strategy of the distributed
// construction (the [HIZ16a] design axis of ablation A3).
type Variant uint8

const (
	// Randomized detects overcongested edges with min-hash sampling: each
	// cut wave propagates only the s = O(log n) smallest part hashes, so
	// waves are shorter but counts are estimates.
	Randomized Variant = iota
	// Deterministic propagates exact part-ID sets capped at the congestion
	// threshold c: longer waves, exact counts, and — on a fixed seed —
	// bit-identical reruns.
	Deterministic
)

// ProviderKind selects how shortcut-based algorithms (MST, MinCut,
// SubgraphComponents) obtain and pay for the shortcut of each phase.
type ProviderKind uint8

const (
	// ProviderCentral builds the shortcut centrally (shortcut.Build) and
	// charges the worst-case Lemma 2.8 budget b(2D+1)+c per iteration plus
	// the quality-bound aggregation schedule — the paper's own accounting,
	// with its admittedly loose constants (footnote 3).
	ProviderCentral ProviderKind = iota
	// ProviderDistributed runs the full Theorem 1.5 construction and the
	// aggregation schedules on the CONGEST simulator; every round is
	// measured.
	ProviderDistributed
	// ProviderCentralAdaptive builds centrally but charges the measured
	// shortcut quality Õ(Q) the construction actually delivered.
	ProviderCentralAdaptive
	// ProviderTrivial uses the folklore D+sqrt(n) baseline shortcut
	// (Section 1.3), charged at its measured quality.
	ProviderTrivial
)

// encodeWeight maps a float64 edge weight to an int64 whose order matches
// the float order (negative weights included), so weights ride in Payload
// words: the sign bit selects whether the remaining bits are flipped, the
// standard sortable-double transform. NaN weights are not supported.
func encodeWeight(w float64) int64 {
	k := int64(math.Float64bits(w))
	return k ^ (k>>63)&math.MaxInt64
}

// decodeWeight inverts encodeWeight.
func decodeWeight(k int64) float64 {
	k ^= (k >> 63) & math.MaxInt64
	return math.Float64frombits(uint64(k))
}

// ceilLog2 is shortcut.CeilLog2, aliased for brevity at the many call
// sites sizing logarithmic budgets.
var ceilLog2 = shortcut.CeilLog2
