package dist

import (
	"fmt"

	"locshort/internal/congest"
	"locshort/internal/graph"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

// BFSTreeResult is the outcome of the distributed BFS-tree construction.
type BFSTreeResult struct {
	// Tree is the computed BFS tree, materialized from the per-node parent
	// pointers the protocol left behind.
	Tree *tree.Rooted
	// Root is the node the wave started from.
	Root int
	// Rounds is the protocol's round breakdown (all measured).
	Rounds Rounds
	// Stats carries the simulator statistics (messages, per-edge loads).
	Stats *congest.Stats
}

// bfsMsg carries the sender's BFS level.
const kindBFSLevel uint8 = 1

// bfsProc is the textbook BFS wave: the root announces level 0 in round 0;
// every other node adopts the first announcement it hears (ties broken by
// the simulator's deterministic sender order), rebroadcasts level+1, and
// halts. The wave completes in eccentricity(root)+1 rounds.
type bfsProc struct {
	isRoot     bool
	depth      int
	parent     int
	parentEdge int
}

func (p *bfsProc) Step(ctx *congest.Context) {
	if p.isRoot {
		ctx.Broadcast(congest.Msg{Kind: kindBFSLevel, A: 0})
		ctx.Halt()
		return
	}
	if len(ctx.In) == 0 {
		return
	}
	// Inboxes are sorted by (sender, edge): the first announcement is the
	// deterministic choice.
	in := ctx.In[0]
	p.depth = int(in.Msg.A) + 1
	p.parent = in.From
	p.parentEdge = in.Edge
	ctx.Broadcast(congest.Msg{Kind: kindBFSLevel, A: int64(p.depth)})
	ctx.Halt()
}

// BuildBFSTree runs the distributed BFS-tree protocol from a near-central
// root (the leader; leader election is assumed, as throughout the paper)
// and returns the materialized tree. maxRounds bounds the simulation.
func BuildBFSTree(g *graph.Graph, maxRounds int) (*BFSTreeResult, error) {
	return buildBFSTreeFrom(g, shortcut.ChooseRoot(g), maxRounds)
}

func buildBFSTreeFrom(g *graph.Graph, root, maxRounds int) (*BFSTreeResult, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	procs := make([]congest.Proc, n)
	nodes := make([]*bfsProc, n)
	for v := 0; v < n; v++ {
		nodes[v] = &bfsProc{isRoot: v == root, depth: -1, parent: -1, parentEdge: -1}
		procs[v] = nodes[v]
	}
	nodes[root].depth = 0
	net, err := congest.NewNetwork(g, procs)
	if err != nil {
		return nil, err
	}
	stats, err := net.Run(maxRounds)
	if err != nil {
		return nil, fmt.Errorf("dist: BFS wave: %w", err)
	}
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := 0; v < n; v++ {
		if v != root && nodes[v].depth < 0 {
			return nil, graph.ErrDisconnected
		}
		parent[v] = nodes[v].parent
		parentEdge[v] = nodes[v].parentEdge
	}
	t, err := tree.FromParents(root, parent, parentEdge)
	if err != nil {
		return nil, fmt.Errorf("dist: BFS tree: %w", err)
	}
	return &BFSTreeResult{
		Tree:   t,
		Root:   root,
		Rounds: Rounds{Measured: stats.Rounds},
		Stats:  stats,
	}, nil
}
