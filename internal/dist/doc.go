// Package dist implements the paper's distributed results on the CONGEST
// simulator of internal/congest:
//
//   - Construct, the Theorem 1.5 distributed shortcut construction: a
//     distributed BFS tree, per-iteration overcongested-edge cut waves
//     (exact capped ID sets or min-hash sampling), the Observation 2.7
//     halving loop, and the parameter-free doubling search over δ' —
//     mirroring the centralized internal/shortcut.Build.
//   - Part-wise aggregation (Definition 2.1): NewPARouting installs
//     per-part routing trees on a shortcut; PartwiseAggregate and
//     PartwiseBroadcast run convergecast/broadcast schedules with
//     randomized contention resolution, the O(congestion + dilation·log n)
//     random-delay schedule of [LMR94].
//   - MST (Corollary 1.6): Borůvka phases over part-wise aggregation, with
//     the shortcut per phase supplied by a pluggable provider (simulated
//     distributed construction, charged centralized construction, or the
//     D+sqrt(n) baseline).
//   - MinCut (Corollary 1.7): tree packing of random-weight MSTs with
//     1-respecting cut evaluation (OneRespectingCuts).
//   - Applications of Section 1.2: sub-graph connectivity
//     (SubgraphComponents) and bridge finding (Bridges).
//
// # Round accounting
//
// Every entry point reports a Rounds breakdown:
//
//   - Measured: rounds actually executed on the CONGEST simulator
//     (BFS waves, cut waves, aggregation schedules).
//   - Sync: harness phase barriers, charged at tree depth + 1 each — the
//     cost of the "everyone has finished the phase" convergecast the
//     harness performs implicitly between protocol phases.
//   - Charged: analytically charged rounds for steps the harness executes
//     centrally, at the budget the paper assigns them (e.g. the
//     Lemma 2.8 [HHW18] block-verification budget b(2D+1) + c per
//     iteration, or the Õ(Q) aggregation budget of a charged provider).
//
// # Role in the DAG
//
// Depends on internal/graph, internal/partition, internal/tree,
// internal/shortcut, and internal/congest. internal/service runs MST,
// MinCut, and aggregation jobs through this package against cached
// shortcuts; internal/bench's E3–E13 experiments measure it.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package dist
