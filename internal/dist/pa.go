package dist

import (
	"fmt"
	"math/rand"
	"sort"

	"locshort/internal/congest"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

// PARouting is the per-part aggregation routing state installed on a
// shortcut: one rooted routing tree per part, spanning the augmented
// subgraph G[P_i] + H_i. Nodes of V(H_i) \ P_i participate as Steiner
// relays and contribute the operator identity.
type PARouting struct {
	// Parts is the partition the routing serves.
	Parts *partition.Partition
	// PartRoot[i] is the root node of part i's routing tree.
	PartRoot []int
	// PartDepth[i] is the depth of part i's routing tree; it is bounded by
	// the diameter of the augmented subgraph, i.e. the part's dilation.
	PartDepth []int

	entries [][]paEntry // per node: the parts it participates in
	n       int         // node count of the underlying graph
}

// paEntry is one node's role in one part's routing tree.
type paEntry struct {
	part       int
	parent     int   // parent node, -1 at the root
	parentEdge int   // graph edge ID to the parent, -1 at the root
	childEdges []int // graph edge IDs to routing-tree children
	member     bool  // node ∈ P_i (contributes its value)
}

// MaxDepth returns the deepest routing tree's depth.
func (r *PARouting) MaxDepth() int {
	d := 0
	for _, pd := range r.PartDepth {
		if pd > d {
			d = pd
		}
	}
	return d
}

// NewPARouting builds aggregation routing trees on a full shortcut: for
// every part a BFS tree of the augmented subgraph G[P_i] + H_i, rooted at
// a double-sweep endpoint so the depth is at most the augmented diameter
// (the part's dilation). Every part must be covered.
func NewPARouting(s *shortcut.Shortcut) (*PARouting, error) {
	g := s.G
	k := s.Parts.NumParts()
	r := &PARouting{
		Parts:     s.Parts,
		PartRoot:  make([]int, k),
		PartDepth: make([]int, k),
		entries:   make([][]paEntry, g.NumNodes()),
		n:         g.NumNodes(),
	}
	for i := 0; i < k; i++ {
		if !s.Covered[i] {
			return nil, fmt.Errorf("dist: part %d is uncovered; aggregation routing needs a full shortcut", i)
		}
		if err := r.installPart(g, s, i); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// paArc is one direction of an augmented-subgraph edge.
type paArc struct{ to, edge int }

// installPart builds part i's routing tree.
func (r *PARouting) installPart(g *graph.Graph, s *shortcut.Shortcut, i int) error {
	// Augmented adjacency over global node IDs, graph edge IDs preserved.
	inPart := make(map[int]bool, len(s.Parts.Parts[i]))
	for _, v := range s.Parts.Parts[i] {
		inPart[v] = true
	}
	adj := make(map[int][]paArc)
	addEdge := func(id int) {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], paArc{to: e.V, edge: id})
		adj[e.V] = append(adj[e.V], paArc{to: e.U, edge: id})
	}
	for _, v := range s.Parts.Parts[i] {
		for _, a := range g.Neighbors(v) {
			if inPart[a.To] && v < a.To {
				addEdge(a.Edge)
			}
		}
		if _, ok := adj[v]; !ok {
			adj[v] = nil // isolated singleton part
		}
	}
	for _, id := range s.H[i] {
		addEdge(id)
	}
	//locshort:nondeterministic-ok each key's slice is sorted independently; visit order cannot change the result
	for v := range adj {
		as := adj[v]
		sort.Slice(as, func(x, y int) bool {
			if as[x].to != as[y].to {
				return as[x].to < as[y].to
			}
			return as[x].edge < as[y].edge
		})
	}

	bfs := func(src int) (dist, parent, parentEdge map[int]int, far, depth int) {
		dist = map[int]int{src: 0}
		parent = map[int]int{src: -1}
		parentEdge = map[int]int{src: -1}
		queue := []int{src}
		far = src
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if dist[v] > depth {
				depth = dist[v]
				far = v
			}
			for _, a := range adj[v] {
				if _, seen := dist[a.to]; !seen {
					dist[a.to] = dist[v] + 1
					parent[a.to] = v
					parentEdge[a.to] = a.edge
					queue = append(queue, a.to)
				}
			}
		}
		return dist, parent, parentEdge, far, depth
	}

	// Double sweep: the second BFS is rooted at an eccentric node, so its
	// depth is at most the augmented diameter.
	_, _, _, far, _ := bfs(s.Parts.Parts[i][0])
	dist, parent, parentEdge, _, depth := bfs(far)
	if len(dist) != len(adj) {
		return errDisconnectedPart(i)
	}
	r.PartRoot[i] = far
	r.PartDepth[i] = depth

	// Children edge lists.
	childEdges := make(map[int][]int)
	nodes := make([]int, 0, len(adj))
	//locshort:nondeterministic-ok keys are collected and sorted before any order-sensitive use
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		if p := parent[v]; p >= 0 {
			childEdges[p] = append(childEdges[p], parentEdge[v])
		}
	}
	for _, v := range nodes {
		r.entries[v] = append(r.entries[v], paEntry{
			part:       i,
			parent:     parent[v],
			parentEdge: parentEdge[v],
			childEdges: childEdges[v],
			member:     inPart[v],
		})
	}
	return nil
}

func errDisconnectedPart(i int) error {
	return fmt.Errorf("dist: augmented subgraph of part %d is disconnected", i)
}

// PAResult is the outcome of a part-wise aggregation or broadcast.
type PAResult struct {
	// PartResult[i] is part i's aggregate (for broadcasts: its input).
	PartResult []Payload
	// NodeResult[v] is the aggregate of v's own part, known at v after the
	// downward phase; the operator identity for uncovered nodes.
	NodeResult []Payload
	// Rounds is the simulated round count (all measured).
	Rounds Rounds
	// Stats carries the simulator statistics.
	Stats *congest.Stats
}

// Message kinds of the aggregation schedule.
const (
	kindPAUp   uint8 = 6
	kindPADown uint8 = 7
)

// PartwiseAggregate solves one instance of the part-wise aggregation
// problem (Definition 2.1) on the installed routing: a convergecast of op
// over every part's routing tree followed by a broadcast of the result
// back to all participants, simulated on the CONGEST network. Edges shared
// by several routing trees serve one message per round per direction;
// queued messages are served in random order when randomized is true (the
// [LMR94] random-delay schedule realized as a random queue discipline) and
// in increasing part order otherwise. values holds one payload per node;
// only part members contribute (Steiner relays inject op's identity).
// maxRounds bounds the simulation.
func PartwiseAggregate(g *graph.Graph, r *PARouting, op Op, values []Payload,
	seed int64, randomized bool, maxRounds int) (*PAResult, error) {
	if len(values) != g.NumNodes() {
		return nil, fmt.Errorf("dist: %d values for %d nodes", len(values), g.NumNodes())
	}
	return runPA(g, r, op, values, nil, seed, randomized, maxRounds)
}

// PartwiseBroadcast disseminates one payload per part from the part's
// routing root to every participant of the part — the downward half of the
// aggregation schedule, with the same contention discipline.
func PartwiseBroadcast(g *graph.Graph, r *PARouting, perPart []Payload,
	seed int64, randomized bool, maxRounds int) (*PAResult, error) {
	if len(perPart) != r.Parts.NumParts() {
		return nil, fmt.Errorf("dist: %d part payloads for %d parts", len(perPart), r.Parts.NumParts())
	}
	return runPA(g, r, OpSum, nil, perPart, seed, randomized, maxRounds)
}

type paState struct {
	entry    paEntry
	pending  int // children not yet heard from (convergecast)
	acc      Payload
	upDone   bool
	haveRes  bool
	result   Payload
	downDone bool
}

type outMsg struct {
	part    int
	kind    uint8
	payload Payload
}

// paProc is one node of the aggregation schedule.
type paProc struct {
	node       int
	op         Op
	states     []paState
	byPart     map[int]int // part -> index into states
	queueEdges []int       // sorted incident edges this node routes on
	queues     [][]outMsg  // parallel to queueEdges
	rng        *rand.Rand  // nil: fixed (increasing-part) discipline
	partRes    []Payload   // shared, element-disjoint writes (roots only)
	nodeRes    []Payload   // shared, element-disjoint writes (own index)
}

func (p *paProc) enqueue(edge int, m outMsg) {
	i := sort.SearchInts(p.queueEdges, edge)
	p.queues[i] = append(p.queues[i], m)
}

func (p *paProc) Step(ctx *congest.Context) {
	for _, in := range ctx.In {
		idx, ok := p.byPart[int(in.Msg.A)]
		if !ok {
			continue
		}
		st := &p.states[idx]
		pl := Payload{in.Msg.B, in.Msg.C, in.Msg.D}
		switch in.Msg.Kind {
		case kindPAUp:
			st.acc = p.op.combine(st.acc, pl)
			st.pending--
		case kindPADown:
			st.result = pl
			st.haveRes = true
		}
	}
	done := true
	for i := range p.states {
		st := &p.states[i]
		if !st.upDone && st.pending == 0 {
			st.upDone = true
			if st.entry.parent < 0 {
				// Root: the aggregate is final; publish and start the
				// downward phase.
				st.result = st.acc
				st.haveRes = true
				p.partRes[st.entry.part] = st.acc
			} else {
				p.enqueue(st.entry.parentEdge, outMsg{part: st.entry.part, kind: kindPAUp, payload: st.acc})
			}
		}
		if st.haveRes && !st.downDone {
			st.downDone = true
			if st.entry.member {
				p.nodeRes[p.node] = st.result
			}
			for _, ce := range st.entry.childEdges {
				p.enqueue(ce, outMsg{part: st.entry.part, kind: kindPADown, payload: st.result})
			}
		}
		if !st.upDone || !st.downDone {
			done = false
		}
	}
	// Serve each incident edge: one queued message per round, picked at
	// random (randomized discipline) or lowest-part-first (fixed).
	for i, q := range p.queues {
		if len(q) == 0 {
			continue
		}
		pick := 0
		if p.rng != nil {
			pick = p.rng.Intn(len(q))
		} else {
			for j := 1; j < len(q); j++ {
				if q[j].part < q[pick].part {
					pick = j
				}
			}
		}
		m := q[pick]
		p.queues[i] = append(q[:pick], q[pick+1:]...)
		ctx.Send(p.queueEdges[i], congest.Msg{
			Kind: m.kind, A: int64(m.part), B: m.payload[0], C: m.payload[1], D: m.payload[2],
		})
		done = false
	}
	if done {
		ctx.Halt()
	}
}

// runPA drives the schedule. With values != nil it runs the full
// convergecast + broadcast; with perPart != nil it runs the broadcast only.
func runPA(g *graph.Graph, r *PARouting, op Op, values, perPart []Payload,
	seed int64, randomized bool, maxRounds int) (*PAResult, error) {
	if r.n != g.NumNodes() {
		return nil, fmt.Errorf("dist: routing installed for %d nodes, graph has %d", r.n, g.NumNodes())
	}
	n := g.NumNodes()
	k := r.Parts.NumParts()
	res := &PAResult{
		PartResult: make([]Payload, k),
		NodeResult: make([]Payload, n),
	}
	for i := range res.PartResult {
		res.PartResult[i] = op.identity()
	}
	for v := range res.NodeResult {
		res.NodeResult[v] = op.identity()
	}

	procs := make([]congest.Proc, n)
	for v := 0; v < n; v++ {
		entries := r.entries[v]
		p := &paProc{
			node:    v,
			op:      op,
			states:  make([]paState, len(entries)),
			byPart:  make(map[int]int, len(entries)),
			partRes: res.PartResult,
			nodeRes: res.NodeResult,
		}
		if randomized {
			p.rng = rand.New(rand.NewSource(seed ^ (int64(v)+1)*0x4F1BBCDCBFA53E0B))
		}
		edgeSet := map[int]bool{}
		for j, e := range entries {
			st := paState{entry: e, pending: len(e.childEdges), acc: op.identity()}
			if perPart != nil {
				// Broadcast-only: skip the convergecast.
				st.upDone = true
				if e.parent < 0 {
					st.haveRes = true
					st.result = perPart[e.part]
					res.PartResult[e.part] = perPart[e.part]
				}
			} else if e.member {
				st.acc = values[v]
			}
			p.states[j] = st
			p.byPart[e.part] = j
			if e.parentEdge >= 0 {
				edgeSet[e.parentEdge] = true
			}
			for _, ce := range e.childEdges {
				edgeSet[ce] = true
			}
		}
		p.queueEdges = make([]int, 0, len(edgeSet))
		//locshort:nondeterministic-ok keys are collected and sorted before any order-sensitive use
		for e := range edgeSet {
			p.queueEdges = append(p.queueEdges, e)
		}
		sort.Ints(p.queueEdges)
		p.queues = make([][]outMsg, len(p.queueEdges))
		procs[v] = p
	}

	net, err := congest.NewNetwork(g, procs)
	if err != nil {
		return nil, err
	}
	stats, err := net.Run(maxRounds)
	if err != nil {
		return nil, fmt.Errorf("dist: part-wise aggregation: %w", err)
	}
	res.Rounds = Rounds{Measured: stats.Rounds}
	res.Stats = stats
	return res, nil
}
