package dist

import (
	"fmt"
	"math/rand"
	"sort"

	"locshort/internal/congest"
	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

// ConstructOptions configures the Theorem 1.5 distributed construction.
// The zero value runs the randomized variant with the paper's constants and
// the parameter-free doubling search, mirroring shortcut.Options.
type ConstructOptions struct {
	// Variant selects overcongestion detection: Randomized (min-hash
	// sampling, the default) or Deterministic (exact capped ID sets).
	Variant Variant
	// Seed drives the sampling hashes and is part of the protocol's shared
	// randomness; with Variant == Deterministic the entire run is a
	// deterministic function of (graph, partition, options).
	Seed int64
	// Delta fixes δ'. If zero, the doubling search over δ' runs exactly as
	// in shortcut.Build.
	Delta int
	// MaxDelta caps the doubling search (default: number of nodes).
	MaxDelta int
	// CongestionFactor and BlockFactor scale c = CongestionFactor·δ'·D and
	// b = BlockFactor·δ'; both default to the paper's 8.
	CongestionFactor int
	BlockFactor      int
	// MaxIterations caps the Observation 2.7 loop (default ⌈log₂k⌉+2).
	MaxIterations int
	// MaxWaveRounds bounds the simulated rounds of a single cut wave
	// (default: a generous multiple of depth·threshold).
	MaxWaveRounds int
}

// ConstructResult carries the product of the distributed construction: the
// shortcut, its installed aggregation routing, and the cost breakdown.
type ConstructResult struct {
	Shortcut *shortcut.Shortcut
	// Routing is the part-wise aggregation routing installed on Shortcut,
	// ready for PartwiseAggregate.
	Routing *PARouting
	// Tree is the distributedly computed BFS tree the shortcut is
	// restricted to.
	Tree *tree.Rooted
	// Delta is the accepted δ' of the doubling search.
	Delta int
	// CongestionThreshold and BlockBudget are the c and b of the accepted
	// level.
	CongestionThreshold int
	BlockBudget         int
	// Iterations is the number of Observation 2.7 iterations at the
	// accepted level.
	Iterations int
	// Rounds is the full cost breakdown; see the package comment.
	Rounds Rounds
	// Messages counts all simulated messages (BFS wave + cut waves).
	Messages int64
}

// Construct runs the Theorem 1.5 construction on the CONGEST simulator:
// a distributed BFS tree, then, per δ' level of the doubling search, the
// Observation 2.7 loop whose iterations each run one simulated
// overcongested-edge cut wave (bottom-up over the tree) followed by the
// centrally executed Case (I) harvest, charged at the Lemma 2.8 budget
// b(2D+1)+c. The accepted level's shortcut gets its aggregation routing
// installed (charged at one tree broadcast + convergecast).
func Construct(g *graph.Graph, p *partition.Partition, opts ConstructOptions) (*ConstructResult, error) {
	if p.NumParts() == 0 {
		return nil, fmt.Errorf("dist: no parts")
	}
	res := &ConstructResult{}

	bfs, err := BuildBFSTree(g, 4*g.NumNodes()+16)
	if err != nil {
		return nil, err
	}
	res.Tree = bfs.Tree
	res.Rounds.add(bfs.Rounds)
	res.Messages += bfs.Stats.Messages
	depth := bfs.Tree.MaxDepth()
	if depth < 1 {
		depth = 1
	}

	cf := opts.CongestionFactor
	if cf == 0 {
		cf = 8
	}
	bf := opts.BlockFactor
	if bf == 0 {
		bf = 8
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = ceilLog2(p.NumParts()) + 2
	}
	maxDelta := opts.MaxDelta
	if maxDelta == 0 {
		maxDelta = g.NumNodes()
	}

	start := opts.Delta
	fixed := start != 0
	if !fixed {
		start = 1
	}
	// One wave scratch serves every cut wave of the doubling search: the
	// per-node protocol state, the min-hash table, and the cut indicator
	// are sized once and recycled across iterations and delta' levels —
	// the distributed mirror of the centralized Builder's flat scratch.
	ws := &waveScratch{}
	for delta := start; ; delta *= 2 {
		if !fixed && delta > maxDelta {
			return nil, fmt.Errorf("dist: doubling search exhausted at delta' = %d (max %d)", delta, maxDelta)
		}
		c := cf * delta * depth
		b := bf * delta
		s, iters, ok, err := runLevelDist(g, bfs.Tree, p, c, b, maxIter, delta, opts, res, ws)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Shortcut = s
			res.Delta = delta
			res.CongestionThreshold = c
			res.BlockBudget = b
			res.Iterations = iters
			routing, err := NewPARouting(s)
			if err != nil {
				return nil, fmt.Errorf("dist: install routing: %w", err)
			}
			res.Routing = routing
			// Routing installation: announce the cut edges top-down and
			// convergecast completion — one barrier each way.
			res.Rounds.Charged += 2 * (depth + 1)
			return res, nil
		}
		if fixed {
			return nil, fmt.Errorf("dist: delta' = %d: %w", opts.Delta, shortcut.ErrDeltaTooSmall)
		}
	}
}

// runLevelDist is the Observation 2.7 loop at a fixed (c, b) level, with
// the overcongestion detection of each iteration executed as a simulated
// cut wave. The harvest (Case I of Theorem 3.1) is executed centrally via
// the same shortcut.AssembleFromCuts helper the centralized builder uses,
// and charged at the Lemma 2.8 verification budget.
func runLevelDist(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c, b, maxIter, delta int,
	opts ConstructOptions, res *ConstructResult, ws *waveScratch) (*shortcut.Shortcut, int, bool, error) {
	k := p.NumParts()
	depth := t.MaxDepth()
	if depth < 1 {
		depth = 1
	}
	s := &shortcut.Shortcut{
		G:       g,
		Parts:   p,
		Tree:    t,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	remaining := k
	for iter := 1; iter <= maxIter; iter++ {
		waveSeed := opts.Seed ^ int64(delta)<<20 ^ int64(iter)<<8
		cutAbove, wave, err := cutWave(g, t, p, c, active, opts, waveSeed, ws)
		if err != nil {
			return nil, 0, false, err
		}
		res.Rounds.add(wave.rounds)
		res.Messages += wave.messages
		// Case (I) harvest, executed centrally and charged at the
		// [HHW18] Lemma 2.8 block-verification budget, plus one phase
		// barrier.
		pr := shortcut.AssembleFromCuts(g, t, p, cutAbove, active, b)
		res.Rounds.Charged += b*(2*depth+1) + c
		res.Rounds.Sync += depth + 1

		progress := 0
		for i := 0; i < k; i++ {
			if active[i] && pr.Covered[i] {
				s.Covered[i] = true
				s.H[i] = pr.H[i]
				active[i] = false
				progress++
			}
		}
		remaining -= progress
		if remaining == 0 {
			return s, iter, true, nil
		}
		if progress == 0 {
			return s, iter, false, nil
		}
	}
	return s, maxIter, false, nil
}

// Message kinds of the cut wave.
const (
	kindWaveID   uint8 = 2 // one part identifier (or hash), more follow
	kindWaveLast uint8 = 3 // final part identifier of this subtree
	kindWaveDone uint8 = 4 // subtree finished, no identifiers (or none left)
	kindWaveCut  uint8 = 5 // parent edge is overcongested: subtree sealed
)

// waveOutcome aggregates a cut wave's cost.
type waveOutcome struct {
	rounds   Rounds
	messages int64
}

// waveScratch recycles the per-node protocol state across cut waves: the
// waveProc slab (each keeping its grown items slice), the Proc interface
// table, the shared min-hash values, and the cut indicator. One instance
// serves a whole doubling search sequentially.
type waveScratch struct {
	slab     []waveProc
	procs    []congest.Proc
	hash     []int64
	cutAbove []bool
}

func (ws *waveScratch) prepare(n, parts int) {
	if cap(ws.slab) < n {
		ws.slab = make([]waveProc, n)
		ws.procs = make([]congest.Proc, n)
		ws.cutAbove = make([]bool, n)
	}
	ws.slab = ws.slab[:n]
	ws.procs = ws.procs[:n]
	ws.cutAbove = ws.cutAbove[:n]
	if cap(ws.hash) < parts {
		ws.hash = make([]int64, parts)
	}
	ws.hash = ws.hash[:parts]
}

// cutWave runs one simulated bottom-up overcongested-edge wave and returns
// cutAbove (node v's parent edge was cut). Semantics match the bottom-up
// sweep of shortcut.BuildPartial: every node accumulates the set of active
// parts intersecting its T\O subtree — severed at already-cut edges — and
// cuts its own parent edge exactly when the (estimated) count reaches c.
//
// Deterministic variant: nodes stream exact part-ID sets, capped at c
// (once c distinct parts are seen the edge is cut and nothing propagates),
// so decisions equal the centralized ones. Randomized variant: nodes
// stream only the s = 2⌈log₂n⌉+4 smallest min-hashes of the part IDs and
// estimate the distinct count from the s-th smallest — shorter waves,
// approximate counts (the [HIZ16a] trade-off of ablation A3).
func cutWave(g *graph.Graph, t *tree.Rooted, p *partition.Partition, c int, active []bool,
	opts ConstructOptions, seed int64, ws *waveScratch) ([]bool, waveOutcome, error) {
	n := g.NumNodes()
	children := t.Children()
	sampleSize := 2*ceilLog2(n) + 4
	ws.prepare(n, p.NumParts())

	// Shared randomness: every node knows the wave's part-hash function.
	hash := ws.hash
	if opts.Variant == Randomized {
		rng := rand.New(rand.NewSource(seed))
		for i := range hash {
			hash[i] = 1 + rng.Int63n(hashRange-1)
		}
	}

	procs := ws.procs
	for v := 0; v < n; v++ {
		w := &ws.slab[v]
		w.reset(opts.Variant, c, sampleSize, t.Parent[v], t.ParentEdge[v], len(children[v]))
		if pi := p.PartOf[v]; pi >= 0 && active[pi] {
			if opts.Variant == Randomized {
				w.partKey = hash[pi]
			} else {
				w.partKey = int64(pi)
			}
		}
		procs[v] = w
	}
	net, err := congest.NewNetwork(g, procs)
	if err != nil {
		return nil, waveOutcome{}, err
	}
	maxRounds := opts.MaxWaveRounds
	if maxRounds == 0 {
		cap := c
		if opts.Variant == Randomized {
			cap = sampleSize
		}
		if cap > p.NumParts() {
			cap = p.NumParts()
		}
		maxRounds = 2*(t.MaxDepth()+1)*(cap+3) + 16
	}
	stats, err := net.Run(maxRounds)
	if err != nil {
		return nil, waveOutcome{}, fmt.Errorf("dist: cut wave: %w", err)
	}
	cutAbove := ws.cutAbove
	for v := 0; v < n; v++ {
		cutAbove[v] = ws.slab[v].cut
	}
	return cutAbove, waveOutcome{
		rounds:   Rounds{Measured: stats.Rounds},
		messages: stats.Messages,
	}, nil
}

// hashRange is the range of min-hash values: uniform in [1, hashRange).
const hashRange = int64(1) << 62

// waveProc is one node of the cut wave.
type waveProc struct {
	variant    Variant
	threshold  int   // c
	sampleSize int   // s (randomized variant)
	parent     int   // parent node, -1 at the root
	parentEdge int   // graph edge to the parent
	waiting    int   // tree children that have not finished
	partKey    int64 // own active part's ID/hash, or -1

	started bool
	items   []int64 // sorted distinct part IDs (exact) or min-hashes
	full    bool    // exact variant: c distinct parts reached
	cut     bool
	sendIdx int
	closing bool // streaming finished or cut sent; halt next chance
}

// reset reinitializes the proc for a new wave, keeping the grown items
// backing array.
func (w *waveProc) reset(variant Variant, threshold, sampleSize, parent, parentEdge, waiting int) {
	w.variant = variant
	w.threshold = threshold
	w.sampleSize = sampleSize
	w.parent = parent
	w.parentEdge = parentEdge
	w.waiting = waiting
	w.partKey = -1
	w.started = false
	w.items = w.items[:0]
	w.full = false
	w.cut = false
	w.sendIdx = 0
	w.closing = false
}

func (w *waveProc) Step(ctx *congest.Context) {
	if !w.started {
		w.started = true
		if w.partKey >= 0 {
			w.insert(w.partKey)
		}
	}
	for _, in := range ctx.In {
		switch in.Msg.Kind {
		case kindWaveID:
			w.insert(in.Msg.A)
		case kindWaveLast:
			w.insert(in.Msg.A)
			w.waiting--
		case kindWaveDone, kindWaveCut:
			w.waiting--
		}
	}
	if w.waiting > 0 {
		return
	}
	if w.parent < 0 {
		// The root never cuts: it has no parent edge.
		ctx.Halt()
		return
	}
	if w.closing {
		ctx.Halt()
		return
	}
	if w.sendIdx == 0 && w.overcongested() {
		w.cut = true
		ctx.Send(w.parentEdge, congest.Msg{Kind: kindWaveCut})
		w.closing = true
		return
	}
	// Stream the accumulated set upward, one identifier per round.
	switch {
	case w.sendIdx >= len(w.items):
		ctx.Send(w.parentEdge, congest.Msg{Kind: kindWaveDone})
		w.closing = true
	case w.sendIdx == len(w.items)-1:
		ctx.Send(w.parentEdge, congest.Msg{Kind: kindWaveLast, A: w.items[w.sendIdx]})
		w.sendIdx++
		w.closing = true
	default:
		ctx.Send(w.parentEdge, congest.Msg{Kind: kindWaveID, A: w.items[w.sendIdx]})
		w.sendIdx++
	}
}

// insert adds a part identifier/hash to the node's distinct set, capped at
// the variant's retention limit.
func (w *waveProc) insert(key int64) {
	i := sort.Search(len(w.items), func(j int) bool { return w.items[j] >= key })
	if i < len(w.items) && w.items[i] == key {
		return
	}
	limit := w.threshold
	if w.variant == Randomized {
		limit = w.sampleSize
	}
	if len(w.items) >= limit {
		if w.variant == Deterministic {
			w.full = true // at least c distinct parts: count saturated
			return
		}
		if i >= limit {
			return // not among the s smallest hashes
		}
		w.items = w.items[:limit-1] // drop the largest retained hash
	}
	w.items = append(w.items, 0)
	copy(w.items[i+1:], w.items[i:])
	w.items[i] = key
}

// overcongested reports whether the node's accumulated (estimated) distinct
// part count has reached the threshold c.
func (w *waveProc) overcongested() bool {
	if w.variant == Deterministic {
		return w.full || len(w.items) >= w.threshold
	}
	if len(w.items) < w.sampleSize {
		return len(w.items) >= w.threshold // count is exact below s
	}
	// Min-hash estimate from the s-th smallest hash value.
	est := float64(w.sampleSize-1) * float64(hashRange) / float64(w.items[w.sampleSize-1])
	return int(est) >= w.threshold
}
