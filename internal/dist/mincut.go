package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"locshort/internal/graph"
	"locshort/internal/tree"
)

// MinCutOptions configures the Corollary 1.7 distributed minimum cut.
type MinCutOptions struct {
	// Seed drives the random edge weights of the tree packing.
	Seed int64
	// Trees overrides the number of sampled spanning trees
	// (default 2⌈log₂n⌉+4).
	Trees int
	// MST configures the shortcut-based MST runs that sample the trees.
	MST MSTOptions
}

// MinCutResult reports the tree-packing minimum cut.
type MinCutResult struct {
	// Value is the number of edges in the best cut found (edge
	// cardinality: the experiments use unit capacities).
	Value int64
	// Side marks one side of the best cut (Side[v] == true), or nil when
	// the best candidate is a singleton degree cut.
	Side []bool
	// Trees is the number of spanning trees sampled.
	Trees int
	// Rounds is the accumulated cost of all tree computations and cut
	// evaluations.
	Rounds Rounds
}

// MinCut computes a minimum edge cut by tree packing (Corollary 1.7):
// sample R = 2⌈log₂n⌉+4 spanning trees, each the MST of the graph under
// fresh random edge weights — a full shortcut-based distributed
// computation — and take the minimum 1-respecting cut of any sampled tree
// (OneRespectingCuts). The trivial singleton (degree) cuts, available in
// one local round, are included as candidates. On the bounded-density
// families of the experiments the sampled trees 1-constrain the minimum
// cut with high probability, and the result is exact.
func MinCut(g *graph.Graph, opts MinCutOptions) (*MinCutResult, error) {
	n := g.NumNodes()
	if n < 2 {
		return &MinCutResult{Value: 0}, nil
	}
	if !graph.Connected(g) {
		return nil, graph.ErrDisconnected
	}
	trees := opts.Trees
	if trees == 0 {
		trees = 2*ceilLog2(n) + 4
	}
	res := &MinCutResult{Trees: trees, Value: math.MaxInt64}

	// Trivial local candidate: the best singleton cut (one round: every
	// node knows its own degree).
	minDeg, minDegNode := int64(math.MaxInt64), -1
	for v := 0; v < n; v++ {
		if d := int64(g.Degree(v)); d < minDeg {
			minDeg, minDegNode = d, v
		}
	}
	res.Rounds.Charged++

	var bestTree *tree.Rooted
	bestNode := -1
	rng := rand.New(rand.NewSource(opts.Seed))
	for t := 0; t < trees; t++ {
		gw := g.Clone()
		graph.RandomizeWeights(gw, rng)
		mopts := opts.MST
		mopts.Seed = opts.Seed + int64(t+1)*0x2545F491
		mst, err := MST(gw, mopts)
		if err != nil {
			return nil, fmt.Errorf("dist: tree %d: %w", t, err)
		}
		res.Rounds.add(mst.Rounds)
		tr, err := treeFromEdgeIDs(g, mst.EdgeIDs)
		if err != nil {
			return nil, fmt.Errorf("dist: tree %d: %w", t, err)
		}
		cuts := OneRespectingCuts(g, tr)
		// Per-tree 1-respecting evaluation: a subtree convergecast and a
		// broadcast of the winner.
		res.Rounds.Charged += 2*tr.MaxDepth() + 2
		for v := 0; v < n; v++ {
			if v != tr.Root && cuts[v] < res.Value {
				res.Value = cuts[v]
				bestTree, bestNode = tr, v
			}
		}
	}

	if minDeg < res.Value {
		res.Value = minDeg
		res.Side = make([]bool, n)
		res.Side[minDegNode] = true
	} else if bestTree != nil {
		iv := bestTree.EulerIntervals()
		res.Side = make([]bool, n)
		for v := 0; v < n; v++ {
			res.Side[v] = iv.Ancestor(bestNode, v)
		}
	}
	return res, nil
}

// OneRespectingCuts returns, for every non-root node v, the number of
// graph edges crossing the cut (subtree(v), rest) — the cuts that
// 1-respect the tree. The root's entry (the empty cut) is MaxInt64.
// Every edge {u,w} contributes +1 at u, +1 at w and -2 at LCA(u,w); the
// subtree sums are exactly the crossing-edge counts.
func OneRespectingCuts(g *graph.Graph, t *tree.Rooted) []int64 {
	n := g.NumNodes()
	contrib := make([]int64, n)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		contrib[e.U]++
		contrib[e.V]++
		contrib[t.LCA(e.U, e.V)] -= 2
	}
	cuts := t.SubtreeSum(contrib)
	cuts[t.Root] = math.MaxInt64
	return cuts
}

// treeFromEdgeIDs materializes a rooted tree from spanning-tree edge IDs.
func treeFromEdgeIDs(g *graph.Graph, edgeIDs []int) (*tree.Rooted, error) {
	n := g.NumNodes()
	adj := make([][]paArc, n)
	for _, id := range edgeIDs {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], paArc{to: e.V, edge: id})
		adj[e.V] = append(adj[e.V], paArc{to: e.U, edge: id})
	}
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := range parent {
		parent[v] = -1
		parentEdge[v] = -1
	}
	seen := make([]bool, n)
	seen[0] = true
	queue := []int{0}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range adj[v] {
			if !seen[a.to] {
				seen[a.to] = true
				parent[a.to] = v
				parentEdge[a.to] = a.edge
				queue = append(queue, a.to)
			}
		}
	}
	if len(queue) != n {
		return nil, fmt.Errorf("dist: %d edges do not span %d nodes", len(edgeIDs), n)
	}
	return tree.FromParents(0, parent, parentEdge)
}

// BridgeResult reports the distributed bridge finder.
type BridgeResult struct {
	// EdgeIDs lists the bridges in increasing edge-ID order.
	EdgeIDs []int
	// Tree is the BFS tree the evaluation 1-respected.
	Tree *tree.Rooted
	// Rounds is the cost breakdown (measured BFS wave + charged
	// evaluation).
	Rounds Rounds
}

// Bridges finds all bridge edges distributedly (the 2-edge-connectivity
// application of Section 1.2): build a BFS tree from root on the
// simulator, then evaluate the 1-respecting cuts — a tree edge is a bridge
// exactly when its subtree cut has value 1, since any second crossing edge
// would close a cycle around it. Every bridge lies in every spanning tree,
// so the single tree suffices and the result is exact.
func Bridges(g *graph.Graph, root int) (*BridgeResult, error) {
	bfs, err := buildBFSTreeFrom(g, root, 4*g.NumNodes()+16)
	if err != nil {
		return nil, err
	}
	res := &BridgeResult{Tree: bfs.Tree}
	res.Rounds.add(bfs.Rounds)
	cuts := OneRespectingCuts(g, bfs.Tree)
	res.Rounds.Charged += 2*bfs.Tree.MaxDepth() + 2
	for v := 0; v < g.NumNodes(); v++ {
		if v != bfs.Tree.Root && cuts[v] == 1 {
			res.EdgeIDs = append(res.EdgeIDs, bfs.Tree.ParentEdge[v])
		}
	}
	sort.Ints(res.EdgeIDs)
	return res, nil
}
