package dist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
)

func buildRouting(t *testing.T, g *graph.Graph, p *partition.Partition) *PARouting {
	t.Helper()
	res, err := shortcut.Build(g, p, shortcut.Options{})
	if err != nil {
		t.Fatalf("Build = %v", err)
	}
	r, err := NewPARouting(res.Shortcut)
	if err != nil {
		t.Fatalf("NewPARouting = %v", err)
	}
	return r
}

func TestBuildBFSTree(t *testing.T) {
	g := graph.Grid(9, 9)
	res, err := BuildBFSTree(g, 4*g.NumNodes())
	if err != nil {
		t.Fatalf("BuildBFSTree = %v", err)
	}
	ecc, _ := graph.Eccentricity(g, res.Root)
	if got := res.Tree.MaxDepth(); got != ecc {
		t.Errorf("tree depth %d, want eccentricity %d", got, ecc)
	}
	if res.Rounds.Measured != ecc+1 {
		t.Errorf("BFS wave took %d rounds, want %d", res.Rounds.Measured, ecc+1)
	}
	// Every non-root node's parent edge exists and leads one level up.
	for v := 0; v < g.NumNodes(); v++ {
		if v == res.Root {
			continue
		}
		p := res.Tree.Parent[v]
		if res.Tree.Depth[v] != res.Tree.Depth[p]+1 {
			t.Fatalf("node %d depth %d, parent %d depth %d", v, res.Tree.Depth[v], p, res.Tree.Depth[p])
		}
		if g.Other(res.Tree.ParentEdge[v], v) != p {
			t.Fatalf("node %d parent edge does not lead to parent", v)
		}
	}
}

func TestPartwiseAggregateAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"grid 10x10", graph.Grid(10, 10), 10},
		{"wheel 64", graph.Wheel(64), 0}, // 0: rim/hub partition
		{"torus 8x8", graph.Torus(8, 8), 12},
	} {
		var p *partition.Partition
		var err error
		if tc.k == 0 {
			p, err = partition.WheelRim(tc.g)
		} else {
			p, err = partition.BFSBlobs(tc.g, tc.k, rng)
		}
		if err != nil {
			t.Fatalf("%s: partition: %v", tc.name, err)
		}
		r := buildRouting(t, tc.g, p)
		values := make([]Payload, tc.g.NumNodes())
		for v := range values {
			values[v] = Payload{int64(rng.Intn(1000)), int64(v), int64(rng.Intn(7))}
		}
		for _, op := range []Op{OpSum, OpMin, OpMax} {
			want := referenceAggregate(p, op, values)
			for _, randomized := range []bool{true, false} {
				pa, err := PartwiseAggregate(tc.g, r, op, values, 5, randomized, 64*tc.g.NumNodes()+4096)
				if err != nil {
					t.Fatalf("%s op %d randomized %v: %v", tc.name, op, randomized, err)
				}
				if !reflect.DeepEqual(pa.PartResult, want) {
					t.Errorf("%s op %d randomized %v: PartResult = %v, want %v",
						tc.name, op, randomized, pa.PartResult, want)
				}
				// Every node learned its own part's aggregate.
				for v := 0; v < tc.g.NumNodes(); v++ {
					if i := p.PartOf[v]; i >= 0 && pa.NodeResult[v] != want[i] {
						t.Errorf("%s op %d: node %d result %v, want %v", tc.name, op, v, pa.NodeResult[v], want[i])
					}
				}
			}
		}
	}
}

func TestPartwiseBroadcast(t *testing.T) {
	g := graph.Grid(8, 8)
	p, err := partition.BFSBlobs(g, 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r := buildRouting(t, g, p)
	perPart := make([]Payload, p.NumParts())
	for i := range perPart {
		perPart[i] = Payload{int64(100 + i), 0, 0}
	}
	res, err := PartwiseBroadcast(g, r, perPart, 9, true, 64*g.NumNodes())
	if err != nil {
		t.Fatalf("PartwiseBroadcast = %v", err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if i := p.PartOf[v]; i >= 0 && res.NodeResult[v] != perPart[i] {
			t.Errorf("node %d received %v, want %v", v, res.NodeResult[v], perPart[i])
		}
	}
}

func TestConstructProducesValidFullShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"grid 12x12", graph.Grid(12, 12), 12},
		{"ktree", graph.KTree(120, 3, rng), 10},
		{"wheel 96", graph.Wheel(96), 0},
	} {
		var p *partition.Partition
		var err error
		if tc.k == 0 {
			p, err = partition.WheelRim(tc.g)
		} else {
			p, err = partition.BFSBlobs(tc.g, tc.k, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{Randomized, Deterministic} {
			res, err := Construct(tc.g, p, ConstructOptions{Variant: v, Seed: 2})
			if err != nil {
				t.Fatalf("%s variant %d: Construct = %v", tc.name, v, err)
			}
			if err := res.Shortcut.Validate(); err != nil {
				t.Fatalf("%s variant %d: invalid shortcut: %v", tc.name, v, err)
			}
			if got := res.Shortcut.CoveredCount(); got != p.NumParts() {
				t.Errorf("%s variant %d: covered %d/%d parts", tc.name, v, got, p.NumParts())
			}
			q := shortcut.Measure(res.Shortcut)
			if bound := res.CongestionThreshold * res.Iterations; q.Congestion > bound {
				t.Errorf("%s variant %d: congestion %d above c·iters = %d", tc.name, v, q.Congestion, bound)
			}
			if res.Routing == nil || res.Tree == nil {
				t.Fatalf("%s variant %d: missing routing/tree", tc.name, v)
			}
			if res.Rounds.Measured <= 0 || res.Rounds.Charged <= 0 {
				t.Errorf("%s variant %d: degenerate round breakdown %+v", tc.name, v, res.Rounds)
			}
		}
	}
}

// TestConstructDeterministicVariantIsDeterministic reruns the Deterministic
// variant under a fixed seed and demands bit-identical outcomes.
func TestConstructDeterministicVariantIsDeterministic(t *testing.T) {
	g := graph.Grid(10, 10)
	p, err := partition.BFSBlobs(g, 10, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	opts := ConstructOptions{Variant: Deterministic, Seed: 31}
	a, err := Construct(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Construct(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Shortcut.H, b.Shortcut.H) {
		t.Error("Deterministic variant produced different H-sets on rerun")
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Delta != b.Delta || a.Iterations != b.Iterations {
		t.Errorf("Deterministic variant cost differs on rerun: %+v/%d vs %+v/%d",
			a.Rounds, a.Messages, b.Rounds, b.Messages)
	}
}

func TestMSTMatchesKruskalAllProviders(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 7x7", graph.Grid(7, 7)},
		{"wheel 80", graph.Wheel(80)},
		{"random", graph.RandomConnected(90, 180, rng)},
	} {
		graph.RandomizeWeights(tc.g, rng)
		_, want := graph.Kruskal(tc.g)
		for _, pr := range []ProviderKind{ProviderCentral, ProviderCentralAdaptive, ProviderTrivial, ProviderDistributed} {
			res, err := MST(tc.g, MSTOptions{Provider: pr, Seed: 5})
			if err != nil {
				t.Fatalf("%s provider %d: MST = %v", tc.name, pr, err)
			}
			if d := res.Weight - want; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s provider %d: weight %v, want %v", tc.name, pr, res.Weight, want)
			}
			if len(res.EdgeIDs) != tc.g.NumNodes()-1 {
				t.Errorf("%s provider %d: %d edges, want %d", tc.name, pr, len(res.EdgeIDs), tc.g.NumNodes()-1)
			}
			if res.Rounds.Total() <= 0 {
				t.Errorf("%s provider %d: no rounds accounted", tc.name, pr)
			}
		}
	}
}

// TestMSTUnitWeightsTieBreak checks the edge-ID tie-break against Kruskal
// on an all-ties instance.
func TestMSTUnitWeightsTieBreak(t *testing.T) {
	g := graph.Torus(6, 6)
	ids, want := graph.Kruskal(g)
	res, err := MST(g, MSTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != want {
		t.Errorf("weight %v, want %v", res.Weight, want)
	}
	wantIDs := append([]int(nil), ids...)
	sort.Ints(wantIDs)
	if !reflect.DeepEqual(res.EdgeIDs, wantIDs) {
		t.Errorf("chosen edges %v, want Kruskal's %v", res.EdgeIDs, wantIDs)
	}
}

// TestMSTNegativeWeights exercises the sortable-double weight encoding on
// weights the generators never produce.
func TestMSTNegativeWeights(t *testing.T) {
	g := graph.New(3)
	g.AddWeightedEdge(0, 1, -1)
	g.AddWeightedEdge(0, 1, -2) // parallel, cheaper: must win the tie for {0,1}
	g.AddWeightedEdge(1, 2, -0.5)
	g.AddWeightedEdge(0, 2, 3)
	_, want := graph.Kruskal(g)
	res, err := MST(g, MSTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != want {
		t.Errorf("weight %v, want %v", res.Weight, want)
	}
	if !reflect.DeepEqual(res.EdgeIDs, []int{1, 2}) {
		t.Errorf("chosen edges %v, want [1 2]", res.EdgeIDs)
	}
}

func TestEncodeWeightOrderPreserving(t *testing.T) {
	ws := []float64{-1e9, -2, -1, -0.5, 0, 0.25, 1, 3, 1e9}
	for i, a := range ws {
		if decodeWeight(encodeWeight(a)) != a {
			t.Errorf("roundtrip broke %v", a)
		}
		for _, b := range ws[i+1:] {
			if encodeWeight(a) >= encodeWeight(b) {
				t.Errorf("order broke: enc(%v) >= enc(%v)", a, b)
			}
		}
	}
}

// TestMSTMaxPhasesTooSmall demands an error, not a silent partial forest.
func TestMSTMaxPhasesTooSmall(t *testing.T) {
	g := graph.Path(64)
	graph.RandomizeWeights(g, rand.New(rand.NewSource(8)))
	if _, err := MST(g, MSTOptions{Seed: 1, MaxPhases: 1}); err == nil {
		t.Fatal("MST with MaxPhases 1 on a 64-path returned no error")
	}
}

func TestMinCutMatchesStoerWagner(t *testing.T) {
	twoCliques := func() *graph.Graph {
		g := graph.New(12)
		for base := 0; base < 12; base += 6 {
			for u := base; u < base+6; u++ {
				for v := u + 1; v < base+6; v++ {
					g.AddEdge(u, v)
				}
			}
		}
		g.AddEdge(2, 8)
		return g
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle 28", graph.Cycle(28)},
		{"grid 6x6", graph.Grid(6, 6)},
		{"torus 5x5", graph.Torus(5, 5)},
		{"two cliques", twoCliques()},
		{"star 16", graph.Star(16)},
	} {
		want, err := graph.StoerWagner(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinCut(tc.g, MinCutOptions{Seed: 9})
		if err != nil {
			t.Fatalf("%s: MinCut = %v", tc.name, err)
		}
		if res.Value != int64(want) {
			t.Errorf("%s: MinCut %d, want %v", tc.name, res.Value, want)
		}
		if res.Side != nil {
			if got := graph.CutWeight(tc.g, res.Side); got != float64(res.Value) {
				t.Errorf("%s: Side cut weight %v disagrees with Value %d", tc.name, got, res.Value)
			}
		}
	}
}

// TestOneRespectingCutsBruteForce cross-checks the LCA formula against a
// direct count.
func TestOneRespectingCutsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomConnected(40, 90, rng)
	bfs, err := buildBFSTreeFrom(g, 0, 4*g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	tr := bfs.Tree
	cuts := OneRespectingCuts(g, tr)
	iv := tr.EulerIntervals()
	for v := 0; v < g.NumNodes(); v++ {
		if v == tr.Root {
			continue
		}
		want := int64(0)
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if iv.Ancestor(v, e.U) != iv.Ancestor(v, e.V) {
				want++
			}
		}
		if cuts[v] != want {
			t.Fatalf("node %d: cut %d, want %d", v, cuts[v], want)
		}
	}
}

func TestBridgesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"caterpillar", graph.Caterpillar(6, 3)},
		{"grid 8x8", graph.Grid(8, 8)},
		{"random sparse", graph.RandomConnected(80, 95, rng)},
	} {
		res, err := Bridges(tc.g, 0)
		if err != nil {
			t.Fatalf("%s: Bridges = %v", tc.name, err)
		}
		want := graph.Bridges(tc.g)
		wantSorted := append([]int(nil), want...)
		sort.Ints(wantSorted)
		if !reflect.DeepEqual(res.EdgeIDs, wantSorted) && !(len(res.EdgeIDs) == 0 && len(wantSorted) == 0) {
			t.Errorf("%s: bridges %v, want %v", tc.name, res.EdgeIDs, wantSorted)
		}
	}
}

func TestSubgraphComponentsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Torus(7, 7)
	in := make([]bool, g.NumEdges())
	for i := range in {
		in[i] = rng.Intn(2) == 0
	}
	res, err := SubgraphComponents(g, in, MSTOptions{Seed: 2})
	if err != nil {
		t.Fatalf("SubgraphComponents = %v", err)
	}
	want := ReferenceSubgraphComponents(g, in)
	if !SameComponents(res.Label, want) {
		t.Errorf("labels %v\n  disagree with reference %v", res.Label, want)
	}
	wantCount := 0
	for _, l := range want {
		if l >= wantCount {
			wantCount = l + 1
		}
	}
	if res.Components != wantCount {
		t.Errorf("Components = %d, want %d", res.Components, wantCount)
	}
}

func TestSubgraphFromEdgeIDs(t *testing.T) {
	g := graph.Cycle(6)
	in := SubgraphFromEdgeIDs(g, []int{0, 3, 5})
	want := []bool{true, false, false, true, false, true}
	if !reflect.DeepEqual(in, want) {
		t.Errorf("indicator %v, want %v", in, want)
	}
}

func TestSameComponents(t *testing.T) {
	if !SameComponents([]int{0, 0, 1}, []int{5, 5, 2}) {
		t.Error("renamed labeling rejected")
	}
	if SameComponents([]int{0, 0, 1}, []int{0, 1, 1}) {
		t.Error("different partition accepted")
	}
	if SameComponents([]int{0}, []int{0, 0}) {
		t.Error("length mismatch accepted")
	}
}
