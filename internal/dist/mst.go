package dist

import (
	"fmt"
	"math"
	"sort"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

// MSTOptions configures the Corollary 1.6 distributed minimum spanning
// tree (and the other Borůvka-over-shortcuts algorithms that reuse its
// engine).
type MSTOptions struct {
	// Provider selects how each phase's shortcut is obtained and paid for.
	// The zero value is ProviderCentral.
	Provider ProviderKind
	// Seed drives construction sampling and contention scheduling.
	Seed int64
	// Construct tunes the distributed construction when Provider is
	// ProviderDistributed (Seed is overridden per phase).
	Construct ConstructOptions
	// MaxPhases caps the Borůvka loop (default 2⌈log₂n⌉+4; the loop needs
	// at most ⌈log₂n⌉ phases).
	MaxPhases int
}

// MSTResult reports the distributed MST computation.
type MSTResult struct {
	// Weight is the total weight of the chosen edges; with distinct
	// weights it equals the unique MST weight (graph.Kruskal).
	Weight float64
	// EdgeIDs lists the chosen edges in increasing ID order.
	EdgeIDs []int
	// Phases is the number of Borůvka phases executed.
	Phases int
	// Rounds is the cost breakdown over all phases.
	Rounds Rounds
	// Messages counts simulated messages (ProviderDistributed only).
	Messages int64
}

// MST computes a minimum spanning tree by Borůvka phases over part-wise
// aggregation (Corollary 1.6): each phase treats the current fragments as
// the parts of a partition, obtains a shortcut for it from the configured
// provider, aggregates every fragment's minimum-weight outgoing edge with
// OpMin, and merges. Ties are broken by edge ID, so the result matches
// graph.Kruskal's tie-breaking exactly.
func MST(g *graph.Graph, opts MSTOptions) (*MSTResult, error) {
	eng, err := runBoruvka(g, nil, true, opts)
	if err != nil {
		return nil, err
	}
	return &MSTResult{
		Weight:   eng.weight,
		EdgeIDs:  eng.chosen,
		Phases:   eng.phases,
		Rounds:   eng.rounds,
		Messages: eng.messages,
	}, nil
}

// boruvkaRun accumulates the state of a Borůvka-over-shortcuts execution.
type boruvkaRun struct {
	comp     []int // current fragment label per node (dense after finish)
	chosen   []int
	weight   float64
	phases   int
	rounds   Rounds
	messages int64
}

// minEdgeKey orders candidate edges by (weight, edge ID); the encoded pair
// rides in a Payload for OpMin aggregation.
func minEdgeKey(g *graph.Graph, id int) Payload {
	return Payload{encodeWeight(g.Edge(id).W), int64(id), 0}
}

// runBoruvka runs Borůvka phases restricted to the edges with restrict[id]
// true (nil: all edges). It stops when no fragment has an outgoing
// restricted edge, so on a graph whose restricted subgraph is disconnected
// it computes a minimum spanning forest of that subgraph.
func runBoruvka(g *graph.Graph, restrict []bool, weighted bool, opts MSTOptions) (*boruvkaRun, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	maxPhases := opts.MaxPhases
	if maxPhases == 0 {
		maxPhases = 2*ceilLog2(n) + 4
	}
	run := &boruvkaRun{comp: make([]int, n)}
	dsu := graph.NewDSU(n)

	// The charged providers restrict every phase's shortcut to the same
	// BFS tree; the root search is partition-independent, so compute it
	// once per run instead of once per phase.
	var tr *tree.Rooted
	if opts.Provider != ProviderDistributed {
		var err error
		tr, err = tree.FromBFS(g, shortcut.ChooseRoot(g))
		if err != nil {
			return nil, fmt.Errorf("dist: shortcut tree: %w", err)
		}
	}

	converged := false
	// One partition and label slice serve every phase: each phase's
	// shortcut, routing, and aggregation results are discarded before the
	// next rebuild, which is exactly the ownership FromLabelsInto needs.
	var phaseParts partition.Partition
	label := make([]int, n)
	for phase := 1; phase <= maxPhases; phase++ {
		// Fragment labels; every fragment is connected in G because it
		// grew along chosen G-edges.
		for v := 0; v < n; v++ {
			label[v] = dsu.Find(v)
		}
		p, err := partition.FromLabelsInto(&phaseParts, g, label)
		if err != nil {
			return nil, fmt.Errorf("dist: phase %d partition: %w", phase, err)
		}
		if p.NumParts() == 1 {
			converged = true
			break
		}

		// Every node's minimum-key outgoing restricted edge. In the real
		// protocol this is one neighbor-label exchange round, charged to
		// the phase barrier below.
		candidates := make([]Payload, n)
		noCand := Payload{math.MaxInt64, math.MaxInt64, math.MaxInt64}
		anyOutgoing := false
		for v := 0; v < n; v++ {
			best := noCand
			for _, a := range g.Neighbors(v) {
				if restrict != nil && !restrict[a.Edge] {
					continue
				}
				if label[a.To] == label[v] {
					continue
				}
				if key := minEdgeKey(g, a.Edge); lexLess(key, best) {
					best = key
				}
			}
			candidates[v] = best
			if best != noCand {
				anyOutgoing = true
			}
		}
		if !anyOutgoing {
			converged = true
			break
		}

		// Shortcut for this phase's partition and an OpMin aggregation of
		// the candidates over it.
		perPart, cost, msgs, err := aggregateMin(g, p, tr, candidates, phase, opts)
		if err != nil {
			return nil, fmt.Errorf("dist: phase %d: %w", phase, err)
		}
		run.rounds.add(cost)
		run.messages += msgs

		// Merge along every fragment's winner (deduplicated: two
		// fragments may pick the same edge).
		picked := map[int]bool{}
		for i := 0; i < p.NumParts(); i++ {
			if perPart[i][0] == math.MaxInt64 {
				continue // no outgoing edge: fragment is finished
			}
			id := int(perPart[i][1])
			if picked[id] {
				continue
			}
			picked[id] = true
			e := g.Edge(id)
			if dsu.Union(e.U, e.V) {
				run.chosen = append(run.chosen, id)
				if weighted {
					run.weight += e.W
				}
			}
		}
		run.phases++
	}
	if !converged {
		// A merge happened every phase, so exhausting the cap means the
		// caller lowered MaxPhases below what the instance needs; a
		// partial forest must not masquerade as the answer.
		for id := 0; id < g.NumEdges(); id++ {
			if restrict != nil && !restrict[id] {
				continue
			}
			if e := g.Edge(id); dsu.Find(e.U) != dsu.Find(e.V) {
				return nil, fmt.Errorf("dist: Borůvka did not converge within %d phases", maxPhases)
			}
		}
	}

	// Dense final labels, in order of first appearance.
	dense := map[int]int{}
	for v := 0; v < n; v++ {
		root := dsu.Find(v)
		if _, ok := dense[root]; !ok {
			dense[root] = len(dense)
		}
		run.comp[v] = dense[root]
	}
	sort.Ints(run.chosen)
	return run, nil
}

// aggregateMin obtains a shortcut for partition p from the provider
// (restricted to the precomputed tree tr for the charged providers) and
// aggregates the per-node candidates with OpMin over it, returning the
// per-part minima and the phase's cost.
func aggregateMin(g *graph.Graph, p *partition.Partition, tr *tree.Rooted, candidates []Payload,
	phase int, opts MSTOptions) ([]Payload, Rounds, int64, error) {
	n := g.NumNodes()
	logn := ceilLog2(n)
	phaseSeed := opts.Seed + int64(phase)*0x5DEECE66D
	var cost Rounds
	var messages int64

	switch opts.Provider {
	case ProviderDistributed:
		copts := opts.Construct
		copts.Seed = phaseSeed
		res, err := Construct(g, p, copts)
		if err != nil {
			return nil, cost, 0, err
		}
		cost.add(res.Rounds)
		messages += res.Messages
		pa, err := PartwiseAggregate(g, res.Routing, OpMin, candidates,
			phaseSeed, true, 64*n+4096)
		if err != nil {
			return nil, cost, 0, err
		}
		cost.add(pa.Rounds)
		messages += pa.Stats.Messages
		// Phase barrier + neighbor-label exchange.
		cost.Sync += res.Tree.MaxDepth() + 2
		return pa.PartResult, cost, messages, nil

	case ProviderTrivial:
		s, err := shortcut.Trivial(g, p, tr)
		if err != nil {
			return nil, cost, 0, err
		}
		// Building the D+sqrt(n) baseline costs one BFS wave and a part
		// size count; the aggregation is charged at the shortcut's
		// measured quality.
		depth := s.Tree.MaxDepth()
		q := shortcut.Measure(s)
		cost.Charged += 2*(depth+1) + 2*(q.Congestion+q.Dilation*logn) + 4
		cost.Sync += depth + 2
		return referenceAggregate(p, OpMin, candidates), cost, 0, nil

	default: // ProviderCentral, ProviderCentralAdaptive
		res, err := shortcut.Build(g, p, shortcut.Options{Tree: tr})
		if err != nil {
			return nil, cost, 0, err
		}
		depth := res.TreeDepth
		// Construction charged at the Lemma 2.8 worst-case budget
		// b(2D+1)+c per iteration, plus routing installation.
		cost.Charged += res.Iterations*(res.BlockBudget*(2*depth+1)+res.CongestionThreshold) + 2*(depth+1)
		if opts.Provider == ProviderCentralAdaptive {
			// Aggregation charged at the measured quality Õ(Q).
			q := shortcut.Measure(res.Shortcut)
			cost.Charged += 2*(q.Congestion+q.Dilation*logn) + 4
		} else {
			// Aggregation charged at the worst-case quality bounds of the
			// accepted level.
			congBound := res.CongestionThreshold * res.Iterations
			dilBound := (res.BlockBudget + 1) * (2*depth + 1)
			cost.Charged += 2*(congBound+dilBound*logn) + 4
		}
		cost.Sync += depth + 2
		return referenceAggregate(p, OpMin, candidates), cost, 0, nil
	}
}

// referenceAggregate folds candidates per part centrally — the semantics
// the charged providers pay for without simulating.
func referenceAggregate(p *partition.Partition, op Op, values []Payload) []Payload {
	out := make([]Payload, p.NumParts())
	for i := range out {
		out[i] = op.identity()
	}
	for v, pl := range values {
		if i := p.PartOf[v]; i >= 0 {
			out[i] = op.combine(out[i], pl)
		}
	}
	return out
}
