package dist

import (
	"fmt"

	"locshort/internal/graph"
)

// CCResult reports the sub-graph connectivity computation.
type CCResult struct {
	// Label[v] is v's H-component label; labels are dense, in order of
	// first appearance by node ID.
	Label []int
	// Components is the number of H-components.
	Components int
	// Phases is the number of Borůvka merge phases executed.
	Phases int
	// Rounds is the accumulated cost.
	Rounds Rounds
}

// SubgraphComponents identifies the connected components of the subgraph H
// of the network given by the edge indicator in (the Section 1.2
// application): Borůvka merge phases over shortcuts built for the current
// fragment partition, restricted to H-edges. Fragments stay connected in
// the network, so the shortcut machinery applies even when H's own
// components have huge diameter — the point of the application. opts
// selects the shortcut provider exactly as for MST.
func SubgraphComponents(g *graph.Graph, in []bool, opts MSTOptions) (*CCResult, error) {
	if len(in) != g.NumEdges() {
		return nil, fmt.Errorf("dist: %d edge indicators for %d edges", len(in), g.NumEdges())
	}
	run, err := runBoruvka(g, in, false, opts)
	if err != nil {
		return nil, err
	}
	components := 0
	for _, l := range run.comp {
		if l >= components {
			components = l + 1
		}
	}
	return &CCResult{
		Label:      run.comp,
		Components: components,
		Phases:     run.phases,
		Rounds:     run.rounds,
	}, nil
}

// SubgraphFromEdgeIDs builds the edge indicator of the subgraph consisting
// of the listed edge IDs, for use with SubgraphComponents.
func SubgraphFromEdgeIDs(g *graph.Graph, edgeIDs []int) []bool {
	in := make([]bool, g.NumEdges())
	for _, id := range edgeIDs {
		in[id] = true
	}
	return in
}

// ReferenceSubgraphComponents is the centralized ground truth for
// SubgraphComponents: a union-find sweep over the H-edges, with the same
// dense first-appearance labeling.
func ReferenceSubgraphComponents(g *graph.Graph, in []bool) []int {
	dsu := graph.NewDSU(g.NumNodes())
	for id := 0; id < g.NumEdges(); id++ {
		if in[id] {
			e := g.Edge(id)
			dsu.Union(e.U, e.V)
		}
	}
	label := make([]int, g.NumNodes())
	dense := map[int]int{}
	for v := range label {
		root := dsu.Find(v)
		if _, ok := dense[root]; !ok {
			dense[root] = len(dense)
		}
		label[v] = dense[root]
	}
	return label
}

// SameComponents reports whether two component labelings describe the same
// partition of the nodes (up to label renaming).
func SameComponents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ab := map[int]int{}
	ba := map[int]int{}
	for v := range a {
		if m, ok := ab[a[v]]; ok && m != b[v] {
			return false
		}
		if m, ok := ba[b[v]]; ok && m != a[v] {
			return false
		}
		ab[a[v]] = b[v]
		ba[b[v]] = a[v]
	}
	return true
}
