package obs

import (
	"sync"
	"time"
)

// Span is one timed stage inside a trace. DurNs rather than time.Duration
// keeps the JSON rendering of /v1/traces explicit about units.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"` // offset from the trace start
	DurNs   int64  `json:"dur_ns"`
}

// Trace is one completed operation (a cold shortcut construction) with its
// stage breakdown. A Trace is immutable once published to a Tracer; writers
// build it privately and hand it over whole.
type Trace struct {
	ID          string `json:"id"`
	Op          string `json:"op"`
	Graph       string `json:"graph,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Start       int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
	Spans       []Span `json:"spans"`
}

// TraceBuilder accumulates spans for one in-flight operation. It is not
// safe for concurrent use; each construction owns its builder. A nil
// *TraceBuilder is a no-op — the untraced path calls through it freely.
//
//locshort:nilsafe
type TraceBuilder struct {
	t     Trace
	start time.Time
}

// StartTrace begins a trace for the named operation.
func StartTrace(op string) *TraceBuilder {
	now := time.Now()
	return &TraceBuilder{
		t:     Trace{ID: NewRequestID(), Op: op, Start: now.UnixNano()},
		start: now,
	}
}

// SetGraph annotates the trace with the graph spec being built.
func (b *TraceBuilder) SetGraph(g string) {
	if b == nil {
		return
	}
	b.t.Graph = g
}

// SetFingerprint annotates the trace with the shortcut fingerprint.
func (b *TraceBuilder) SetFingerprint(fp string) {
	if b == nil {
		return
	}
	b.t.Fingerprint = fp
}

// Add appends a stage that started at the given offset from the trace start
// and ran for dur.
func (b *TraceBuilder) Add(name string, start, dur time.Duration) {
	if b == nil {
		return
	}
	b.t.Spans = append(b.t.Spans, Span{Name: name, StartNs: start.Nanoseconds(), DurNs: dur.Nanoseconds()})
}

// Span times a stage inline: call at the stage start, invoke the returned
// func at its end.
func (b *TraceBuilder) Span(name string) func() {
	if b == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		b.Add(name, begin.Sub(b.start), time.Since(begin))
	}
}

// Elapsed returns the time since the trace started — the Start offset an
// Add call made now would use.
func (b *TraceBuilder) Elapsed() time.Duration {
	if b == nil {
		return 0
	}
	return time.Since(b.start)
}

// Finish stamps the total duration and returns the completed, immutable
// trace. The builder must not be used afterwards.
func (b *TraceBuilder) Finish() *Trace {
	if b == nil {
		return nil
	}
	b.t.DurNs = time.Since(b.start).Nanoseconds()
	t := b.t
	return &t
}

// Tracer retains the most recent traces in a fixed ring. Publish and Recent
// are safe for concurrent use; retained traces are immutable, so Recent's
// copies share span slices with writers without racing them. A nil *Tracer
// drops everything, like every obs instrument.
//
//locshort:nilsafe
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	n    uint64 // total published
}

// NewTracer returns a tracer retaining the last cap traces (min 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// Publish retains a completed trace, evicting the oldest when full.
// A nil tracer drops the trace, so call sites need no guards.
func (tr *Tracer) Publish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.n++
	tr.mu.Unlock()
}

// Recent returns up to n retained traces, newest first. n <= 0 returns all.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || n > len(tr.ring) {
		n = len(tr.ring)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= len(tr.ring) && len(out) < n; i++ {
		t := tr.ring[(tr.next-i+len(tr.ring))%len(tr.ring)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Published returns the total number of traces ever published.
func (tr *Tracer) Published() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.n
}
