package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	// Exactly on a bound lands in that bucket (le = upper bound, inclusive).
	h.Observe(1 * time.Millisecond)   // bucket 0
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(10 * time.Millisecond)  // bucket 1
	h.Observe(99 * time.Millisecond)  // bucket 2
	h.Observe(5 * time.Second)        // +Inf
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
	wantSum := (1 + 2 + 10 + 99 + 5000 + 0.5) * 1e6 // ns
	if float64(s.SumNs) != wantSum {
		t.Errorf("SumNs = %d, want %g", s.SumNs, wantSum)
	}
}

func TestHistogramBoundsMustIncrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-increasing bounds")
		}
	}()
	newHistogram([]float64{0.1, 0.1})
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram([]float64{0.001, 0.01})
	b := newHistogram([]float64{0.001, 0.01})
	a.Observe(500 * time.Microsecond)
	b.Observe(5 * time.Millisecond)
	b.Observe(50 * time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if got, want := sa.Counts, []uint64{1, 1, 1}; got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("merged counts %v, want %v", got, want)
	}
	if sa.Count() != 3 {
		t.Errorf("merged count %d, want 3", sa.Count())
	}
	if sa.SumNs != (55*time.Millisecond + 500*time.Microsecond).Nanoseconds() {
		t.Errorf("merged SumNs = %d", sa.SumNs)
	}
	// Mismatched layouts refuse to merge.
	c := newHistogram([]float64{0.002, 0.01}).Snapshot()
	if err := sa.Merge(c); err == nil {
		t.Error("merge with mismatched bounds did not error")
	}
	d := newHistogram([]float64{0.001}).Snapshot()
	if err := sa.Merge(d); err == nil {
		t.Error("merge with fewer buckets did not error")
	}
}

func TestHistogramSub(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	early := h.Snapshot()
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	late := h.Snapshot()
	d := late.Sub(early)
	if d.Counts[0] != 0 || d.Counts[1] != 2 || d.Counts[2] != 0 {
		t.Errorf("interval counts %v, want [0 2 0]", d.Counts)
	}
	if d.SumNs != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("interval SumNs = %d", d.SumNs)
	}
	// Reset (earlier > later) clamps to zero rather than underflowing.
	r := early.Sub(late)
	for i, c := range r.Counts {
		if c != 0 {
			t.Errorf("reset bucket %d = %d, want 0", i, c)
		}
	}
	if r.SumNs != 0 {
		t.Errorf("reset SumNs = %d, want 0", r.SumNs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", q)
	}
	// 100 observations uniformly in (1ms, 10ms]: p50 interpolates to ~5.5ms.
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %g, want within (0.001, 0.01]", p50)
	}
	// Everything in one bucket: p99 stays in that bucket too.
	if p99 := s.Quantile(0.99); p99 < 0.001 || p99 > 0.01 {
		t.Errorf("p99 = %g, want within (0.001, 0.01]", p99)
	}
	// +Inf observations saturate at the last finite bound.
	h2 := newHistogram([]float64{0.001})
	h2.Observe(time.Second)
	if q := h2.Snapshot().Quantile(0.99); q != 0.001 {
		t.Errorf("+Inf-bucket quantile = %g, want 0.001 (saturated)", q)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", Labels{"a": "1"})
	c2 := r.Counter("x_total", "help", Labels{"a": "1"})
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("x_total", "help", Labels{"a": "2"})
	if c1 == c3 {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("y_seconds", "help", nil, nil)
	h2 := r.Histogram("y_seconds", "help", nil, nil)
	if h1 != h2 {
		t.Error("same histogram name returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge type conflict")
		}
	}()
	r.Gauge("x_total", "help", nil)
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", nil).Add(3)
	r.Gauge("a_gauge", "a gauge", Labels{"route": "/v1/shortcut"}).Set(-2)
	r.GaugeFunc("c_func", "func gauge", nil, func() float64 { return 1.5 })
	h := r.Histogram("d_seconds", "latency", []float64{0.001, 0.01}, Labels{"source": "build"})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge",
		`a_gauge{route="/v1/shortcut"} -2`,
		"# HELP b_total b counter",
		"# TYPE b_total counter",
		"b_total 3",
		"# HELP c_func func gauge",
		"# TYPE c_func gauge",
		"c_func 1.5",
		"# HELP d_seconds latency",
		"# TYPE d_seconds histogram",
		`d_seconds_bucket{source="build",le="0.001"} 1`,
		`d_seconds_bucket{source="build",le="0.01"} 2`,
		`d_seconds_bucket{source="build",le="+Inf"} 3`,
		`d_seconds_sum{source="build"} 5.0055`,
		`d_seconds_count{source="build"} 3`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ backslash\nand newline",
		Labels{"g": "grid:8x8\"quoted\\back\nline"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	wantHelp := `# HELP esc_total help with \\ backslash\nand newline`
	wantLine := `esc_total{g="grid:8x8\"quoted\\back\nline"} 1`
	if !strings.Contains(got, wantHelp) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, wantLine) {
		t.Errorf("label value not escaped:\n%s", got)
	}
	// The escaped output must round-trip through the parser.
	sc, err := ParsePrometheus(strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := sc.Value("esc_total", Labels{"g": "grid:8x8\"quoted\\back\nline"})
	if !ok || v != 1 {
		t.Errorf("escaped label did not round-trip: ok=%v v=%g", ok, v)
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_hits_total", "hits", Labels{"source": "cache"}).Add(42)
	h := r.Histogram("req_seconds", "latency", []float64{0.001, 0.01, 0.1}, Labels{"route": "/v1/shortcut"})
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	h.Observe(50 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("engine_hits_total", Labels{"source": "cache"}); !ok || v != 42 {
		t.Errorf("counter round-trip: ok=%v v=%g", ok, v)
	}
	if !sc.HasFamily("req_seconds") {
		t.Error("HasFamily(req_seconds) = false")
	}
	snap, ok := sc.Histogram("req_seconds", Labels{"route": "/v1/shortcut"})
	if !ok {
		t.Fatal("histogram not reconstructed")
	}
	if got := snap.Count(); got != 11 {
		t.Errorf("reconstructed count %d, want 11", got)
	}
	if len(snap.Bounds) != 3 || snap.Bounds[2] != 0.1 {
		t.Errorf("reconstructed bounds %v", snap.Bounds)
	}
	if snap.Counts[1] != 10 || snap.Counts[2] != 1 {
		t.Errorf("reconstructed counts %v, want [0 10 1 0]", snap.Counts)
	}
	wantSum := (10*5 + 50) * 1e6 // ns
	if math.Abs(float64(snap.SumNs)-wantSum) > 1e3 {
		t.Errorf("reconstructed SumNs %d, want ~%g", snap.SumNs, wantSum)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 0.01 || p99 > 0.1 {
		t.Errorf("reconstructed p99 = %g, want within (0.01, 0.1]", p99)
	}
}

func TestParsePrometheusErrors(t *testing.T) {
	for _, bad := range []string{
		"just words without value structure",
		`m{l="unterminated} 1`,
		"m notanumber",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
	// HTML (scraping the wrong endpoint) must fail loudly.
	if _, err := ParsePrometheus(strings.NewReader("<html><body>404</body></html>")); err == nil {
		t.Error("no error for HTML input")
	}
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h", nil)
	g := r.Gauge("hot_gauge", "h", nil)
	h := r.Histogram("hot_seconds", "h", nil, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(7)
		g.Add(-1)
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("hot-path recording allocates %.1f per op, want 0", allocs)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		b := StartTrace("build")
		b.Add("csr", 0, time.Millisecond)
		b.SetGraph("grid:8x8")
		tr.Publish(b.Finish())
	}
	if tr.Published() != 5 {
		t.Errorf("Published() = %d, want 5", tr.Published())
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent(0) returned %d traces, want 3 (ring capacity)", len(recent))
	}
	for _, x := range recent {
		if x.Op != "build" || x.Graph != "grid:8x8" || len(x.Spans) != 1 {
			t.Errorf("trace %+v malformed", x)
		}
		if x.Spans[0].Name != "csr" || x.Spans[0].DurNs != time.Millisecond.Nanoseconds() {
			t.Errorf("span %+v malformed", x.Spans[0])
		}
	}
	if got := tr.Recent(2); len(got) != 2 {
		t.Errorf("Recent(2) returned %d traces", len(got))
	}
	// Nil tracer is a no-op, not a crash.
	var nilTr *Tracer
	nilTr.Publish(&Trace{})
	if nilTr.Recent(1) != nil || nilTr.Published() != 0 {
		t.Error("nil tracer not inert")
	}
}

func TestTraceBuilderSpans(t *testing.T) {
	b := StartTrace("build")
	done := b.Span("bfs_tree")
	time.Sleep(2 * time.Millisecond)
	done()
	b.SetFingerprint("abc123")
	tr := b.Finish()
	if len(tr.Spans) != 1 {
		t.Fatalf("%d spans, want 1", len(tr.Spans))
	}
	sp := tr.Spans[0]
	if sp.Name != "bfs_tree" || sp.DurNs < time.Millisecond.Nanoseconds() {
		t.Errorf("span %+v: want bfs_tree with >=1ms", sp)
	}
	if tr.DurNs < sp.DurNs {
		t.Errorf("trace DurNs %d < span DurNs %d", tr.DurNs, sp.DurNs)
	}
	if tr.Fingerprint != "abc123" || tr.ID == "" {
		t.Errorf("trace annotations missing: %+v", tr)
	}
}

func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Info("request", "id", "abc", "route", "/v1/shortcut", "dur", 1500*time.Microsecond)
	l.Warn("slow request", "graph", "grid:64x64 big", "n", 3)
	got := sb.String()
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %q", len(lines), got)
	}
	if want := `2026-08-08T12:00:00Z level=info msg=request id=abc route=/v1/shortcut dur=1.5ms`; lines[0] != want {
		t.Errorf("line 1 = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], `graph="grid:64x64 big"`) {
		t.Errorf("value with space not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[1], "level=warn") {
		t.Errorf("warn level missing: %q", lines[1])
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Error("consecutive request IDs collide")
	}
	if len(a) != 16 {
		t.Errorf("ID %q: want 16 hex chars", a)
	}
}
