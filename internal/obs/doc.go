// Package obs is the repo's dependency-free observability core: atomic
// counters and gauges, fixed-bucket latency histograms with Prometheus
// text-format exposition, a lightweight span tracer with ring-buffer
// retention for recent traces, and a structured key=value logger with
// per-request IDs.
//
// Role in the DAG: obs sits below every serving layer and imports only the
// standard library, so any package — shortcut.Builder stage timings,
// service.Engine cache/store/build histograms, internal/jobs queue gauges,
// internal/store segment instrumentation, the locshortd HTTP layer — can
// record into one Registry without new dependency edges. The daemon
// exposes the Registry at GET /metrics and the Tracer at GET /v1/traces;
// cmd/locshortctl (`top`) and cmd/loadgen scrape and re-parse that output
// through ParsePrometheus, so the exposition and the consumers share one
// implementation of the format.
//
// Design constraints, in order:
//
//   - Hot-path recording must not allocate: Counter.Add, Gauge.Set, and
//     Histogram.Observe are a handful of atomic operations (verified by
//     TestHotPathDoesNotAllocate). Warm cache hits in the engine record
//     through these and nothing else.
//   - Exposition cost is paid by the scraper, not the request path:
//     func-backed families read the owning layer's existing counters at
//     scrape time, so layers are never forced to dual-write.
//   - Traces are for the cold path only (a shortcut construction is
//     milliseconds; a handful of time.Now calls and one small slice are
//     noise there) and are immutable once published, so readers of the
//     ring never race writers.
//
// There is no paper mapping here: obs measures the Ghaffari–Haeupler
// construction (PODC 2021) rather than implementing any part of it. The
// stage names it reports — BFS forest, doubling-search levels, part-set
// sweep, Case (I) assembly — are the phases of the Theorem 1.5/3.1
// pipeline as implemented by internal/shortcut.
//
// The nil-no-op contract is mechanically enforced: instrument types carry
// //locshort:nilsafe and the internal/analysis obsnil analyzer
// (DESIGN.md §12) requires every pointer method to guard or delegate;
// cmd/locshortlint fails CI otherwise.
package obs
