package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NewRequestID returns a 16-hex-char random ID for correlating log lines,
// traces, and responses. Collisions across a daemon's lifetime are
// astronomically unlikely (64 random bits); IDs are not secrets.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// process-local sequence rather than crashing the request path.
		return fmt.Sprintf("seq-%d", seqID.next())
	}
	return hex.EncodeToString(b[:])
}

var seqID idSeq

type idSeq struct {
	mu sync.Mutex
	n  uint64
}

func (s *idSeq) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// Logger writes structured key=value lines: a timestamp, a level, a message,
// then sorted-stable key=value pairs in the order given. Values containing
// spaces, quotes, or '=' are quoted with strconv.Quote so lines stay
// machine-splittable. Safe for concurrent use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam
}

// NewLogger returns a logger writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// Info writes an info-level line. kv must alternate key, value.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Warn writes a warn-level line.
func (l *Logger) Warn(msg string, kv ...any) { l.log("warn", msg, kv) }

// Error writes an error-level line.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level)
	b.WriteString(" msg=")
	b.WriteString(logValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(logValue(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !odd_kv=")
		b.WriteString(logValue(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// logValue renders a value, quoting only when needed to keep lines
// splittable on spaces.
func logValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case time.Duration:
		s = t.String()
	case error:
		s = t.Error()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
