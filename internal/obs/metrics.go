package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric type names, as rendered on the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Labels is a label set attached to one series at registration time. Label
// values are escaped at exposition; names must be valid Prometheus label
// names (the caller's responsibility — all call sites use literals).
type Labels map[string]string

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a no-op: every method tolerates it, so unobserved layers record
// unconditionally and pay only the nil check (the obsnil analyzer
// enforces this).
//
//locshort:nilsafe
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//locshort:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//locshort:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op, like
// every obs instrument.
//
//locshort:nilsafe
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets is the default latency histogram layout: 100µs to 10s in
// roughly 2.5x steps, chosen so both a warm cache hit (~1ms) and a cold
// grid:64x64 build (~13ms) land mid-range with resolution on either side.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Bounds are upper bounds in
// seconds, strictly increasing; an implicit +Inf bucket catches the rest.
// Observe is wait-free: one linear scan over at most len(bounds) floats and
// two atomic adds, no allocation. A nil *Histogram is a no-op, like every
// obs instrument.
//
//locshort:nilsafe
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumNs  atomic.Int64
	n      atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
//
//locshort:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.n.Add(1)
}

// Snapshot captures a consistent-enough copy for quantile estimation and
// merging (buckets are read independently; a scrape racing observations can
// be off by the in-flight observation, like any atomic counter set).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		SumNs:  h.sumNs.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf bucket last.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1
	SumNs  int64
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge adds other's counts and sum into s. The bucket layouts must be
// identical — histograms merge bucket-by-bucket or not at all.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("obs: merge of %d-bucket histogram into %d-bucket histogram", len(other.Bounds), len(s.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("obs: merge with mismatched bound %d: %v vs %v", i, s.Bounds[i], other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.SumNs += other.SumNs
	return nil
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// interval histogram between two scrapes (what `locshortctl top` shows per
// refresh). Counts that would go negative clamp to zero (a counter reset —
// daemon restart between scrapes).
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts)), SumNs: s.SumNs - earlier.SumNs}
	for i := range s.Counts {
		if i < len(earlier.Counts) && earlier.Counts[i] <= s.Counts[i] {
			out.Counts[i] = s.Counts[i] - earlier.Counts[i]
		} else if i >= len(earlier.Counts) {
			out.Counts[i] = s.Counts[i]
		}
	}
	if out.SumNs < 0 {
		out.SumNs = 0
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) in seconds by linear
// interpolation within the containing bucket — the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket report the
// highest finite bound (the estimate saturates there). Returns 0 for an
// empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: saturate at the last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// series is one (label set, collector) under a family. Exactly one of the
// collector fields is set.
type series struct {
	labels string // pre-rendered `{a="b"}` form, "" for unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name; HELP and TYPE are
// emitted once per family.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is get-or-create: asking for an existing
// (name, labels) pair of the same type returns the same metric, so layers
// can register lazily from request paths (the HTTP layer's per-status
// counters). Type conflicts panic — they are programming errors, caught the
// first time the conflicting code path runs.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels string) *series { return f.byLabels[labels] }

func (f *family) add(s *series) {
	f.byLabels[s.labels] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typeCounter)
	ls := renderLabels(labels)
	if s := f.get(ls); s != nil {
		if s.c == nil {
			panic(fmt.Sprintf("obs: metric %s%s is func-backed, not a Counter", name, ls))
		}
		return s.c
	}
	s := &series{labels: ls, c: &Counter{}}
	f.add(s)
	return s.c
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typeGauge)
	ls := renderLabels(labels)
	if s := f.get(ls); s != nil {
		if s.g == nil {
			panic(fmt.Sprintf("obs: metric %s%s is func-backed, not a Gauge", name, ls))
		}
		return s.g
	}
	s := &series{labels: ls, g: &Gauge{}}
	f.add(s)
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the no-dual-write path for layers that already keep their own
// atomic counters (service.Engine, internal/jobs). fn must be safe for
// concurrent use and monotonic for the exposition to be honest.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, typeCounter, labels, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, typeGauge, labels, fn)
}

func (r *Registry) registerFunc(name, help, typ string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	ls := renderLabels(labels)
	if f.get(ls) != nil {
		panic(fmt.Sprintf("obs: metric %s%s registered twice", name, ls))
	}
	f.add(&series{labels: ls, fn: fn})
}

// Histogram returns the histogram registered under (name, labels), creating
// it with the given bucket bounds (nil: DefBuckets) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typeHistogram)
	ls := renderLabels(labels)
	if s := f.get(ls); s != nil {
		return s.h
	}
	s := &series{labels: ls, h: newHistogram(bounds)}
	f.add(s)
	return s.h
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name and, within a family, by label string, so
// successive scrapes of an unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	// Collector reads happen outside the registry lock: func-backed series
	// may take their owning layer's locks, and nothing below mutates the
	// registry (series slices are append-only and swapped under mu).
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSample(&b, f.name, s.labels, "", formatValue(float64(s.c.Value())))
			case s.g != nil:
				writeSample(&b, f.name, s.labels, "", formatValue(float64(s.g.Value())))
			case s.fn != nil:
				writeSample(&b, f.name, s.labels, "", formatValue(s.fn()))
			case s.h != nil:
				writeHistogram(&b, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one line: name{labels,extra} value.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	switch {
	case labels == "" && extra == "":
	case labels == "":
		b.WriteByte('{')
		b.WriteString(extra)
		b.WriteByte('}')
	case extra == "":
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	default:
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte(',')
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		writeSample(b, name+"_bucket", labels,
			`le="`+formatValue(bound)+`"`, strconv.FormatUint(cum, 10))
	}
	cum += s.Counts[len(s.Bounds)]
	writeSample(b, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSample(b, name+"_sum", labels, "", formatValue(float64(s.SumNs)/1e9))
	writeSample(b, name+"_count", labels, "", strconv.FormatUint(cum, 10))
}

// formatValue renders a float the shortest way that round-trips; whole
// numbers come out without a decimal point, as Prometheus expects of
// counters.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderLabels renders a label set in sorted-key order with escaped values:
// `a="x",b="y"` (no braces — writeSample adds them).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the label-value escaping of the text format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies HELP-text escaping: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
