package obs

import (
	"testing"
	"time"
)

// TestNilInstrumentsAreNoOps is the regression test for the documented
// instrument contract: a nil Counter, Gauge, Histogram, Logger, Tracer,
// or TraceBuilder must be a silent no-op, so unobserved layers can record
// unconditionally. Before the obsnil analyzer existed, only Logger and
// Tracer honored it — Counter.Inc, Gauge.Set, Histogram.Observe, and
// every TraceBuilder method dereferenced a nil receiver and panicked.
// Each call below crashed on the pre-fix tree.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Errorf("nil Counter.Value() = %d, want 0", got)
	}

	var g *Gauge
	g.Set(42)
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Errorf("nil Gauge.Value() = %d, want 0", got)
	}

	var h *Histogram
	h.Observe(3 * time.Millisecond)
	if snap := h.Snapshot(); snap.Count() != 0 || len(snap.Counts) != 0 {
		t.Errorf("nil Histogram.Snapshot() = %+v, want zero snapshot", snap)
	}

	var l *Logger
	l.Info("dropped", "k", "v")
	l.Warn("dropped")
	l.Error("dropped", "err", "nope")

	var tb *TraceBuilder
	tb.SetGraph("grid:4x4")
	tb.SetFingerprint("deadbeef")
	tb.Add("stage", 0, time.Millisecond)
	tb.Span("stage")() // both the call and the returned closure must no-op
	if got := tb.Elapsed(); got != 0 {
		t.Errorf("nil TraceBuilder.Elapsed() = %v, want 0", got)
	}
	if got := tb.Finish(); got != nil {
		t.Errorf("nil TraceBuilder.Finish() = %v, want nil", got)
	}

	var tr *Tracer
	tr.Publish(&Trace{ID: "x"})
	tr.Publish(tb.Finish())
	if got := tr.Recent(5); got != nil {
		t.Errorf("nil Tracer.Recent() = %v, want nil", got)
	}
	if got := tr.Published(); got != 0 {
		t.Errorf("nil Tracer.Published() = %d, want 0", got)
	}
}
