package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label pairs
// (sorted by key), and the value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// Scrape is a parsed /metrics payload, indexed for the two consumers:
// locshortctl top (counter deltas, histogram quantiles between scrapes) and
// loadgen (server-side histograms at end of run).
type Scrape struct {
	Samples []Sample
	byName  map[string][]int
}

// ParsePrometheus parses text exposition format as written by
// Registry.WritePrometheus: comment lines are skipped, every other
// non-empty line is name{labels} value. It tolerates any input the format
// allows (escaped label values, +Inf, scientific notation) and errors on
// lines it cannot split, so a scrape of a non-metrics endpoint fails loudly
// instead of yielding zeros.
func ParsePrometheus(r io.Reader) (*Scrape, error) {
	sc := &Scrape{byName: make(map[string][]int)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		sc.byName[s.Name] = append(sc.byName[s.Name], len(sc.Samples))
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{}
	// Name runs to '{' or whitespace.
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("in %q: %w", line, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// Value is the first field; an optional timestamp may follow.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at in[0]=='{' and
// returns the index just past the closing '}'.
func parseLabels(in string) (int, Labels, error) {
	labels := Labels{}
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, nil, fmt.Errorf("unterminated label value for %q", key)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the value of the first sample matching name and every given
// label pair, and whether one was found. A nil/empty want matches any
// labels.
func (sc *Scrape) Value(name string, want Labels) (float64, bool) {
	for _, i := range sc.byName[name] {
		if labelsMatch(sc.Samples[i].Labels, want) {
			return sc.Samples[i].Value, true
		}
	}
	return 0, false
}

// Matching returns all samples with the given name whose labels include
// every pair in want.
func (sc *Scrape) Matching(name string, want Labels) []Sample {
	var out []Sample
	for _, i := range sc.byName[name] {
		if labelsMatch(sc.Samples[i].Labels, want) {
			out = append(out, sc.Samples[i])
		}
	}
	return out
}

// HasFamily reports whether any sample of the family exists — for
// histograms, any of the _bucket/_sum/_count series.
func (sc *Scrape) HasFamily(name string) bool {
	if len(sc.byName[name]) > 0 {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if len(sc.byName[name+suf]) > 0 {
			return true
		}
	}
	return false
}

// Histogram reconstructs a HistogramSnapshot for the named histogram series
// whose labels include every pair in want (le excluded from matching).
// Returns false when no buckets match. Cumulative bucket counts are
// de-accumulated back to per-bucket counts, the inverse of the writer.
func (sc *Scrape) Histogram(name string, want Labels) (HistogramSnapshot, bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	var bkts []bkt
	for _, i := range sc.byName[name+"_bucket"] {
		s := sc.Samples[i]
		if !labelsMatchExcept(s.Labels, want, "le") {
			continue
		}
		le, err := parseValue(s.Label("le"))
		if err != nil {
			continue
		}
		bkts = append(bkts, bkt{le: le, cum: s.Value})
	}
	if len(bkts) == 0 {
		return HistogramSnapshot{}, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	snap := HistogramSnapshot{}
	var prev float64
	for _, b := range bkts {
		if !math.IsInf(b.le, 1) {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		c := b.cum - prev
		if c < 0 {
			c = 0
		}
		snap.Counts = append(snap.Counts, uint64(c))
		prev = b.cum
	}
	if len(snap.Counts) == len(snap.Bounds) {
		// No +Inf bucket in the scrape; add an empty one so the snapshot
		// keeps the len(Bounds)+1 invariant.
		snap.Counts = append(snap.Counts, 0)
	}
	if sum, ok := sc.Value(name+"_sum", want); ok {
		snap.SumNs = int64(sum * 1e9)
	}
	return snap, true
}

func labelsMatch(have, want Labels) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

func labelsMatchExcept(have, want Labels, except string) bool {
	for k, v := range want {
		if k == except {
			continue
		}
		if have[k] != v {
			return false
		}
	}
	return true
}
