package analysis

import (
	"go/ast"
	"go/types"
)

// EscapeNonatomic is the audited-exception comment for the atomics
// analyzer (e.g. reads inside a constructor before the value is
// published).
const EscapeNonatomic = "nonatomic-ok"

// Atomics enforces all-or-nothing atomicity per field: any struct field
// or package variable that is ever passed to a sync/atomic function must
// be accessed through sync/atomic everywhere. Mixing `atomic.AddUint64(
// &s.n, 1)` with a plain `s.n` read is a data race even when it happens
// to survive the race detector's schedule — the class of request-path
// race PR 5 fixed by hand. (Typed atomics — atomic.Uint64 fields — are
// immune by construction and are the preferred fix.)
var Atomics = &Analyzer{
	Name: "atomics",
	Doc: "flag non-atomic accesses to fields and variables that are " +
		"accessed via sync/atomic elsewhere in the package",
	Run: runAtomics,
}

func runAtomics(pass *Pass) (any, error) {
	// Pass A: objects whose address is taken inside a sync/atomic call,
	// and the exact AST nodes of those sanctioned accesses.
	atomicObjs := make(map[types.Object]string) // object -> example func name
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				obj := referencedObj(pass.TypesInfo, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = "atomic." + fn.Name()
				}
				sanctioned[ast.Unparen(un.X)] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}
	// Pass B: every other access to those objects is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			obj := referencedObj(pass.TypesInfo, e)
			if obj == nil {
				return true
			}
			if via, isAtomic := atomicObjs[obj]; isAtomic {
				pass.Report(e.Pos(), EscapeNonatomic,
					"%s is accessed with %s elsewhere in this package; this plain access races with it",
					obj.Name(), via)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// referencedObj resolves the variable an expression names: a struct field
// for selectors, a package-level or local variable for identifiers.
// Returns nil for anything else (calls, index expressions, ...).
func referencedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Qualified package identifier (pkg.Var).
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok {
			// Only variables with package-wide visibility are shared
			// state; function locals get a pass unless they are fields
			// (handled above).
			if obj.Parent() == nil || obj.Parent() == obj.Pkg().Scope() || obj.IsField() {
				return obj
			}
		}
	}
	return nil
}
