package analysis

import (
	"go/ast"
)

// EscapeUnchecked is the audited-exception comment for the checkederr
// analyzer.
const EscapeUnchecked = "unchecked-ok"

// checkedNames are the method/function names whose dropped errors have
// bitten this codebase: Close/Sync lose durability acks in the store,
// Flush loses buffered daemon output, Encode silently truncates HTTP
// responses (the PR 8 bug).
var checkedNames = map[string]bool{
	"Close": true, "Sync": true, "Flush": true, "Encode": true,
}

// CheckedErr flags bare call statements that discard the error result of
// Close, Sync, Flush, or Encode inside the durability-critical packages
// (internal/store, internal/jobs, and the daemons). An explicit
// `_ = f.Close()` is allowed — it is visible and greppable — and
// `defer f.Close()` on read-side cleanup is conventional and skipped;
// what this pass forbids is the silent statement-position drop.
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc: "flag discarded Close/Sync/Flush/Encode error results in the " +
		"store, job manager, and daemons",
	Run: runCheckedErr,
}

func runCheckedErr(pass *Pass) (any, error) {
	if !ScopedTo(pass.Pkg.Path(), CheckedErrScope) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || !checkedNames[fn.Name()] || !returnsError(fn) {
				return true
			}
			pass.Report(call.Pos(), EscapeUnchecked,
				"%s returns an error that is silently discarded; check it or make the discard explicit with `_ =`",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
