package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DirectiveNilsafe marks a type whose pointer methods promise to no-op on
// nil receivers; the obsnil analyzer enforces the promise.
const DirectiveNilsafe = "nilsafe"

// EscapeObsNil is the audited-exception comment for the obsnil analyzer.
const EscapeObsNil = "obsnil-ok"

// ObsNil enforces internal/obs's documented instrument contract: a nil
// Counter, Gauge, Histogram, Logger, Tracer, or TraceBuilder is a no-op,
// so unobserved layers can call instruments unconditionally and pay
// nothing. Each instrument type carries //locshort:nilsafe on its
// declaration; every pointer-receiver method of such a type must begin
// with a nil-receiver guard, delegate every receiver use to a guarded
// method, or not touch the receiver at all. Value-receiver methods on
// nilsafe types are flagged outright — they dereference before the body
// can check anything.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc: "require nil-receiver guards on every method of types marked " +
		"//locshort:nilsafe (the obs no-op instrument contract)",
	Run: runObsNil,
}

func runObsNil(pass *Pass) (any, error) {
	if !ScopedTo(pass.Pkg.Path(), ObsScope) {
		return nil, nil
	}
	marked := nilsafeTypes(pass)
	if len(marked) == 0 {
		return nil, nil
	}
	type method struct {
		decl    *ast.FuncDecl
		recvObj types.Object
		ptr     bool
		tname   string
	}
	var methods []method
	guarded := make(map[string]bool) // "Type.Method" with a leading nil guard
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tname, ptr := recvTypeName(fd.Recv.List[0].Type)
			if !marked[tname] {
				continue
			}
			var recvObj types.Object
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				recvObj = pass.TypesInfo.Defs[names[0]]
			}
			m := method{decl: fd, recvObj: recvObj, ptr: ptr, tname: tname}
			methods = append(methods, m)
			if ptr && fd.Body != nil && len(fd.Body.List) > 0 && recvObj != nil &&
				isNilGuard(pass.TypesInfo, fd.Body.List[0], recvObj) {
				guarded[tname+"."+fd.Name.Name] = true
			}
		}
	}
	for _, m := range methods {
		fd := m.decl
		if !m.ptr {
			pass.Report(fd.Name.Pos(), EscapeObsNil,
				"method %s.%s on nilsafe type uses a value receiver, which dereferences a nil pointer before any guard can run",
				m.tname, fd.Name.Name)
			continue
		}
		if guarded[m.tname+"."+fd.Name.Name] || fd.Body == nil {
			continue
		}
		if m.recvObj == nil {
			continue // no receiver name: the body cannot dereference it
		}
		if delegatesOnly(pass.TypesInfo, fd, m.recvObj, m.tname, guarded) {
			continue
		}
		pass.Report(fd.Name.Pos(), EscapeObsNil,
			"method %s.%s on nilsafe type must start with `if %s == nil { return ... }` (or delegate to a guarded method): nil instruments are documented no-ops",
			m.tname, fd.Name.Name, m.recvObj.Name())
	}
	return nil, nil
}

// nilsafeTypes collects type names declared with //locshort:nilsafe.
func nilsafeTypes(pass *Pass) map[string]bool {
	marked := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, DirectiveNilsafe) || (len(gd.Specs) == 1 && hasDirective(gd.Doc, DirectiveNilsafe)) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	return marked
}

// recvTypeName unwraps a receiver type expression to its named type.
func recvTypeName(e ast.Expr) (name string, ptr bool) {
	if star, ok := e.(*ast.StarExpr); ok {
		ptr = true
		e = star.X
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, ptr
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, ptr
		}
	}
	return "", ptr
}

// isNilGuard reports whether stmt is `if recv == nil { ...; return }`
// (the == nil test may be the left arm of an || chain).
func isNilGuard(info *types.Info, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	if !condTestsRecvNil(info, ifs.Cond, recv) {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condTestsRecvNil reports whether cond contains `recv == nil` at the top
// level of an ||-disjunction.
func condTestsRecvNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return condTestsRecvNil(info, be.X, recv) || condTestsRecvNil(info, be.Y, recv)
	case token.EQL:
		return (isRecvIdent(info, be.X, recv) && isNilIdent(info, be.Y)) ||
			(isRecvIdent(info, be.Y, recv) && isNilIdent(info, be.X))
	}
	return false
}

func isRecvIdent(info *types.Info, e ast.Expr, recv types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == recv
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// delegatesOnly reports whether every use of the receiver in fd's body is
// as the receiver of a call to a nil-guarded method of the same type —
// the Logger.Info -> Logger.log pattern, where the guard lives one call
// down.
func delegatesOnly(info *types.Info, fd *ast.FuncDecl, recv types.Object, tname string, guarded map[string]bool) bool {
	sanctioned := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[id] != recv {
			return true
		}
		if guarded[tname+"."+sel.Sel.Name] {
			sanctioned[id] = true
		}
		return true
	})
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || info.Uses[id] != recv {
			return true
		}
		if !sanctioned[id] {
			ok = false
		}
		return true
	})
	// A body that never touches the receiver cannot dereference nil, so
	// zero uses also passes.
	return ok
}
