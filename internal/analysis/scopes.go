package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicCore lists the packages whose outputs must be
// bit-deterministic: everything a canonical encoding, fingerprint, or
// EXPERIMENTS.md table flows through. Fixture packages match because
// ScopedTo compares "/"-delimited suffixes.
var DeterministicCore = []string{
	"locshort/internal/graph",
	"locshort/internal/partition",
	"locshort/internal/tree",
	"locshort/internal/shortcut",
	"locshort/internal/dist",
	"locshort/internal/minor",
	"locshort/internal/wire",
	"locshort/internal/congest",
}

// CheckedErrScope lists the packages where a silently dropped
// Close/Sync/Flush/Encode error can lose durability or corrupt a
// response: the store, the job manager, and the daemons.
var CheckedErrScope = []string{
	"locshort/internal/store",
	"locshort/internal/jobs",
	"locshort/cmd/locshortd",
	"locshort/cmd/locshortctl",
}

// ObsScope is where the nil-instrument contract lives.
var ObsScope = []string{
	"locshort/internal/obs",
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Hotpath,
		Atomics,
		CheckedErr,
		ObsNil,
	}
}

// funcObj resolves the called function or method object of a call, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// returnsError reports whether the function's results include an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
