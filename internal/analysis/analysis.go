package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the passes port to the real
// framework mechanically if it is ever vendored.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by `locshortlint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer, exactly like
// x/tools' analysis.Pass: syntax, types, and a Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report     func(Diagnostic)
	directives map[string][]directive // file name -> sorted by line
}

// Report records a diagnostic unless an escape directive suppresses it.
// The suppression key is the analyzer's escape comment name (e.g.
// "nondeterministic-ok"); pass "" to make the diagnostic unsuppressable.
func (p *Pass) Report(pos token.Pos, escape, format string, args ...any) {
	if escape != "" && p.suppressed(pos, escape) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directive is one //locshort:NAME comment, by position.
type directive struct {
	line int
	name string // text after "locshort:", up to the first space
}

// Prefix starts every recognized control comment.
const Prefix = "//locshort:"

// buildDirectives indexes every //locshort: comment in the package.
func (p *Pass) buildDirectives() {
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := directive{line: pos.Line, name: name}
				p.directives[pos.Filename] = append(p.directives[pos.Filename], d)
			}
		}
	}
	for _, ds := range p.directives {
		sort.Slice(ds, func(i, j int) bool { return ds[i].line < ds[j].line })
	}
}

// parseDirective extracts NAME from "//locshort:NAME optional reason".
func parseDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, Prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, Prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// suppressed reports whether an escape directive named name covers pos:
// on the same line, on the line directly above, or in the enclosing
// function's doc comment.
func (p *Pass) suppressed(pos token.Pos, name string) bool {
	where := p.Fset.Position(pos)
	for _, d := range p.directives[where.Filename] {
		if d.name != name {
			continue
		}
		if d.line == where.Line || d.line == where.Line-1 {
			return true
		}
	}
	// Function-doc-level escape.
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != where.Filename {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if pos < fd.Pos() || pos > fd.End() {
				continue
			}
			if hasDirective(fd.Doc, name) {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether the comment group contains //locshort:name.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if got, ok := parseDirective(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether fn's doc comment carries the directive.
func FuncHasDirective(fn *ast.FuncDecl, name string) bool {
	return hasDirective(fn.Doc, name)
}

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	pass.buildDirectives()
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ScopedTo reports whether path falls inside one of the analyzer's scope
// patterns. A pattern matches when it appears in path as a complete
// "/"-delimited segment run, so "locshort/internal/graph" covers both the
// real package and its analysistest fixture twin under testdata/src.
func ScopedTo(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.HasPrefix(path, s+"/") || strings.Contains(path, "/"+s+"/") {
			return true
		}
	}
	return false
}
