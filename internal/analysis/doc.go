// Package analysis is the repo's static-analysis layer: five custom
// analyzers that turn the invariants the codebase depends on — prose in
// DESIGN.md and reviewer memory until now — into machine-checked passes
// run on every commit by cmd/locshortlint.
//
// The analyzers and the invariants they encode:
//
//   - determinism: the deterministic core (internal/graph, partition,
//     tree, shortcut, dist, minor, wire, and the canonical encoders in
//     internal/store) may not iterate maps, read wall-clock time, or
//     draw from the global math/rand source. Canonical encodings must be
//     bit-deterministic — every EXPERIMENTS.md table and every
//     content-addressed fingerprint depends on it (PR 1 chased exactly
//     this class of bug through internal/minor's greedy tie-breaking).
//   - hotpath: functions marked //locshort:hotpath (Builder stages,
//     warm-hit serving, wire encode/decode, store reads) may not call
//     per-call formatters (fmt.Sprintf, errors.New, ...), box non-pointer
//     values into interfaces, construct closures, or append inside loops
//     to slices declared without capacity. PR 3's 2485→548-alloc Builder
//     is the discipline being preserved.
//   - atomics: a struct field accessed through sync/atomic anywhere must
//     be accessed that way everywhere — the exact class of race PR 5
//     fixed by hand in the request path.
//   - checkederr: Close/Sync/Flush/Encode error results may not be
//     silently discarded in internal/store, internal/jobs, or the
//     daemons (PR 8 found a dropped json.Encode error by hand; this
//     pass makes the next one impossible). An explicit `_ =` is a
//     visible, greppable discard and is allowed; a bare call statement
//     is not.
//   - obsnil: every pointer-receiver method on an internal/obs type
//     marked //locshort:nilsafe must start with a nil-receiver guard (or
//     delegate every receiver use to a guarded method) — the documented
//     "nil instruments are no-ops" contract that lets unobserved layers
//     pay nothing.
//
// Audited exceptions are annotated in source with escape comments
// (//locshort:nondeterministic-ok, alloc-ok, nonatomic-ok, unchecked-ok,
// obsnil-ok), each carrying a human-readable reason. The escape applies
// to the line it sits on, the line directly below it when it stands
// alone, or the whole function when it appears in the function's doc
// comment.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) and golang.org/x/tools/go/analysis/analysistest (the
// `// want "regexp"` fixture convention) so the passes port to the real
// multichecker mechanically if that dependency is ever vendored. It is
// implemented on the standard library alone — go/ast, go/types, and the
// gc export-data importer fed by `go list -deps -export -json` — because
// this module deliberately has no external dependencies (see go.mod) and
// the build must work offline from a cold module cache.
//
// Role in the DAG: nothing imports this package; cmd/locshortlint drives
// it over the tree, and CI runs it in the same matrix as gofmt and vet.
// There is no paper mapping here: like internal/obs, this package
// protects the reproduction (deterministic, comparable runs of the
// Ghaffari–Haeupler construction) rather than implementing part of it.
package analysis
