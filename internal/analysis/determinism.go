package analysis

import (
	"go/ast"
	"go/types"
)

// EscapeNondeterministic is the audited-exception comment for the
// determinism analyzer.
const EscapeNondeterministic = "nondeterministic-ok"

// Determinism enforces the bit-determinism contract of the construction
// core: no map iteration (order varies per run), no wall-clock reads, no
// draws from the global math/rand source. Everything a canonical
// encoding or fingerprint flows through must produce identical bytes for
// identical inputs — EXPERIMENTS.md reproduces verbatim only because of
// this, and PR 1's minor-tiebreak bug is what it looks like when it
// breaks. Audited sites carry //locshort:nondeterministic-ok with a
// reason (timing-only instrumentation, order-insensitive folds).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map iteration, time.Now/time.Since, and global math/rand use " +
		"inside the deterministic core packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) (any, error) {
	if !ScopedTo(pass.Pkg.Path(), DeterministicCore) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Report(n.Pos(), EscapeNondeterministic,
						"range over map %s in deterministic core (iteration order varies per run)",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.CallExpr:
				fn := funcObj(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				for _, name := range [...]string{"Now", "Since"} {
					if isPkgFunc(fn, "time", name) {
						pass.Report(n.Pos(), EscapeNondeterministic,
							"time.%s in deterministic core (wall clock is nondeterministic)", name)
					}
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" {
						pass.Report(n.Pos(), EscapeNondeterministic,
							"global math/rand.%s in deterministic core (shared unseeded source); use a *rand.Rand with a fixed seed", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
