package analysis_test

import (
	"testing"

	"locshort/internal/analysis"
	"locshort/internal/analysis/analysistest"
)

// Each fixture package plants every construct its analyzer forbids plus
// the escapes and allowed forms it must tolerate; analysistest fails in
// both directions, so these tests prove each analyzer fires and that its
// audit comments suppress. Scoped analyzers get the import path of a
// package inside their scope.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "testdata/determinism", "locshort/internal/graph")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysis.Hotpath, "testdata/hotpath", "locshort/internal/shortcut")
}

func TestAtomics(t *testing.T) {
	analysistest.Run(t, analysis.Atomics, "testdata/atomics", "locshort/internal/service")
}

func TestCheckedErr(t *testing.T) {
	analysistest.Run(t, analysis.CheckedErr, "testdata/checkederr", "locshort/internal/store")
}

func TestObsNil(t *testing.T) {
	analysistest.Run(t, analysis.ObsNil, "testdata/obsnil", "locshort/internal/obs")
}

// TestScopedAnalyzersStayQuietOutsideScope reloads the violation-dense
// fixtures under import paths outside each analyzer's scope and asserts
// silence: scoping is what keeps the determinism rules from firing on
// the service layer, where wall clocks and map ranges are legitimate.
func TestScopedAnalyzersStayQuietOutsideScope(t *testing.T) {
	cases := []struct {
		a   *analysis.Analyzer
		dir string
		as  string
	}{
		{analysis.Determinism, "testdata/determinism", "locshort/internal/service"},
		{analysis.CheckedErr, "testdata/checkederr", "locshort/internal/graph"},
		{analysis.ObsNil, "testdata/obsnil", "locshort/internal/graph"},
	}
	for _, tc := range cases {
		pkg, err := analysis.LoadDir(tc.dir, tc.as)
		if err != nil {
			t.Fatalf("loading %s as %s: %v", tc.dir, tc.as, err)
		}
		diags, err := analysis.RunAnalyzer(tc.a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", tc.a.Name, tc.dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s on %s loaded as %s: unexpected diagnostic at %s: %s",
				tc.a.Name, tc.dir, tc.as, pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
