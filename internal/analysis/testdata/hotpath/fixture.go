// Package fixture plants one instance of every construct the hotpath
// analyzer forbids inside //locshort:hotpath functions — per-call
// formatters, closures, interface boxing, unsized append-in-loop — plus
// the escapes and allowed forms it must not flag. Unmarked functions are
// exempt no matter what they do.
package fixture

import "fmt"

// sink exists to receive interface arguments; it is unmarked, so its own
// body is not checked.
func sink(v interface{}) { _ = v }

//locshort:hotpath
func denyCall(id int) string {
	return fmt.Sprintf("g-%d", id) // want `hotpath function denyCall calls fmt\.Sprintf`
}

//locshort:hotpath
func closes(xs []int) func() int {
	f := func() int { return len(xs) } // want `hotpath function closes constructs a closure`
	return f
}

//locshort:hotpath
func boxes(v int) {
	sink(v) // want `hotpath function boxes boxes int into an interface argument`
}

// boxesPointer must not be flagged: pointers convert to interfaces
// without copying the pointee to the heap at the call site.
//
//locshort:hotpath
func boxesPointer(v *int) {
	sink(v)
}

//locshort:hotpath
func appendsUnsized(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `appends in a loop to out, declared without capacity`
	}
	return out
}

// appendsSized must not be flagged: the slice reserves capacity up front.
//
//locshort:hotpath
func appendsSized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// escaped shows the audit hatch on a cold branch inside a hot function.
//
//locshort:hotpath
func escaped(id int, fail bool) string {
	if fail {
		return fmt.Sprintf("g-%d", id) //locshort:alloc-ok error path (fixture audit)
	}
	return "ok"
}

// unmarked is exempt: the analyzer only checks functions that opt in.
func unmarked(id int) string {
	return fmt.Sprintf("g-%d", id)
}
