// Package fixture plants silently-discarded Close/Sync/Flush/Encode
// errors — the drop class the checkederr analyzer forbids — plus every
// allowed form: explicit `_ =` discard, defer, a real check, a
// same-named method that returns nothing, and the audit escape. The test
// harness loads it under locshort/internal/store so it falls inside the
// durability-critical scope.
package fixture

type resource struct{}

func (resource) Close() error { return nil }
func (resource) Sync() error  { return nil }
func (resource) Flush() error { return nil }
func (resource) Encode(v any) error {
	_ = v
	return nil
}

// Done returns nothing; a bare statement call is fine.
func (resource) Done() {}

func drops(r resource) {
	r.Close()     // want `Close returns an error that is silently discarded`
	r.Sync()      // want `Sync returns an error that is silently discarded`
	r.Flush()     // want `Flush returns an error that is silently discarded`
	r.Encode(nil) // want `Encode returns an error that is silently discarded`
	r.Done()
}

func explicitDiscard(r resource) {
	_ = r.Close()
}

func deferred(r resource) error {
	defer r.Close()
	return r.Sync()
}

func checked(r resource) error {
	if err := r.Flush(); err != nil {
		return err
	}
	return r.Close()
}

func escaped(r resource) {
	r.Close() //locshort:unchecked-ok crash-path cleanup, original error already propagating (fixture audit)
}
