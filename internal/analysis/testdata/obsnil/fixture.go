// Package fixture exercises the obsnil analyzer: a type marked
// //locshort:nilsafe whose methods variously honor the nil-receiver
// contract (leading guard, delegation to a guarded method, no receiver
// use), break it (unguarded dereference, value receiver), or carry the
// audit escape. Unmarked types are exempt. The test harness loads it
// under locshort/internal/obs, the analyzer's scope.
package fixture

// Counter mimics an obs instrument: a nil *Counter must be a no-op.
//
//locshort:nilsafe
type Counter struct{ n uint64 }

// guarded is the contract-conforming shape.
func (c *Counter) guarded() {
	if c == nil {
		return
	}
	c.n++
}

// guardedOr shows the guard as the left arm of an || chain.
func (c *Counter) guardedOr(enabled bool) {
	if c == nil || !enabled {
		return
	}
	c.n++
}

func (c *Counter) unguarded() { // want `method Counter\.unguarded on nilsafe type must start with`
	c.n++
}

func (c Counter) valueRecv() uint64 { return c.n } // want `method Counter\.valueRecv on nilsafe type uses a value receiver`

// delegates touches the receiver only to call a guarded method.
func (c *Counter) delegates() { c.guarded() }

// pure never touches the receiver, so it cannot dereference nil.
func (c *Counter) pure() int { return 42 }

//locshort:obsnil-ok callers hold a non-nil receiver by construction (fixture audit)
func (c *Counter) escaped() { c.n++ }

// plain is unmarked: the contract is opt-in, so nothing here is checked.
type plain struct{ n uint64 }

func (p *plain) inc() { p.n++ }
