// Package fixture plants mixed atomic/plain accesses to the same field
// and package variable — the race class the atomics analyzer exists to
// catch — plus consistent usages and an audited escape it must not flag.
package fixture

import "sync/atomic"

type stats struct {
	n    uint64 // touched via sync/atomic: every access must be atomic
	safe uint64 // never touched via sync/atomic: plain access is fine
}

func (s *stats) inc() { atomic.AddUint64(&s.n, 1) }

func (s *stats) read() uint64 {
	return s.n // want `n is accessed with atomic\.AddUint64 elsewhere in this package`
}

func (s *stats) readAtomic() uint64 { return atomic.LoadUint64(&s.n) }

func (s *stats) plainSafe() uint64 { return s.safe }

var hits uint64

func bumpHits() { atomic.AddUint64(&hits, 1) }

func readHits() uint64 {
	return hits // want `hits is accessed with atomic\.AddUint64 elsewhere in this package`
}

// newStats writes the field before the value is published — the classic
// audited exception.
func newStats(initial uint64) *stats {
	s := &stats{}
	s.n = initial //locshort:nonatomic-ok pre-publication write in constructor (fixture audit)
	return s
}
