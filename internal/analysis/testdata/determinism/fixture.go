// Package fixture plants one instance of every construct the determinism
// analyzer forbids, plus audited escapes and allowed forms it must not
// flag. The test harness loads it under the import path
// locshort/internal/graph so it falls inside the deterministic core.
package fixture

import (
	"math/rand"
	"time"
)

// mapOrder iterates a map: order varies per run, so canonical output
// built this way would differ across processes.
func mapOrder(m map[int]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m { // want `range over map map\[int\]string in deterministic core`
		out = append(out, v)
	}
	return out
}

// wallClock reads the wall clock twice, both forbidden forms.
func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now in deterministic core`
	return time.Since(t0) // want `time\.Since in deterministic core`
}

// globalRand draws from the shared unseeded source.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn in deterministic core`
}

// seededRand is the sanctioned alternative: an explicit *rand.Rand with a
// fixed seed. rand.New and rand.NewSource are constructors, not draws,
// and method calls on the local generator are deterministic given the seed.
func seededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// auditedMapRange shows the escape hatch: an order-insensitive fold over
// a map is safe, and the audit comment suppresses the diagnostic.
func auditedMapRange(m map[int]int) int {
	sum := 0
	//locshort:nondeterministic-ok order-insensitive sum (fixture audit)
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceRange must not be flagged: slice iteration order is defined.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
