// Package analysistest runs an analyzer over a fixture package and
// matches its diagnostics against `// want "regexp"` comments, following
// the convention of golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must be expected by a want comment on its line, and every
// want comment must be matched by a diagnostic. A fixture therefore
// fails the test in both directions — when the analyzer misses a planted
// violation and when it reports something the fixture declares clean.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"locshort/internal/analysis"
)

// wantRe extracts the quoted expectations from a want comment; both
// double-quoted and backquoted forms are accepted, as in x/tools
// (backquotes spare the fixture author regexp-escape doubling).
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one want regexp, anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory as import path `as`, applies the
// analyzer, and reports mismatches between diagnostics and want
// comments. The import path controls scope matching: a fixture standing
// in for internal/graph passes "locshort/internal/graph".
func Run(t *testing.T, a *analysis.Analyzer, dir, as string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, as)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, dir)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if filepath.Base(w.file) == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants parses want comments from every non-test fixture file.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var wants []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, expr, err)
					}
					wants = append(wants, &expectation{file: path, line: line, re: re})
				}
			}
		}
	}
	return wants
}
