package analysis

import (
	"go/ast"
	"go/types"
)

// DirectiveHotpath marks a function as allocation-disciplined; the
// hotpath analyzer checks every function whose doc comment carries it.
const DirectiveHotpath = "hotpath"

// EscapeAlloc is the audited-exception comment for the hotpath analyzer.
const EscapeAlloc = "alloc-ok"

// denyCalls are formatting/constructor calls that allocate on every
// invocation and have no place on a hot path (PR 3's alloc discipline:
// errors and format strings belong on the slow path or behind sentinels).
var denyCalls = map[string]map[string]bool{
	"fmt": {
		"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
		"Printf": true, "Print": true, "Println": true,
		"Fprintf": true, "Fprint": true, "Fprintln": true,
	},
	"errors": {"New": true},
	"log": {
		"Printf": true, "Print": true, "Println": true,
		"Fatalf": true, "Fatal": true, "Fatalln": true,
	},
}

// Hotpath enforces allocation discipline inside //locshort:hotpath
// functions: no per-call formatters or error constructors, no boxing of
// non-pointer values into interface parameters, no closure construction,
// and no append-in-loop into a slice declared without capacity. The
// Builder's 2485→548-alloc rebuild (DESIGN.md §5) and the warm-hit
// serving path are what this protects.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "enforce allocation discipline (no formatters, boxing, closures, " +
		"or unsized append-in-loop) in //locshort:hotpath functions",
	Run: runHotpath,
}

func runHotpath(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !FuncHasDirective(fd, DirectiveHotpath) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	decls := localSliceDecls(pass, fd)
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), walk)
			loopDepth--
			// Range/init/cond/post expressions still need the plain checks.
			inspectLoopHeader(n, walk)
			return false
		case *ast.FuncLit:
			pass.Report(n.Pos(), EscapeAlloc,
				"hotpath function %s constructs a closure (allocates per call)", name)
			return true // still check the closure body at the same strictness
		case *ast.CallExpr:
			checkHotCall(pass, name, n, loopDepth > 0, decls)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// loopBody returns the body block of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// inspectLoopHeader applies walk to the non-body parts of a loop.
func inspectLoopHeader(n ast.Node, walk func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		for _, h := range []ast.Node{n.Init, n.Cond, n.Post} {
			if h != nil {
				ast.Inspect(h, walk)
			}
		}
	case *ast.RangeStmt:
		if n.X != nil {
			ast.Inspect(n.X, walk)
		}
	}
}

func checkHotCall(pass *Pass, fname string, call *ast.CallExpr, inLoop bool, decls map[types.Object]sliceDecl) {
	fn := funcObj(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil {
		if names := denyCalls[fn.Pkg().Path()]; names[fn.Name()] {
			pass.Report(call.Pos(), EscapeAlloc,
				"hotpath function %s calls %s.%s (allocates and formats per call)",
				fname, fn.Pkg().Name(), fn.Name())
			return // don't double-report its args as boxing
		}
	}
	// Unsized append in a loop: append(x, ...) where x is a local slice
	// declared with no capacity grows by repeated reallocation.
	if inLoop && isBuiltin(pass.TypesInfo, call, "append") && len(call.Args) > 0 {
		if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[target]; obj != nil {
				if d, ok := decls[obj]; ok && !d.sized {
					pass.Report(call.Pos(), EscapeAlloc,
						"hotpath function %s appends in a loop to %s, declared without capacity (preallocate with make(..., 0, n))",
						fname, target.Name)
				}
			}
		}
		return
	}
	checkBoxing(pass, fname, call)
}

// checkBoxing flags arguments whose concrete non-pointer values convert
// implicitly to interface parameters — each such call boxes the value on
// the heap.
func checkBoxing(pass *Pass, fname string, call *ast.CallExpr) {
	sigType := pass.TypesInfo.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Basic, *types.Struct, *types.Array:
			if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
				continue
			}
			pass.Report(arg.Pos(), EscapeAlloc,
				"hotpath function %s boxes %s into an interface argument (heap-allocates per call)",
				fname, types.TypeString(at, types.RelativeTo(pass.Pkg)))
		}
	}
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// sliceDecl records how a local slice variable was declared.
type sliceDecl struct{ sized bool }

// localSliceDecls maps every slice-typed local of fd to whether its
// declaration reserves capacity: `var s []T`, `s := []T{}`, and
// `make([]T, 0)` do not; make with a length or capacity, non-empty
// literals, and expression results do.
func localSliceDecls(pass *Pass, fd *ast.FuncDecl) map[types.Object]sliceDecl {
	decls := make(map[types.Object]sliceDecl)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		decls[obj] = sliceDecl{sized: rhsHasCapacity(pass, rhs)}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(id, rhs)
				}
			}
		}
		return true
	})
	return decls
}

// rhsHasCapacity reports whether the declaration expression reserves any
// capacity (or comes from an expression whose sizing we can't see, which
// is given the benefit of the doubt).
func rhsHasCapacity(pass *Pass, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case nil:
		return false // var s []T
	case *ast.CompositeLit:
		return len(rhs.Elts) > 0 // []T{} is unsized, []T{...} is not
	case *ast.CallExpr:
		if !isBuiltin(pass.TypesInfo, rhs, "make") {
			return true
		}
		if len(rhs.Args) >= 3 {
			return true // explicit capacity
		}
		if len(rhs.Args) == 2 {
			// make([]T, n): sized unless n is literally 0.
			if tv, ok := pass.TypesInfo.Types[rhs.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				return false
			}
			return true
		}
		return false
	default:
		return true
	}
}
