package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath      string
	Dir             string
	Export          string
	Standard        bool
	CompiledGoFiles []string
	Error           *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves import paths from
// the compiled export-data files `go list -export` reported. This is how
// the loader stays offline and dependency-free: the gc importer in the
// standard library reads the build cache's export data directly.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typeCheck parses and checks the named files as package path.
func typeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, []*ast.File, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, files, nil
}

// LoadPackages loads and type-checks the module packages matched by the
// go list patterns, rooted at dir. Standard-library dependencies are
// resolved from export data, never re-parsed; test files are not part of
// the analyzed build (invariants are enforced on production sources —
// tests legitimately use wall clocks, map iteration, and bare Closes).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-compiled",
		"-json=ImportPath,Dir,Export,Standard,CompiledGoFiles,Error"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		var filenames []string
		for _, f := range p.CompiledGoFiles {
			if !strings.HasSuffix(f, ".go") { // cgo/asm intermediates
				continue
			}
			if !filepath.IsAbs(f) {
				f = filepath.Join(p.Dir, f)
			}
			filenames = append(filenames, f)
		}
		if len(filenames) == 0 {
			continue
		}
		lp, _, err := typeCheck(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		lp.Dir = p.Dir
		out = append(out, lp)
	}
	return out, nil
}

// LoadDir parses every non-test .go file in dir and type-checks the
// result under the import path `as`. Fixture packages borrow the import
// path of the package they stand in for, so scope matching sees the same
// paths the real tree produces. Imports must resolve to packages the go
// tool can produce export data for (in practice: the standard library).
func LoadDir(dir, as string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, name))
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	// Collect the fixture's imports so one `go list -deps -export` run
	// can cover their full transitive closure.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
		for p := range importSet {
			args = append(args, p)
		}
		pkgs, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	pkg, _, err := typeCheck(fset, as, filenames, exportImporter(fset, exports))
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}
