package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"locshort/internal/graph"
)

func TestNewValidates(t *testing.T) {
	g := graph.Path(6)
	tests := []struct {
		name    string
		parts   [][]int
		wantErr bool
	}{
		{name: "valid cover", parts: [][]int{{0, 1, 2}, {3, 4, 5}}},
		{name: "valid partial", parts: [][]int{{1, 2}}},
		{name: "empty part", parts: [][]int{{0}, {}}, wantErr: true},
		{name: "overlap", parts: [][]int{{0, 1}, {1, 2}}, wantErr: true},
		{name: "out of range", parts: [][]int{{0, 6}}, wantErr: true},
		{name: "negative", parts: [][]int{{-1}}, wantErr: true},
		{name: "disconnected part", parts: [][]int{{0, 2}}, wantErr: true},
		{name: "disconnected via uncovered", parts: [][]int{{0, 1}, {3, 5}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(g, tt.parts)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() error = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestPartOfAndCovered(t *testing.T) {
	g := graph.Path(5)
	p, err := New(g, [][]int{{0, 1}, {3, 4}})
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	want := []int{0, 0, -1, 1, 1}
	for v, w := range want {
		if p.PartOf[v] != w {
			t.Errorf("PartOf[%d] = %d, want %d", v, p.PartOf[v], w)
		}
	}
	if p.Covered() != 4 {
		t.Errorf("Covered() = %d, want 4", p.Covered())
	}
	if p.NumParts() != 2 {
		t.Errorf("NumParts() = %d, want 2", p.NumParts())
	}
}

func TestNewCopiesInput(t *testing.T) {
	g := graph.Path(3)
	in := [][]int{{0, 1}}
	p, err := New(g, in)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	in[0][0] = 2
	if p.Parts[0][0] != 0 {
		t.Error("partition aliases caller's slice")
	}
}

func TestBFSBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Grid(8, 8)
	p, err := BFSBlobs(g, 5, rng)
	if err != nil {
		t.Fatalf("BFSBlobs error = %v", err)
	}
	if p.NumParts() != 5 {
		t.Errorf("NumParts = %d, want 5", p.NumParts())
	}
	if p.Covered() != 64 {
		t.Errorf("Covered = %d, want 64", p.Covered())
	}
}

func TestBFSBlobsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Path(4)
	if _, err := BFSBlobs(g, 0, rng); err == nil {
		t.Error("BFSBlobs(k=0) succeeded")
	}
	if _, err := BFSBlobs(g, 5, rng); err == nil {
		t.Error("BFSBlobs(k>n) succeeded")
	}
	dis := graph.New(4)
	dis.AddEdge(0, 1)
	dis.AddEdge(2, 3)
	if _, err := BFSBlobs(dis, 2, rng); err != graph.ErrDisconnected {
		t.Errorf("BFSBlobs on disconnected = %v, want ErrDisconnected", err)
	}
}

func TestFromLabels(t *testing.T) {
	g := graph.Path(5)
	p, err := FromLabels(g, []int{7, 7, -1, 9, 9})
	if err != nil {
		t.Fatalf("FromLabels error = %v", err)
	}
	if p.NumParts() != 2 || p.Covered() != 4 {
		t.Errorf("NumParts = %d Covered = %d, want 2 and 4", p.NumParts(), p.Covered())
	}
	if _, err := FromLabels(g, []int{0, 0}); err == nil {
		t.Error("FromLabels accepted wrong-length labels")
	}
	if _, err := FromLabels(g, []int{0, 1, 0, 1, 0}); err == nil {
		t.Error("FromLabels accepted disconnected parts")
	}
}

func TestGridRows(t *testing.T) {
	g := graph.Grid(3, 5)
	p, err := GridRows(g, 3, 5)
	if err != nil {
		t.Fatalf("GridRows error = %v", err)
	}
	if p.NumParts() != 3 {
		t.Errorf("NumParts = %d, want 3", p.NumParts())
	}
	for i, part := range p.Parts {
		if len(part) != 5 {
			t.Errorf("row %d has %d nodes, want 5", i, len(part))
		}
	}
	if _, err := GridRows(g, 4, 5); err == nil {
		t.Error("GridRows accepted mismatched dimensions")
	}
}

func TestWheelRim(t *testing.T) {
	g := graph.Wheel(10)
	p, err := WheelRim(g)
	if err != nil {
		t.Fatalf("WheelRim error = %v", err)
	}
	if p.NumParts() != 2 {
		t.Fatalf("NumParts = %d, want 2", p.NumParts())
	}
	if len(p.Parts[0]) != 9 || len(p.Parts[1]) != 1 {
		t.Errorf("part sizes = %d, %d; want 9, 1", len(p.Parts[0]), len(p.Parts[1]))
	}
}

func TestSingletons(t *testing.T) {
	g := graph.Cycle(7)
	p, err := Singletons(g)
	if err != nil {
		t.Fatalf("Singletons error = %v", err)
	}
	if p.NumParts() != 7 || p.Covered() != 7 {
		t.Errorf("NumParts = %d Covered = %d, want 7 and 7", p.NumParts(), p.Covered())
	}
}

// Property: BFSBlobs always yields a full cover by k connected disjoint
// parts on random connected graphs (connectivity is revalidated by New).
func TestBFSBlobsQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%60
		k := 1 + int(kRaw)%n
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(n)
		if m > maxM {
			m = maxM
		}
		g := graph.RandomConnected(n, m, rng)
		p, err := BFSBlobs(g, k, rng)
		if err != nil {
			return false
		}
		return p.NumParts() == k && p.Covered() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FromLabelsInto must agree with FromLabels and reuse its receiver's
// memory across rebuilds, including shrinking and growing part counts.
func TestFromLabelsIntoMatchesFromLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var p *Partition
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(50)
		g := graph.RandomConnected(n, n-1+rng.Intn(n), rng)
		// Voronoi-style labels from random seeds are connected and node-
		// derived (< n), the FromLabelsInto fast path.
		k := 1 + rng.Intn(n)
		blobs, err := BFSBlobs(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		label := make([]int, n)
		for v := range label {
			if i := blobs.PartOf[v]; i >= 0 {
				label[v] = blobs.Parts[i][0] // a node-ID label, possibly sparse in [0,n)
			}
		}
		if trial%4 == 0 {
			label[rng.Intn(n)] = label[rng.Intn(n)] // keep labels valid, vary shapes
		}
		want, errWant := FromLabels(g, label)
		var errGot error
		p, errGot = FromLabelsInto(p, g, label)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: FromLabels err=%v, FromLabelsInto err=%v", trial, errWant, errGot)
		}
		if errWant != nil {
			p = nil // a failed rebuild leaves p half-written; start fresh
			continue
		}
		if !reflect.DeepEqual(want.PartOf, p.PartOf) {
			t.Fatalf("trial %d: PartOf differs", trial)
		}
		if len(want.Parts) != len(p.Parts) {
			t.Fatalf("trial %d: %d parts, want %d", trial, len(p.Parts), len(want.Parts))
		}
		for i := range want.Parts {
			if !reflect.DeepEqual(want.Parts[i], p.Parts[i]) {
				t.Fatalf("trial %d: part %d differs", trial, i)
			}
		}
	}
}

func TestFromLabelsIntoSparseFallback(t *testing.T) {
	g := graph.Path(4)
	label := []int{100, 100, 7, 7} // labels >= n: allocating FromLabels path
	p, err := FromLabelsInto(nil, g, label)
	if err != nil {
		t.Fatalf("FromLabelsInto error = %v", err)
	}
	if p.NumParts() != 2 || p.PartOf[0] != 0 || p.PartOf[3] != 1 {
		t.Errorf("sparse labels misparsed: parts=%d partOf=%v", p.NumParts(), p.PartOf)
	}
}
