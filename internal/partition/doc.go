// Package partition represents collections of node-disjoint, connected
// vertex parts — the input of the part-wise aggregation problem
// (Definition 2.1 of the paper) and of every shortcut construction.
//
// A partition need not cover all nodes: the paper's definitions only require
// the parts to be disjoint and to induce connected subgraphs. Constructors
// cover the partitions the experiments use (BFS-Voronoi blobs, grid rows,
// the Section 2 wheel rim, singletons for Borůvka) plus FromLabels /
// FromLabelsInto for label-array re-partitioning inside distributed
// algorithm phases.
//
// # Role in the DAG
//
// Depends only on internal/graph. Everything that builds or serves
// shortcuts (internal/shortcut, internal/dist, internal/service,
// internal/store) consumes partitions; internal/service additionally
// defines their canonical byte encoding (AppendPartitionCanonical) for
// content addressing and persistence.
//
// The package is part of the deterministic core policed by the
// internal/analysis lint suite (DESIGN.md §12): no map iteration, no
// wall-clock reads, no global math/rand — identical inputs must produce
// identical bytes. Audited exceptions carry //locshort:nondeterministic-ok
// with a reason; cmd/locshortlint enforces the rest in CI.
package partition
