package partition

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"locshort/internal/graph"
)

// Partition is a validated collection of node-disjoint connected parts.
type Partition struct {
	// Parts holds the node IDs of each part.
	Parts [][]int
	// PartOf maps a node to its part index, or -1 if uncovered.
	PartOf []int

	// Scratch for the slice-reusing constructors (FromLabelsInto): a dense
	// label-index table, a visited indicator, and a BFS queue for the flat
	// connectivity check.
	labelIdx []int
	seen     []bool
	queue    []int

	// canon memoizes a caller-computed canonical byte encoding of the
	// partition (see CanonMemo). FromLabelsInto invalidates it when it
	// rebuilds the receiver in place.
	canon atomic.Pointer[[]byte]
}

// CanonMemo returns the partition's cached canonical encoding, computing
// it with f on first use. The encoding format belongs to the caller (the
// service layer's content addressing); it lives here because a published
// partition is immutable, so the bytes are computed once instead of per
// request. f must be a pure function of Parts/PartOf; concurrent first
// calls may both run f (same bytes, either store wins). Treat the returned
// slice as read-only.
func (p *Partition) CanonMemo(f func() []byte) []byte {
	if b := p.canon.Load(); b != nil {
		return *b
	}
	b := f()
	p.canon.Store(&b)
	return b
}

// New validates that the given parts are node-disjoint, within range, and
// that each part induces a connected subgraph of g, and returns the
// partition. Empty parts are rejected.
func New(g *graph.Graph, parts [][]int) (*Partition, error) {
	p := &Partition{
		Parts:  make([][]int, len(parts)),
		PartOf: make([]int, g.NumNodes()),
	}
	for v := range p.PartOf {
		p.PartOf[v] = -1
	}
	for i, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("partition: part %d is empty", i)
		}
		cp := make([]int, len(part))
		copy(cp, part)
		p.Parts[i] = cp
		for _, v := range part {
			if v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("partition: part %d contains out-of-range node %d", i, v)
			}
			if p.PartOf[v] != -1 {
				return nil, fmt.Errorf("partition: node %d in parts %d and %d", v, p.PartOf[v], i)
			}
			p.PartOf[v] = i
		}
	}
	for i := range p.Parts {
		if !p.connectedPart(g, i) {
			return nil, fmt.Errorf("partition: part %d does not induce a connected subgraph", i)
		}
	}
	return p, nil
}

// NumParts returns the number of parts.
func (p *Partition) NumParts() int { return len(p.Parts) }

// Covered returns the number of nodes belonging to some part.
func (p *Partition) Covered() int {
	n := 0
	for _, i := range p.PartOf {
		if i >= 0 {
			n++
		}
	}
	return n
}

// connectedPart runs a BFS over part i's induced subgraph.
func (p *Partition) connectedPart(g *graph.Graph, i int) bool {
	part := p.Parts[i]
	seen := map[int]bool{part[0]: true}
	queue := []int{part[0]}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range g.Neighbors(v) {
			if p.PartOf[a.To] == i && !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	return len(seen) == len(part)
}

// BFSBlobs partitions all nodes of a connected graph into k connected parts
// by flooding simultaneously from k distinct random seeds: every node joins
// the region of the seed that reaches it first (BFS Voronoi cells, which are
// connected because every node's BFS parent lies in the same cell). Requires
// 1 <= k <= n.
func BFSBlobs(g *graph.Graph, k int, rng *rand.Rand) (*Partition, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: k = %d out of range [1,%d]", k, n)
	}
	if !graph.Connected(g) {
		return nil, graph.ErrDisconnected
	}
	seeds := rng.Perm(n)[:k]
	owner := make([]int, n)
	for v := range owner {
		owner[v] = -1
	}
	queue := make([]int, 0, n)
	for i, s := range seeds {
		owner[s] = i
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range g.Neighbors(v) {
			if owner[a.To] == -1 {
				owner[a.To] = owner[v]
				queue = append(queue, a.To)
			}
		}
	}
	parts := make([][]int, k)
	for v, o := range owner {
		parts[o] = append(parts[o], v)
	}
	return New(g, parts)
}

// FromLabelsInto rebuilds p in place from a node-label array, reusing its
// backing slices — the slice-reuse counterpart of FromLabels for loops
// that re-partition every round (e.g. Borůvka phases). Labels >= 0 must be
// smaller than the node count (DSU roots and other node-derived labels
// qualify); arbitrary sparse labels take the allocating FromLabels path.
//
// The caller owns p exclusively: rebuilding invalidates every previously
// returned view of it, so the structures of the previous round (shortcuts,
// routings, aggregation results) must already be discarded. On error the
// receiver is left half-written: do not read it, only pass it to a future
// FromLabelsInto call.
func FromLabelsInto(p *Partition, g *graph.Graph, label []int) (*Partition, error) {
	if p == nil {
		p = &Partition{}
	}
	p.canon.Store(nil) // the rebuild invalidates any memoized encoding
	n := g.NumNodes()
	if len(label) != n {
		return nil, fmt.Errorf("partition: label length %d, want %d", len(label), n)
	}
	for _, l := range label {
		if l >= n {
			return FromLabels(g, label)
		}
	}
	if cap(p.labelIdx) < n {
		p.labelIdx = make([]int, n)
		p.seen = make([]bool, n)
	}
	idx := p.labelIdx[:n]
	for i := range idx {
		idx[i] = -1
	}
	p.PartOf = graph.ResizeInts(p.PartOf, n)
	// First-appearance order over nodes, matching FromLabels.
	old := p.Parts
	parts := p.Parts[:0]
	for v, l := range label {
		if l < 0 {
			p.PartOf[v] = -1
			continue
		}
		i := idx[l]
		if i < 0 {
			i = len(parts)
			idx[l] = i
			if i < len(old) {
				parts = append(parts, old[i][:0])
			} else {
				parts = append(parts, nil)
			}
		}
		parts[i] = append(parts[i], v)
		p.PartOf[v] = i
	}
	p.Parts = parts
	seen := p.seen[:n]
	for i := range parts {
		ok := p.connectedPartFlat(g, i, seen)
		if !ok {
			return nil, fmt.Errorf("partition: part %d does not induce a connected subgraph", i)
		}
	}
	return p, nil
}

// connectedPartFlat is connectedPart on reusable scratch: seen must be
// all-false on entry and is restored to all-false before returning.
func (p *Partition) connectedPartFlat(g *graph.Graph, i int, seen []bool) bool {
	part := p.Parts[i]
	queue := p.queue[:0]
	seen[part[0]] = true
	queue = append(queue, part[0])
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range g.Neighbors(v) {
			if p.PartOf[a.To] == i && !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	ok := len(queue) == len(part)
	for _, v := range queue {
		seen[v] = false
	}
	p.queue = queue
	return ok
}

// FromLabels builds a partition from a node-label array: every label >= 0
// becomes a part (labels need not be dense); -1 marks uncovered nodes.
func FromLabels(g *graph.Graph, label []int) (*Partition, error) {
	if len(label) != g.NumNodes() {
		return nil, fmt.Errorf("partition: label length %d, want %d", len(label), g.NumNodes())
	}
	index := make(map[int]int)
	var parts [][]int
	for v, l := range label {
		if l < 0 {
			continue
		}
		i, ok := index[l]
		if !ok {
			i = len(parts)
			index[l] = i
			parts = append(parts, nil)
		}
		parts[i] = append(parts[i], v)
	}
	return New(g, parts)
}

// GridRows partitions a Grid(rows, cols) graph into its row paths.
func GridRows(g *graph.Graph, rows, cols int) (*Partition, error) {
	if rows*cols != g.NumNodes() {
		return nil, fmt.Errorf("partition: grid %dx%d does not match %d nodes", rows, cols, g.NumNodes())
	}
	parts := make([][]int, rows)
	for r := 0; r < rows; r++ {
		row := make([]int, cols)
		for c := 0; c < cols; c++ {
			row[c] = graph.GridIndex(r, c, cols)
		}
		parts[r] = row
	}
	return New(g, parts)
}

// WheelRim partitions a Wheel(n) graph into the rim (one big part of induced
// diameter Theta(n)) and the center (a singleton) — the paper's Section 2
// motivating example.
func WheelRim(g *graph.Graph) (*Partition, error) {
	n := g.NumNodes()
	rim := make([]int, n-1)
	for v := 1; v < n; v++ {
		rim[v-1] = v
	}
	return New(g, [][]int{rim, {0}})
}

// Singletons partitions every node into its own part (the starting
// partition of Boruvka's algorithm).
func Singletons(g *graph.Graph) (*Partition, error) {
	parts := make([][]int, g.NumNodes())
	for v := range parts {
		parts[v] = []int{v}
	}
	return New(g, parts)
}
