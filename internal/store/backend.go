package store

import (
	"fmt"

	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/partition"
	"locshort/internal/service"
)

// Backend is the complete storage contract the system depends on, extracted
// from what the layers above actually call: the engine's persistence seam
// (service.Store + service.GraphPayloadStore), the async job manager's
// record store (jobs.Store), the peer/inventory surface internal/cluster
// replicates through, and the admin surface locshortctl and the daemon's
// warm-start logging read. Every backend — the append-only segment store
// (reference implementation), the ephemeral in-memory backend, and the
// object-directory tier — implements all of it and must pass the
// storetest conformance suite (storetest.Run), which turns the semantics
// below into executable law.
//
// Contract highlights, shared by every backend and enforced by storetest:
//
//   - Content addressing: graph and partition payloads are exactly the
//     canonical encodings their fingerprints hash; a payload that does not
//     hash to its key is never written (PutGraphPayload, ImportShortcut)
//     and never served (every Get decodes with verification).
//   - Idempotent re-puts: re-putting known content is a cheap no-op; live
//     record counts do not grow.
//   - Tombstone deletes: DeleteGraph removes the graph record and every
//     shortcut built on it; deleting an absent graph is a no-op; on a
//     durable backend the delete survives reopen.
//   - No resurrection: PutShortcut for a graph that is no longer live is
//     silently dropped (a detached engine persist can race DeleteGraph).
//   - Iteration order: EachGraph ascends by fingerprint, EachJob by job
//     ID, so warm starts are deterministic across backends.
//   - Verification: a record that exists but fails validation surfaces as
//     an error (or a Verify problem), never as a wrong answer.
//   - Concurrency: every method is safe for concurrent use; reads are not
//     stalled behind other requests' persistence.
//
// GC is deliberately NOT part of Backend: an ephemeral backend has nothing
// to compact. Backends that reclaim space implement Compactor; callers
// type-assert and degrade gracefully ("not supported") when it is absent.
type Backend interface {
	service.Store
	service.GraphPayloadStore
	jobs.Store
	PeerStore

	// GetGraph decodes the live graph record for fp, if any.
	GetGraph(fp service.Fingerprint) (*graph.Graph, bool, error)
	// GetPartition decodes the live partition record for fp against g,
	// validating part connectivity (offline inspection; the serving path
	// never needs it because requests carry their partition).
	GetPartition(fp service.Fingerprint, g *graph.Graph) (*partition.Partition, bool, error)
	// ShortcutPayload returns the raw shortcut record payload for key —
	// the binary /v1/shortcuts response body. The slice may alias
	// backend-internal memory (zero-copy on the mmap'd segment store);
	// treat it as read-only.
	ShortcutPayload(key service.Fingerprint) ([]byte, bool, error)

	// Records lists the live records sorted by kind then key.
	Records() []RecordInfo
	// Verify re-reads and fully decodes every live record, returning one
	// Problem per failure; an empty slice means the backend is clean.
	Verify() []Problem
	// OpenStats reports live record counts and on-disk footprint, kept
	// current as the backend is written.
	OpenStats() OpenStats
	// Dir returns the backend's root directory ("" for backends with no
	// on-disk presence).
	Dir() string
	// Close releases the backend's resources. Durable backends never lose
	// acknowledged records at Close; zero-copy payload slices handed out
	// by reads become invalid, so callers drain readers first.
	Close() error
}

// PeerStore is the trustless replication surface internal/cluster moves
// records through: inventory scans to find what a node should own but
// lacks, raw canonical payload export, and verified import (every payload
// re-hashed, every key re-derived — see VerifyPeerRecord).
type PeerStore interface {
	// HasShortcut reports whether a live shortcut record exists for key.
	HasShortcut(key service.Fingerprint) bool
	// GraphKnown reports whether a live graph record exists for fp.
	GraphKnown(fp service.Fingerprint) bool
	// GraphPayload returns the raw graph record payload for fp (version
	// byte + canonical encoding), suitable for shipping to a peer.
	GraphPayload(fp service.Fingerprint) ([]byte, bool, error)
	// ShortcutRecord assembles the PeerRecord for key: the shortcut
	// payload and the graph and partition payloads it references. ok is
	// false when no live shortcut record exists; a live shortcut whose
	// dependencies are missing is an integrity error, not a miss.
	ShortcutRecord(key service.Fingerprint) (PeerRecord, bool, error)
	// ShortcutInventory lists the live shortcut records whose keys fall on
	// the arc (lo, hi] of the fingerprint circle (wrapping; lo == hi lists
	// everything), sorted by key, without reading any payload.
	ShortcutInventory(lo, hi uint64) []InventoryEntry
	// GraphFingerprints lists the live graph record keys, sorted.
	GraphFingerprints() []service.Fingerprint
	// ImportShortcut verifies rec end to end (VerifyPeerRecord) and
	// durably installs whatever records the backend is missing. It returns
	// the decoded graph and whether the shortcut record was actually
	// written — false means a record for the key already existed. An
	// import must never resurrect a record deleted first.
	ImportShortcut(rec PeerRecord) (*graph.Graph, bool, error)
}

// Compactor is the optional space-reclamation capability. The segment
// store compacts its append-only segments; the object-directory tier
// sweeps unreferenced partition objects; the in-memory backend reclaims
// eagerly and does not implement it.
type Compactor interface {
	GC() (GCStats, error)
}

// Backend kinds accepted by OpenBackend and the daemons' -store flag.
const (
	KindSegment = "segment"
	KindMem     = "mem"
	KindObjDir  = "objdir"
)

// Kinds lists the selectable backend kinds.
func Kinds() []string { return []string{KindSegment, KindMem, KindObjDir} }

// OpenBackend opens the named backend kind rooted at dir. KindSegment
// (also "") is the append-only segment store; KindObjDir is the
// one-file-per-record object-directory tier; KindMem ignores dir and
// returns a fresh ephemeral backend.
func OpenBackend(kind, dir string, opts Options) (Backend, error) {
	switch kind {
	case "", KindSegment:
		return Open(dir, opts)
	case KindObjDir:
		return OpenObjDir(dir, opts)
	case KindMem:
		return OpenMem(), nil
	default:
		return nil, fmt.Errorf("store: unknown backend kind %q (want one of %v)", kind, Kinds())
	}
}

var (
	_ Backend   = (*Store)(nil)
	_ Compactor = (*Store)(nil)
)
